#include "reference_data.hpp"

namespace amped {
namespace validate {

std::vector<Table2Row>
table2Rows()
{
    // TP/PP/DP, AMPeD and published TFLOP/s/GPU, error %: verbatim
    // from the paper's Table II.  Batch sizes follow Megatron-LM
    // Table 1; microbatch sizes are the small per-GPU microbatches
    // Megatron uses at scale (DESIGN.md Sec. 3).
    return {
        {"145B", 8, 8, 24, 2304.0, 1.0, 147.0, 148.0, 0.6},
        {"310B", 8, 16, 12, 2160.0, 1.0, 162.0, 155.0, 4.5},
        {"530B", 8, 35, 9, 2520.0, 1.0, 148.6, 163.0, 8.8},
        {"1T", 8, 64, 6, 3072.0, 1.0, 144.3, 163.0, 11.47},
    };
}

std::vector<Table3Row>
table3Rows()
{
    return {
        {2, 1.0, 1.0},
        {4, 1.8, 1.84},
        {8, 3.3, 3.19},
    };
}

std::vector<Fig2cPoint>
fig2cPoints()
{
    // Published values reconstructed (the paper shows this series
    // only as a plot): pipeline-only 175B training saturates in the
    // 115-130 TFLOP/s/GPU band, and the paper states the AMPeD error
    // is ~11 % at microbatch 12 converging to ~2 % at 60
    // (interpolated in between).  The reconstruction anchors the
    // published series to those error statements on top of the known
    // saturating shape.
    return {
        {12.0, 115.0, 11.0},
        {18.0, 122.0, 9.0},
        {24.0, 124.0, 7.0},
        {36.0, 127.0, 5.0},
        {48.0, 127.5, 3.0},
        {60.0, 128.0, 2.0},
    };
}

} // namespace validate
} // namespace amped

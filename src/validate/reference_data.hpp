/**
 * @file
 * Published reference data the paper validates against.
 *
 * Table II rows (Megatron-LM TFLOP/s/GPU, Narayanan et al. SC'21
 * [8]) and Table III rows (GPipe speedups, Huang et al. [26]) are
 * transcribed verbatim from the paper.  The Fig. 2c "published"
 * series is NOT given numerically in the paper; it is reconstructed
 * from the paper's error statements (~11 % at microbatch 12,
 * converging to ~2 % at 60) on top of the known saturating shape of
 * the Megatron measurement — see EXPERIMENTS.md.
 */

#ifndef AMPED_VALIDATE_REFERENCE_DATA_HPP
#define AMPED_VALIDATE_REFERENCE_DATA_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace amped {
namespace validate {

/** One row of the paper's Table II. */
struct Table2Row
{
    std::string modelName;   ///< "145B", "310B", "530B", "1T".
    std::int64_t tp = 0;     ///< Tensor-parallel degree.
    std::int64_t pp = 0;     ///< Pipeline-parallel degree.
    std::int64_t dp = 0;     ///< Data-parallel degree.
    double batchSize = 0.0;  ///< Global batch (Megatron Table 1).
    double microbatch = 0.0; ///< Per-GPU microbatch size used.
    double paperAmpedTflops = 0.0; ///< AMPeD column of Table II.
    double publishedTflops = 0.0;  ///< Published column of Table II.
    double paperErrorPercent = 0.0; ///< Error column of Table II.
};

/** All four Table II rows. */
std::vector<Table2Row> table2Rows();

/** One column of the paper's Table III (GPipe speedups, M = 32). */
struct Table3Row
{
    std::int64_t gpus = 0;          ///< 2, 4 or 8 P100 GPUs.
    double publishedSpeedup = 0.0;  ///< Normalized throughput [26].
    double paperPredicted = 0.0;    ///< AMPeD prediction in Table III.
};

/** All three Table III columns. */
std::vector<Table3Row> table3Rows();

/** One point of the Fig. 2c series (175B GPT-3, 96 GPUs, PP only). */
struct Fig2cPoint
{
    double microbatch = 0.0;       ///< Microbatch size (x-axis).
    double publishedTflops = 0.0;  ///< Reconstructed published value.
    double paperErrorPercent = 0.0; ///< Error implied by the paper.
};

/** Reconstructed Fig. 2c series (see file comment). */
std::vector<Fig2cPoint> fig2cPoints();

} // namespace validate
} // namespace amped

#endif // AMPED_VALIDATE_REFERENCE_DATA_HPP

#include "validation.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace amped {
namespace validate {

double
ValidationRow::errorPercent() const
{
    require(reference != 0.0, "ValidationRow '", label,
            "': zero reference value");
    return (predicted - reference) / std::fabs(reference) * 100.0;
}

ValidationRow
makeRow(std::string label, double predicted, double reference)
{
    return ValidationRow{std::move(label), predicted, reference};
}

double
maxAbsErrorPercent(const std::vector<ValidationRow> &rows)
{
    double worst = 0.0;
    for (const auto &row : rows)
        worst = std::max(worst, std::fabs(row.errorPercent()));
    return worst;
}

std::string
validationTable(const std::vector<ValidationRow> &rows,
                const std::string &value_header)
{
    TextTable table({"case", value_header + " (model)",
                     value_header + " (reference)", "error (%)"});
    for (const auto &row : rows) {
        table.addRow({row.label, units::formatFixed(row.predicted, 2),
                      units::formatFixed(row.reference, 2),
                      units::formatFixed(row.errorPercent(), 2)});
    }
    std::ostringstream oss;
    table.print(oss);
    oss << "max |error|: "
        << units::formatFixed(maxAbsErrorPercent(rows), 2) << " %\n";
    return oss.str();
}

} // namespace validate
} // namespace amped

#include "calibrations.hpp"

#include "net/link.hpp"

namespace amped {
namespace validate {
namespace calibrations {

hw::MicrobatchEfficiency
megatronTable2()
{
    // eff(1) = 0.655 / 1.055 = 0.621: Megatron's large matmuls keep
    // the tensor cores ~62 % utilized even at per-GPU microbatch 1
    // (2048-token sequences).
    return hw::MicrobatchEfficiency(0.655, 0.055);
}

hw::MicrobatchEfficiency
fig2cSweep()
{
    // eff(12) = 0.73, eff(60) = 0.91: still climbing at 12, nearly
    // saturated at 60.
    return hw::MicrobatchEfficiency(0.97, 4.0);
}

hw::MicrobatchEfficiency
gpipeP100()
{
    return hw::MicrobatchEfficiency(0.70, 4.0);
}

hw::MicrobatchEfficiency
minGptHgx2()
{
    return hw::MicrobatchEfficiency(0.80, 8.0);
}

hw::MicrobatchEfficiency
caseStudy1()
{
    // Paper Sec. VI: 25 % floor ("fixed lower limit of 25% in our
    // case"), ~31 % at microbatch 16, up to ~80 % with intra-node TP.
    return hw::MicrobatchEfficiency(0.90, 30.0, 0.25);
}

hw::MicrobatchEfficiency
caseStudy3()
{
    return hw::MicrobatchEfficiency(0.85, 16.0, 0.25);
}

core::ModelOptions
validationOptions()
{
    core::ModelOptions options;
    options.bubbleOverlapRatio = 1.0; // R = 1 (paper, Table II).
    options.backwardComputeMultiplier = 3.0; // with recompute.
    return options;
}

core::ModelOptions
nvswitchOptions(std::int64_t intra_ring_size)
{
    core::ModelOptions options = validationOptions();
    options.intraTopologyFactorOverride =
        net::topology::bidirectionalRingAllReduce(intra_ring_size);
    return options;
}

core::ModelOptions
caseStudyOptions()
{
    core::ModelOptions options = nvswitchOptions(8);
    options.bubbleOverlapRatio = 0.1; // interleaved pipeline schedule
    options.gradientBits = Bits{32.0};      // fp32 gradient all-reduce
    return options;
}

} // namespace calibrations
} // namespace validate
} // namespace amped

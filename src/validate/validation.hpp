/**
 * @file
 * Validation-report helpers: model-vs-reference rows, error
 * computation, and the "max observed error" summary the paper
 * reports (<= 12 %).
 */

#ifndef AMPED_VALIDATE_VALIDATION_HPP
#define AMPED_VALIDATE_VALIDATION_HPP

#include <string>
#include <vector>

namespace amped {
namespace validate {

/** One predicted-vs-reference comparison. */
struct ValidationRow
{
    std::string label;      ///< What is being compared.
    double predicted = 0.0; ///< Our model's value.
    double reference = 0.0; ///< Published / simulated value.

    /** Signed error (predicted - reference) / reference * 100. */
    double errorPercent() const;
};

/** Builds a row (convenience). */
ValidationRow makeRow(std::string label, double predicted,
                      double reference);

/** Largest |error| (%) over all rows; 0 for an empty set. */
double maxAbsErrorPercent(const std::vector<ValidationRow> &rows);

/**
 * Renders rows as an aligned table with a max-error footer line,
 * mirroring the paper's "maximal error of 12%" summaries.
 *
 * @param value_header Column title for the compared quantity
 *        ("TFLOP/s/GPU", "normalized time", ...).
 */
std::string validationTable(const std::vector<ValidationRow> &rows,
                            const std::string &value_header);

} // namespace validate
} // namespace amped

#endif // AMPED_VALIDATE_VALIDATION_HPP

/**
 * @file
 * Per-experiment calibrations.
 *
 * The paper calibrates eff(ub) = a ub / (b + ub) "by fitting the
 * experimental data based on the application and the underlying
 * hardware" (Sec. IV-A) — a and b are explicitly functions of the
 * application AND the system.  Each experiment therefore carries its
 * own fitted curve; this header centralizes them so every bench and
 * test uses one audited set.  EXPERIMENTS.md records the calibration
 * used per table/figure.
 */

#ifndef AMPED_VALIDATE_CALIBRATIONS_HPP
#define AMPED_VALIDATE_CALIBRATIONS_HPP

#include "core/options.hpp"
#include "hw/efficiency.hpp"

namespace amped {
namespace validate {
namespace calibrations {

/**
 * Table II (Megatron on A100 clusters): microbatch size 1-2 per GPU
 * at scale; eff(1) ~ 0.53 reproduces the published ~47 % MFU.
 */
hw::MicrobatchEfficiency megatronTable2();

/**
 * Fig. 2c (GPT-3 175B, 96 GPUs, pipeline only): the saturating
 * batch-size sweep needs a curve that is still climbing at ub = 12
 * and nearly flat at ub = 60.
 */
hw::MicrobatchEfficiency fig2cSweep();

/** Table III (GPipe 24-layer transformer on P100 / PCIe). */
hw::MicrobatchEfficiency gpipeP100();

/** Fig. 2a/2b (minGPT on the HGX-2 validation node). */
hw::MicrobatchEfficiency minGptHgx2();

/**
 * Case Studies I and II (Megatron 145B on 1024 A100s): the paper
 * states a 25 % efficiency floor, ~31 % at microbatch 16 and up to
 * ~80 % when TP keeps the microbatch large.
 */
hw::MicrobatchEfficiency caseStudy1();

/** Case Study III (GLaM on 3072 H100s, 8-bit). */
hw::MicrobatchEfficiency caseStudy3();

/** Default evaluator options used by the validation benches (R=1). */
core::ModelOptions validationOptions();

/**
 * validationOptions() plus the NVSwitch intra-node topology
 * override: NVSwitch fabrics sustain both ring directions at full
 * rate, halving the effective all-reduce factor to (N-1)/N for the
 * @p intra_ring_size accelerators inside a node.  Used by every
 * experiment on NVSwitch systems (HGX-2, Selene-like A100/H100
 * nodes); PCIe systems (GPipe, Table III) keep the unidirectional
 * default.
 */
core::ModelOptions nvswitchOptions(std::int64_t intra_ring_size = 8);

/**
 * Options for the Case Study I/II explorations: nvswitchOptions plus
 * a bubble-overlap ratio R = 0.1.
 *
 * The case studies pair the microbatch rule ub = B / (N_DP N_PP)
 * (so N_ub = N_PP) with moderate bubble costs (Fig. 3 shows a
 * negligible bubble at PP_inter = 2; Sec. VI-C reports PP only
 * slightly slower than DP at PP_inter = 128).  Under naive
 * pipelining (R = 1) N_ub = N_PP would make the bubble as large as
 * the useful work itself, contradicting those numbers, so the
 * deployed schedule must overlap bubbles aggressively — exactly what
 * the paper's R knob models.  R = 0.1 reproduces the paper's
 * 18-vs-21-day DP/PP gap (EXPERIMENTS.md).
 */
core::ModelOptions caseStudyOptions();

} // namespace calibrations
} // namespace validate
} // namespace amped

#endif // AMPED_VALIDATE_CALIBRATIONS_HPP

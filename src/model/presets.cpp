#include "presets.hpp"

namespace amped {
namespace model {
namespace presets {

TransformerConfig
tinyTest()
{
    return makeGptConfig("tiny-test", 4, 64, 4, 32, 1000);
}

TransformerConfig
minGpt85M()
{
    return makeGptConfig("minGPT-85M", 12, 768, 12, 1024, 50257);
}

TransformerConfig
minGptPipeline()
{
    return makeGptConfig("minGPT-PP", 16, 1024, 8, 1024, 50257);
}

TransformerConfig
gpt3_175B()
{
    return makeGptConfig("GPT-3 175B", 96, 12288, 96, 2048, 51200);
}

TransformerConfig
megatron145B()
{
    return makeGptConfig("Megatron 145B", 80, 12288, 96, 2048, 51200);
}

TransformerConfig
megatron310B()
{
    return makeGptConfig("Megatron 310B", 96, 16384, 128, 2048, 51200);
}

TransformerConfig
megatron530B()
{
    return makeGptConfig("Megatron 530B", 105, 20480, 128, 2048, 51200);
}

TransformerConfig
megatron1T()
{
    return makeGptConfig("Megatron 1T", 128, 25600, 160, 2048, 51200);
}

TransformerConfig
gpipeTransformer24()
{
    // 24-layer transformer from the GPipe paper's NMT experiments;
    // hidden 1024, 16 heads, sequence length 128 (token-level NMT
    // batches), vocabulary 32k.
    return makeGptConfig("GPipe-T24", 24, 1024, 16, 128, 32000);
}

TransformerConfig
glamMoE()
{
    // GLaM (64B/64E scale point): 64 layers, hidden 8192, FFN 32768,
    // 64 experts on every other layer with top-2 gating.
    TransformerConfig cfg =
        makeGptConfig("GLaM-MoE", 64, 8192, 128, 1024, 256000);
    cfg.moe.numExperts = 64;
    cfg.moe.expertsPerToken = 2;
    cfg.moe.moeLayerInterval = 2;
    cfg.validate();
    return cfg;
}

} // namespace presets
} // namespace model
} // namespace amped

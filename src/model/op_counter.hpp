/**
 * @file
 * Operation counting for transformer training.
 *
 * The paper's compute-time equations (Eq. 2) need, per layer l and
 * sublayer i, the number of MAC operations N_MAC(l, i) and nonlinear
 * operations N_nonlin(l, i); the communication equations need the
 * activation counts N_act_TP = 2 b s h, N_act_PP = b s h, and the
 * gradient count N_g (weights per layer).  This module derives all of
 * them deterministically from a TransformerConfig, which is exactly
 * the "inherent determinism" the paper exploits (Sec. III).
 *
 * All counts are returned as double: models at the 1 T-parameter
 * scale overflow std::int64_t op counts per batch.
 */

#ifndef AMPED_MODEL_OP_COUNTER_HPP
#define AMPED_MODEL_OP_COUNTER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "model/transformer_config.hpp"

namespace amped {
namespace model {

/** Sublayer kinds within a transformer layer. */
enum class Sublayer
{
    attention,  ///< Self-attention (QKV, scores, context, out-proj).
    feedForward, ///< Dense MLP or routed expert FFN.
    layerNorm,  ///< The two per-layer LayerNorms plus residual adds.
    moeGating   ///< Router matmul + top-k softmax (MoE layers only).
};

/** Returns a short display name ("attention", ...). */
std::string sublayerName(Sublayer kind);

/** Operation counts for a single sublayer, for one forward pass. */
struct SublayerOps
{
    Sublayer kind = Sublayer::attention;
    double macs = 0.0;      ///< Multiply-accumulate operations.
    double nonlinear = 0.0; ///< Element-wise / reduction operations.
};

/**
 * Cost-model constants for nonlinear operations.
 *
 * These capture how many scalar operations each element-wise
 * primitive costs on the nonlinear functional units; the defaults
 * follow common practice (tanh-approximated GeLU ~ 8 ops, softmax ~ 5
 * ops per score including max-subtraction, exp, sum, divide).
 */
struct OpCountOptions
{
    double softmaxOpsPerScore = 5.0;
    double geluOpsPerElement = 8.0;
    double layerNormOpsPerElement = 5.0;
    double residualOpsPerElement = 1.0;

    /**
     * When true, modelFlopsPerBatch uses the activation-recompute
     * convention (4x forward FLOPs: forward + recompute + 2x
     * backward), matching how Megatron-LM reports achieved
     * TFLOP/s/GPU; otherwise 3x forward.
     */
    bool activationRecompute = true;

    /** Include embedding + logit FLOPs in the model total. */
    bool includeEmbeddingFlops = true;
};

/**
 * Derives every operation / element count AMPeD needs from a
 * transformer configuration.
 *
 * Batch sizes are passed per call (they are workload knobs, swept by
 * the case studies), so a single OpCounter can serve a whole design
 * space exploration.
 */
class OpCounter
{
  public:
    /**
     * @param config Validated transformer architecture.
     * @param options Nonlinear-op cost constants.
     */
    explicit OpCounter(TransformerConfig config,
                       OpCountOptions options = {});

    /** The architecture this counter describes. */
    const TransformerConfig &config() const { return config_; }

    /** The cost constants in use. */
    const OpCountOptions &options() const { return options_; }

    // -----------------------------------------------------------------
    // Per-layer forward-pass counts (Eq. 2 inputs).
    // -----------------------------------------------------------------

    /**
     * Per-sublayer forward-pass op counts of layer @p layer for a
     * global batch of @p batch sequences.
     */
    std::vector<SublayerOps> layerOps(std::int64_t layer,
                                      double batch) const;

    /** Total forward MACs of one layer for a batch. */
    double layerMacsForward(std::int64_t layer, double batch) const;

    /** Total forward nonlinear ops of one layer for a batch. */
    double layerNonlinForward(std::int64_t layer, double batch) const;

    /** Forward MACs summed over all layers (excludes embeddings). */
    double modelMacsForward(double batch) const;

    /** Embedding-lookup + final-logit MACs for a batch. */
    double embeddingMacs(double batch) const;

    // -----------------------------------------------------------------
    // Element counts for the communication model.
    // -----------------------------------------------------------------

    /** N_act_TP(l) = 2 b s h (Eq. 6). */
    double activationsTensorParallel(double batch) const;

    /** N_act_PP(l) = b s h (Eq. 7). */
    double activationsPipelineParallel(double batch) const;

    /**
     * N_act_MoE(l): b s h on MoE layers, 0 elsewhere (Sec. IV-D).
     */
    double activationsMoe(std::int64_t layer, double batch) const;

    /**
     * Weights (and hence gradients N_g and weight-update MACs, Eq. 12)
     * of layer @p layer.
     */
    double weightsPerLayer(std::int64_t layer) const;

    /** Weights summed over all layers (excludes embeddings). */
    double totalLayerWeights() const;

    /**
     * Gradient elements of layer @p layer that a data-parallel rank
     * contributes to the all-reduce (N_g of Eq. 11, before TP/PP
     * sharding).  For dense layers this equals weightsPerLayer; on
     * MoE layers the experts are sharded across the cluster (expert
     * parallelism, Sec. II-B4), so each rank only reduces its
     * 1/numExperts share of the expert weights plus the replicated
     * dense part (attention, LayerNorms, router).
     */
    double gradientsPerLayer(std::int64_t layer) const;

    // -----------------------------------------------------------------
    // Whole-model FLOP accounting (TFLOP/s/GPU metric).
    // -----------------------------------------------------------------

    /**
     * Model FLOPs for one training batch, using the configured
     * forward/backward convention.  One MAC counts as 2 FLOPs.
     */
    double modelFlopsPerBatch(double batch) const;

  private:
    /** MACs of the attention sublayer: 4 b s h^2 + 2 b s^2 h. */
    double attentionMacs(double batch) const;

    /** MACs of the FFN sublayer, respecting MoE routing. */
    double feedForwardMacs(std::int64_t layer, double batch) const;

    TransformerConfig config_;
    OpCountOptions options_;
};

} // namespace model
} // namespace amped

#endif // AMPED_MODEL_OP_COUNTER_HPP

/**
 * @file
 * Transformer architecture description.
 *
 * AMPeD exposes "all the transformer model parameters" as tunable
 * knobs (paper Sec. I); this struct is that knob set.  It covers
 * dense decoder-only / encoder-only stacks and Mixture-of-Experts
 * (MoE) variants where every @c moeLayerInterval -th layer replaces
 * its feed-forward sublayer with a bank of routed experts.
 */

#ifndef AMPED_MODEL_TRANSFORMER_CONFIG_HPP
#define AMPED_MODEL_TRANSFORMER_CONFIG_HPP

#include <cstdint>
#include <string>

namespace amped {
namespace model {

/**
 * Mixture-of-Experts configuration (paper Sec. II-B4).
 *
 * A zero @c numExperts means a dense model; MoE communication and
 * compute terms then vanish, matching the paper's statement that the
 * MoE feature can be "turned off".
 */
struct MoEConfig
{
    /** Number of experts per MoE layer; 0 disables MoE entirely. */
    std::int64_t numExperts = 0;

    /** Experts activated per token (top-k gating; GLaM uses 2). */
    std::int64_t expertsPerToken = 2;

    /**
     * Every @c moeLayerInterval -th layer is an MoE layer (GLaM uses
     * 2: every other layer).  Must be >= 1 when numExperts > 0.
     */
    std::int64_t moeLayerInterval = 2;

    /** True when this configuration enables any experts. */
    bool enabled() const { return numExperts > 0; }
};

/**
 * Complete architectural description of a transformer model.
 *
 * Symbol correspondence with the paper: L = numLayers, h =
 * hiddenSize, s = seqLength, b = (global) batch size which is a
 * *workload* parameter and therefore not stored here.
 */
struct TransformerConfig
{
    /** Human-readable name used in reports ("GPT 145B", ...). */
    std::string name = "unnamed";

    /** Number of transformer layers, L. */
    std::int64_t numLayers = 0;

    /** Hidden (embedding) dimensionality, h. */
    std::int64_t hiddenSize = 0;

    /** Number of attention heads, a; must divide hiddenSize. */
    std::int64_t numHeads = 0;

    /** Sequence length, s (tokens per sample). */
    std::int64_t seqLength = 0;

    /** Vocabulary size, V (for embedding / logit layers). */
    std::int64_t vocabSize = 0;

    /** Feed-forward inner dimensionality (typically 4 h). */
    std::int64_t ffnHiddenSize = 0;

    /** Mixture-of-Experts settings; default-disabled. */
    MoEConfig moe;

    /**
     * Validates all invariants (positive sizes, head divisibility,
     * MoE interval bounds).
     *
     * @throws UserError describing the first violated constraint.
     */
    void validate() const;

    /** Per-head dimensionality h / a. */
    std::int64_t headDim() const;

    /** True when layer @p layer (0-based) hosts experts. */
    bool isMoeLayer(std::int64_t layer) const;

    /** Number of MoE layers in the whole stack. */
    std::int64_t numMoeLayers() const;

    /**
     * Total trainable parameters.
     *
     * Dense layer: 4 h^2 + 4 h (attention) + 2 h ffn + ffn + h (MLP)
     * + 4 h (two LayerNorms).  MoE layers multiply the FFN weights by
     * the expert count and add the h x E router.  Embeddings add
     * (V + s) h when requested.
     *
     * @param include_embeddings Count token + position embeddings.
     */
    double parameterCount(bool include_embeddings = true) const;
};

/**
 * Convenience factory for a dense GPT-style configuration with
 * ffnHiddenSize = 4 h.
 */
TransformerConfig makeGptConfig(std::string name, std::int64_t layers,
                                std::int64_t hidden, std::int64_t heads,
                                std::int64_t seq_length,
                                std::int64_t vocab);

} // namespace model
} // namespace amped

#endif // AMPED_MODEL_TRANSFORMER_CONFIG_HPP

#include "op_counter.hpp"

#include "common/error.hpp"

namespace amped {
namespace model {

std::string
sublayerName(Sublayer kind)
{
    switch (kind) {
      case Sublayer::attention:
        return "attention";
      case Sublayer::feedForward:
        return "feed-forward";
      case Sublayer::layerNorm:
        return "layernorm";
      case Sublayer::moeGating:
        return "moe-gating";
    }
    AMPED_ASSERT(false, "unknown Sublayer enumerator");
    return {};
}

OpCounter::OpCounter(TransformerConfig config, OpCountOptions options)
    : config_(std::move(config)), options_(options)
{
    config_.validate();
}

double
OpCounter::attentionMacs(double batch) const
{
    const double s = static_cast<double>(config_.seqLength);
    const double h = static_cast<double>(config_.hiddenSize);
    // QKV projections (3 b s h^2) + output projection (b s h^2)
    // + score matmul (b s^2 h) + context matmul (b s^2 h).
    return batch * s * (4.0 * h * h + 2.0 * s * h);
}

double
OpCounter::feedForwardMacs(std::int64_t layer, double batch) const
{
    const double s = static_cast<double>(config_.seqLength);
    const double h = static_cast<double>(config_.hiddenSize);
    const double ffn = static_cast<double>(config_.ffnHiddenSize);
    // Two projections: h -> ffn and ffn -> h.
    double macs = batch * s * 2.0 * h * ffn;
    if (config_.isMoeLayer(layer)) {
        // Each token is processed by top-k experts.
        macs *= static_cast<double>(config_.moe.expertsPerToken);
    }
    return macs;
}

std::vector<SublayerOps>
OpCounter::layerOps(std::int64_t layer, double batch) const
{
    require(layer >= 0 && layer < config_.numLayers, config_.name,
            ": layer index ", layer, " out of range [0, ",
            config_.numLayers, ")");
    require(batch > 0.0, "batch size must be positive, got ", batch);

    const double s = static_cast<double>(config_.seqLength);
    const double h = static_cast<double>(config_.hiddenSize);
    const double a = static_cast<double>(config_.numHeads);
    const double ffn = static_cast<double>(config_.ffnHiddenSize);

    std::vector<SublayerOps> ops;

    // Attention: matmuls plus the softmax over the b a s^2 scores.
    SublayerOps attn;
    attn.kind = Sublayer::attention;
    attn.macs = attentionMacs(batch);
    attn.nonlinear = options_.softmaxOpsPerScore * batch * a * s * s;
    ops.push_back(attn);

    // Feed-forward: matmuls plus GeLU on the inner activations.
    SublayerOps ff;
    ff.kind = Sublayer::feedForward;
    ff.macs = feedForwardMacs(layer, batch);
    double gelu_elements = batch * s * ffn;
    if (config_.isMoeLayer(layer))
        gelu_elements *= static_cast<double>(config_.moe.expertsPerToken);
    ff.nonlinear = options_.geluOpsPerElement * gelu_elements;
    ops.push_back(ff);

    // Two LayerNorms plus two residual additions per layer.
    SublayerOps ln;
    ln.kind = Sublayer::layerNorm;
    ln.macs = 0.0;
    ln.nonlinear = 2.0 * options_.layerNormOpsPerElement * batch * s * h +
                   2.0 * options_.residualOpsPerElement * batch * s * h;
    ops.push_back(ln);

    // MoE gating: router matmul b s h E and a softmax over E scores.
    if (config_.isMoeLayer(layer)) {
        const double experts =
            static_cast<double>(config_.moe.numExperts);
        SublayerOps gate;
        gate.kind = Sublayer::moeGating;
        gate.macs = batch * s * h * experts;
        gate.nonlinear =
            options_.softmaxOpsPerScore * batch * s * experts;
        ops.push_back(gate);
    }
    return ops;
}

double
OpCounter::layerMacsForward(std::int64_t layer, double batch) const
{
    double total = 0.0;
    for (const auto &op : layerOps(layer, batch))
        total += op.macs;
    return total;
}

double
OpCounter::layerNonlinForward(std::int64_t layer, double batch) const
{
    double total = 0.0;
    for (const auto &op : layerOps(layer, batch))
        total += op.nonlinear;
    return total;
}

double
OpCounter::modelMacsForward(double batch) const
{
    double total = 0.0;
    for (std::int64_t l = 0; l < config_.numLayers; ++l)
        total += layerMacsForward(l, batch);
    return total;
}

double
OpCounter::embeddingMacs(double batch) const
{
    // Token-embedding lookup is a gather (no MACs); the final logit
    // projection is a b s h V matmul.
    const double s = static_cast<double>(config_.seqLength);
    const double h = static_cast<double>(config_.hiddenSize);
    const double v = static_cast<double>(config_.vocabSize);
    return batch * s * h * v;
}

double
OpCounter::activationsTensorParallel(double batch) const
{
    // Two all-reduce steps per layer, each of b s h elements (Eq. 6).
    const double s = static_cast<double>(config_.seqLength);
    const double h = static_cast<double>(config_.hiddenSize);
    return 2.0 * batch * s * h;
}

double
OpCounter::activationsPipelineParallel(double batch) const
{
    const double s = static_cast<double>(config_.seqLength);
    const double h = static_cast<double>(config_.hiddenSize);
    return batch * s * h;
}

double
OpCounter::activationsMoe(std::int64_t layer, double batch) const
{
    require(layer >= 0 && layer < config_.numLayers, config_.name,
            ": layer index ", layer, " out of range [0, ",
            config_.numLayers, ")");
    if (!config_.isMoeLayer(layer))
        return 0.0;
    // Top-k routing dispatches every token to k experts, multiplying
    // the all-to-all payload accordingly.
    return activationsPipelineParallel(batch) *
           static_cast<double>(config_.moe.expertsPerToken);
}

double
OpCounter::weightsPerLayer(std::int64_t layer) const
{
    require(layer >= 0 && layer < config_.numLayers, config_.name,
            ": layer index ", layer, " out of range [0, ",
            config_.numLayers, ")");
    const double h = static_cast<double>(config_.hiddenSize);
    const double ffn = static_cast<double>(config_.ffnHiddenSize);

    const double attention = 4.0 * h * h + 4.0 * h;
    const double layernorm = 4.0 * h;
    const double ffn_dense = 2.0 * h * ffn + ffn + h;

    double weights = attention + layernorm;
    if (config_.isMoeLayer(layer)) {
        const double experts = static_cast<double>(config_.moe.numExperts);
        weights += experts * ffn_dense + h * experts;
    } else {
        weights += ffn_dense;
    }
    return weights;
}

double
OpCounter::totalLayerWeights() const
{
    double total = 0.0;
    for (std::int64_t l = 0; l < config_.numLayers; ++l)
        total += weightsPerLayer(l);
    return total;
}

double
OpCounter::gradientsPerLayer(std::int64_t layer) const
{
    const double weights = weightsPerLayer(layer);
    if (!config_.isMoeLayer(layer))
        return weights;
    const double h = static_cast<double>(config_.hiddenSize);
    const double ffn = static_cast<double>(config_.ffnHiddenSize);
    const double experts = static_cast<double>(config_.moe.numExperts);
    const double expert_weights =
        experts * (2.0 * h * ffn + ffn + h);
    // Dense share (attention, LayerNorms, router) is replicated and
    // fully reduced; expert weights are sharded 1/E per rank.
    return (weights - expert_weights) + expert_weights / experts;
}

double
OpCounter::modelFlopsPerBatch(double batch) const
{
    require(batch > 0.0, "batch size must be positive, got ", batch);
    double fwd_macs = modelMacsForward(batch);
    if (options_.includeEmbeddingFlops)
        fwd_macs += embeddingMacs(batch);
    // Backward is 2x forward; activation recompute adds another
    // forward.  One MAC = 2 FLOPs.
    const double multiplier = options_.activationRecompute ? 4.0 : 3.0;
    return 2.0 * fwd_macs * multiplier;
}

} // namespace model
} // namespace amped

/**
 * @file
 * Model presets for every workload the paper evaluates.
 *
 * Shapes for the Megatron GPT family follow Table 1 of Narayanan et
 * al., SC'21 [8] (the source the paper validates against); minGPT
 * variants follow the paper's Sec. V; GLaM follows Du et al.,
 * ICML'22 [39].
 */

#ifndef AMPED_MODEL_PRESETS_HPP
#define AMPED_MODEL_PRESETS_HPP

#include "model/transformer_config.hpp"

namespace amped {
namespace model {
namespace presets {

/** Tiny model for fast unit tests (not from the paper). */
TransformerConfig tinyTest();

/**
 * minGPT, 85 M parameters: 12 layers, 12 heads, hidden 768
 * (paper Sec. V-A, DP validation on an HGX-2 node).
 */
TransformerConfig minGpt85M();

/**
 * minGPT PP variant: 16 layers, 8 heads, hidden 1024 (paper
 * Sec. V-B, PP validation).  The paper quotes 1.24 B parameters for
 * this configuration; the standard parameter-count formula gives
 * ~0.25 B — see EXPERIMENTS.md for the discrepancy note.
 */
TransformerConfig minGptPipeline();

/** GPT-3, 175 B parameters: 96 layers, 96 heads, hidden 12288. */
TransformerConfig gpt3_175B();

/** Megatron GPT 145 B: 80 layers, 96 heads, hidden 12288. */
TransformerConfig megatron145B();

/** Megatron GPT 310 B: 96 layers, 128 heads, hidden 16384. */
TransformerConfig megatron310B();

/** Megatron GPT 530 B: 105 layers, 128 heads, hidden 20480. */
TransformerConfig megatron530B();

/** Megatron GPT 1 T: 128 layers, 160 heads, hidden 25600. */
TransformerConfig megatron1T();

/**
 * GPipe validation model (paper Table III): 24-layer transformer
 * trained on P100 GPUs over PCIe, following Huang et al. [26].
 */
TransformerConfig gpipeTransformer24();

/**
 * GLaM MoE model (paper Case Study III): 64 layers, hidden 8192,
 * 64 experts on every other layer, top-2 gating.
 */
TransformerConfig glamMoE();

} // namespace presets
} // namespace model
} // namespace amped

#endif // AMPED_MODEL_PRESETS_HPP

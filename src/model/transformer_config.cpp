#include "transformer_config.hpp"

#include "common/error.hpp"

namespace amped {
namespace model {

void
TransformerConfig::validate() const
{
    require(numLayers > 0, name, ": numLayers must be positive, got ",
            numLayers);
    require(hiddenSize > 0, name, ": hiddenSize must be positive, got ",
            hiddenSize);
    require(numHeads > 0, name, ": numHeads must be positive, got ",
            numHeads);
    require(hiddenSize % numHeads == 0, name, ": hiddenSize ",
            hiddenSize, " not divisible by numHeads ", numHeads);
    require(seqLength > 0, name, ": seqLength must be positive, got ",
            seqLength);
    require(vocabSize > 0, name, ": vocabSize must be positive, got ",
            vocabSize);
    require(ffnHiddenSize > 0, name,
            ": ffnHiddenSize must be positive, got ", ffnHiddenSize);
    if (moe.enabled()) {
        require(moe.moeLayerInterval >= 1, name,
                ": moeLayerInterval must be >= 1, got ",
                moe.moeLayerInterval);
        require(moe.expertsPerToken >= 1, name,
                ": expertsPerToken must be >= 1, got ",
                moe.expertsPerToken);
        require(moe.expertsPerToken <= moe.numExperts, name,
                ": expertsPerToken ", moe.expertsPerToken,
                " exceeds numExperts ", moe.numExperts);
    }
}

std::int64_t
TransformerConfig::headDim() const
{
    return hiddenSize / numHeads;
}

bool
TransformerConfig::isMoeLayer(std::int64_t layer) const
{
    if (!moe.enabled())
        return false;
    // Convention: layers 1, 3, 5, ... are MoE for interval 2 (GLaM
    // style "every other layer"), i.e. layer % interval ==
    // interval - 1.
    return layer % moe.moeLayerInterval == moe.moeLayerInterval - 1;
}

std::int64_t
TransformerConfig::numMoeLayers() const
{
    if (!moe.enabled())
        return 0;
    std::int64_t count = 0;
    for (std::int64_t l = 0; l < numLayers; ++l)
        if (isMoeLayer(l))
            ++count;
    return count;
}

double
TransformerConfig::parameterCount(bool include_embeddings) const
{
    const double h = static_cast<double>(hiddenSize);
    const double ffn = static_cast<double>(ffnHiddenSize);

    // Attention: Q, K, V and output projections plus biases.
    const double attention = 4.0 * h * h + 4.0 * h;
    // Two LayerNorms per layer (scale + shift).
    const double layernorm = 4.0 * h;
    // Dense feed-forward: two projections plus biases.
    const double ffn_dense = 2.0 * h * ffn + ffn + h;

    double total = 0.0;
    for (std::int64_t l = 0; l < numLayers; ++l) {
        total += attention + layernorm;
        if (isMoeLayer(l)) {
            const double experts = static_cast<double>(moe.numExperts);
            // Every expert holds a full FFN; router is h x E.
            total += experts * ffn_dense + h * experts;
        } else {
            total += ffn_dense;
        }
    }
    if (include_embeddings) {
        total += static_cast<double>(vocabSize) * h; // token embedding
        total += static_cast<double>(seqLength) * h; // position embedding
    }
    return total;
}

TransformerConfig
makeGptConfig(std::string name, std::int64_t layers, std::int64_t hidden,
              std::int64_t heads, std::int64_t seq_length,
              std::int64_t vocab)
{
    TransformerConfig cfg;
    cfg.name = std::move(name);
    cfg.numLayers = layers;
    cfg.hiddenSize = hidden;
    cfg.numHeads = heads;
    cfg.seqLength = seq_length;
    cfg.vocabSize = vocab;
    cfg.ffnHiddenSize = 4 * hidden;
    cfg.validate();
    return cfg;
}

} // namespace model
} // namespace amped

#include "serve/protocol.hpp"

#include <cmath>

#include "common/error.hpp"

namespace amped {
namespace serve {

const char *
toString(Method method)
{
    switch (method) {
      case Method::ping:
        return "ping";
      case Method::eval:
        return "eval";
      case Method::sweep:
        return "sweep";
      case Method::optimize:
        return "optimize";
      case Method::report:
        return "report";
    }
    return "unknown";
}

namespace {

Method
methodFromName(const std::string &name)
{
    if (name == "ping")
        return Method::ping;
    if (name == "eval")
        return Method::eval;
    if (name == "sweep")
        return Method::sweep;
    if (name == "optimize")
        return Method::optimize;
    if (name == "report")
        return Method::report;
    throw UserError("unknown method '" + name +
                    "' (supported: ping, eval, sweep, optimize, "
                    "report)");
}

} // namespace

obs::Json
parseBody(const std::string &line, std::size_t max_bytes)
{
    require(line.size() <= max_bytes, "request body is ",
            line.size(), " bytes, exceeding the ", max_bytes,
            "-byte limit");
    const obs::Json body = obs::Json::parse(line);
    if (body.isObject())
        return body;
    require(body.isArray(),
            "request must be a JSON object (or an array of objects "
            "for a pipelined burst)");
    require(!body.items().empty(), "burst array must not be empty");
    for (std::size_t i = 0; i < body.items().size(); ++i)
        require(body.at(i).isObject(), "burst element ", i,
                " is not a JSON object");
    return body;
}

Request
requestFromJson(const obs::Json &doc)
{
    require(doc.isObject(), "request must be a JSON object");
    for (const auto &[key, value] : doc.members()) {
        require(key == "id" || key == "method" ||
                    key == "deadline_ms" || key == "params",
                "unknown request key '", key,
                "' (supported: id, method, deadline_ms, params)");
    }

    Request request;
    require(doc.contains("id"), "request is missing 'id'");
    require(doc.at("id").kind() == obs::Json::Kind::integer,
            "'id' must be an integer");
    request.id = doc.at("id").asInt();
    require(request.id >= 0, "'id' must be >= 0, got ", request.id);

    require(doc.contains("method"), "request is missing 'method'");
    require(doc.at("method").kind() == obs::Json::Kind::string,
            "'method' must be a string");
    request.method = methodFromName(doc.at("method").asString());

    if (doc.contains("deadline_ms")) {
        const auto &deadline = doc.at("deadline_ms");
        require(deadline.kind() == obs::Json::Kind::number ||
                    deadline.kind() == obs::Json::Kind::integer,
                "'deadline_ms' must be a number");
        const double ms = deadline.asDouble();
        require(std::isfinite(ms) && ms >= 0.0,
                "'deadline_ms' must be >= 0, got ",
                deadline.dump());
        request.deadlineMs = ms;
    }

    if (doc.contains("params")) {
        require(doc.at("params").isObject(),
                "'params' must be a JSON object");
        request.params = doc.at("params");
    }
    return request;
}

std::optional<std::int64_t>
tryExtractId(const obs::Json &doc)
{
    if (!doc.isObject() || !doc.contains("id"))
        return std::nullopt;
    const auto &id = doc.at("id");
    if (id.kind() != obs::Json::Kind::integer || id.asInt() < 0)
        return std::nullopt;
    return id.asInt();
}

obs::Json
okResponse(std::int64_t id, RunStatus run_status, bool cached,
           obs::Json result)
{
    obs::Json response = obs::Json::object();
    response.set("schema_version", kServeSchemaVersion);
    response.set("id", id);
    response.set("status", "ok");
    response.set("run_status", toString(run_status));
    response.set("cached", cached);
    response.set("result", std::move(result));
    return response;
}

obs::Json
errorResponse(std::optional<std::int64_t> id,
              const std::string &status, const std::string &message)
{
    obs::Json response = obs::Json::object();
    response.set("schema_version", kServeSchemaVersion);
    response.set("id", id ? obs::Json(*id) : obs::Json(nullptr));
    response.set("status", status);
    obs::Json error = obs::Json::object();
    error.set("message", message);
    response.set("error", std::move(error));
    return response;
}

} // namespace serve
} // namespace amped

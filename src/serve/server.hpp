/**
 * @file
 * The `amped serve` evaluation service: a long-lived front end that
 * answers serve::protocol requests over stdin/stdout pipes or a
 * loopback TCP socket.
 *
 * Architecture (DESIGN.md Sec. 9): admission -> cancel -> cache ->
 * response.
 *
 *  - Admission.  Every request is submitted to a bounded
 *    common::WorkQueue before it runs; queue capacity and the
 *    overload policy apply across a pipelined burst, a request's
 *    deadline_ms expires it while queued without running, and the
 *    `common.queue.*` counters account every disposition.  The loop
 *    is caller-driven and synchronous — the queue owns no threads;
 *    evaluation work parallelizes on the shared ThreadPool
 *    underneath.
 *  - Cancel.  Each admitted request runs under a child of the
 *    server's root CancelToken carrying the request deadline, so a
 *    SIGTERM (CLI) or an expiring budget stops a sweep at its next
 *    block checkpoint and the *partial* result is still flushed as a
 *    valid response with run_status = cancelled / deadline-exceeded.
 *  - Cache.  Completed sweep and optimize results are memoized in a
 *    shared byte-budgeted SweepCacheLru keyed by a canonical
 *    (method, params) string; hits replay the serialized result
 *    without re-evaluating and are marked "cached": true.
 *  - Response.  Schema-versioned JSON, one line per request (see
 *    serve/protocol.hpp).  A request that fails validation or
 *    evaluation produces a structured error response; the server
 *    itself never dies on bad input.
 *
 * Determinism: responses contain no wall-clock-derived values (the
 * latency histogram renders deterministically as a count), so a
 * fixed request sequence produces a byte-identical response
 * transcript at any worker thread count — the property
 * bench/serve_loadgen pins as a golden.
 *
 * Thread safety: one Server instance is driven by one service loop
 * thread (the WorkQueue it owns is not thread-safe); the SweepCache
 * and metrics it touches are thread-safe and may be shared.  The
 * single-loop contract is machine-checked with a phantom SerialGate
 * capability (common/thread_annotations.hpp): the queue and root
 * token are AMPED_GUARDED_BY(serial_), every entry point enters the
 * gate, and the dispatch path requires it — so new code reaching the
 * dispatch state outside a serialized entry point fails
 * `-Werror=thread-safety`.  boundPort_ stays an atomic because tests
 * legitimately poll it from another thread while serveTcp runs.
 */

#ifndef AMPED_SERVE_SERVER_HPP
#define AMPED_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/cancel.hpp"
#include "common/keyval.hpp"
#include "common/thread_annotations.hpp"
#include "common/work_queue.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/sweep_cache.hpp"

namespace amped {
namespace serve {

/** Service sizing and policy knobs. */
struct ServerOptions
{
    /** Sweep/optimize worker threads (0 = AMPED_THREADS or all
     *  cores, 1 = serial).  Results are identical at any setting. */
    unsigned threads = 0;

    /** Admission queue capacity (>= 1). */
    std::size_t queueCapacity = 16;

    /** What to do with new work when the queue is full. */
    OverloadPolicy overloadPolicy = OverloadPolicy::rejectNewest;

    /** Total runs of one admitted item (>= 1; retries beyond the
     *  first apply only to TransientError throws). */
    unsigned maxAttempts = 1;

    /** Deadline applied to requests that carry none (milliseconds;
     *  0 = unbounded). */
    double defaultDeadlineMs = 0.0;

    /** Reject request lines longer than this many bytes. */
    std::size_t maxRequestBytes = kDefaultMaxRequestBytes;

    /** SweepCacheLru byte budget (keys + serialized results). */
    std::size_t cacheBudgetBytes = 8u << 20;

    /** Reject sweeps/optimizes whose mapping x batch grid exceeds
     *  this many points (0 = unlimited) — the service-side overload
     *  guard mirroring the CLI's --max-grid-points. */
    std::size_t maxGridPoints = 4000000;

    /** Directory for per-request run-report artifacts (report
     *  requests carrying an "artifact" name); empty disables. */
    std::string reportDir;

    /** Metrics destination (nullptr = the global registry). */
    obs::MetricsRegistry *registry = nullptr;
};

/**
 * Builds ServerOptions from a key = value config document
 * (examples/configs/serve_default.cfg).  Keys:
 *
 *   threads, queue-capacity, overload-policy (reject-newest |
 *   shed-oldest), max-attempts, default-deadline-ms,
 *   max-request-bytes, cache-budget-bytes, max-grid-points,
 *   report-dir
 *
 * @throws UserError naming the offending key on invalid values.
 */
ServerOptions optionsFromConfig(const KeyValueConfig &config);

/** The evaluation service. */
class Server
{
  public:
    explicit Server(ServerOptions options = {});

    /**
     * Installs the root cancellation token (e.g. the CLI's
     * signal-tripped token).  Every request token is a child of it.
     */
    void setCancelToken(CancelToken token);

    /**
     * Handles one request line (a single object or a burst array)
     * and returns the newline-joined response lines — "" for blank
     * input.  Never throws on bad request input; protocol and
     * evaluation failures come back as structured error responses.
     */
    std::string handleLine(const std::string &line);

    /**
     * Serves newline-delimited requests from @p in to @p out until
     * EOF or until the root token stops.  Responses are flushed per
     * line, so cancellation mid-request still delivers the partial
     * response before the loop exits.
     *
     * @return Completed on EOF; Cancelled / DeadlineExceeded when
     *         the root token stopped the loop.
     */
    RunStatus serveStream(std::istream &in, std::ostream &out);

    /**
     * Serves one-client-at-a-time newline-delimited requests on a
     * loopback TCP socket until the root token stops.  @p port 0
     * binds an ephemeral port; boundPort() exposes the choice once
     * listening.
     *
     * @throws UserError when the socket cannot be created or bound.
     */
    RunStatus serveTcp(std::uint16_t port);

    /** The port serveTcp is listening on (0 until it binds). */
    std::uint16_t boundPort() const
    {
        return boundPort_.load(std::memory_order_acquire);
    }

    const ServerOptions &options() const { return options_; }

    /** The shared response cache (tests inspect budget/occupancy). */
    SweepCacheLru &cache() { return cache_; }

  private:
    struct Slot;

    /** Request deadline: explicit deadline_ms, else the default. */
    Deadline deadlineFor(const Request &request) const;

    /** Runs one admitted request; returns the full ok response.
     *  Part of the serialized dispatch path: admitted tasks assert
     *  the gate before calling in (see handleLine). */
    obs::Json runRequest(const Request &request,
                         const CancelToken &token)
        AMPED_REQUIRES(serial_);

    /** Phantom capability: "the one service loop driving me". */
    SerialGate serial_;

    ServerOptions options_;
    obs::MetricsRegistry &registry_;
    WorkQueue queue_ AMPED_GUARDED_BY(serial_);
    SweepCacheLru cache_; ///< Self-locked; shareable across threads.
    CancelToken rootToken_ AMPED_GUARDED_BY(serial_);
    std::atomic<std::uint16_t> boundPort_{0};

    obs::Counter &requestsCounter_;
    obs::Counter &okCounter_;
    obs::Counter &errorCounter_;
    obs::Counter &droppedCounter_;
    obs::Histogram &latencyHistogram_;
};

} // namespace serve
} // namespace amped

#endif // AMPED_SERVE_SERVER_HPP

/**
 * @file
 * Byte-budgeted LRU response cache shared across serve requests.
 *
 * The Explorer's process-wide sweepAll memo cache (explore/
 * explorer.cpp) is bounded by entry *count*; a service with a
 * latency SLO needs a *memory* bound instead, because one cached
 * 145b-scale sweep result dwarfs a thousand tiny ones.  This class
 * is the promoted form: it stores the serialized result JSON of
 * completed sweep / optimize requests keyed by a canonical request
 * string, accounts the exact byte size of every entry (key + value),
 * and evicts least-recently-used entries until the configured budget
 * holds again.
 *
 * Caching serialized responses (not SweepResult objects) keeps the
 * byte accounting exact and makes a hit O(1): the server replays the
 * stored string into the response envelope without re-rendering.
 * Only RunStatus::Completed results may be inserted — a cancelled
 * sweep's prefix is valid for its caller but would silently serve as
 * "the full grid" to the next one (the same rule the Explorer memo
 * cache enforces).
 *
 * Thread safety: all operations take an internal mutex, so one cache
 * instance may be shared by a TCP accept loop and tests hammering it
 * concurrently.
 *
 * Observability (registered lazily in the configured registry):
 *   serve.cache.hits           get() found a fresh entry
 *   serve.cache.misses         get() found nothing
 *   serve.cache.evicted_bytes  bytes discarded to regain the budget
 *   serve.cache.evictions      entries discarded
 *   serve.cache.bytes          gauge: bytes currently resident
 *   serve.cache.entries        gauge: entries currently resident
 */

#ifndef AMPED_SERVE_SWEEP_CACHE_HPP
#define AMPED_SERVE_SWEEP_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.hpp"

namespace amped {

namespace obs {
class MetricsRegistry;
class Counter;
class Gauge;
} // namespace obs

namespace serve {

/**
 * Bounded LRU map from canonical request keys to serialized result
 * JSON, evicting by total resident bytes.
 */
class SweepCacheLru
{
  public:
    /**
     * @param budget_bytes Maximum resident bytes (keys + values).
     *        Entries are evicted oldest-use first until the budget
     *        holds; a single entry larger than the whole budget is
     *        simply not cached.
     * @param registry Metrics destination (nullptr = the global
     *        registry).
     */
    explicit SweepCacheLru(std::size_t budget_bytes,
                           obs::MetricsRegistry *registry = nullptr);

    /**
     * Looks up @p key, refreshing its recency on a hit.
     *
     * @return The cached serialized result, or nullopt on a miss.
     */
    std::optional<std::string> get(const std::string &key);

    /**
     * Inserts (or refreshes) @p key -> @p value and evicts
     * least-recently-used entries until the byte budget holds.
     * Inserting an entry that alone exceeds the budget is a no-op.
     */
    void put(const std::string &key, const std::string &value);

    /** Entries currently resident. */
    std::size_t size() const;

    /** Bytes currently resident (keys + values). */
    std::size_t bytes() const;

    /** The configured byte budget. */
    std::size_t budgetBytes() const { return budgetBytes_; }

    /** Drops every entry (counts as eviction for the metrics). */
    void clear();

  private:
    struct Entry
    {
        std::string key;   ///< Owned copy (collision-free map key).
        std::string value; ///< Serialized result JSON.
        std::uint64_t stamp = 0; ///< Recency (larger = fresher).
    };

    static std::size_t entryBytes(const Entry &entry)
    {
        return entry.key.size() + entry.value.size();
    }

    /** Evicts LRU entries until bytes_ <= budgetBytes_. */
    void evictToBudget() AMPED_REQUIRES(mutex_);

    void publishGauges() AMPED_REQUIRES(mutex_);

    const std::size_t budgetBytes_;
    mutable Mutex mutex_;
    std::unordered_map<std::string, Entry> entries_
        AMPED_GUARDED_BY(mutex_);
    std::uint64_t clock_ AMPED_GUARDED_BY(mutex_) = 0;
    std::size_t bytes_ AMPED_GUARDED_BY(mutex_) = 0;

    obs::Counter *hitsCounter_;
    obs::Counter *missesCounter_;
    obs::Counter *evictedBytesCounter_;
    obs::Counter *evictionsCounter_;
    obs::Gauge *bytesGauge_;
    obs::Gauge *entriesGauge_;
};

} // namespace serve
} // namespace amped

#endif // AMPED_SERVE_SWEEP_CACHE_HPP

#include "serve/sweep_cache.hpp"

#include "obs/metrics.hpp"

namespace amped {
namespace serve {

SweepCacheLru::SweepCacheLru(std::size_t budget_bytes,
                             obs::MetricsRegistry *registry)
    : budgetBytes_(budget_bytes)
{
    obs::MetricsRegistry &r =
        registry != nullptr ? *registry
                            : obs::MetricsRegistry::global();
    hitsCounter_ = &r.counter("serve.cache.hits");
    missesCounter_ = &r.counter("serve.cache.misses");
    evictedBytesCounter_ = &r.counter("serve.cache.evicted_bytes");
    evictionsCounter_ = &r.counter("serve.cache.evictions");
    bytesGauge_ = &r.gauge("serve.cache.bytes");
    entriesGauge_ = &r.gauge("serve.cache.entries");
}

std::optional<std::string>
SweepCacheLru::get(const std::string &key)
{
    MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        missesCounter_->add(1);
        return std::nullopt;
    }
    hitsCounter_->add(1);
    it->second.stamp = ++clock_;
    return it->second.value;
}

void
SweepCacheLru::put(const std::string &key, const std::string &value)
{
    MutexLock lock(mutex_);
    if (key.size() + value.size() > budgetBytes_)
        return;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        bytes_ -= entryBytes(it->second);
        it->second.value = value;
        it->second.stamp = ++clock_;
        bytes_ += entryBytes(it->second);
    } else {
        Entry entry{key, value, ++clock_};
        bytes_ += entryBytes(entry);
        entries_.emplace(key, std::move(entry));
    }
    evictToBudget();
    publishGauges();
}

std::size_t
SweepCacheLru::size() const
{
    MutexLock lock(mutex_);
    return entries_.size();
}

std::size_t
SweepCacheLru::bytes() const
{
    MutexLock lock(mutex_);
    return bytes_;
}

void
SweepCacheLru::clear()
{
    MutexLock lock(mutex_);
    for (const auto &[key, entry] : entries_) {
        evictedBytesCounter_->add(entryBytes(entry));
        evictionsCounter_->add(1);
    }
    entries_.clear();
    bytes_ = 0;
    publishGauges();
}

void
SweepCacheLru::evictToBudget()
{
    // The budget is a handful of entries in practice; a linear LRU
    // scan beats maintaining an intrusive list (same trade-off as
    // the Explorer memo cache).
    while (bytes_ > budgetBytes_ && !entries_.empty()) {
        auto lru = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it)
            if (it->second.stamp < lru->second.stamp)
                lru = it;
        evictedBytesCounter_->add(entryBytes(lru->second));
        evictionsCounter_->add(1);
        bytes_ -= entryBytes(lru->second);
        entries_.erase(lru);
    }
}

void
SweepCacheLru::publishGauges()
{
    bytesGauge_->set(static_cast<double>(bytes_));
    entriesGauge_->set(static_cast<double>(entries_.size()));
}

} // namespace serve
} // namespace amped

/**
 * @file
 * The `amped serve` wire protocol: newline-delimited JSON requests
 * and schema-versioned JSON responses.
 *
 * Request (one JSON object per line):
 *
 *     {"id": 7, "method": "sweep", "deadline_ms": 60000,
 *      "params": { ... method-specific inputs ... }}
 *
 *   id           required non-negative integer, echoed verbatim.
 *   method       required: ping | eval | sweep | optimize | report.
 *   deadline_ms  optional wall-clock budget in milliseconds.  Absent
 *                means the server default; 0 is an *already expired*
 *                deadline (the item finishes as "expired" without
 *                running — Deadline::after's zero-budget semantics,
 *                useful for deterministic admission tests); negative
 *                values are rejected.
 *   params       optional object (default empty); unknown keys are
 *                rejected with the offending key named.
 *
 * A top-level JSON *array* of request objects is a pipelined burst:
 * every element is submitted to the admission queue before any runs,
 * so queue capacity and the overload policy apply across the burst,
 * and one response line per element comes back in element order.
 *
 * Response (one JSON object per line, always schema-versioned):
 *
 *     {"schema_version": 1, "id": 7, "status": "ok",
 *      "run_status": "completed", "cached": false, "result": {...}}
 *     {"schema_version": 1, "id": 7, "status": "error",
 *      "error": {"message": "params.batch must be > 0, got -1"}}
 *
 *   status     ok | error | expired | rejected | shed.  `expired`
 *              means the deadline passed while the request was
 *              queued (it never ran); `rejected` / `shed` are the
 *              admission queue's overload dispositions.
 *   run_status ok only: completed | cancelled | deadline-exceeded
 *              (common::RunStatus).  A non-completed run_status
 *              marks a *partial* result — a sweep stopped at a block
 *              checkpoint returns the deterministic prefix it
 *              evaluated, exactly like the CLI.
 *   cached     ok only: the result was replayed from the shared
 *              SweepCacheLru instead of re-evaluated.
 *   error      error/expired/rejected/shed only: {"message": ...}
 *              with field-named diagnostics (`params.system.nodes
 *              must be >= 1`, ...).
 *
 * Malformed input (bad JSON, duplicate keys, oversized body) yields
 * a status=error response with "id": null — the request id cannot be
 * trusted when the body does not parse.
 */

#ifndef AMPED_SERVE_PROTOCOL_HPP
#define AMPED_SERVE_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/cancel.hpp"
#include "obs/json.hpp"

namespace amped {
namespace serve {

/** Current serve protocol schema version. */
constexpr int kServeSchemaVersion = 1;

/** Default cap on one request line's byte length. */
constexpr std::size_t kDefaultMaxRequestBytes = 1u << 20;

/** The dispatchable request methods. */
enum class Method : unsigned char
{
    ping,     ///< Liveness probe; echoes {"pong": true}.
    eval,     ///< One (mapping, batch) prediction.
    sweep,    ///< Ranked sweep of the full mapping space.
    optimize, ///< Branch-and-bound strategy search.
    report,   ///< Structured run report (obs schema).
};

/** Stable lowercase method name. */
const char *toString(Method method);

/** One validated request. */
struct Request
{
    std::int64_t id = 0;
    Method method = Method::ping;

    /** Wall-clock budget in milliseconds; negative = absent (use
     *  the server default), 0 = already expired. */
    double deadlineMs = -1.0;

    /** Method parameters (always an object; defaults applied by the
     *  dispatcher). */
    obs::Json params = obs::Json::object();
};

/**
 * Parses one request line into a JSON body: enforces the byte cap,
 * RFC 8259 syntax (duplicate keys rejected), and that the top level
 * is an object or a non-empty array of objects.
 *
 * @throws UserError naming the defect.
 */
obs::Json parseBody(const std::string &line, std::size_t max_bytes);

/**
 * Validates one request object (envelope keys only; params contents
 * are validated by the dispatcher).
 *
 * @throws UserError naming the offending field.
 */
Request requestFromJson(const obs::Json &doc);

/**
 * Best-effort id extraction from an arbitrary body, for error
 * responses about requests that fail requestFromJson: a well-formed
 * non-negative integer "id" member, else nullopt.
 */
std::optional<std::int64_t> tryExtractId(const obs::Json &doc);

/** A status=ok response (result may be partial; see run_status). */
obs::Json okResponse(std::int64_t id, RunStatus run_status,
                     bool cached, obs::Json result);

/**
 * A non-ok response.  @p status is "error", "expired", "rejected" or
 * "shed"; @p id is echoed when known, null otherwise.
 */
obs::Json errorResponse(std::optional<std::int64_t> id,
                        const std::string &status,
                        const std::string &message);

} // namespace serve
} // namespace amped

#endif // AMPED_SERVE_PROTOCOL_HPP

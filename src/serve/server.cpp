#include "serve/server.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/amped_model.hpp"
#include "core/memory_model.hpp"
#include "explore/config_io.hpp"
#include "explore/explorer.hpp"
#include "explore/optimizer.hpp"
#include "explore/registry.hpp"
#include "obs/run_report.hpp"
#include "validate/calibrations.hpp"

namespace amped {
namespace serve {

namespace {

/**
 * Typed reader over a request's params object: unknown keys are
 * rejected up front and every diagnostic names the offending field
 * as `params.<key>` so clients can fix the exact input.
 */
class Params
{
  public:
    Params(const obs::Json &object,
           const std::set<std::string> &allowed)
        : object_(object)
    {
        for (const auto &member : object_.members())
            require(allowed.count(member.first) != 0,
                    "unknown params key '", member.first, "'");
    }

    bool has(const std::string &key) const
    {
        return object_.contains(key);
    }

    const obs::Json &raw(const std::string &key) const
    {
        return object_.at(key);
    }

    std::string
    str(const std::string &key, const std::string &fallback) const
    {
        if (!has(key))
            return fallback;
        require(raw(key).kind() == obs::Json::Kind::string,
                "params.", key, " must be a string");
        return raw(key).asString();
    }

    double
    number(const std::string &key, double fallback) const
    {
        if (!has(key))
            return fallback;
        const auto kind = raw(key).kind();
        require(kind == obs::Json::Kind::number ||
                    kind == obs::Json::Kind::integer,
                "params.", key, " must be a number");
        return raw(key).asDouble();
    }

    std::int64_t
    integer(const std::string &key, std::int64_t fallback) const
    {
        if (!has(key))
            return fallback;
        require(raw(key).kind() == obs::Json::Kind::integer,
                "params.", key, " must be an integer");
        return raw(key).asInt();
    }

    bool
    boolean(const std::string &key, bool fallback) const
    {
        if (!has(key))
            return fallback;
        require(raw(key).kind() == obs::Json::Kind::boolean,
                "params.", key, " must be a boolean");
        return raw(key).asBool();
    }

    /** Positive-number array ("batches": [64, 128]). */
    std::vector<double>
    numberList(const std::string &key) const
    {
        require(raw(key).isArray(), "params.", key,
                " must be an array of numbers");
        std::vector<double> values;
        for (std::size_t i = 0; i < raw(key).items().size(); ++i) {
            const auto &item = raw(key).at(i);
            const auto kind = item.kind();
            require(kind == obs::Json::Kind::number ||
                        kind == obs::Json::Kind::integer,
                    "params.", key, "[", i, "] must be a number");
            const double value = item.asDouble();
            require(std::isfinite(value) && value > 0.0, "params.",
                    key, "[", i, "] must be > 0");
            values.push_back(value);
        }
        require(!values.empty(), "params.", key,
                " must not be empty");
        return values;
    }

  private:
    const obs::Json &object_;
};

/** Param keys understood by every evaluating method. */
const std::set<std::string> &
commonKeys()
{
    static const std::set<std::string> keys{
        "model",  "accel",      "intra",     "inter",
        "nodes",  "per-node",   "nics",      "batch",
        "tokens", "microbatch", "eff-a",     "eff-b",
        "eff-floor", "bubble-r", "system"};
    return keys;
}

std::set<std::string>
withKeys(std::initializer_list<const char *> extra)
{
    std::set<std::string> keys = commonKeys();
    for (const char *key : extra)
        keys.insert(key);
    return keys;
}

const std::set<std::string> &
mappingKeys()
{
    static const std::set<std::string> keys{
        "tp-intra", "pp-intra", "dp-intra",
        "tp-inter", "pp-inter", "dp-inter"};
    return keys;
}

std::set<std::string>
withMappingKeys(std::initializer_list<const char *> extra)
{
    std::set<std::string> keys = withKeys(extra);
    keys.insert(mappingKeys().begin(), mappingKeys().end());
    return keys;
}

/**
 * Builds a SystemConfig from a "system" params sub-object by
 * rendering it as a key = value document and reusing the config_io
 * loader — so its field-named diagnostics (unknown keys, range
 * checks) flow through to the response verbatim.
 */
net::SystemConfig
systemFromJson(const obs::Json &system)
{
    require(system.isObject(), "params.system must be an object");
    std::ostringstream text;
    text.precision(17);
    for (const auto &[key, value] : system.members()) {
        switch (value.kind()) {
          case obs::Json::Kind::string:
            text << key << " = " << value.asString() << "\n";
            break;
          case obs::Json::Kind::boolean:
            text << key << " = " << (value.asBool() ? 1 : 0) << "\n";
            break;
          case obs::Json::Kind::integer:
          case obs::Json::Kind::number:
            text << key << " = " << value.dump() << "\n";
            break;
          default:
            throw UserError("params.system." + key +
                            " must be a scalar");
        }
    }
    try {
        return explore::systemFromConfig(
            KeyValueConfig::fromString(text.str()));
    } catch (const UserError &error) {
        throw UserError(std::string("params.system: ") +
                        error.what());
    }
}

net::SystemConfig
systemFromParams(const Params &params)
{
    if (params.has("system"))
        return systemFromJson(params.raw("system"));
    net::SystemConfig sys;
    sys.numNodes = params.integer("nodes", 128);
    sys.acceleratorsPerNode = params.integer("per-node", 8);
    sys.intraLink = explore::interconnectByName(
        params.str("intra", "nvlink-a100"));
    sys.interLink =
        explore::interconnectByName(params.str("inter", "hdr"));
    const std::int64_t nics = params.integer("nics", 0);
    sys.nicsPerNode = nics > 0 ? nics : sys.acceleratorsPerNode;
    sys.name = std::to_string(sys.numNodes) + "x" +
               std::to_string(sys.acceleratorsPerNode) + " " +
               params.str("accel", "a100") + " / " +
               params.str("inter", "hdr");
    sys.validate();
    return sys;
}

core::AmpedModel
modelFromParams(const Params &params)
{
    const auto model_cfg =
        explore::modelByName(params.str("model", "145b"));
    const auto accel =
        explore::acceleratorByName(params.str("accel", "a100"));
    const auto system = systemFromParams(params);
    core::ModelOptions options = validate::calibrations::
        nvswitchOptions(system.acceleratorsPerNode);
    options.bubbleOverlapRatio = params.number("bubble-r", 0.1);
    const double a = params.number("eff-a", 0.9);
    const double floor =
        std::min(params.number("eff-floor", 0.25), a);
    return core::AmpedModel(
        model_cfg, accel,
        hw::MicrobatchEfficiency(a, params.number("eff-b", 30.0),
                                 floor),
        system, options);
}

core::TrainingJob
jobFromParams(const Params &params)
{
    core::TrainingJob job;
    job.batchSize = params.number("batch", 8192.0);
    job.totalTrainingTokens = params.number("tokens", 300e9);
    const double ub = params.number("microbatch", 0.0);
    if (ub > 0.0)
        job.microbatching.microbatchSizeOverride = ub;
    return job;
}

mapping::ParallelismConfig
mappingFromParams(const Params &params)
{
    return mapping::makeMapping(params.integer("tp-intra", 1),
                                params.integer("pp-intra", 1),
                                params.integer("dp-intra", 1),
                                params.integer("tp-inter", 1),
                                params.integer("pp-inter", 1),
                                params.integer("dp-inter", 1));
}

core::MemoryModel
memoryModelFor(const core::AmpedModel &model)
{
    return core::MemoryModel(
        model::OpCounter(model.opCounter().config()),
        model.accelerator());
}

std::vector<double>
batchesFromParams(const Params &params)
{
    if (params.has("batches"))
        return params.numberList("batches");
    return {params.number("batch", 8192.0)};
}

obs::Json
entryJson(const explore::SweepEntry &entry)
{
    const auto &r = entry.result;
    obs::Json out = obs::Json::object();
    out.set("mapping", entry.mapping.toString());
    out.set("tp", entry.mapping.tp());
    out.set("pp", entry.mapping.pp());
    out.set("dp", entry.mapping.dp());
    out.set("batch", entry.batchSize);
    out.set("microbatch", r.microbatchSize);
    out.set("efficiency", r.efficiency);
    out.set("seconds_per_batch", r.timePerBatch);
    out.set("total_seconds", r.totalTime);
    out.set("training_days", r.trainingDays());
    return out;
}

obs::Json
entriesJson(const std::vector<explore::SweepEntry> &entries)
{
    obs::Json out = obs::Json::array();
    for (const auto &entry : entries)
        out.push(entryJson(entry));
    return out;
}

/**
 * Canonical serialization for cache keys: object members sorted by
 * key at every level, so two logically identical params objects with
 * different insertion orders share one cache entry.
 */
void
canonicalDumpTo(const obs::Json &value, std::string &out)
{
    if (value.isObject()) {
        std::vector<const std::pair<std::string, obs::Json> *> members;
        for (const auto &member : value.members())
            members.push_back(&member);
        std::sort(members.begin(), members.end(),
                  [](const auto *a, const auto *b) {
                      return a->first < b->first;
                  });
        out.push_back('{');
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (i != 0)
                out.push_back(',');
            out += obs::Json(members[i]->first).dump();
            out.push_back(':');
            canonicalDumpTo(members[i]->second, out);
        }
        out.push_back('}');
        return;
    }
    if (value.isArray()) {
        out.push_back('[');
        for (std::size_t i = 0; i < value.items().size(); ++i) {
            if (i != 0)
                out.push_back(',');
            canonicalDumpTo(value.at(i), out);
        }
        out.push_back(']');
        return;
    }
    out += value.dump();
}

std::string
cacheKey(Method method, const obs::Json &params)
{
    std::string key = toString(method);
    key.push_back('|');
    canonicalDumpTo(params, key);
    return key;
}

bool
isBlank(const std::string &line)
{
    return std::all_of(line.begin(), line.end(), [](char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
    });
}

} // namespace

ServerOptions
optionsFromConfig(const KeyValueConfig &config)
{
    config.requireOnly({"threads", "queue-capacity",
                        "overload-policy", "max-attempts",
                        "default-deadline-ms", "max-request-bytes",
                        "cache-budget-bytes", "max-grid-points",
                        "report-dir"});
    ServerOptions options;
    const std::int64_t threads = config.getInt("threads", 0);
    require(threads >= 0, "threads must be >= 0, got ", threads);
    options.threads = static_cast<unsigned>(threads);

    const std::int64_t capacity =
        config.getInt("queue-capacity",
                      static_cast<std::int64_t>(
                          options.queueCapacity));
    require(capacity >= 1, "queue-capacity must be >= 1, got ",
            capacity);
    options.queueCapacity = static_cast<std::size_t>(capacity);

    const std::string policy =
        config.getString("overload-policy", "reject-newest");
    if (policy == "reject-newest") {
        options.overloadPolicy = OverloadPolicy::rejectNewest;
    } else if (policy == "shed-oldest") {
        options.overloadPolicy = OverloadPolicy::shedOldest;
    } else {
        throw UserError("overload-policy must be reject-newest or "
                        "shed-oldest, got '" + policy + "'");
    }

    const std::int64_t attempts = config.getInt("max-attempts", 1);
    require(attempts >= 1, "max-attempts must be >= 1, got ",
            attempts);
    options.maxAttempts = static_cast<unsigned>(attempts);

    options.defaultDeadlineMs =
        config.getDouble("default-deadline-ms", 0.0);
    require(options.defaultDeadlineMs >= 0.0,
            "default-deadline-ms must be >= 0, got ",
            options.defaultDeadlineMs);

    const std::int64_t max_bytes =
        config.getInt("max-request-bytes",
                      static_cast<std::int64_t>(
                          options.maxRequestBytes));
    require(max_bytes >= 1, "max-request-bytes must be >= 1, got ",
            max_bytes);
    options.maxRequestBytes = static_cast<std::size_t>(max_bytes);

    const std::int64_t cache_bytes =
        config.getInt("cache-budget-bytes",
                      static_cast<std::int64_t>(
                          options.cacheBudgetBytes));
    require(cache_bytes >= 0,
            "cache-budget-bytes must be >= 0, got ", cache_bytes);
    options.cacheBudgetBytes =
        static_cast<std::size_t>(cache_bytes);

    const std::int64_t grid_points =
        config.getInt("max-grid-points",
                      static_cast<std::int64_t>(
                          options.maxGridPoints));
    require(grid_points >= 0,
            "max-grid-points must be >= 0, got ", grid_points);
    options.maxGridPoints = static_cast<std::size_t>(grid_points);

    options.reportDir = config.getString("report-dir", "");
    return options;
}

namespace {

WorkQueueOptions
queueOptionsFrom(const ServerOptions &options)
{
    WorkQueueOptions queue;
    queue.capacity = options.queueCapacity;
    queue.policy = options.overloadPolicy;
    queue.maxAttempts = options.maxAttempts;
    queue.registry = options.registry;
    return queue;
}

obs::MetricsRegistry &
registryFrom(const ServerOptions &options)
{
    return options.registry != nullptr
               ? *options.registry
               : obs::MetricsRegistry::global();
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      registry_(registryFrom(options_)),
      queue_(queueOptionsFrom(options_)),
      cache_(options_.cacheBudgetBytes, &registry_),
      requestsCounter_(registry_.counter("serve.requests")),
      okCounter_(registry_.counter("serve.responses.ok")),
      errorCounter_(registry_.counter("serve.responses.error")),
      droppedCounter_(registry_.counter("serve.responses.dropped")),
      latencyHistogram_(registry_.histogram(
          "serve.request.latency_seconds", /*timing=*/true))
{
    obs::registerServeMetrics(registry_);
}

void
Server::setCancelToken(CancelToken token)
{
    SerialSection section(serial_);
    rootToken_ = std::move(token);
}

Deadline
Server::deadlineFor(const Request &request) const
{
    if (request.deadlineMs >= 0.0)
        return Deadline::after(request.deadlineMs / 1000.0);
    if (options_.defaultDeadlineMs > 0.0)
        return Deadline::after(options_.defaultDeadlineMs / 1000.0);
    return Deadline::never();
}

obs::Json
Server::runRequest(const Request &request, const CancelToken &token)
{
    switch (request.method) {
      case Method::ping: {
        Params params(request.params, {});
        (void)params;
        obs::Json result = obs::Json::object();
        result.set("pong", true);
        return okResponse(request.id, RunStatus::Completed,
                          /*cached=*/false, std::move(result));
      }

      case Method::eval: {
        Params params(request.params, withMappingKeys({}));
        const auto model = modelFromParams(params);
        const auto evaluation = model.evaluate(
            mappingFromParams(params), jobFromParams(params));
        obs::Json result = obs::Json::object();
        result.set("mapping",
                   mappingFromParams(params).toString());
        result.set("analytical", obs::analyticalJson(evaluation));
        return okResponse(request.id, RunStatus::Completed,
                          /*cached=*/false, std::move(result));
      }

      case Method::sweep: {
        Params params(request.params,
                      withKeys({"batches", "top", "memory-check"}));
        const std::string key = cacheKey(request.method,
                                         request.params);
        if (const auto hit = cache_.get(key)) {
            return okResponse(request.id, RunStatus::Completed,
                              /*cached=*/true,
                              obs::Json::parse(*hit));
        }
        const auto model = modelFromParams(params);
        const auto batches = batchesFromParams(params);
        explore::preflightGridPoints(
            model.system(),
            model.opCounter().config().numLayers, batches.size(),
            options_.maxGridPoints);

        explore::Explorer explorer(model);
        explorer.setThreads(options_.threads);
        explorer.setCancelToken(token);
        if (params.boolean("memory-check", false))
            explorer.setMemoryModel(
                memoryModelFor(model));
        auto sweep = explorer.sweepAll(batches,
                                       jobFromParams(params));
        explore::Explorer::sortByTime(sweep.entries);
        const auto top = static_cast<std::size_t>(
            params.integer("top", 10));
        if (sweep.entries.size() > top)
            sweep.entries.resize(top);

        obs::Json result = obs::Json::object();
        result.set("entries", entriesJson(sweep.entries));
        result.set("skipped",
                   static_cast<std::int64_t>(sweep.skipped));
        result.set("memory_skipped",
                   static_cast<std::int64_t>(sweep.memorySkipped));
        result.set("failed",
                   static_cast<std::int64_t>(sweep.failed));
        result.set("visited_points",
                   static_cast<std::int64_t>(sweep.visitedPoints));
        result.set("cancelled_unvisited",
                   static_cast<std::int64_t>(
                       sweep.cancelledUnvisited));
        if (sweep.status == RunStatus::Completed)
            cache_.put(key, result.dump());
        return okResponse(request.id, sweep.status,
                          /*cached=*/false, std::move(result));
      }

      case Method::optimize: {
        Params params(request.params,
                      withKeys({"batches", "top", "ep",
                                "memory-check"}));
        const std::string key = cacheKey(request.method,
                                         request.params);
        if (const auto hit = cache_.get(key)) {
            return okResponse(request.id, RunStatus::Completed,
                              /*cached=*/true,
                              obs::Json::parse(*hit));
        }
        const auto model = modelFromParams(params);
        const auto batches = batchesFromParams(params);
        explore::preflightGridPoints(
            model.system(),
            model.opCounter().config().numLayers, batches.size(),
            options_.maxGridPoints);

        explore::Optimizer optimizer(model);
        optimizer.setThreads(options_.threads);
        optimizer.setCancelToken(token);
        if (params.boolean("memory-check", false))
            optimizer.setMemoryModel(
                memoryModelFor(model));

        explore::OptimizerRequest search;
        search.batchSizes = batches;
        search.jobTemplate = jobFromParams(params);
        search.topK =
            static_cast<std::size_t>(params.integer("top", 5));
        search.expertParallel = params.integer("ep", 1);
        const auto outcome = optimizer.optimize(search);

        const auto &c = outcome.counters;
        obs::Json counters = obs::Json::object();
        counters.set("points",
                     static_cast<std::int64_t>(c.points));
        counters.set("evaluated",
                     static_cast<std::int64_t>(c.evaluated));
        counters.set("pruned_by_bound",
                     static_cast<std::int64_t>(c.prunedByBound));
        counters.set("pruned_by_memory",
                     static_cast<std::int64_t>(c.prunedByMemory));
        counters.set("skipped_infeasible",
                     static_cast<std::int64_t>(
                         c.skippedInfeasible));
        counters.set("cancelled_unvisited",
                     static_cast<std::int64_t>(
                         c.cancelledUnvisited));

        obs::Json result = obs::Json::object();
        result.set("top_k", entriesJson(outcome.topK));
        result.set("counters", std::move(counters));
        if (outcome.status == RunStatus::Completed)
            cache_.put(key, result.dump());
        return okResponse(request.id, outcome.status,
                          /*cached=*/false, std::move(result));
      }

      case Method::report: {
        Params params(request.params,
                      withMappingKeys({"artifact"}));
        const auto model = modelFromParams(params);
        const auto evaluation = model.evaluate(
            mappingFromParams(params), jobFromParams(params));

        obs::Json config_echo = obs::Json::object();
        config_echo.set("method", toString(request.method));
        config_echo.set("params", request.params);

        obs::RunReportBuilder report;
        report.setConfig(std::move(config_echo))
            .setAnalytical(evaluation)
            .setMetrics(registry_);

        obs::Json result = obs::Json::object();
        if (params.has("artifact")) {
            const std::string name = params.str("artifact", "");
            require(!options_.reportDir.empty(),
                    "params.artifact: the server has no report-dir "
                    "configured");
            require(!name.empty() &&
                        std::all_of(name.begin(), name.end(),
                                    [](char c) {
                                        return std::isalnum(
                                                   static_cast<
                                                       unsigned char>(
                                                       c)) != 0 ||
                                               c == '-' || c == '_';
                                    }),
                    "params.artifact must be a non-empty "
                    "[A-Za-z0-9_-] name, got '", name, "'");
            const std::string path =
                options_.reportDir + "/" + name + ".json";
            report.writeFile(path);
            result.set("artifact_path", path);
        }
        result.set("report", report.build());
        return okResponse(request.id, RunStatus::Completed,
                          /*cached=*/false, std::move(result));
      }
    }
    throw UserError("unhandled method");
}

/** Bookkeeping for one element of a (possibly burst) request line. */
struct Server::Slot
{
    std::optional<Request> request;
    std::uint64_t queueId = 0;
    bool admitted = false;
    obs::Json response;
    bool hasResponse = false;
};

std::string
Server::handleLine(const std::string &line)
{
    SerialSection section(serial_);
    if (isBlank(line))
        return "";

    obs::Json body;
    try {
        body = parseBody(line, options_.maxRequestBytes);
    } catch (const UserError &error) {
        requestsCounter_.add(1);
        errorCounter_.add(1);
        return errorResponse(std::nullopt, "error", error.what())
            .dump();
    }

    std::vector<const obs::Json *> elements;
    if (body.isObject()) {
        elements.push_back(&body);
    } else {
        for (const auto &item : body.items())
            elements.push_back(&item);
    }
    requestsCounter_.add(elements.size());

    std::vector<Slot> slots(elements.size());

    // Phase 1: validate envelopes.
    for (std::size_t i = 0; i < elements.size(); ++i) {
        try {
            slots[i].request = requestFromJson(*elements[i]);
        } catch (const UserError &error) {
            slots[i].response =
                errorResponse(tryExtractId(*elements[i]), "error",
                              error.what());
            slots[i].hasResponse = true;
        }
    }

    // Phase 2: admit every valid request before any runs, so queue
    // capacity and the overload policy apply across the burst.
    for (auto &slot : slots) {
        if (!slot.request)
            continue;
        const Request &request = *slot.request;
        const Deadline deadline = deadlineFor(request);
        const CancelToken token = rootToken_.child(deadline);
        auto task = [this, &slot, &request, token]() {
            // This closure only ever runs inside queue_.drainReady()
            // below — i.e. on the same service loop that already
            // holds the gate; the analysis cannot follow it through
            // std::function, so assert instead of re-entering.
            serial_.assertEntered();
            obs::ScopedTimer timer(latencyHistogram_);
            slot.response = runRequest(request, token);
            slot.hasResponse = true;
        };
        const auto admission =
            queue_.submit(std::move(task), deadline);
        slot.admitted = admission.accepted;
        slot.queueId = admission.id;
        if (!admission.accepted) {
            slot.response = errorResponse(
                request.id, "rejected",
                "admission queue is full (capacity " +
                    std::to_string(options_.queueCapacity) + ")");
            slot.hasResponse = true;
        }
        if (admission.shedItem) {
            for (auto &other : slots) {
                if (other.admitted &&
                    other.queueId == admission.shedItem->id) {
                    other.response = errorResponse(
                        other.request->id, "shed",
                        "shed by a newer request under overload");
                    other.hasResponse = true;
                    other.admitted = false;
                }
            }
        }
    }

    // Phase 3: run what is runnable and map terminal outcomes back.
    for (const auto &result : queue_.drainReady()) {
        for (auto &slot : slots) {
            if (!slot.admitted || slot.queueId != result.id)
                continue;
            switch (result.outcome) {
              case ItemOutcome::completed:
                // The task already stored the response.
                break;
              case ItemOutcome::expired:
                slot.response = errorResponse(
                    slot.request->id, "expired",
                    "deadline expired before the request ran");
                slot.hasResponse = true;
                break;
              case ItemOutcome::shed:
                slot.response = errorResponse(
                    slot.request->id, "shed",
                    "shed by a newer request under overload");
                slot.hasResponse = true;
                break;
              case ItemOutcome::failed:
                slot.response = errorResponse(slot.request->id,
                                              "error",
                                              result.error);
                slot.hasResponse = true;
                break;
            }
        }
    }

    // Phase 4: emit one line per element, in element order.
    std::string out;
    for (auto &slot : slots) {
        if (!slot.hasResponse) {
            // Defensive: an admitted item the drain never resolved
            // (cannot happen with a synchronous drain; answer
            // structurally rather than crash).
            slot.response = errorResponse(
                slot.request ? std::optional<std::int64_t>(
                                   slot.request->id)
                             : std::nullopt,
                "error", "request was not resolved");
        }
        const std::string status =
            slot.response.at("status").asString();
        if (status == "ok")
            okCounter_.add(1);
        else if (status == "error")
            errorCounter_.add(1);
        else
            droppedCounter_.add(1);
        if (!out.empty())
            out.push_back('\n');
        out += slot.response.dump();
    }
    return out;
}

RunStatus
Server::serveStream(std::istream &in, std::ostream &out)
{
    SerialSection section(serial_);
    std::string line;
    while (true) {
        if (rootToken_.status() != RunStatus::Completed)
            return rootToken_.status();
        if (!std::getline(in, line))
            break;
        const std::string response = handleLine(line);
        if (!response.empty())
            out << response << '\n';
        out.flush();
        if (rootToken_.status() != RunStatus::Completed)
            return rootToken_.status();
    }
    return RunStatus::Completed;
}

RunStatus
Server::serveTcp(std::uint16_t port)
{
    SerialSection section(serial_);
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    require(listen_fd >= 0, "serve: cannot create socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        ::close(listen_fd);
        throw UserError("serve: cannot bind loopback port " +
                        std::to_string(port));
    }
    if (::listen(listen_fd, 8) != 0) {
        ::close(listen_fd);
        throw UserError("serve: listen failed");
    }
    socklen_t addr_len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                  &addr_len);
    boundPort_.store(ntohs(addr.sin_port),
                     std::memory_order_release);
    log::inform("serve: listening on 127.0.0.1:",
                ntohs(addr.sin_port));

    // Iterative accept loop (one client at a time): the WorkQueue is
    // single-loop by design; concurrency lives in the sweep threads.
    while (rootToken_.status() == RunStatus::Completed) {
        pollfd listener{listen_fd, POLLIN, 0};
        const int ready = ::poll(&listener, 1, /*timeout_ms=*/100);
        if (ready <= 0)
            continue; // Timeout or EINTR: re-check the token.
        const int client_fd = ::accept(listen_fd, nullptr, nullptr);
        if (client_fd < 0)
            continue;

        std::string buffer;
        char chunk[4096];
        bool open = true;
        while (open &&
               rootToken_.status() == RunStatus::Completed) {
            pollfd client{client_fd, POLLIN, 0};
            const int client_ready =
                ::poll(&client, 1, /*timeout_ms=*/100);
            if (client_ready <= 0)
                continue;
            const ssize_t got =
                ::read(client_fd, chunk, sizeof(chunk));
            if (got <= 0)
                break; // EOF or error: next client.
            buffer.append(chunk, static_cast<std::size_t>(got));
            std::size_t newline;
            while ((newline = buffer.find('\n')) !=
                   std::string::npos) {
                const std::string request_line =
                    buffer.substr(0, newline);
                buffer.erase(0, newline + 1);
                std::string response = handleLine(request_line);
                if (response.empty())
                    continue;
                response.push_back('\n');
                std::size_t sent = 0;
                while (sent < response.size()) {
                    const ssize_t wrote = ::send(
                        client_fd, response.data() + sent,
                        response.size() - sent, MSG_NOSIGNAL);
                    if (wrote <= 0) {
                        open = false;
                        break;
                    }
                    sent += static_cast<std::size_t>(wrote);
                }
                if (!open)
                    break;
            }
        }
        ::close(client_fd);
    }
    ::close(listen_fd);
    boundPort_.store(0, std::memory_order_release);
    return rootToken_.status();
}

} // namespace serve
} // namespace amped

/**
 * @file
 * Batched structure-of-arrays sweep evaluation.
 *
 * The scalar sweep path evaluates each (mapping, job) grid point by
 * calling core::AmpedModel::evaluate — per point that means four
 * per-layer loops and one std::vector allocation per layer.  The
 * batched engine restructures the same computation around the grid:
 *
 *  1. Enumerate the grid's distinct sub-problems: per-mapping
 *     constants (worker counts, parallelism degrees, grad-comm
 *     class), per-job constants (batch size, batch count), and the
 *     (job x (dp, pp)-class) table of microbatch size, microbatch
 *     count, efficiency and per-replica batch.
 *  2. Register every distinct per-layer sum with a
 *     core::SweepTermCache and prime it once, in parallel.
 *  3. Evaluate the grid in fixed-size blocks of contiguous raw-double
 *     columns (structure of arrays): each worker fills the output
 *     columns for a chunk of points with O(1) work per point —
 *     cached-sum lookups plus the cheap closed-form per-point terms.
 *     Quantity types are unwrapped at the column boundary and
 *     re-wrapped at reduction, exactly as the scalar path unwraps
 *     them into core::Breakdown.
 *  4. Reduce each block serially in grid order into a SweepResult.
 *
 * The result is byte-identical to the scalar path — entry order and
 * values, skip / memory-skip / failed counters, NaN pinning, and the
 * grid-ordered warning lines — at every thread count (see the
 * bit-exactness contract in core/batch_terms.hpp).  The engine exists
 * purely for throughput: the goldens and the differential property
 * tests (tests/test_explore_batch.cpp) hold both paths to the same
 * bytes.
 */

#ifndef AMPED_EXPLORE_BATCH_HPP
#define AMPED_EXPLORE_BATCH_HPP

#include <cstddef>
#include <vector>

#include "common/cancel.hpp"
#include "core/memory_model.hpp"
#include "explore/explorer.hpp"

namespace amped {
namespace explore {

/**
 * Points per SoA block: caps column memory at a few megabytes, and —
 * because both sweep engines call CancelToken::checkpoint() exactly
 * once per block — defines the cancellation granularity: a stopped
 * sweep's result is always a whole number of blocks.
 */
inline constexpr std::size_t kSweepBlockPoints = std::size_t{1} << 16;

/**
 * Evaluates the (mapping x job) grid with the batched SoA engine.
 *
 * Semantics are identical to the scalar loop in Explorer::sweepJobs
 * (this function is its drop-in evaluation core): every point is
 * classified as feasible / infeasible / over-memory / failed exactly
 * as the scalar path classifies it, failed points are NaN-pinned with
 * the same warning line, and entries come out in grid order.
 *
 * Cancellable: @p token is checkpointed between blocks; a stop
 * returns the deterministic block-prefix described by
 * SweepResult::status / visitedPoints / cancelledUnvisited.
 *
 * @param model The evaluator (const; never mutated).
 * @param memory_model Optional memory screen (nullptr = disabled).
 * @param mappings Grid rows (mapping-major order).
 * @param jobs Grid columns.
 * @param max_workers Parallelism cap (0 = whole shared pool).
 * @param token Cooperative stop request (inert by default).
 */
SweepResult
sweepJobsBatched(const core::AmpedModel &model,
                 const core::MemoryModel *memory_model,
                 const std::vector<mapping::ParallelismConfig> &mappings,
                 const std::vector<core::TrainingJob> &jobs,
                 unsigned max_workers, const CancelToken &token = {});

/**
 * A result with every numeric field pinned to NaN — the golden
 * layer's marker for "this point has no value".  Shared by the scalar
 * and batched engines so both degrade failed points identically.
 */
core::EvaluationResult nanPinnedResult();

} // namespace explore
} // namespace amped

#endif // AMPED_EXPLORE_BATCH_HPP

#include "ablation.hpp"

#include <sstream>

#include "common/units.hpp"

namespace amped {
namespace explore {

AblationRunner::AblationRunner(model::TransformerConfig model_config,
                               hw::AcceleratorConfig accelerator,
                               hw::MicrobatchEfficiency efficiency,
                               net::SystemConfig system,
                               core::ModelOptions base_options,
                               model::OpCountOptions op_options)
    : modelConfig_(std::move(model_config)),
      accel_(std::move(accelerator)), efficiency_(efficiency),
      system_(std::move(system)), baseOptions_(base_options),
      opOptions_(op_options)
{}

core::EvaluationResult
AblationRunner::evaluateWith(const core::ModelOptions &options,
                             const mapping::ParallelismConfig &mapping,
                             const core::TrainingJob &job) const
{
    core::AmpedModel model(modelConfig_, accel_, efficiency_, system_,
                           options, opOptions_);
    return model.evaluate(mapping, job);
}

std::vector<AblationPoint>
AblationRunner::sweepBubbleOverlap(
    const std::vector<double> &ratios,
    const mapping::ParallelismConfig &mapping,
    const core::TrainingJob &job) const
{
    std::vector<AblationPoint> points;
    for (double r : ratios) {
        core::ModelOptions options = baseOptions_;
        options.bubbleOverlapRatio = r;
        std::ostringstream label;
        label << "R=" << units::formatFixed(r, 2);
        points.push_back(
            {label.str(), evaluateWith(options, mapping, job)});
    }
    return points;
}

std::vector<AblationPoint>
AblationRunner::sweepZeroOverhead(
    const std::vector<double> &overheads,
    const mapping::ParallelismConfig &mapping,
    const core::TrainingJob &job) const
{
    std::vector<AblationPoint> points;
    for (double z : overheads) {
        core::ModelOptions options = baseOptions_;
        options.zeroDpOverhead = z;
        std::ostringstream label;
        label << "ZeRO-overhead=" << units::formatFixed(z, 2);
        points.push_back(
            {label.str(), evaluateWith(options, mapping, job)});
    }
    return points;
}

std::vector<AblationPoint>
AblationRunner::compareGradAllReduce(
    const mapping::ParallelismConfig &mapping,
    const core::TrainingJob &job) const
{
    std::vector<AblationPoint> points;
    for (bool hierarchical : {true, false}) {
        core::ModelOptions options = baseOptions_;
        options.hierarchicalGradAllReduce = hierarchical;
        points.push_back({hierarchical ? "hierarchical-allreduce"
                                       : "flat-allreduce",
                          evaluateWith(options, mapping, job)});
    }
    return points;
}

std::vector<AblationPoint>
AblationRunner::sweepEfficiencyFloor(
    const std::vector<double> &floors,
    const mapping::ParallelismConfig &mapping,
    const core::TrainingJob &job) const
{
    std::vector<AblationPoint> points;
    for (double floor : floors) {
        hw::MicrobatchEfficiency eff(efficiency_.a(), efficiency_.b(),
                                     floor);
        core::AmpedModel model(modelConfig_, accel_, eff, system_,
                               baseOptions_, opOptions_);
        std::ostringstream label;
        label << "floor=" << units::formatFixed(floor, 2);
        points.push_back({label.str(), model.evaluate(mapping, job)});
    }
    return points;
}

} // namespace explore
} // namespace amped

/**
 * @file
 * Branch-and-bound search for the fastest feasible parallelization.
 *
 * Explorer::sweepAll answers "rank every mapping" by evaluating the
 * whole (mapping x batch) grid.  The Optimizer answers the question
 * the paper actually poses — "which mapping is fastest?" — without
 * paying for the full grid:
 *
 *  1. Feasibility screen.  Every grid point is classified from the
 *     SweepKernel's constant tables before any evaluation: points
 *     whose mapping, job or microbatching provably fail validation
 *     are skipped outright, and (with a memory model) points whose
 *     footprint exceeds the device capacity are pruned without
 *     touching the evaluator.
 *  2. Admissible lower bounds.  The additive model's total is a sum
 *     of nonnegative terms, every one of which is an O(1) lookup in
 *     the primed core::SweepTermCache or a cheap closed form.
 *     Re-assembling them per point (scaled down by a 1e-9 relative
 *     margin to absorb floating-point reassociation) yields a lower
 *     bound on the point's total training time that never exceeds
 *     the batch engine's exact value (DESIGN.md "Branch-and-bound
 *     over the additive model" proves admissibility).
 *  3. Best-first waves.  Surviving points are visited in ascending
 *     bound order in fixed-size waves: a point whose bound exceeds
 *     the current k-th best exact time is pruned; the rest are
 *     evaluated through the batched SoA kernel, bit-identically to
 *     Explorer::sweepAll.  Wave boundaries are independent of the
 *     thread count, so results AND counters are deterministic.
 *
 * The returned top-k is bit-pattern-identical to sorting the full
 * exhaustive sweep by (total time, grid index) and truncating —
 * tests/test_explore_optimizer.cpp holds the two paths to the same
 * bytes over randomized grids, and the optimizer_case_study golden
 * pins the 1,008,000-point case-study grid.
 *
 * Optionally the search is heterogeneity-aware: given a stage
 * hardware list, the winning mapping's pipeline is re-partitioned
 * with core::HeterogeneousPipelineModel::balanceLayers so mixed
 * clusters get per-stage layer counts alongside the homogeneous
 * ranking.
 */

#ifndef AMPED_EXPLORE_OPTIMIZER_HPP
#define AMPED_EXPLORE_OPTIMIZER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "core/amped_model.hpp"
#include "core/heterogeneous.hpp"
#include "core/memory_model.hpp"
#include "explore/explorer.hpp"

namespace amped {
namespace explore {

/** What to search and how many winners to keep. */
struct OptimizerRequest
{
    /** Global batch sizes to cross with every mapping. */
    std::vector<double> batchSizes;

    /**
     * Job whose batchSize is overwritten per point (token budget and
     * microbatching carry over), exactly as in Explorer::sweep.
     */
    core::TrainingJob jobTemplate;

    /** How many best strategies to return (>= 1). */
    std::size_t topK = 10;

    /**
     * Expert-parallel degree N_EP.  The paper spreads experts over
     * all nodes (Sec. IV-D), so EP is not a mapping dimension; the
     * knob is validated against the model instead: values > 1
     * require a mixture-of-experts model and must divide the expert
     * count, otherwise the request is rejected with a UserError.
     */
    std::int64_t expertParallel = 1;

    /**
     * Stage hardware for the heterogeneity-aware refinement; empty
     * (the default) skips it.  When set, the winning strategy's
     * pipeline is re-balanced over these stages (tensor width taken
     * from the winner) and the heterogeneous prediction is attached
     * to the result.
     */
    std::vector<core::HeterogeneousStage> heterogeneousStages;
};

/**
 * Search accounting.  Every grid point lands in exactly one of the
 * five disposition buckets:
 *
 *   points = prunedByMemory + prunedByBound + skippedInfeasible
 *          + evaluated + cancelledUnvisited
 *
 * (cancelledUnvisited is zero on a Completed search) and the
 * evaluated bucket splits by exact outcome:
 *
 *   evaluated = feasible + infeasible + overMemory + failed
 *
 * The same totals are published to the metrics registry under
 * `explore.optimize.*`.
 */
struct OptimizerCounters
{
    std::size_t points = 0;     ///< Grid size (mappings x jobs).
    std::size_t cells = 0;      ///< (dp, pp)-class x job cells.
    std::size_t evaluated = 0;  ///< Reached the exact batch kernel.
    std::size_t prunedByMemory = 0; ///< Memory screen said no.
    std::size_t prunedByBound = 0;  ///< Lower bound beat k-th best.
    std::size_t skippedInfeasible = 0; ///< Provably invalid points.
    std::size_t feasible = 0;   ///< Evaluated, got a result.
    std::size_t infeasible = 0; ///< Evaluated, UserError.
    std::size_t overMemory = 0; ///< Evaluated, memory check failed.
    std::size_t failed = 0;     ///< Evaluated, NaN-pinned.
    /** Points never dispositioned because the search stopped. */
    std::size_t cancelledUnvisited = 0;
};

/** The heterogeneity-aware refinement of the winning strategy. */
struct HeterogeneousPlan
{
    /** Balanced stages (numLayers filled in, tp from the winner). */
    std::vector<core::HeterogeneousStage> stages;

    /** Prediction for one pipeline replica on those stages. */
    core::HeterogeneousResult result;
};

/** Outcome of one optimize() call. */
struct OptimizerResult
{
    /**
     * The k best strategies, ascending by total training time (ties
     * by grid position) — bit-identical to truncating the sorted
     * exhaustive sweep.  Shorter than requested when fewer points
     * are feasible; empty when nothing is.
     */
    std::vector<SweepEntry> topK;

    OptimizerCounters counters;

    /**
     * How the search ended.  Completed means every grid point was
     * dispositioned and topK is the exact answer.  Cancelled /
     * DeadlineExceeded mean the search stopped at a wave checkpoint:
     * topK is then the deterministic best-so-far over the evaluated
     * prefix — an explicit *incomplete* ranking, never a silently
     * wrong one (counters.cancelledUnvisited says how much of the
     * grid was never considered).  Wave boundaries are thread-count
     * independent, so a tripped search yields identical partial
     * results at every thread count.
     */
    RunStatus status = RunStatus::Completed;

    /** Set when the request carried heterogeneous stages, the search
     *  Completed, and it produced a finite winner.  (A best-so-far
     *  winner from a stopped search is not refined: it may not be
     *  the real winner.) */
    std::optional<HeterogeneousPlan> heterogeneous;
};

/**
 * Feasibility-pruned branch-and-bound strategy search over one
 * model.  Construction mirrors Explorer; optimize() mirrors
 * sweepAll's enumeration and optimizeOver() accepts an explicit
 * mapping list (the property tests drive both paths against each
 * other).
 */
class Optimizer
{
  public:
    /** @param model The evaluator to drive (copied; it is cheap). */
    explicit Optimizer(core::AmpedModel model);

    /**
     * Searches the full mapping space of the model's system (every
     * intra x inter factorization, pipeline capped at the layer
     * count) — the same enumeration Explorer::sweepAll sweeps.
     */
    OptimizerResult optimize(const OptimizerRequest &request) const;

    /** Searches an explicit candidate mapping list. */
    OptimizerResult
    optimizeOver(const std::vector<mapping::ParallelismConfig> &mappings,
                 const OptimizerRequest &request) const;

    /**
     * Caps search parallelism.  0 (the default) uses AMPED_THREADS
     * or every hardware thread.  Results and counters are identical
     * at any setting — this only trades wall clock.
     */
    void setThreads(unsigned threads) { threads_ = threads; }

    /** The configured parallelism cap (0 = automatic). */
    unsigned threads() const { return threads_; }

    /**
     * Installs a cancellation token observed by every subsequent
     * search: the cache prime and the feasibility screen abandon at
     * chunk boundaries, and the wave loop checkpoints once per
     * evaluation wave — see OptimizerResult::status for what a stop
     * returns.  The default inert token costs nothing.
     */
    void setCancelToken(CancelToken token)
    {
        token_ = std::move(token);
    }

    /** The installed cancellation token (inert by default). */
    const CancelToken &cancelToken() const { return token_; }

    /**
     * Enables the memory screen: points whose footprint exceeds the
     * device capacity are pruned before evaluation and counted in
     * OptimizerCounters::prunedByMemory.
     */
    void setMemoryModel(core::MemoryModel memory_model);

    /** Disables memory screening. */
    void clearMemoryModel() { memoryModel_.reset(); }

    /** The underlying model. */
    const core::AmpedModel &model() const { return model_; }

  private:
    core::AmpedModel model_;
    std::optional<core::MemoryModel> memoryModel_;
    unsigned threads_ = 0;
    CancelToken token_;
};

} // namespace explore
} // namespace amped

#endif // AMPED_EXPLORE_OPTIMIZER_HPP

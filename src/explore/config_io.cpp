#include "config_io.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace amped {
namespace explore {

model::TransformerConfig
modelFromConfig(const KeyValueConfig &config)
{
    config.requireOnly({"name", "layers", "hidden", "heads", "seq",
                        "vocab", "ffn", "experts",
                        "experts-per-token", "moe-interval"});
    model::TransformerConfig cfg;
    cfg.name = config.getString("name", "custom-model");
    cfg.numLayers = config.getInt("layers");
    cfg.hiddenSize = config.getInt("hidden");
    cfg.numHeads = config.getInt("heads");
    cfg.seqLength = config.getInt("seq");
    cfg.vocabSize = config.getInt("vocab");
    cfg.ffnHiddenSize = config.getInt("ffn", 4 * cfg.hiddenSize);
    cfg.moe.numExperts = config.getInt("experts", 0);
    cfg.moe.expertsPerToken = config.getInt("experts-per-token", 2);
    cfg.moe.moeLayerInterval = config.getInt("moe-interval", 2);
    cfg.validate();
    return cfg;
}

model::TransformerConfig
modelFromFile(const std::string &path)
{
    return modelFromConfig(KeyValueConfig::fromFile(path));
}

hw::AcceleratorConfig
acceleratorFromConfig(const KeyValueConfig &config)
{
    config.requireOnly({"name", "frequency-ghz", "cores", "mac-units",
                        "mac-width", "nonlin-units", "nonlin-width",
                        "memory-gb", "offchip-gbits",
                        "precision-param", "precision-act",
                        "precision-nonlin", "precision-mac-unit",
                        "precision-nonlin-unit"});
    hw::AcceleratorConfig cfg;
    cfg.name = config.getString("name", "custom-accelerator");
    cfg.frequency = config.getDouble("frequency-ghz") * units::giga;
    cfg.numCores = config.getInt("cores");
    cfg.numMacUnits = config.getInt("mac-units");
    cfg.macUnitWidth = config.getInt("mac-width");
    cfg.numNonlinUnits = config.getInt("nonlin-units");
    cfg.nonlinUnitWidth = config.getInt("nonlin-width");
    cfg.memoryBytes = config.getDouble("memory-gb") * units::giga;
    cfg.offChipBandwidthBits =
        units::gigabitsPerSecond(config.getDouble("offchip-gbits"));
    cfg.precisions.parameterBits =
        config.getDouble("precision-param", 16.0);
    cfg.precisions.activationBits =
        config.getDouble("precision-act", 16.0);
    cfg.precisions.nonlinearBits =
        config.getDouble("precision-nonlin", 16.0);
    cfg.precisions.macUnitBits =
        config.getDouble("precision-mac-unit", 16.0);
    cfg.precisions.nonlinearUnitBits =
        config.getDouble("precision-nonlin-unit", 16.0);
    cfg.validate();
    return cfg;
}

hw::AcceleratorConfig
acceleratorFromFile(const std::string &path)
{
    return acceleratorFromConfig(KeyValueConfig::fromFile(path));
}

net::SystemConfig
systemFromConfig(const KeyValueConfig &config)
{
    config.requireOnly({"name", "nodes", "per-node", "nics",
                        "intra-latency-us", "intra-gbits",
                        "inter-latency-us", "inter-gbits",
                        "pooled-fabric"});
    net::SystemConfig sys;
    sys.name = config.getString("name", "custom-system");
    sys.numNodes = config.getInt("nodes");
    sys.acceleratorsPerNode = config.getInt("per-node");
    sys.nicsPerNode = config.getInt("nics", sys.acceleratorsPerNode);
    sys.intraLink = net::LinkConfig{
        "intra",
        config.getDouble("intra-latency-us", 2.0) * 1e-6,
        units::gigabitsPerSecond(config.getDouble("intra-gbits"))};
    sys.interLink = net::LinkConfig{
        "inter",
        config.getDouble("inter-latency-us", 1.2) * 1e-6,
        units::gigabitsPerSecond(config.getDouble("inter-gbits"))};
    sys.interIsPooledFabric =
        config.getInt("pooled-fabric", 0) != 0;
    sys.validate();
    return sys;
}

net::SystemConfig
systemFromFile(const std::string &path)
{
    return systemFromConfig(KeyValueConfig::fromFile(path));
}

} // namespace explore
} // namespace amped

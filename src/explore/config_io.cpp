#include "config_io.hpp"

#include <cmath>
#include <optional>

#include "common/error.hpp"
#include "common/quantity.hpp"
#include "common/units.hpp"
#include "mapping/parallelism.hpp"

namespace amped {
namespace explore {

namespace {

// Field-named range checks: a NaN bandwidth or a zero core count in
// a config file must fail here, naming the key, instead of
// surfacing later as a NaN training time or a division by zero.

/** A count/frequency/bandwidth key: finite and strictly positive. */
double
getPositiveDouble(const KeyValueConfig &config, const std::string &key,
                  std::optional<double> fallback = std::nullopt)
{
    const double value = fallback ? config.getDouble(key, *fallback)
                                  : config.getDouble(key);
    require(std::isfinite(value) && value > 0.0, "config key '", key,
            "': value must be a positive finite number, got ", value);
    return value;
}

/** A duration/offset key: finite and non-negative. */
double
getNonNegativeDouble(const KeyValueConfig &config,
                     const std::string &key, double fallback)
{
    const double value = config.getDouble(key, fallback);
    require(std::isfinite(value) && value >= 0.0, "config key '", key,
            "': value must be a non-negative finite number, got ",
            value);
    return value;
}

/** An integer count key: strictly positive. */
std::int64_t
getPositiveInt(const KeyValueConfig &config, const std::string &key,
               std::optional<std::int64_t> fallback = std::nullopt)
{
    const std::int64_t value = fallback ? config.getInt(key, *fallback)
                                        : config.getInt(key);
    require(value > 0, "config key '", key,
            "': value must be a positive integer, got ", value);
    return value;
}

} // namespace

model::TransformerConfig
modelFromConfig(const KeyValueConfig &config)
{
    config.requireOnly({"name", "layers", "hidden", "heads", "seq",
                        "vocab", "ffn", "experts",
                        "experts-per-token", "moe-interval"});
    model::TransformerConfig cfg;
    cfg.name = config.getString("name", "custom-model");
    cfg.numLayers = getPositiveInt(config, "layers");
    cfg.hiddenSize = getPositiveInt(config, "hidden");
    cfg.numHeads = getPositiveInt(config, "heads");
    cfg.seqLength = getPositiveInt(config, "seq");
    cfg.vocabSize = getPositiveInt(config, "vocab");
    cfg.ffnHiddenSize =
        getPositiveInt(config, "ffn", 4 * cfg.hiddenSize);
    cfg.moe.numExperts = config.getInt("experts", 0); // 0 = dense
    require(cfg.moe.numExperts >= 0, "config key 'experts': value "
            "must be >= 0, got ", cfg.moe.numExperts);
    cfg.moe.expertsPerToken =
        getPositiveInt(config, "experts-per-token", 2);
    cfg.moe.moeLayerInterval =
        getPositiveInt(config, "moe-interval", 2);
    cfg.validate();
    return cfg;
}

model::TransformerConfig
modelFromFile(const std::string &path)
{
    return modelFromConfig(KeyValueConfig::fromFile(path));
}

hw::AcceleratorConfig
acceleratorFromConfig(const KeyValueConfig &config)
{
    config.requireOnly({"name", "frequency-ghz", "cores", "mac-units",
                        "mac-width", "nonlin-units", "nonlin-width",
                        "memory-gb", "offchip-gbits",
                        "precision-param", "precision-act",
                        "precision-nonlin", "precision-mac-unit",
                        "precision-nonlin-unit"});
    hw::AcceleratorConfig cfg;
    cfg.name = config.getString("name", "custom-accelerator");
    // Config files are an I/O boundary: raw doubles get their units
    // tagged exactly once, here.
    cfg.frequency =
        Hertz{getPositiveDouble(config, "frequency-ghz") * units::giga};
    cfg.numCores = getPositiveInt(config, "cores");
    cfg.numMacUnits = getPositiveInt(config, "mac-units");
    cfg.macUnitWidth = getPositiveInt(config, "mac-width");
    cfg.numNonlinUnits = getPositiveInt(config, "nonlin-units");
    cfg.nonlinUnitWidth = getPositiveInt(config, "nonlin-width");
    cfg.memoryBytes =
        getPositiveDouble(config, "memory-gb") * units::giga;
    cfg.offChipBandwidth = units::gigabitsPerSecondBw(
        getPositiveDouble(config, "offchip-gbits"));
    cfg.precisions.parameterBits =
        Bits{getPositiveDouble(config, "precision-param", 16.0)};
    cfg.precisions.activationBits =
        Bits{getPositiveDouble(config, "precision-act", 16.0)};
    cfg.precisions.nonlinearBits =
        Bits{getPositiveDouble(config, "precision-nonlin", 16.0)};
    cfg.precisions.macUnitBits =
        Bits{getPositiveDouble(config, "precision-mac-unit", 16.0)};
    cfg.precisions.nonlinearUnitBits =
        Bits{getPositiveDouble(config, "precision-nonlin-unit", 16.0)};
    cfg.validate();
    return cfg;
}

hw::AcceleratorConfig
acceleratorFromFile(const std::string &path)
{
    return acceleratorFromConfig(KeyValueConfig::fromFile(path));
}

net::SystemConfig
systemFromConfig(const KeyValueConfig &config)
{
    config.requireOnly({"name", "nodes", "per-node", "nics",
                        "intra-latency-us", "intra-gbits",
                        "inter-latency-us", "inter-gbits",
                        "pooled-fabric"});
    net::SystemConfig sys;
    sys.name = config.getString("name", "custom-system");
    sys.numNodes = getPositiveInt(config, "nodes");
    sys.acceleratorsPerNode = getPositiveInt(config, "per-node");
    sys.nicsPerNode =
        getPositiveInt(config, "nics", sys.acceleratorsPerNode);
    sys.intraLink = net::LinkConfig{
        "intra",
        Seconds{getNonNegativeDouble(config, "intra-latency-us", 2.0) *
                1e-6},
        units::gigabitsPerSecondBw(
            getPositiveDouble(config, "intra-gbits"))};
    sys.interLink = net::LinkConfig{
        "inter",
        Seconds{getNonNegativeDouble(config, "inter-latency-us", 1.2) *
                1e-6},
        units::gigabitsPerSecondBw(
            getPositiveDouble(config, "inter-gbits"))};
    sys.interIsPooledFabric =
        config.getInt("pooled-fabric", 0) != 0;
    sys.validate();
    return sys;
}

net::SystemConfig
systemFromFile(const std::string &path)
{
    return systemFromConfig(KeyValueConfig::fromFile(path));
}

std::size_t
preflightGridPoints(const net::SystemConfig &system,
                    std::int64_t max_pipeline, std::size_t num_jobs,
                    std::size_t max_grid_points)
{
    require(num_jobs >= 1,
            "preflightGridPoints: need >= 1 job variant, got ",
            num_jobs);
    const std::size_t mappings =
        mapping::MappingSpace(system).enumerate(max_pipeline).size();
    const std::size_t points = mappings * num_jobs;
    if (max_grid_points != 0 && points > max_grid_points) {
        throw UserError(
            "sweep grid has " + std::to_string(points) + " points ("
            + std::to_string(mappings) + " mappings of nodes = "
            + std::to_string(system.numNodes) + " x per-node = "
            + std::to_string(system.acceleratorsPerNode) + " times "
            + std::to_string(num_jobs)
            + " batch/job variants), exceeding --max-grid-points = "
            + std::to_string(max_grid_points)
            + "; shrink the cluster or batch list, or raise the cap");
    }
    return points;
}

} // namespace explore
} // namespace amped

/**
 * @file
 * The shared per-point evaluation kernel behind the batched sweep
 * engine and the branch-and-bound strategy optimizer.
 *
 * explore/batch.hpp documents the batched structure-of-arrays sweep;
 * this header factors its machinery into a reusable object so that
 * explore/optimizer.hpp can evaluate *individual* surviving grid
 * points through the exact same code path.  A SweepKernel owns, for
 * one (mappings x jobs) grid:
 *
 *  1. The grid-constant tables: per-mapping facts (MappingInfo),
 *     per-job facts (JobInfo), and the (job x (dp, pp)-class) table
 *     of microbatching facts (JcEntry).  Two mappings share a class
 *     when they agree on the total data-parallel and pipeline
 *     degrees; within a class every compute term of the additive
 *     model is constant and only the communication terms vary with
 *     the intra/inter split.
 *  2. A primed core::SweepTermCache serving every distinct per-layer
 *     sum as an O(1) lookup.
 *  3. The per-point evaluator that classifies a grid point as
 *     feasible / infeasible / over-memory / failed and assembles its
 *     core::EvaluationResult — bit-identical to the scalar
 *     AmpedModel::evaluate path (the contract in
 *     core/batch_terms.hpp), regardless of whether the point is
 *     reached by the full-grid block sweep (sweepGrid) or by an
 *     index list (evaluatePoints).
 *
 * The class tables and the term cache are deliberately exposed
 * read-only: the optimizer's admissible lower bounds are assembled
 * from exactly these values (DESIGN.md "Branch-and-bound over the
 * additive model"), so any change to the evaluation order here is a
 * change to the bound's contract as well.
 */

#ifndef AMPED_EXPLORE_SWEEP_KERNEL_HPP
#define AMPED_EXPLORE_SWEEP_KERNEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/batch_terms.hpp"
#include "core/memory_model.hpp"
#include "explore/explorer.hpp"

namespace amped {
namespace explore {

/** Mirrors the scalar sweep's per-point classification. */
enum class PointStatus : unsigned char
{
    infeasible,
    overMemory,
    feasible,
    failedPoint
};

/** How a pre-computed sub-step ended (0 = fine). */
enum FailKind : unsigned char
{
    kOk = 0,
    kUserError = 1, ///< Scalar path throws UserError here.
    kError = 2      ///< Scalar path throws another std::exception.
};

/** Grid-constant facts about one mapping. */
struct MappingInfo
{
    FailKind kind = kOk;  ///< validateFor(system) outcome.
    std::string message;  ///< what() when kind == kError.
    std::uint32_t classIdx = 0; ///< (dp, pp) class index.
    double workers = 0.0; ///< double(totalWorkers()).
    double ppD = 0.0;     ///< double(pp()).
    double stageOverlap = 0.0; ///< 1.0 / double(pp()).
    std::int64_t pp = 1;
    std::int64_t tpIntra = 1;
    std::int64_t tpInter = 1;
    std::int64_t ppIntra = 1;
    std::int64_t ppInter = 1;
    std::size_t gradId = 0;
};

/** Grid-constant facts about one job. */
struct JobInfo
{
    FailKind validKind = kOk; ///< job.validate() outcome.
    std::string validMessage;
    FailKind nbKind = kOk; ///< job.numBatches(seq) outcome.
    std::string nbMessage;
    double batch = 0.0;
    double numBatches = 0.0;
    std::size_t flopsId = 0;
};

/**
 * Per-(job x (dp, pp)-class) microbatching facts.  The microbatch
 * size, microbatch count and per-replica batch depend on the mapping
 * only through dp() and pp(), so one row serves every mapping in the
 * class.
 */
struct JcEntry
{
    FailKind ubKind = kOk; ///< microbatchSize outcome.
    std::string ubMessage;
    /**
     * First failure of the remaining pre-term steps, recorded in
     * scalar evaluation order: numMicrobatches, then efficiency.
     */
    FailKind preKind = kOk;
    std::string preMessage;
    double ub = 0.0;
    double nub = 0.0;
    double eff = 0.0;
    double replicaBatch = 0.0;
    std::size_t fwdId = 0;
    std::size_t updId = 0;
    std::size_t moeId = 0;
};

/** SoA output columns for one block of points (sweep_kernel.cpp). */
struct BlockColumns;

/**
 * One grid's evaluation state: constant tables, primed term cache
 * and the exact per-point evaluator.  Construction is
 * single-threaded apart from the internally parallel cache prime;
 * afterwards every member function is const and thread-safe.
 *
 * The mapping and job vectors are held by reference and must outlive
 * the kernel (both callers — sweepJobsBatched and the Optimizer —
 * own them for the duration of the search).
 */
class SweepKernel
{
  public:
    /**
     * Builds the tables and primes the term cache for one grid.
     *
     * @param model The evaluator (const; never mutated).
     * @param memory_model Optional memory screen (nullptr = off).
     * @param mappings Grid rows (mapping-major order).
     * @param jobs Grid columns.
     * @param max_workers Parallelism cap for priming (0 = pool).
     * @param token Cooperative stop request, observed by the prime
     *        (see primeStatus()) and by every subsequent sweepGrid /
     *        evaluatePoints call.  Inert by default.
     */
    SweepKernel(const core::AmpedModel &model,
                const core::MemoryModel *memory_model,
                const std::vector<mapping::ParallelismConfig> &mappings,
                const std::vector<core::TrainingJob> &jobs,
                unsigned max_workers, CancelToken token = {});

    /**
     * How the construction-time cache prime ended.  Non-Completed
     * means the kernel must not evaluate points (term lookups would
     * hit unprimed entries); callers surface the status instead.
     */
    RunStatus primeStatus() const { return primeStatus_; }

    /** Outcome of evaluating one grid point exactly. */
    struct Outcome
    {
        PointStatus status = PointStatus::infeasible;
        std::string failure; ///< Set when status == failedPoint.
        /** Valid when feasible; NaN-pinned when failed. */
        core::EvaluationResult result;
    };

    /**
     * Evaluates the whole grid with the batched SoA block loop and
     * reduces it in grid order — the engine behind sweepJobsBatched
     * (see explore/batch.hpp for the byte-identity contract).
     *
     * The construction token is checkpointed once before each block;
     * a stop returns the deterministic block-prefix (status /
     * visitedPoints / cancelledUnvisited set accordingly).
     */
    SweepResult sweepGrid(unsigned max_workers) const;

    /**
     * Evaluates an arbitrary list of grid indices (index = mapping
     * index * numJobs() + job index) and appends one Outcome per
     * index, in list order.  Evaluation runs on the shared pool;
     * results are deterministic at any worker count.
     *
     * Cancellable via the construction token (passive status() polls
     * only — the caller owns the checkpoint discipline): on a stop
     * the partially evaluated block is discarded, so outcomes grew by
     * a multiple of the block size, and the stop status is returned.
     */
    RunStatus evaluatePoints(const std::vector<std::size_t> &indices,
                             std::vector<Outcome> &outcomes,
                             unsigned max_workers) const;

    std::size_t numMappings() const { return mappings_.size(); }
    std::size_t numJobs() const { return jobs_.size(); }
    std::size_t numPoints() const
    {
        return mappings_.size() * jobs_.size();
    }

    /** Number of distinct (dp, pp) mapping classes. */
    std::size_t numClasses() const { return classMembers_.size(); }

    const MappingInfo &mappingInfo(std::size_t mapping_index) const
    {
        return mappingInfos_[mapping_index];
    }

    const JobInfo &jobInfo(std::size_t job_index) const
    {
        return jobInfos_[job_index];
    }

    const JcEntry &jcEntry(std::uint32_t class_index,
                           std::size_t job_index) const
    {
        return jc_[class_index * jobs_.size() + job_index];
    }

    /** Mapping indices belonging to one class, ascending. */
    const std::vector<std::size_t> &
    classMembers(std::uint32_t class_index) const
    {
        return classMembers_[class_index];
    }

    const mapping::ParallelismConfig &
    mappingAt(std::size_t mapping_index) const
    {
        return mappings_[mapping_index];
    }

    const core::TrainingJob &jobAt(std::size_t job_index) const
    {
        return jobs_[job_index];
    }

    /** The primed term cache (bound-side probes live here). */
    const core::SweepTermCache &termCache() const { return cache_; }

    const core::AmpedModel &model() const { return model_; }

    /** The memory screen, or nullptr when screening is off. */
    const core::MemoryModel *memoryScreen() const
    {
        return memoryModel_;
    }

  private:
    /** The exact per-point evaluator (columns stay in the .cpp). */
    void evaluatePointInto(std::size_t index, std::size_t slot,
                           BlockColumns &cols) const;

    const core::AmpedModel &model_;
    const core::MemoryModel *memoryModel_;
    const std::vector<mapping::ParallelismConfig> &mappings_;
    const std::vector<core::TrainingJob> &jobs_;

    // Model-option scalars hoisted once (names match batch.cpp).
    double layersD_ = 0.0;
    double seqD_ = 0.0;
    double bwdCompute_ = 0.0;
    double fb_ = 0.0;
    double ppMult_ = 0.0;
    double bubbleRatio_ = 0.0;

    CancelToken token_;
    RunStatus primeStatus_ = RunStatus::Completed;

    core::SweepTermCache cache_;
    std::vector<MappingInfo> mappingInfos_;
    std::vector<JobInfo> jobInfos_;
    std::vector<JcEntry> jc_;
    std::vector<std::vector<std::size_t>> classMembers_;
};

} // namespace explore
} // namespace amped

#endif // AMPED_EXPLORE_SWEEP_KERNEL_HPP

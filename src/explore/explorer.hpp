/**
 * @file
 * Design-space exploration engine (paper Sec. VI: "exhaustive
 * exploration ... all possible combinations of data, pipeline, and
 * tensor parallelism in intra-node and inter-node accelerators").
 *
 * The Explorer evaluates a set of (mapping, batch) points with one
 * AmpedModel, skips points that are infeasible (batch too small for
 * the mapping, pipeline deeper than the layer count), ranks the
 * rest, and renders report tables.
 *
 * Sweeps run in parallel on the shared ThreadPool: the (mapping x
 * job) grid is enumerated up front, each point is evaluated into a
 * slot indexed by its grid position, and the slots are reduced in
 * grid order afterwards — so entry order, skip counters, tables and
 * CSVs are byte-identical to a serial run at any thread count.
 * AmpedModel::evaluate and MemoryModel::fits are const and touch no
 * shared mutable state (audited: the only mutable member in the
 * library, hw::EfficiencyFitter::lastResidual_, is not reachable
 * from an evaluation), which is what makes the concurrent
 * evaluation of one shared model instance safe.
 */

#ifndef AMPED_EXPLORE_EXPLORER_HPP
#define AMPED_EXPLORE_EXPLORER_HPP

#include <optional>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "core/amped_model.hpp"
#include "core/memory_model.hpp"

namespace amped {
namespace explore {

/** One evaluated design point. */
struct SweepEntry
{
    mapping::ParallelismConfig mapping; ///< The parallelism choice.
    double batchSize = 0.0;             ///< Global batch size.
    core::EvaluationResult result;      ///< AMPeD prediction.
};

/** Outcome of a sweep: feasible points plus skip counts. */
struct SweepResult
{
    std::vector<SweepEntry> entries; ///< Feasible, evaluated points.
    std::size_t skipped = 0;         ///< Infeasible points dropped.
    std::size_t memorySkipped = 0;   ///< Dropped by the memory check.

    /**
     * Points that degraded instead of aborting the sweep: the model
     * threw a non-UserError exception or produced a non-finite total
     * time.  Each such point stays in entries with every numeric
     * result NaN-pinned (the golden layer's marker for "no value
     * here") and one warning logged, so a single broken point cannot
     * kill a design-space exploration.
     */
    std::size_t failed = 0;

    /**
     * How the sweep ended.  Completed means the whole grid was
     * evaluated.  Cancelled / DeadlineExceeded mean the sweep stopped
     * at a block checkpoint: entries / skipped / memorySkipped /
     * failed then describe exactly the first visitedPoints grid
     * points — bit-identical to the same prefix of a full run at any
     * thread count (the determinism contract in common/cancel.hpp).
     */
    RunStatus status = RunStatus::Completed;

    /** Grid points actually evaluated (== the grid size when
     *  Completed). */
    std::size_t visitedPoints = 0;

    /** Grid points never visited because the sweep stopped; always
     *  visitedPoints + cancelledUnvisited == grid size. */
    std::size_t cancelledUnvisited = 0;
};

/**
 * Evaluates mapping/batch sweeps against one model instance.
 */
class Explorer
{
  public:
    /** @param model The evaluator to drive (copied; it is cheap). */
    explicit Explorer(core::AmpedModel model);

    /**
     * Evaluates every mapping at every batch size.  Infeasible
     * combinations are counted in SweepResult::skipped instead of
     * aborting the sweep.
     *
     * @param mappings Candidate mappings (each must fit the system).
     * @param batch_sizes Global batch sizes to cross with them.
     * @param job_template Job whose batchSize is overwritten per
     *        point (token budget and microbatching carry over).
     */
    SweepResult sweep(const std::vector<mapping::ParallelismConfig>
                          &mappings,
                      const std::vector<double> &batch_sizes,
                      const core::TrainingJob &job_template) const;

    /**
     * Evaluates every mapping under every fully-specified job (the
     * general grid: jobs may differ in batch size, microbatching
     * overrides, token budget...).  sweep() is the common case of
     * jobs that differ only in batch size; Case Study II uses this
     * directly to tune the pipeline microbatch per mapping.
     */
    SweepResult
    sweepJobs(const std::vector<mapping::ParallelismConfig> &mappings,
              const std::vector<core::TrainingJob> &jobs) const;

    /**
     * Evaluates the full mapping space of the model's system (every
     * intra x inter factorization), capped at a pipeline degree of
     * the model's layer count.
     *
     * Results are memoized process-wide on the full configuration
     * (model, accelerator, system, options, memory model, job, batch
     * sizes): repeating an identical sweepAll call returns the cached
     * result without re-evaluating the grid.  Cache hits do not
     * re-emit per-point warnings.  Hit/miss totals are published as
     * the `explore.sweep_cache.*` counters in the metrics registry.
     */
    SweepResult sweepAll(const std::vector<double> &batch_sizes,
                         const core::TrainingJob &job_template) const;

    /**
     * Caps sweep parallelism.  0 (the default) uses AMPED_THREADS
     * or every hardware thread; 1 forces the serial path.  Results
     * are identical at any setting — this only trades wall clock.
     */
    void setThreads(unsigned threads) { threads_ = threads; }

    /** The configured parallelism cap (0 = automatic). */
    unsigned threads() const { return threads_; }

    /**
     * Installs a cancellation token observed by every subsequent
     * sweep: the grid is checkpointed between SoA blocks
     * (explore::kSweepBlockPoints points), and a stop produces a
     * deterministic prefix result (see SweepResult::status).  The
     * default inert token costs nothing and never stops anything.
     */
    void setCancelToken(CancelToken token)
    {
        token_ = std::move(token);
    }

    /** The installed cancellation token (inert by default). */
    const CancelToken &cancelToken() const { return token_; }

    /**
     * Selects the sweep evaluation engine.  true (the default) runs
     * the batched structure-of-arrays kernels (explore/batch.hpp);
     * false runs the historical scalar per-point loop.  The two
     * engines are byte-identical — entries, counters, NaN pinning and
     * warning lines — so this only trades wall clock; the scalar path
     * is kept as the differential-testing reference and as an escape
     * hatch.
     *
     * The construction-time default honours the AMPED_SWEEP_ENGINE
     * environment variable: "scalar" starts Explorers on the scalar
     * path, "batch" (or unset, or anything else) on the batched one.
     */
    void setBatchMode(bool batched) { batchMode_ = batched; }

    /** True when sweeps run the batched SoA engine. */
    bool batchMode() const { return batchMode_; }

    /**
     * The entry with the lowest total training time, if any.
     * NaN-pinned (failed) entries rank last, so they are only
     * returned when nothing real was evaluated.
     */
    static std::optional<SweepEntry>
    best(const SweepResult &sweep_result);

    /**
     * Sorts entries ascending by total training time; NaN-pinned
     * entries sort to the end (NaN compares as +infinity, keeping
     * the comparator a strict weak ordering).
     */
    static void sortByTime(std::vector<SweepEntry> &entries);

    /** The underlying model. */
    const core::AmpedModel &model() const { return model_; }

    /**
     * Enables per-accelerator memory screening: sweep points whose
     * footprint exceeds the device capacity are counted in
     * SweepResult::memorySkipped instead of being evaluated
     * (paper future work; DESIGN.md Sec. 7).
     */
    void setMemoryModel(core::MemoryModel memory_model);

    /** Disables memory screening. */
    void clearMemoryModel() { memoryModel_.reset(); }

  private:
    /** The historical per-point evaluation loop (reference engine). */
    SweepResult sweepJobsScalar(
        const std::vector<mapping::ParallelismConfig> &mappings,
        const std::vector<core::TrainingJob> &jobs) const;

    core::AmpedModel model_;
    std::optional<core::MemoryModel> memoryModel_;
    unsigned threads_ = 0;
    bool batchMode_;
    CancelToken token_;
};

/**
 * Renders a sweep as an aligned text table (mapping, batch,
 * microbatch size, efficiency, time/batch, training days,
 * TFLOP/s/GPU).
 */
std::string sweepTable(const std::vector<SweepEntry> &entries);

/**
 * Renders a per-phase breakdown table for one result (Fig. 3 style),
 * with each phase's share of the total.
 */
std::string breakdownTable(const core::EvaluationResult &result);

/**
 * Renders a sweep as CSV with machine-friendly numeric columns
 * (mapping string, degrees, batch, microbatch, efficiency, seconds
 * per batch, total seconds, TFLOP/s/GPU, per-phase seconds).
 */
std::string sweepCsv(const std::vector<SweepEntry> &entries);

} // namespace explore
} // namespace amped

#endif // AMPED_EXPLORE_EXPLORER_HPP

/**
 * @file
 * One-stop markdown report generator: combines the performance
 * prediction, per-phase breakdown, memory footprint, and energy
 * estimate for a single (model, system, mapping, job) design point
 * into a document a team can attach to a capacity-planning request.
 */

#ifndef AMPED_EXPLORE_REPORT_HPP
#define AMPED_EXPLORE_REPORT_HPP

#include <string>

#include "core/amped_model.hpp"
#include "core/energy_model.hpp"
#include "core/memory_model.hpp"

namespace amped {
namespace explore {

/** Everything a report needs beyond the evaluator itself. */
struct ReportOptions
{
    /** Memory-model knobs (ZeRO stage, recompute...). */
    core::MemoryOptions memory;

    /** Power characteristics for the energy section. */
    core::PowerSpec power;

    /** Report title; empty derives one from model + system names. */
    std::string title;
};

/**
 * Renders the full markdown report.
 *
 * @param model The evaluator (provides model/accel/system context).
 * @param mapping The parallelism mapping under review.
 * @param job The training job.
 * @param options Report add-ons.
 */
std::string generateReport(const core::AmpedModel &model,
                           const mapping::ParallelismConfig &mapping,
                           const core::TrainingJob &job,
                           const ReportOptions &options = {});

} // namespace explore
} // namespace amped

#endif // AMPED_EXPLORE_REPORT_HPP

/**
 * @file
 * Name-based preset registries used by the command-line tool and
 * example programs: look up models, accelerators and interconnects
 * by the short names a user types.
 */

#ifndef AMPED_EXPLORE_REGISTRY_HPP
#define AMPED_EXPLORE_REGISTRY_HPP

#include <string>
#include <vector>

#include "hw/accelerator.hpp"
#include "model/transformer_config.hpp"
#include "net/link.hpp"

namespace amped {
namespace explore {

/**
 * Model preset by name: mingpt, mingpt-pp, gpt3, 145b, 310b, 530b,
 * 1t, gpipe24, glam, tiny (case-insensitive).
 *
 * @throws UserError listing the valid names on a miss.
 */
model::TransformerConfig modelByName(const std::string &name);

/** Valid model names for help text. */
std::vector<std::string> modelNames();

/**
 * Accelerator preset by name: p100, v100, a100, h100, tiny.
 *
 * @throws UserError listing the valid names on a miss.
 */
hw::AcceleratorConfig acceleratorByName(const std::string &name);

/** Valid accelerator names. */
std::vector<std::string> acceleratorNames();

/**
 * Interconnect preset by name: nvlink-v100, nvlink-a100,
 * nvlink-h100, pcie3, edr, hdr, ndr.
 *
 * @throws UserError listing the valid names on a miss.
 */
net::LinkConfig interconnectByName(const std::string &name);

/** Valid interconnect names. */
std::vector<std::string> interconnectNames();

} // namespace explore
} // namespace amped

#endif // AMPED_EXPLORE_REGISTRY_HPP

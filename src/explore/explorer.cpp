#include "explorer.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace amped {
namespace explore {

Explorer::Explorer(core::AmpedModel model) : model_(std::move(model)) {}

void
Explorer::setMemoryModel(core::MemoryModel memory_model)
{
    memoryModel_.emplace(std::move(memory_model));
}

SweepResult
Explorer::sweep(const std::vector<mapping::ParallelismConfig> &mappings,
                const std::vector<double> &batch_sizes,
                const core::TrainingJob &job_template) const
{
    SweepResult out;
    for (const auto &m : mappings) {
        for (double batch : batch_sizes) {
            core::TrainingJob job = job_template;
            job.batchSize = batch;
            try {
                if (memoryModel_) {
                    const double ub =
                        job.microbatching.microbatchSize(batch, m);
                    if (!memoryModel_->fits(m, batch, ub)) {
                        ++out.memorySkipped;
                        continue;
                    }
                }
                SweepEntry entry;
                entry.mapping = m;
                entry.batchSize = batch;
                entry.result = model_.evaluate(m, job);
                out.entries.push_back(std::move(entry));
            } catch (const UserError &) {
                // Infeasible point (batch too small, bad mapping):
                // skip it, keep sweeping.
                ++out.skipped;
            }
        }
    }
    return out;
}

SweepResult
Explorer::sweepAll(const std::vector<double> &batch_sizes,
                   const core::TrainingJob &job_template) const
{
    mapping::MappingSpace space(model_.system());
    const std::int64_t max_pp = model_.opCounter().config().numLayers;
    return sweep(space.enumerate(max_pp), batch_sizes, job_template);
}

std::optional<SweepEntry>
Explorer::best(const SweepResult &sweep_result)
{
    if (sweep_result.entries.empty())
        return std::nullopt;
    const auto it = std::min_element(
        sweep_result.entries.begin(), sweep_result.entries.end(),
        [](const SweepEntry &a, const SweepEntry &b) {
            return a.result.totalTime < b.result.totalTime;
        });
    return *it;
}

void
Explorer::sortByTime(std::vector<SweepEntry> &entries)
{
    std::stable_sort(entries.begin(), entries.end(),
                     [](const SweepEntry &a, const SweepEntry &b) {
                         return a.result.totalTime < b.result.totalTime;
                     });
}

std::string
sweepTable(const std::vector<SweepEntry> &entries)
{
    TextTable table({"mapping", "batch", "ub", "eff", "time/batch",
                     "training", "TFLOP/s/GPU"});
    for (const auto &e : entries) {
        table.addRow({
            e.mapping.toString(),
            units::formatFixed(e.batchSize, 0),
            units::formatFixed(e.result.microbatchSize, 1),
            units::formatFixed(e.result.efficiency, 3),
            units::formatDuration(e.result.timePerBatch),
            units::formatDuration(e.result.totalTime),
            units::formatFixed(e.result.achievedFlopsPerGpu /
                                   units::tera,
                               1),
        });
    }
    std::ostringstream oss;
    table.print(oss);
    return oss.str();
}

std::string
sweepCsv(const std::vector<SweepEntry> &entries)
{
    std::vector<std::string> headers = {
        "mapping", "tp",         "pp",          "dp",
        "batch",   "microbatch", "efficiency",  "seconds_per_batch",
        "total_seconds", "tflops_per_gpu"};
    for (const auto &[label, seconds] :
         core::Breakdown{}.phases()) {
        (void)seconds;
        std::string key = label;
        for (char &ch : key)
            if (ch == '-')
                ch = '_';
        headers.push_back(key + "_seconds");
    }
    TextTable table(std::move(headers));
    for (const auto &e : entries) {
        std::vector<std::string> row = {
            e.mapping.toString(),
            std::to_string(e.mapping.tp()),
            std::to_string(e.mapping.pp()),
            std::to_string(e.mapping.dp()),
            units::formatFixed(e.batchSize, 0),
            units::formatFixed(e.result.microbatchSize, 4),
            units::formatFixed(e.result.efficiency, 6),
            units::formatFixed(e.result.timePerBatch, 6),
            units::formatFixed(e.result.totalTime, 3),
            units::formatFixed(
                e.result.achievedFlopsPerGpu / units::tera, 3)};
        for (const auto &[label, seconds] : e.result.perBatch.phases()) {
            (void)label;
            row.push_back(units::formatFixed(seconds, 9));
        }
        table.addRow(std::move(row));
    }
    std::ostringstream oss;
    table.printCsv(oss);
    return oss.str();
}

std::string
breakdownTable(const core::EvaluationResult &result)
{
    TextTable table({"phase", "time/batch", "share"});
    const double total = result.perBatch.total();
    for (const auto &[label, seconds] : result.perBatch.phases()) {
        const double share = total > 0.0 ? seconds / total : 0.0;
        table.addRow({label, units::formatDuration(seconds),
                      units::formatFixed(100.0 * share, 2) + " %"});
    }
    table.addRow({"total", units::formatDuration(total), "100.00 %"});
    std::ostringstream oss;
    table.print(oss);
    return oss.str();
}

} // namespace explore
} // namespace amped

#include "explorer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "explore/batch.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace explore {

namespace {

/**
 * Construction-time engine default: the batched SoA kernels unless
 * AMPED_SWEEP_ENGINE=scalar asks for the historical per-point loop
 * (escape hatch; the two engines are byte-identical).
 */
bool
defaultBatchMode()
{
    const char *env = std::getenv("AMPED_SWEEP_ENGINE");
    return env == nullptr || std::string_view(env) != "scalar";
}

/** Sort key mapping NaN to +infinity (strict weak ordering safe). */
double
timeKey(const SweepEntry &entry)
{
    const double t = entry.result.totalTime;
    return std::isnan(t) ? std::numeric_limits<double>::infinity()
                         : t;
}

// ---------------------------------------------------------------------
// sweepAll memoization: repeated sweeps over identical (model, memory
// model, batch sizes, job) tuples — the pattern of a CLI serving
// repeated queries — skip the grid entirely.  The canonical key
// string captures every input that can influence the result; its
// FNV-1a hash indexes the cache and the full key is verified on a
// hit, so a hash collision degrades to a miss instead of a wrong
// answer.  The sweep thread count is deliberately NOT part of the
// key: sweeps are byte-identical at every thread count.
// ---------------------------------------------------------------------

/** Streams one value followed by a separator. */
template <typename T>
void
keyPart(std::ostringstream &oss, const T &value)
{
    oss << value << '|';
}

void
keyLink(std::ostringstream &oss, const net::LinkConfig &link)
{
    keyPart(oss, link.name);
    keyPart(oss, link.latency);
    keyPart(oss, link.bandwidth);
}

/**
 * Canonical description of everything a sweepAll result depends on.
 */
std::string
sweepCacheKey(const core::AmpedModel &model,
              const std::optional<core::MemoryModel> &memory_model,
              const std::vector<double> &batch_sizes,
              const core::TrainingJob &job, unsigned threads)
{
    std::ostringstream oss;
    oss.precision(17);

    // Results are byte-identical across thread counts, but keying on
    // the setting keeps the serial-vs-parallel differential tests
    // honest: a sweep with a different thread count re-executes
    // instead of returning the other configuration's cached result.
    keyPart(oss, threads);

    const auto &cfg = model.opCounter().config();
    keyPart(oss, cfg.name);
    keyPart(oss, cfg.numLayers);
    keyPart(oss, cfg.hiddenSize);
    keyPart(oss, cfg.numHeads);
    keyPart(oss, cfg.seqLength);
    keyPart(oss, cfg.vocabSize);
    keyPart(oss, cfg.ffnHiddenSize);
    keyPart(oss, cfg.moe.numExperts);
    keyPart(oss, cfg.moe.expertsPerToken);
    keyPart(oss, cfg.moe.moeLayerInterval);

    const auto &ops = model.opCounter().options();
    keyPart(oss, ops.softmaxOpsPerScore);
    keyPart(oss, ops.geluOpsPerElement);
    keyPart(oss, ops.layerNormOpsPerElement);
    keyPart(oss, ops.residualOpsPerElement);
    keyPart(oss, ops.activationRecompute);
    keyPart(oss, ops.includeEmbeddingFlops);

    const auto &accel = model.accelerator();
    keyPart(oss, accel.name);
    keyPart(oss, accel.frequency);
    keyPart(oss, accel.numCores);
    keyPart(oss, accel.numMacUnits);
    keyPart(oss, accel.macUnitWidth);
    keyPart(oss, accel.numNonlinUnits);
    keyPart(oss, accel.nonlinUnitWidth);
    keyPart(oss, accel.memoryBytes);
    keyPart(oss, accel.offChipBandwidth);
    keyPart(oss, accel.precisions.parameterBits);
    keyPart(oss, accel.precisions.activationBits);
    keyPart(oss, accel.precisions.nonlinearBits);
    keyPart(oss, accel.precisions.macUnitBits);
    keyPart(oss, accel.precisions.nonlinearUnitBits);

    const auto &eff = model.efficiency();
    keyPart(oss, eff.a());
    keyPart(oss, eff.b());
    keyPart(oss, eff.floor());
    keyPart(oss, eff.criticalUb());
    keyPart(oss, eff.decayPerUb());

    const auto &system = model.system();
    keyPart(oss, system.name);
    keyPart(oss, system.numNodes);
    keyPart(oss, system.acceleratorsPerNode);
    keyPart(oss, system.nicsPerNode);
    keyPart(oss, system.interIsPooledFabric);
    keyLink(oss, system.intraLink);
    keyLink(oss, system.interLink);

    const auto &opts = model.options();
    keyPart(oss, opts.bubbleOverlapRatio);
    keyPart(oss, opts.zeroDpOverhead);
    keyPart(oss, opts.backwardComputeMultiplier);
    keyPart(oss, opts.backwardCommMultiplier);
    keyPart(oss, opts.ppCommMultiplier);
    keyPart(oss, opts.gradientBits);
    keyPart(oss, opts.hierarchicalGradAllReduce);
    keyPart(oss, opts.intraTopologyFactorOverride);
    keyPart(oss, opts.interTopologyFactorOverride);
    keyPart(oss, opts.enableMoeComm);

    keyPart(oss, memory_model.has_value());
    if (memory_model) {
        const auto &mem = memory_model->options();
        keyPart(oss, static_cast<int>(mem.zeroStage));
        keyPart(oss, mem.optimizerBytesPerParam);
        keyPart(oss, mem.activationRecompute);
        keyPart(oss, mem.activationsInFlightOverride);
        keyPart(oss, mem.workspaceBytes);
    }

    keyPart(oss, job.batchSize);
    keyPart(oss, job.totalTrainingTokens);
    keyPart(oss, job.numBatchesOverride);
    keyPart(oss, job.microbatching.microbatchSizeOverride);
    keyPart(oss, job.microbatching.numMicrobatchesOverride);

    keyPart(oss, batch_sizes.size());
    for (const double batch : batch_sizes)
        keyPart(oss, batch);

    return oss.str();
}

struct SweepCacheEntry
{
    std::string key;   ///< Full canonical key (collision guard).
    SweepResult result;
    std::uint64_t stamp = 0; ///< Recency stamp (larger = fresher).
};

/**
 * At capacity — an entry-count cap or a resident-byte budget,
 * whichever bites first — the least-recently-used entry is evicted
 * (recency = last hit or insertion), so a working set of repeated
 * queries stays resident even while one-off sweeps churn through the
 * cache.  Evictions are published as
 * `explore.sweep_cache.evictions` / `.evicted_bytes`, and occupancy
 * as the `explore.sweep_cache.bytes` / `.entries` gauges.
 */
constexpr std::size_t kSweepCacheCapacity = 64;

/** Resident-byte budget for the memoized sweep results. */
constexpr std::size_t kSweepCacheBudgetBytes = 64u << 20;

/**
 * Approximate resident footprint of one memo entry: the canonical
 * key plus the sweep's entry array (the dominant term for any
 * non-trivial grid).  Advisory accounting for the byte budget, not
 * an allocator-exact measure.
 */
std::size_t
sweepCacheEntryBytes(const SweepCacheEntry &entry)
{
    return sizeof(SweepCacheEntry) + entry.key.size() +
           entry.result.entries.size() * sizeof(SweepEntry);
}

/**
 * Process-wide memo store behind sweepAll.  One annotated struct
 * instead of the historical per-datum function-local statics, so
 * Clang's thread-safety analysis proves that the map, the resident-
 * byte count, and the recency clock are only touched with the mutex
 * held (previously the guard was a doc comment).
 */
struct SweepMemo
{
    Mutex mutex;
    std::unordered_map<std::uint64_t, SweepCacheEntry> entries
        AMPED_GUARDED_BY(mutex);
    std::size_t bytes AMPED_GUARDED_BY(mutex) = 0;
    /** Monotonic recency clock (larger = fresher). */
    std::uint64_t clock AMPED_GUARDED_BY(mutex) = 0;

    static SweepMemo &
    instance()
    {
        // Leaked intentionally: sweeps issued from static
        // destructors of other TUs may still hit the memo at
        // shutdown.
        static auto *memo = new SweepMemo();
        return *memo;
    }
};

} // namespace

Explorer::Explorer(core::AmpedModel model)
    : model_(std::move(model)), batchMode_(defaultBatchMode())
{}

void
Explorer::setMemoryModel(core::MemoryModel memory_model)
{
    memoryModel_.emplace(std::move(memory_model));
}

SweepResult
Explorer::sweep(const std::vector<mapping::ParallelismConfig> &mappings,
                const std::vector<double> &batch_sizes,
                const core::TrainingJob &job_template) const
{
    std::vector<core::TrainingJob> jobs;
    jobs.reserve(batch_sizes.size());
    for (double batch : batch_sizes) {
        core::TrainingJob job = job_template;
        job.batchSize = batch;
        jobs.push_back(job);
    }
    return sweepJobs(mappings, jobs);
}

SweepResult
Explorer::sweepJobs(
    const std::vector<mapping::ParallelismConfig> &mappings,
    const std::vector<core::TrainingJob> &jobs) const
{
    auto &metrics = obs::MetricsRegistry::global();
    static obs::Counter &points_counter =
        metrics.counter("explore.sweep.points");
    static obs::Counter &feasible_counter =
        metrics.counter("explore.sweep.feasible");
    static obs::Counter &infeasible_counter =
        metrics.counter("explore.sweep.infeasible");
    static obs::Counter &over_memory_counter =
        metrics.counter("explore.sweep.over_memory");
    static obs::Counter &failed_counter =
        metrics.counter("explore.sweep.failed");
    static obs::Histogram &sweep_seconds =
        metrics.histogram("explore.sweep.seconds", /*timing=*/true);
    obs::ScopedTimer timer(sweep_seconds);

    SweepResult out;
    const std::size_t count = mappings.size() * jobs.size();
    points_counter.add(count);
    if (count == 0)
        return out;

    if (batchMode_) {
        out = sweepJobsBatched(
            model_, memoryModel_ ? &*memoryModel_ : nullptr, mappings,
            jobs,
            threads_ > 0 ? threads_
                         : ThreadPool::defaultThreadCount(),
            token_);
    } else {
        out = sweepJobsScalar(mappings, jobs);
    }

    feasible_counter.add(out.entries.size() - out.failed);
    infeasible_counter.add(out.skipped);
    over_memory_counter.add(out.memorySkipped);
    failed_counter.add(out.failed);
    return out;
}

SweepResult
Explorer::sweepJobsScalar(
    const std::vector<mapping::ParallelismConfig> &mappings,
    const std::vector<core::TrainingJob> &jobs) const
{
    SweepResult out;
    const std::size_t count = mappings.size() * jobs.size();

    // Grid order is mapping-major (all jobs of mapping 0, then
    // mapping 1, ...), matching the historical serial double loop.
    // Every point writes only its own slot; the reduction below
    // walks the slots in grid order, so entries and skip counters
    // come out identical to a serial run at any thread count.
    enum class PointStatus : unsigned char
    {
        infeasible,
        overMemory,
        feasible,
        failedPoint
    };
    std::vector<PointStatus> status(count, PointStatus::infeasible);
    std::vector<core::EvaluationResult> results(count);
    std::vector<std::string> failures(count);

    const auto evaluatePoint = [&](std::size_t index) {
        const auto &m = mappings[index / jobs.size()];
        const core::TrainingJob &job = jobs[index % jobs.size()];
        try {
            if (memoryModel_) {
                const double ub = job.microbatching.microbatchSize(
                    job.batchSize, m);
                if (!memoryModel_->fits(m, job.batchSize, ub)) {
                    status[index] = PointStatus::overMemory;
                    return;
                }
            }
            results[index] = model_.evaluate(m, job);
            if (!std::isfinite(results[index].totalTime)) {
                // Evaluation "succeeded" but produced garbage —
                // degrade the point instead of poisoning rankings.
                status[index] = PointStatus::failedPoint;
                failures[index] = "non-finite total time";
                return;
            }
            status[index] = PointStatus::feasible;
        } catch (const UserError &) {
            // Infeasible point (batch too small, bad mapping):
            // skip it, keep sweeping.
            status[index] = PointStatus::infeasible;
        } catch (const std::exception &e) {
            // Anything else is a real evaluation failure; NaN-pin
            // the point so one broken point cannot kill the sweep.
            status[index] = PointStatus::failedPoint;
            failures[index] = e.what();
        }
    };

    // Blocked like the batched engine (kSweepBlockPoints points per
    // block, one checkpoint before each), so the two engines share
    // one cancellation granularity and produce the same deterministic
    // prefixes.  A point costs microseconds; chunks of 8 keep the
    // cursor cold.
    for (std::size_t base = 0; base < count;
         base += kSweepBlockPoints) {
        const RunStatus stop = token_.checkpoint();
        if (stop != RunStatus::Completed) {
            out.status = stop;
            out.cancelledUnvisited = count - base;
            return out;
        }

        const std::size_t block =
            std::min(kSweepBlockPoints, count - base);
        const RunStatus loop = ThreadPool::shared().parallelFor(
            block, /*chunk=*/8,
            [&](std::size_t i) { evaluatePoint(base + i); }, token_,
            threads_ > 0 ? threads_
                         : ThreadPool::defaultThreadCount());
        if (loop != RunStatus::Completed) {
            // Mid-block stop: slots are torn; discard the block.
            out.status = loop;
            out.cancelledUnvisited = count - base;
            return out;
        }

        for (std::size_t index = base; index < base + block;
             ++index) {
            switch (status[index]) {
            case PointStatus::feasible: {
                SweepEntry entry;
                entry.mapping = mappings[index / jobs.size()];
                entry.batchSize = jobs[index % jobs.size()].batchSize;
                entry.result = std::move(results[index]);
                out.entries.push_back(std::move(entry));
                break;
            }
            case PointStatus::infeasible:
                ++out.skipped;
                break;
            case PointStatus::overMemory:
                ++out.memorySkipped;
                break;
            case PointStatus::failedPoint: {
                // Serial reduction loop: warnings come out in grid
                // order at every thread count.
                const auto &m = mappings[index / jobs.size()];
                const double batch =
                    jobs[index % jobs.size()].batchSize;
                log::warn("sweep point ", m.toString(), " batch ",
                          batch, " failed (", failures[index],
                          "); pinning it to nan");
                SweepEntry entry;
                entry.mapping = m;
                entry.batchSize = batch;
                entry.result = nanPinnedResult();
                out.entries.push_back(std::move(entry));
                ++out.failed;
                break;
            }
            }
        }
        out.visitedPoints += block;
    }
    return out;
}

SweepResult
Explorer::sweepAll(const std::vector<double> &batch_sizes,
                   const core::TrainingJob &job_template) const
{
    auto &metrics = obs::MetricsRegistry::global();
    static obs::Counter &hits =
        metrics.counter("explore.sweep_cache.hits");
    static obs::Counter &misses =
        metrics.counter("explore.sweep_cache.misses");
    static obs::Counter &evictions =
        metrics.counter("explore.sweep_cache.evictions");
    static obs::Counter &evicted_bytes =
        metrics.counter("explore.sweep_cache.evicted_bytes");
    static obs::Gauge &bytes_gauge =
        metrics.gauge("explore.sweep_cache.bytes");
    static obs::Gauge &entries_gauge =
        metrics.gauge("explore.sweep_cache.entries");

    const std::string key = sweepCacheKey(
        model_, memoryModel_, batch_sizes, job_template, threads_);
    const std::uint64_t hash = fnv1a64(key);
    SweepMemo &memo = SweepMemo::instance();
    {
        MutexLock lock(memo.mutex);
        const auto it = memo.entries.find(hash);
        if (it != memo.entries.end() && it->second.key == key) {
            hits.add(1);
            it->second.stamp = ++memo.clock;
            return it->second.result;
        }
    }
    misses.add(1);

    mapping::MappingSpace space(model_.system());
    const std::int64_t max_pp = model_.opCounter().config().numLayers;
    SweepResult result =
        sweep(space.enumerate(max_pp), batch_sizes, job_template);

    // Never memoize a stopped sweep: its prefix is valid for this
    // caller but would silently serve as "the full grid" to the next
    // one.  (Serving a cached *complete* result to a deadline-bounded
    // caller is fine — the work is already done.)
    if (result.status != RunStatus::Completed)
        return result;

    {
        MutexLock lock(memo.mutex);
        auto &cache = memo.entries;
        SweepCacheEntry fresh{key, result, ++memo.clock};
        const std::size_t fresh_bytes = sweepCacheEntryBytes(fresh);
        if (const auto old = cache.find(hash); old != cache.end()) {
            memo.bytes -= sweepCacheEntryBytes(old->second);
            cache.erase(old);
        }
        // Evict down to both caps before inserting.  The capacity is
        // small enough that a linear LRU scan beats maintaining an
        // intrusive list.
        while (!cache.empty() &&
               (cache.size() >= kSweepCacheCapacity ||
                memo.bytes + fresh_bytes > kSweepCacheBudgetBytes)) {
            auto lru = cache.begin();
            for (auto it = cache.begin(); it != cache.end(); ++it)
                if (it->second.stamp < lru->second.stamp)
                    lru = it;
            const std::size_t lru_bytes =
                sweepCacheEntryBytes(lru->second);
            memo.bytes -= lru_bytes;
            cache.erase(lru);
            evictions.add(1);
            evicted_bytes.add(lru_bytes);
        }
        memo.bytes += fresh_bytes;
        cache[hash] = std::move(fresh);
        bytes_gauge.set(static_cast<double>(memo.bytes));
        entries_gauge.set(static_cast<double>(cache.size()));
    }
    return result;
}

std::optional<SweepEntry>
Explorer::best(const SweepResult &sweep_result)
{
    if (sweep_result.entries.empty())
        return std::nullopt;
    const auto it = std::min_element(
        sweep_result.entries.begin(), sweep_result.entries.end(),
        [](const SweepEntry &a, const SweepEntry &b) {
            return timeKey(a) < timeKey(b);
        });
    return *it;
}

void
Explorer::sortByTime(std::vector<SweepEntry> &entries)
{
    std::stable_sort(entries.begin(), entries.end(),
                     [](const SweepEntry &a, const SweepEntry &b) {
                         return timeKey(a) < timeKey(b);
                     });
}

std::string
sweepTable(const std::vector<SweepEntry> &entries)
{
    TextTable table({"mapping", "batch", "ub", "eff", "time/batch",
                     "training", "TFLOP/s/GPU"});
    for (const auto &e : entries) {
        table.addRow({
            e.mapping.toString(),
            units::formatFixed(e.batchSize, 0),
            units::formatFixed(e.result.microbatchSize, 1),
            units::formatFixed(e.result.efficiency, 3),
            units::formatDuration(e.result.timePerBatch),
            units::formatDuration(e.result.totalTime),
            units::formatFixed(e.result.achievedFlopsPerGpu /
                                   units::tera,
                               1),
        });
    }
    std::ostringstream oss;
    table.print(oss);
    return oss.str();
}

std::string
sweepCsv(const std::vector<SweepEntry> &entries)
{
    std::vector<std::string> headers = {
        "mapping", "tp",         "pp",          "dp",
        "batch",   "microbatch", "efficiency",  "seconds_per_batch",
        "total_seconds", "tflops_per_gpu"};
    // Derive the phase columns from the first entry so headers and
    // data rows can never silently misalign; every entry must carry
    // the same phase set (checked below).
    const auto reference_phases = entries.empty()
                                      ? core::Breakdown{}.phases()
                                      : entries.front()
                                            .result.perBatch.phases();
    for (const auto &[label, seconds] : reference_phases) {
        (void)seconds;
        std::string key = label;
        for (char &ch : key)
            if (ch == '-')
                ch = '_';
        headers.push_back(key + "_seconds");
    }
    TextTable table(std::move(headers));
    for (const auto &e : entries) {
        std::vector<std::string> row = {
            e.mapping.toString(),
            std::to_string(e.mapping.tp()),
            std::to_string(e.mapping.pp()),
            std::to_string(e.mapping.dp()),
            units::formatFixed(e.batchSize, 0),
            units::formatFixed(e.result.microbatchSize, 4),
            units::formatFixed(e.result.efficiency, 6),
            units::formatFixed(e.result.timePerBatch, 6),
            units::formatFixed(e.result.totalTime, 3),
            units::formatFixed(
                e.result.achievedFlopsPerGpu / units::tera, 3)};
        const auto entry_phases = e.result.perBatch.phases();
        require(entry_phases.size() == reference_phases.size(),
                "sweepCsv: entry for ", e.mapping.toString(),
                " has ", entry_phases.size(), " phases, header has ",
                reference_phases.size());
        for (std::size_t i = 0; i < entry_phases.size(); ++i) {
            require(entry_phases[i].first == reference_phases[i].first,
                    "sweepCsv: phase mismatch at column ", i, ": '",
                    entry_phases[i].first, "' vs header '",
                    reference_phases[i].first, "'");
            row.push_back(
                units::formatFixed(entry_phases[i].second, 9));
        }
        table.addRow(std::move(row));
    }
    std::ostringstream oss;
    table.printCsv(oss);
    return oss.str();
}

std::string
breakdownTable(const core::EvaluationResult &result)
{
    TextTable table({"phase", "time/batch", "share"});
    const double total = result.perBatch.total();
    for (const auto &[label, seconds] : result.perBatch.phases()) {
        const double share = total > 0.0 ? seconds / total : 0.0;
        table.addRow({label, units::formatDuration(seconds),
                      units::formatFixed(100.0 * share, 2) + " %"});
    }
    table.addRow({"total", units::formatDuration(total), "100.00 %"});
    std::ostringstream oss;
    table.print(oss);
    return oss.str();
}

} // namespace explore
} // namespace amped

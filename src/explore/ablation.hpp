/**
 * @file
 * Ablation harness for the design choices DESIGN.md calls out:
 * bubble-overlap ratio R, ZeRO-DP overhead, hierarchical vs flat
 * gradient all-reduce, and the efficiency floor.
 *
 * Each ablation rebuilds the evaluator with one knob changed and
 * reports the resulting prediction, so benches can show how
 * sensitive the paper's conclusions are to each modeling choice.
 */

#ifndef AMPED_EXPLORE_ABLATION_HPP
#define AMPED_EXPLORE_ABLATION_HPP

#include <string>
#include <vector>

#include "core/amped_model.hpp"

namespace amped {
namespace explore {

/** One ablation data point. */
struct AblationPoint
{
    std::string label;             ///< Knob setting ("R=0.5", ...).
    core::EvaluationResult result; ///< Prediction with that setting.
};

/**
 * Rebuilds AmpedModel instances with varied options around a fixed
 * (model, accelerator, efficiency, system) base.
 */
class AblationRunner
{
  public:
    AblationRunner(model::TransformerConfig model_config,
                   hw::AcceleratorConfig accelerator,
                   hw::MicrobatchEfficiency efficiency,
                   net::SystemConfig system,
                   core::ModelOptions base_options = {},
                   model::OpCountOptions op_options = {});

    /** Evaluates with explicit options (base otherwise). */
    core::EvaluationResult
    evaluateWith(const core::ModelOptions &options,
                 const mapping::ParallelismConfig &mapping,
                 const core::TrainingJob &job) const;

    /** Sweeps the bubble-overlap ratio R of Eq. 8. */
    std::vector<AblationPoint>
    sweepBubbleOverlap(const std::vector<double> &ratios,
                       const mapping::ParallelismConfig &mapping,
                       const core::TrainingJob &job) const;

    /** Sweeps the ZeRO-DP overhead factor M_f_DP of Eq. 5. */
    std::vector<AblationPoint>
    sweepZeroOverhead(const std::vector<double> &overheads,
                      const mapping::ParallelismConfig &mapping,
                      const core::TrainingJob &job) const;

    /** Hierarchical (Eq. 10) vs flat gradient all-reduce. */
    std::vector<AblationPoint>
    compareGradAllReduce(const mapping::ParallelismConfig &mapping,
                         const core::TrainingJob &job) const;

    /**
     * Sweeps the efficiency floor (the knob behind the Fig. 8 kink:
     * "the efficiency curve has a fixed lower limit of 25% in our
     * case").
     */
    std::vector<AblationPoint>
    sweepEfficiencyFloor(const std::vector<double> &floors,
                         const mapping::ParallelismConfig &mapping,
                         const core::TrainingJob &job) const;

  private:
    model::TransformerConfig modelConfig_;
    hw::AcceleratorConfig accel_;
    hw::MicrobatchEfficiency efficiency_;
    net::SystemConfig system_;
    core::ModelOptions baseOptions_;
    model::OpCountOptions opOptions_;
};

} // namespace explore
} // namespace amped

#endif // AMPED_EXPLORE_ABLATION_HPP

#include "batch.hpp"

#include <limits>

#include "explore/sweep_kernel.hpp"

namespace amped {
namespace explore {

core::EvaluationResult
nanPinnedResult()
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    core::EvaluationResult result;
    result.perBatch.computeForward = nan;
    result.perBatch.computeBackward = nan;
    result.perBatch.weightUpdate = nan;
    result.perBatch.commTpIntra = nan;
    result.perBatch.commTpInter = nan;
    result.perBatch.commPp = nan;
    result.perBatch.commMoe = nan;
    result.perBatch.commGradIntra = nan;
    result.perBatch.commGradInter = nan;
    result.perBatch.bubble = nan;
    result.timePerBatch = nan;
    result.numBatches = nan;
    result.totalTime = nan;
    result.microbatchSize = nan;
    result.numMicrobatches = nan;
    result.efficiency = nan;
    result.achievedFlopsPerGpu = nan;
    result.tokensPerSecond = nan;
    return result;
}

SweepResult
sweepJobsBatched(
    const core::AmpedModel &model,
    const core::MemoryModel *memory_model,
    const std::vector<mapping::ParallelismConfig> &mappings,
    const std::vector<core::TrainingJob> &jobs, unsigned max_workers,
    const CancelToken &token)
{
    if (mappings.size() * jobs.size() == 0)
        return SweepResult{};
    const SweepKernel kernel(model, memory_model, mappings, jobs,
                             max_workers, token);
    return kernel.sweepGrid(max_workers);
}

} // namespace explore
} // namespace amped

#include "batch.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "core/batch_terms.hpp"

namespace amped {
namespace explore {

core::EvaluationResult
nanPinnedResult()
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    core::EvaluationResult result;
    result.perBatch.computeForward = nan;
    result.perBatch.computeBackward = nan;
    result.perBatch.weightUpdate = nan;
    result.perBatch.commTpIntra = nan;
    result.perBatch.commTpInter = nan;
    result.perBatch.commPp = nan;
    result.perBatch.commMoe = nan;
    result.perBatch.commGradIntra = nan;
    result.perBatch.commGradInter = nan;
    result.perBatch.bubble = nan;
    result.timePerBatch = nan;
    result.numBatches = nan;
    result.totalTime = nan;
    result.microbatchSize = nan;
    result.numMicrobatches = nan;
    result.efficiency = nan;
    result.achievedFlopsPerGpu = nan;
    result.tokensPerSecond = nan;
    return result;
}

namespace {

/** Mirrors the scalar sweep's per-point classification. */
enum class PointStatus : unsigned char
{
    infeasible,
    overMemory,
    feasible,
    failedPoint
};

/** How a pre-computed sub-step ended (0 = fine). */
enum FailKind : unsigned char
{
    kOk = 0,
    kUserError = 1, ///< Scalar path throws UserError here.
    kError = 2      ///< Scalar path throws another std::exception.
};

/** Grid-constant facts about one mapping. */
struct MappingInfo
{
    FailKind kind = kOk;  ///< validateFor(system) outcome.
    std::string message;  ///< what() when kind == kError.
    std::uint32_t classIdx = 0; ///< (dp, pp) class index.
    double workers = 0.0; ///< double(totalWorkers()).
    double ppD = 0.0;     ///< double(pp()).
    double stageOverlap = 0.0; ///< 1.0 / double(pp()).
    std::int64_t pp = 1;
    std::int64_t tpIntra = 1;
    std::int64_t tpInter = 1;
    std::int64_t ppIntra = 1;
    std::int64_t ppInter = 1;
    std::size_t gradId = 0;
};

/** Grid-constant facts about one job. */
struct JobInfo
{
    FailKind validKind = kOk; ///< job.validate() outcome.
    std::string validMessage;
    FailKind nbKind = kOk; ///< job.numBatches(seq) outcome.
    std::string nbMessage;
    double batch = 0.0;
    double numBatches = 0.0;
    std::size_t flopsId = 0;
};

/**
 * Per-(job x (dp, pp)-class) microbatching facts.  The microbatch
 * size, microbatch count and per-replica batch depend on the mapping
 * only through dp() and pp(), so one row serves every mapping in the
 * class.
 */
struct JcEntry
{
    FailKind ubKind = kOk; ///< microbatchSize outcome.
    std::string ubMessage;
    /**
     * First failure of the remaining pre-term steps, recorded in
     * scalar evaluation order: numMicrobatches, then efficiency.
     */
    FailKind preKind = kOk;
    std::string preMessage;
    double ub = 0.0;
    double nub = 0.0;
    double eff = 0.0;
    double replicaBatch = 0.0;
    std::size_t fwdId = 0;
    std::size_t updId = 0;
    std::size_t moeId = 0;
};

/** Exact-match key for a (dp, pp) mapping class. */
struct DpPpKey
{
    std::int64_t dp = 0;
    std::int64_t pp = 0;
    bool operator==(const DpPpKey &o) const
    {
        return dp == o.dp && pp == o.pp;
    }
};

struct DpPpKeyHash
{
    std::size_t operator()(const DpPpKey &k) const
    {
        // Degrees are small powers of two; a shifted xor is enough.
        return static_cast<std::size_t>(k.dp) * 1315423911u ^
               static_cast<std::size_t>(k.pp);
    }
};

/**
 * Output columns for one block of grid points (structure of arrays).
 * Raw doubles on purpose: Quantity types are unwrapped at this
 * boundary and re-wrapped when the block is reduced, the same
 * boundary core::Breakdown draws for the scalar path.
 */
struct BlockColumns
{
    std::vector<PointStatus> status;
    std::vector<std::string> failures;
    std::vector<double> computeForward;
    std::vector<double> computeBackward;
    std::vector<double> weightUpdate;
    std::vector<double> commTpIntra;
    std::vector<double> commTpInter;
    std::vector<double> commPp;
    std::vector<double> commMoe;
    std::vector<double> commGradIntra;
    std::vector<double> commGradInter;
    std::vector<double> bubble;
    std::vector<double> timePerBatch;
    std::vector<double> numBatches;
    std::vector<double> totalTime;
    std::vector<double> microbatchSize;
    std::vector<double> numMicrobatches;
    std::vector<double> efficiency;
    std::vector<double> achievedFlopsPerGpu;
    std::vector<double> tokensPerSecond;

    void resize(std::size_t n)
    {
        status.assign(n, PointStatus::infeasible);
        failures.assign(n, std::string());
        computeForward.assign(n, 0.0);
        computeBackward.assign(n, 0.0);
        weightUpdate.assign(n, 0.0);
        commTpIntra.assign(n, 0.0);
        commTpInter.assign(n, 0.0);
        commPp.assign(n, 0.0);
        commMoe.assign(n, 0.0);
        commGradIntra.assign(n, 0.0);
        commGradInter.assign(n, 0.0);
        bubble.assign(n, 0.0);
        timePerBatch.assign(n, 0.0);
        numBatches.assign(n, 0.0);
        totalTime.assign(n, 0.0);
        microbatchSize.assign(n, 0.0);
        numMicrobatches.assign(n, 0.0);
        efficiency.assign(n, 0.0);
        achievedFlopsPerGpu.assign(n, 0.0);
        tokensPerSecond.assign(n, 0.0);
    }
};

/** Points per SoA block: caps column memory at a few megabytes. */
constexpr std::size_t kBlockPoints = 1 << 16;

/** Grid points per work-queue grab inside a block. */
constexpr std::size_t kPointChunk = 256;

} // namespace

SweepResult
sweepJobsBatched(
    const core::AmpedModel &model,
    const core::MemoryModel *memory_model,
    const std::vector<mapping::ParallelismConfig> &mappings,
    const std::vector<core::TrainingJob> &jobs, unsigned max_workers)
{
    SweepResult out;
    const std::size_t num_jobs = jobs.size();
    const std::size_t count = mappings.size() * num_jobs;
    if (count == 0)
        return out;

    const auto &cfg = model.opCounter().config();
    const double layers_d = static_cast<double>(cfg.numLayers);
    const double seq_d = static_cast<double>(cfg.seqLength);
    const auto &options = model.options();
    const double bwd_compute = options.backwardComputeMultiplier;
    const double zero_factor = 1.0 + options.zeroDpOverhead;
    const double bwd_factor = options.backwardCommMultiplier;
    const double fb = zero_factor * (1.0 + bwd_factor);
    const double pp_mult = options.ppCommMultiplier;
    const double bubble_ratio = options.bubbleOverlapRatio;

    core::SweepTermCache cache(model);

    // ---- Per-mapping constants and (dp, pp) class assignment. ------
    std::vector<MappingInfo> mapping_infos(mappings.size());
    std::vector<std::size_t> class_representative; // mapping index
    std::unordered_map<DpPpKey, std::uint32_t, DpPpKeyHash> class_ids;
    for (std::size_t i = 0; i < mappings.size(); ++i) {
        const auto &m = mappings[i];
        MappingInfo &info = mapping_infos[i];
        try {
            m.validateFor(model.system());
        } catch (const UserError &) {
            info.kind = kUserError;
        } catch (const std::exception &e) {
            info.kind = kError;
            info.message = e.what();
        }
        info.pp = m.pp();
        info.ppD = static_cast<double>(m.pp());
        info.stageOverlap = 1.0 / static_cast<double>(m.pp());
        info.workers = static_cast<double>(m.totalWorkers());
        info.tpIntra = m.tpIntra;
        info.tpInter = m.tpInter;
        info.ppIntra = m.ppIntra;
        info.ppInter = m.ppInter;
        if (info.kind == kOk)
            info.gradId = cache.registerGrad(m);
        const DpPpKey key{m.dp(), m.pp()};
        const auto it = class_ids.find(key);
        if (it != class_ids.end()) {
            info.classIdx = it->second;
        } else {
            info.classIdx =
                static_cast<std::uint32_t>(class_representative.size());
            class_ids.emplace(key, info.classIdx);
            class_representative.push_back(i);
        }
    }
    const std::size_t num_classes = class_representative.size();

    // ---- Per-job constants. ----------------------------------------
    std::vector<JobInfo> job_infos(num_jobs);
    for (std::size_t j = 0; j < num_jobs; ++j) {
        const auto &job = jobs[j];
        JobInfo &info = job_infos[j];
        info.batch = job.batchSize;
        try {
            job.validate();
        } catch (const UserError &) {
            info.validKind = kUserError;
        } catch (const std::exception &e) {
            info.validKind = kError;
            info.validMessage = e.what();
        }
        try {
            info.numBatches = job.numBatches(cfg.seqLength);
        } catch (const UserError &) {
            info.nbKind = kUserError;
        } catch (const std::exception &e) {
            info.nbKind = kError;
            info.nbMessage = e.what();
        }
        info.flopsId = cache.registerModelFlops(job.batchSize);
    }

    // ---- (job x class) microbatching table + term registration. ----
    std::vector<JcEntry> jc(num_jobs * num_classes);
    for (std::size_t j = 0; j < num_jobs; ++j) {
        const auto &job = jobs[j];
        for (std::size_t c = 0; c < num_classes; ++c) {
            const auto &rep = mappings[class_representative[c]];
            JcEntry &entry = jc[c * num_jobs + j];
            try {
                entry.ub = job.microbatching.microbatchSize(
                    job.batchSize, rep);
            } catch (const UserError &e) {
                entry.ubKind = kUserError;
                entry.ubMessage = e.what();
            } catch (const std::exception &e) {
                entry.ubKind = kError;
                entry.ubMessage = e.what();
            }
            if (entry.ubKind != kOk)
                continue;
            try {
                entry.nub = job.microbatching.numMicrobatches(
                    job.batchSize, rep);
            } catch (const UserError &e) {
                entry.preKind = kUserError;
                entry.preMessage = e.what();
            } catch (const std::exception &e) {
                entry.preKind = kError;
                entry.preMessage = e.what();
            }
            if (entry.preKind == kOk) {
                try {
                    entry.eff = model.efficiency()(entry.ub);
                } catch (const UserError &e) {
                    entry.preKind = kUserError;
                    entry.preMessage = e.what();
                } catch (const std::exception &e) {
                    entry.preKind = kError;
                    entry.preMessage = e.what();
                }
            }
            entry.replicaBatch =
                job.batchSize / static_cast<double>(rep.dp());
            if (entry.preKind != kOk)
                continue;
            entry.fwdId = cache.registerForwardCompute(job.batchSize,
                                                       entry.eff);
            entry.updId = cache.registerWeightUpdate(entry.eff);
            entry.moeId = cache.registerMoeForward(entry.replicaBatch);
        }
    }

    cache.prime(max_workers);

    // ---- Column kernels over fixed-size blocks. --------------------
    const auto evaluate_point = [&](std::size_t index,
                                    std::size_t slot,
                                    BlockColumns &cols) {
        const MappingInfo &mi = mapping_infos[index / num_jobs];
        const JobInfo &ji = job_infos[index % num_jobs];
        const JcEntry &entry =
            jc[mi.classIdx * num_jobs + index % num_jobs];

        const auto fail = [&](const std::string &message) {
            cols.status[slot] = PointStatus::failedPoint;
            cols.failures[slot] = message;
        };

        // The scalar path's exact step order: with a memory model the
        // microbatch size and the fit check run before any mapping /
        // job validation (Explorer's screening lambda), otherwise the
        // microbatch size is first derived inside evaluate(), after
        // the validations.
        if (memory_model != nullptr) {
            if (entry.ubKind == kUserError)
                return; // infeasible (the default status)
            if (entry.ubKind == kError)
                return fail(entry.ubMessage);
            try {
                if (!memory_model->fits(mappings[index / num_jobs],
                                        ji.batch, entry.ub)) {
                    cols.status[slot] = PointStatus::overMemory;
                    return;
                }
            } catch (const UserError &) {
                return;
            } catch (const std::exception &e) {
                return fail(e.what());
            }
        }
        if (mi.kind == kUserError)
            return;
        if (mi.kind == kError)
            return fail(mi.message);
        if (ji.validKind == kUserError)
            return;
        if (ji.validKind == kError)
            return fail(ji.validMessage);
        if (memory_model == nullptr) {
            if (entry.ubKind == kUserError)
                return;
            if (entry.ubKind == kError)
                return fail(entry.ubMessage);
        }
        if (entry.preKind == kUserError)
            return;
        if (entry.preKind == kError)
            return fail(entry.preMessage);

        try {
            // Mirrors evaluate()'s assembly expression by expression;
            // Quantity math unwraps into the raw columns exactly
            // where the scalar path unwraps into Breakdown.
            const Seconds fwd_total =
                cache.forwardComputeTotal(entry.fwdId);
            const Seconds update_total =
                cache.weightUpdateTotal(entry.updId);
            const double compute_forward =
                (fwd_total / mi.workers).value();
            const double compute_backward =
                (bwd_compute * fwd_total / mi.workers).value();
            cols.computeForward[slot] = compute_forward;
            cols.computeBackward[slot] = compute_backward;
            cols.weightUpdate[slot] =
                (update_total / mi.workers).value();

            const Seconds tp_intra_layer =
                cache.tpIntraCommTime(mi.tpIntra, entry.replicaBatch);
            const Seconds tp_inter_layer =
                cache.tpInterCommTime(mi.tpInter, entry.replicaBatch);
            const Seconds pp_layer = cache.ppCommTime(
                mi.ppIntra, mi.ppInter, entry.replicaBatch);
            const Seconds moe_total =
                cache.moeForwardTotal(entry.moeId);
            const double comm_tp_intra =
                (fb * tp_intra_layer * layers_d * mi.stageOverlap)
                    .value();
            const double comm_tp_inter =
                (fb * tp_inter_layer * layers_d * mi.stageOverlap)
                    .value();
            const double comm_pp =
                (fb * pp_layer * layers_d * pp_mult).value();
            const double comm_moe =
                (fb * moe_total * mi.stageOverlap).value();
            cols.commTpIntra[slot] = comm_tp_intra;
            cols.commTpInter[slot] = comm_tp_inter;
            cols.commPp[slot] = comm_pp;
            cols.commMoe[slot] = comm_moe;

            const core::SweepTermCache::GradTotals grad =
                cache.gradTotals(mi.gradId);
            cols.commGradIntra[slot] = grad.intra.value();
            cols.commGradInter[slot] = grad.inter.value();

            double bubble = 0.0;
            if (mi.pp > 1) {
                const double useful = compute_forward +
                                      compute_backward + comm_tp_intra +
                                      comm_tp_inter + comm_pp +
                                      comm_moe;
                bubble = bubble_ratio * (mi.ppD - 1.0) / entry.nub *
                         useful;
            }
            cols.bubble[slot] = bubble;

            // Breakdown::total() over the same ten columns.
            core::Breakdown bd;
            bd.computeForward = compute_forward;
            bd.computeBackward = compute_backward;
            bd.weightUpdate = cols.weightUpdate[slot];
            bd.commTpIntra = comm_tp_intra;
            bd.commTpInter = comm_tp_inter;
            bd.commPp = comm_pp;
            bd.commMoe = comm_moe;
            bd.commGradIntra = cols.commGradIntra[slot];
            bd.commGradInter = cols.commGradInter[slot];
            bd.bubble = bubble;
            const double time_per_batch = bd.total();
            cols.timePerBatch[slot] = time_per_batch;

            // evaluate() derives N_batch here; reproduce its failure
            // position so exception classification matches.
            if (ji.nbKind == kUserError)
                return;
            if (ji.nbKind == kError)
                return fail(ji.nbMessage);
            cols.numBatches[slot] = ji.numBatches;
            cols.totalTime[slot] = ji.numBatches * time_per_batch;
            cols.microbatchSize[slot] = entry.ub;
            cols.numMicrobatches[slot] = entry.nub;
            cols.efficiency[slot] = entry.eff;
            cols.achievedFlopsPerGpu[slot] =
                cache.modelFlopsPerBatch(ji.flopsId) /
                (time_per_batch * mi.workers);
            cols.tokensPerSecond[slot] =
                ji.batch * seq_d / time_per_batch;
        } catch (const UserError &) {
            cols.status[slot] = PointStatus::infeasible;
            return;
        } catch (const std::exception &e) {
            return fail(e.what());
        }

        if (!std::isfinite(cols.totalTime[slot]))
            return fail("non-finite total time");
        cols.status[slot] = PointStatus::feasible;
    };

    BlockColumns cols;
    for (std::size_t base = 0; base < count; base += kBlockPoints) {
        const std::size_t block =
            std::min(kBlockPoints, count - base);
        cols.resize(block);

        const std::size_t chunks =
            (block + kPointChunk - 1) / kPointChunk;
        ThreadPool::shared().parallelFor(
            chunks, /*chunk=*/1,
            [&](std::size_t chunk_index) {
                const std::size_t begin = chunk_index * kPointChunk;
                const std::size_t end =
                    std::min(begin + kPointChunk, block);
                for (std::size_t slot = begin; slot < end; ++slot)
                    evaluate_point(base + slot, slot, cols);
            },
            max_workers > 0 ? max_workers
                            : ThreadPool::defaultThreadCount());

        // Serial grid-order reduction: entries, counters and warning
        // lines come out byte-identical to the scalar path at any
        // thread count.
        for (std::size_t slot = 0; slot < block; ++slot) {
            const std::size_t index = base + slot;
            switch (cols.status[slot]) {
            case PointStatus::feasible: {
                SweepEntry entry;
                entry.mapping = mappings[index / num_jobs];
                entry.batchSize = jobs[index % num_jobs].batchSize;
                core::EvaluationResult &r = entry.result;
                r.perBatch.computeForward = cols.computeForward[slot];
                r.perBatch.computeBackward =
                    cols.computeBackward[slot];
                r.perBatch.weightUpdate = cols.weightUpdate[slot];
                r.perBatch.commTpIntra = cols.commTpIntra[slot];
                r.perBatch.commTpInter = cols.commTpInter[slot];
                r.perBatch.commPp = cols.commPp[slot];
                r.perBatch.commMoe = cols.commMoe[slot];
                r.perBatch.commGradIntra = cols.commGradIntra[slot];
                r.perBatch.commGradInter = cols.commGradInter[slot];
                r.perBatch.bubble = cols.bubble[slot];
                r.timePerBatch = cols.timePerBatch[slot];
                r.numBatches = cols.numBatches[slot];
                r.totalTime = cols.totalTime[slot];
                r.microbatchSize = cols.microbatchSize[slot];
                r.numMicrobatches = cols.numMicrobatches[slot];
                r.efficiency = cols.efficiency[slot];
                r.achievedFlopsPerGpu =
                    cols.achievedFlopsPerGpu[slot];
                r.tokensPerSecond = cols.tokensPerSecond[slot];
                out.entries.push_back(std::move(entry));
                break;
            }
            case PointStatus::infeasible:
                ++out.skipped;
                break;
            case PointStatus::overMemory:
                ++out.memorySkipped;
                break;
            case PointStatus::failedPoint: {
                const auto &m = mappings[index / num_jobs];
                const double batch =
                    jobs[index % num_jobs].batchSize;
                log::warn("sweep point ", m.toString(), " batch ",
                          batch, " failed (", cols.failures[slot],
                          "); pinning it to nan");
                SweepEntry entry;
                entry.mapping = m;
                entry.batchSize = batch;
                entry.result = nanPinnedResult();
                out.entries.push_back(std::move(entry));
                ++out.failed;
                break;
            }
            }
        }
    }
    return out;
}

} // namespace explore
} // namespace amped

#include "registry.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace explore {

namespace {

std::string
lowered(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return text;
}

[[noreturn]] void
unknownName(const char *what, const std::string &name,
            const std::vector<std::string> &valid)
{
    std::ostringstream oss;
    oss << "unknown " << what << " '" << name << "'; valid names:";
    for (const auto &v : valid)
        oss << ' ' << v;
    fatal(oss.str());
}

} // namespace

model::TransformerConfig
modelByName(const std::string &name)
{
    const std::string key = lowered(name);
    using namespace model::presets;
    if (key == "tiny")
        return tinyTest();
    if (key == "mingpt")
        return minGpt85M();
    if (key == "mingpt-pp")
        return minGptPipeline();
    if (key == "gpt3")
        return gpt3_175B();
    if (key == "145b")
        return megatron145B();
    if (key == "310b")
        return megatron310B();
    if (key == "530b")
        return megatron530B();
    if (key == "1t")
        return megatron1T();
    if (key == "gpipe24")
        return gpipeTransformer24();
    if (key == "glam")
        return glamMoE();
    unknownName("model", name, modelNames());
}

std::vector<std::string>
modelNames()
{
    return {"tiny",  "mingpt", "mingpt-pp", "gpt3",    "145b",
            "310b",  "530b",   "1t",        "gpipe24", "glam"};
}

hw::AcceleratorConfig
acceleratorByName(const std::string &name)
{
    const std::string key = lowered(name);
    using namespace hw::presets;
    if (key == "tiny")
        return tinyTest();
    if (key == "p100")
        return p100Pcie();
    if (key == "v100")
        return v100Sxm3();
    if (key == "a100")
        return a100();
    if (key == "h100")
        return h100();
    unknownName("accelerator", name, acceleratorNames());
}

std::vector<std::string>
acceleratorNames()
{
    return {"tiny", "p100", "v100", "a100", "h100"};
}

net::LinkConfig
interconnectByName(const std::string &name)
{
    const std::string key = lowered(name);
    using namespace net::presets;
    if (key == "nvlink-v100")
        return nvlinkV100();
    if (key == "nvlink-a100")
        return nvlinkA100();
    if (key == "nvlink-h100")
        return nvlinkH100();
    if (key == "pcie3")
        return pcie3();
    if (key == "edr")
        return edrInfiniband();
    if (key == "hdr")
        return hdrInfiniband();
    if (key == "ndr")
        return ndrInfiniband();
    unknownName("interconnect", name, interconnectNames());
}

std::vector<std::string>
interconnectNames()
{
    return {"nvlink-v100", "nvlink-a100", "nvlink-h100", "pcie3",
            "edr",         "hdr",         "ndr"};
}

} // namespace explore
} // namespace amped

#include "sweep_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "explore/batch.hpp"

namespace amped {
namespace explore {

namespace {

/** Exact-match key for a (dp, pp) mapping class. */
struct DpPpKey
{
    std::int64_t dp = 0;
    std::int64_t pp = 0;
    bool operator==(const DpPpKey &o) const
    {
        return dp == o.dp && pp == o.pp;
    }
};

struct DpPpKeyHash
{
    std::size_t operator()(const DpPpKey &k) const
    {
        // Degrees are small powers of two; a shifted xor is enough.
        return static_cast<std::size_t>(k.dp) * 1315423911u ^
               static_cast<std::size_t>(k.pp);
    }
};

/** Grid points per work-queue grab inside a block. */
constexpr std::size_t kPointChunk = 256;

} // namespace

/**
 * Output columns for one block of grid points (structure of arrays).
 * Raw doubles on purpose: Quantity types are unwrapped at this
 * boundary and re-wrapped when the block is reduced, the same
 * boundary core::Breakdown draws for the scalar path.  The struct
 * lives in this translation unit only — raw-double columns with
 * dimension-implying names never enter a public header (the
 * tools/lint_units "Quantity boundary rule").
 */
struct BlockColumns
{
    std::vector<PointStatus> status;
    std::vector<std::string> failures;
    std::vector<double> computeForward;
    std::vector<double> computeBackward;
    std::vector<double> weightUpdate;
    std::vector<double> commTpIntra;
    std::vector<double> commTpInter;
    std::vector<double> commPp;
    std::vector<double> commMoe;
    std::vector<double> commGradIntra;
    std::vector<double> commGradInter;
    std::vector<double> bubble;
    std::vector<double> timePerBatch;
    std::vector<double> numBatches;
    std::vector<double> totalTime;
    std::vector<double> microbatchSize;
    std::vector<double> numMicrobatches;
    std::vector<double> efficiency;
    std::vector<double> achievedFlopsPerGpu;
    std::vector<double> tokensPerSecond;

    void resize(std::size_t n)
    {
        status.assign(n, PointStatus::infeasible);
        failures.assign(n, std::string());
        computeForward.assign(n, 0.0);
        computeBackward.assign(n, 0.0);
        weightUpdate.assign(n, 0.0);
        commTpIntra.assign(n, 0.0);
        commTpInter.assign(n, 0.0);
        commPp.assign(n, 0.0);
        commMoe.assign(n, 0.0);
        commGradIntra.assign(n, 0.0);
        commGradInter.assign(n, 0.0);
        bubble.assign(n, 0.0);
        timePerBatch.assign(n, 0.0);
        numBatches.assign(n, 0.0);
        totalTime.assign(n, 0.0);
        microbatchSize.assign(n, 0.0);
        numMicrobatches.assign(n, 0.0);
        efficiency.assign(n, 0.0);
        achievedFlopsPerGpu.assign(n, 0.0);
        tokensPerSecond.assign(n, 0.0);
    }
};

namespace {

/** Copies one feasible slot's columns into an EvaluationResult. */
void
packResult(const BlockColumns &cols, std::size_t slot,
           core::EvaluationResult &r)
{
    r.perBatch.computeForward = cols.computeForward[slot];
    r.perBatch.computeBackward = cols.computeBackward[slot];
    r.perBatch.weightUpdate = cols.weightUpdate[slot];
    r.perBatch.commTpIntra = cols.commTpIntra[slot];
    r.perBatch.commTpInter = cols.commTpInter[slot];
    r.perBatch.commPp = cols.commPp[slot];
    r.perBatch.commMoe = cols.commMoe[slot];
    r.perBatch.commGradIntra = cols.commGradIntra[slot];
    r.perBatch.commGradInter = cols.commGradInter[slot];
    r.perBatch.bubble = cols.bubble[slot];
    r.timePerBatch = cols.timePerBatch[slot];
    r.numBatches = cols.numBatches[slot];
    r.totalTime = cols.totalTime[slot];
    r.microbatchSize = cols.microbatchSize[slot];
    r.numMicrobatches = cols.numMicrobatches[slot];
    r.efficiency = cols.efficiency[slot];
    r.achievedFlopsPerGpu = cols.achievedFlopsPerGpu[slot];
    r.tokensPerSecond = cols.tokensPerSecond[slot];
}

} // namespace

SweepKernel::SweepKernel(
    const core::AmpedModel &model,
    const core::MemoryModel *memory_model,
    const std::vector<mapping::ParallelismConfig> &mappings,
    const std::vector<core::TrainingJob> &jobs, unsigned max_workers,
    CancelToken token)
    : model_(model), memoryModel_(memory_model), mappings_(mappings),
      jobs_(jobs), token_(std::move(token)), cache_(model)
{
    const auto &cfg = model_.opCounter().config();
    layersD_ = static_cast<double>(cfg.numLayers);
    seqD_ = static_cast<double>(cfg.seqLength);
    const auto &options = model_.options();
    bwdCompute_ = options.backwardComputeMultiplier;
    const double zero_factor = 1.0 + options.zeroDpOverhead;
    const double bwd_factor = options.backwardCommMultiplier;
    fb_ = zero_factor * (1.0 + bwd_factor);
    ppMult_ = options.ppCommMultiplier;
    bubbleRatio_ = options.bubbleOverlapRatio;

    const std::size_t num_jobs = jobs_.size();

    // ---- Per-mapping constants and (dp, pp) class assignment. ------
    mappingInfos_.resize(mappings_.size());
    std::vector<std::size_t> class_representative; // mapping index
    std::unordered_map<DpPpKey, std::uint32_t, DpPpKeyHash> class_ids;
    for (std::size_t i = 0; i < mappings_.size(); ++i) {
        const auto &m = mappings_[i];
        MappingInfo &info = mappingInfos_[i];
        try {
            m.validateFor(model_.system());
        } catch (const UserError &) {
            info.kind = kUserError;
        } catch (const std::exception &e) {
            info.kind = kError;
            info.message = e.what();
        }
        info.pp = m.pp();
        info.ppD = static_cast<double>(m.pp());
        info.stageOverlap = 1.0 / static_cast<double>(m.pp());
        info.workers = static_cast<double>(m.totalWorkers());
        info.tpIntra = m.tpIntra;
        info.tpInter = m.tpInter;
        info.ppIntra = m.ppIntra;
        info.ppInter = m.ppInter;
        if (info.kind == kOk)
            info.gradId = cache_.registerGrad(m);
        const DpPpKey key{m.dp(), m.pp()};
        const auto it = class_ids.find(key);
        if (it != class_ids.end()) {
            info.classIdx = it->second;
        } else {
            info.classIdx =
                static_cast<std::uint32_t>(class_representative.size());
            class_ids.emplace(key, info.classIdx);
            class_representative.push_back(i);
            classMembers_.emplace_back();
        }
        classMembers_[info.classIdx].push_back(i);
    }
    const std::size_t num_classes = class_representative.size();

    // ---- Per-job constants. ----------------------------------------
    jobInfos_.resize(num_jobs);
    for (std::size_t j = 0; j < num_jobs; ++j) {
        const auto &job = jobs_[j];
        JobInfo &info = jobInfos_[j];
        info.batch = job.batchSize;
        try {
            job.validate();
        } catch (const UserError &) {
            info.validKind = kUserError;
        } catch (const std::exception &e) {
            info.validKind = kError;
            info.validMessage = e.what();
        }
        try {
            info.numBatches = job.numBatches(cfg.seqLength);
        } catch (const UserError &) {
            info.nbKind = kUserError;
        } catch (const std::exception &e) {
            info.nbKind = kError;
            info.nbMessage = e.what();
        }
        info.flopsId = cache_.registerModelFlops(job.batchSize);
    }

    // ---- (job x class) microbatching table + term registration. ----
    jc_.resize(num_jobs * num_classes);
    for (std::size_t j = 0; j < num_jobs; ++j) {
        const auto &job = jobs_[j];
        for (std::size_t c = 0; c < num_classes; ++c) {
            const auto &rep = mappings_[class_representative[c]];
            JcEntry &entry = jc_[c * num_jobs + j];
            try {
                entry.ub = job.microbatching.microbatchSize(
                    job.batchSize, rep);
            } catch (const UserError &e) {
                entry.ubKind = kUserError;
                entry.ubMessage = e.what();
            } catch (const std::exception &e) {
                entry.ubKind = kError;
                entry.ubMessage = e.what();
            }
            if (entry.ubKind != kOk)
                continue;
            try {
                entry.nub = job.microbatching.numMicrobatches(
                    job.batchSize, rep);
            } catch (const UserError &e) {
                entry.preKind = kUserError;
                entry.preMessage = e.what();
            } catch (const std::exception &e) {
                entry.preKind = kError;
                entry.preMessage = e.what();
            }
            if (entry.preKind == kOk) {
                try {
                    entry.eff = model_.efficiency()(entry.ub);
                } catch (const UserError &e) {
                    entry.preKind = kUserError;
                    entry.preMessage = e.what();
                } catch (const std::exception &e) {
                    entry.preKind = kError;
                    entry.preMessage = e.what();
                }
            }
            entry.replicaBatch =
                job.batchSize / static_cast<double>(rep.dp());
            if (entry.preKind != kOk)
                continue;
            entry.fwdId = cache_.registerForwardCompute(job.batchSize,
                                                        entry.eff);
            entry.updId = cache_.registerWeightUpdate(entry.eff);
            entry.moeId = cache_.registerMoeForward(entry.replicaBatch);
        }
    }

    primeStatus_ = cache_.prime(max_workers, token_);
}

void
SweepKernel::evaluatePointInto(std::size_t index, std::size_t slot,
                               BlockColumns &cols) const
{
    const std::size_t num_jobs = jobs_.size();
    const MappingInfo &mi = mappingInfos_[index / num_jobs];
    const JobInfo &ji = jobInfos_[index % num_jobs];
    const JcEntry &entry =
        jc_[mi.classIdx * num_jobs + index % num_jobs];

    const auto fail = [&](const std::string &message) {
        cols.status[slot] = PointStatus::failedPoint;
        cols.failures[slot] = message;
    };

    // The scalar path's exact step order: with a memory model the
    // microbatch size and the fit check run before any mapping /
    // job validation (Explorer's screening lambda), otherwise the
    // microbatch size is first derived inside evaluate(), after
    // the validations.
    if (memoryModel_ != nullptr) {
        if (entry.ubKind == kUserError)
            return; // infeasible (the default status)
        if (entry.ubKind == kError)
            return fail(entry.ubMessage);
        try {
            if (!memoryModel_->fits(mappings_[index / num_jobs],
                                    ji.batch, entry.ub)) {
                cols.status[slot] = PointStatus::overMemory;
                return;
            }
        } catch (const UserError &) {
            return;
        } catch (const std::exception &e) {
            return fail(e.what());
        }
    }
    if (mi.kind == kUserError)
        return;
    if (mi.kind == kError)
        return fail(mi.message);
    if (ji.validKind == kUserError)
        return;
    if (ji.validKind == kError)
        return fail(ji.validMessage);
    if (memoryModel_ == nullptr) {
        if (entry.ubKind == kUserError)
            return;
        if (entry.ubKind == kError)
            return fail(entry.ubMessage);
    }
    if (entry.preKind == kUserError)
        return;
    if (entry.preKind == kError)
        return fail(entry.preMessage);

    try {
        // Mirrors evaluate()'s assembly expression by expression;
        // Quantity math unwraps into the raw columns exactly
        // where the scalar path unwraps into Breakdown.
        const Seconds fwd_total =
            cache_.forwardComputeTotal(entry.fwdId);
        const Seconds update_total =
            cache_.weightUpdateTotal(entry.updId);
        const double compute_forward =
            (fwd_total / mi.workers).value();
        const double compute_backward =
            (bwdCompute_ * fwd_total / mi.workers).value();
        cols.computeForward[slot] = compute_forward;
        cols.computeBackward[slot] = compute_backward;
        cols.weightUpdate[slot] =
            (update_total / mi.workers).value();

        const Seconds tp_intra_layer =
            cache_.tpIntraCommTime(mi.tpIntra, entry.replicaBatch);
        const Seconds tp_inter_layer =
            cache_.tpInterCommTime(mi.tpInter, entry.replicaBatch);
        const Seconds pp_layer = cache_.ppCommTime(
            mi.ppIntra, mi.ppInter, entry.replicaBatch);
        const Seconds moe_total =
            cache_.moeForwardTotal(entry.moeId);
        const double comm_tp_intra =
            (fb_ * tp_intra_layer * layersD_ * mi.stageOverlap)
                .value();
        const double comm_tp_inter =
            (fb_ * tp_inter_layer * layersD_ * mi.stageOverlap)
                .value();
        const double comm_pp =
            (fb_ * pp_layer * layersD_ * ppMult_).value();
        const double comm_moe =
            (fb_ * moe_total * mi.stageOverlap).value();
        cols.commTpIntra[slot] = comm_tp_intra;
        cols.commTpInter[slot] = comm_tp_inter;
        cols.commPp[slot] = comm_pp;
        cols.commMoe[slot] = comm_moe;

        const core::SweepTermCache::GradTotals grad =
            cache_.gradTotals(mi.gradId);
        cols.commGradIntra[slot] = grad.intra.value();
        cols.commGradInter[slot] = grad.inter.value();

        double bubble = 0.0;
        if (mi.pp > 1) {
            const double useful = compute_forward +
                                  compute_backward + comm_tp_intra +
                                  comm_tp_inter + comm_pp +
                                  comm_moe;
            bubble = bubbleRatio_ * (mi.ppD - 1.0) / entry.nub *
                     useful;
        }
        cols.bubble[slot] = bubble;

        // Breakdown::total() over the same ten columns.
        core::Breakdown bd;
        bd.computeForward = compute_forward;
        bd.computeBackward = compute_backward;
        bd.weightUpdate = cols.weightUpdate[slot];
        bd.commTpIntra = comm_tp_intra;
        bd.commTpInter = comm_tp_inter;
        bd.commPp = comm_pp;
        bd.commMoe = comm_moe;
        bd.commGradIntra = cols.commGradIntra[slot];
        bd.commGradInter = cols.commGradInter[slot];
        bd.bubble = bubble;
        const double time_per_batch = bd.total();
        cols.timePerBatch[slot] = time_per_batch;

        // evaluate() derives N_batch here; reproduce its failure
        // position so exception classification matches.
        if (ji.nbKind == kUserError)
            return;
        if (ji.nbKind == kError)
            return fail(ji.nbMessage);
        cols.numBatches[slot] = ji.numBatches;
        cols.totalTime[slot] = ji.numBatches * time_per_batch;
        cols.microbatchSize[slot] = entry.ub;
        cols.numMicrobatches[slot] = entry.nub;
        cols.efficiency[slot] = entry.eff;
        cols.achievedFlopsPerGpu[slot] =
            cache_.modelFlopsPerBatch(ji.flopsId) /
            (time_per_batch * mi.workers);
        cols.tokensPerSecond[slot] =
            ji.batch * seqD_ / time_per_batch;
    } catch (const UserError &) {
        cols.status[slot] = PointStatus::infeasible;
        return;
    } catch (const std::exception &e) {
        return fail(e.what());
    }

    if (!std::isfinite(cols.totalTime[slot]))
        return fail("non-finite total time");
    cols.status[slot] = PointStatus::feasible;
}

SweepResult
SweepKernel::sweepGrid(unsigned max_workers) const
{
    SweepResult out;
    const std::size_t num_jobs = jobs_.size();
    const std::size_t count = numPoints();
    if (count == 0)
        return out;
    // A stop during cache priming needs no special case: the token
    // is latched, so the first block checkpoint below observes it
    // (recording the cancellation latency exactly once) and returns
    // before any pending cache entry could be read.

    BlockColumns cols;
    for (std::size_t base = 0; base < count;
         base += kSweepBlockPoints) {
        // THE deterministic cancellation point: exactly one
        // checkpoint per block, before evaluating it, so a stopped
        // sweep's result is always a whole number of reduced blocks.
        const RunStatus stop = token_.checkpoint();
        if (stop != RunStatus::Completed) {
            out.status = stop;
            out.cancelledUnvisited = count - base;
            return out;
        }

        const std::size_t block =
            std::min(kSweepBlockPoints, count - base);
        cols.resize(block);

        const std::size_t chunks =
            (block + kPointChunk - 1) / kPointChunk;
        const RunStatus loop = ThreadPool::shared().parallelFor(
            chunks, /*chunk=*/1,
            [&](std::size_t chunk_index) {
                const std::size_t begin = chunk_index * kPointChunk;
                const std::size_t end =
                    std::min(begin + kPointChunk, block);
                for (std::size_t slot = begin; slot < end; ++slot)
                    evaluatePointInto(base + slot, slot, cols);
            },
            token_,
            max_workers > 0 ? max_workers
                            : ThreadPool::defaultThreadCount());
        if (loop != RunStatus::Completed) {
            // Mid-block stop: the block's columns are torn, so it is
            // discarded whole — the published prefix stays exact.
            out.status = loop;
            out.cancelledUnvisited = count - base;
            return out;
        }

        // Serial grid-order reduction: entries, counters and warning
        // lines come out byte-identical to the scalar path at any
        // thread count.
        for (std::size_t slot = 0; slot < block; ++slot) {
            const std::size_t index = base + slot;
            switch (cols.status[slot]) {
            case PointStatus::feasible: {
                SweepEntry entry;
                entry.mapping = mappings_[index / num_jobs];
                entry.batchSize = jobs_[index % num_jobs].batchSize;
                packResult(cols, slot, entry.result);
                out.entries.push_back(std::move(entry));
                break;
            }
            case PointStatus::infeasible:
                ++out.skipped;
                break;
            case PointStatus::overMemory:
                ++out.memorySkipped;
                break;
            case PointStatus::failedPoint: {
                const auto &m = mappings_[index / num_jobs];
                const double batch =
                    jobs_[index % num_jobs].batchSize;
                log::warn("sweep point ", m.toString(), " batch ",
                          batch, " failed (", cols.failures[slot],
                          "); pinning it to nan");
                SweepEntry entry;
                entry.mapping = m;
                entry.batchSize = batch;
                entry.result = nanPinnedResult();
                out.entries.push_back(std::move(entry));
                ++out.failed;
                break;
            }
            }
        }
        out.visitedPoints += block;
    }
    return out;
}

RunStatus
SweepKernel::evaluatePoints(const std::vector<std::size_t> &indices,
                            std::vector<Outcome> &outcomes,
                            unsigned max_workers) const
{
    if (primeStatus_ != RunStatus::Completed)
        return primeStatus_;
    const std::size_t count = indices.size();
    if (count == 0)
        return RunStatus::Completed;

    BlockColumns cols;
    for (std::size_t base = 0; base < count;
         base += kSweepBlockPoints) {
        // Passive poll only — checkpoint discipline belongs to the
        // caller (the optimizer checkpoints between waves).
        const RunStatus stop = token_.status();
        if (stop != RunStatus::Completed)
            return stop;

        const std::size_t block =
            std::min(kSweepBlockPoints, count - base);
        cols.resize(block);

        const std::size_t chunks =
            (block + kPointChunk - 1) / kPointChunk;
        const RunStatus loop = ThreadPool::shared().parallelFor(
            chunks, /*chunk=*/1,
            [&](std::size_t chunk_index) {
                const std::size_t begin = chunk_index * kPointChunk;
                const std::size_t end =
                    std::min(begin + kPointChunk, block);
                for (std::size_t slot = begin; slot < end; ++slot)
                    evaluatePointInto(indices[base + slot], slot,
                                      cols);
            },
            token_,
            max_workers > 0 ? max_workers
                            : ThreadPool::defaultThreadCount());
        if (loop != RunStatus::Completed)
            return loop; // Torn block: discard, outcomes untouched.

        for (std::size_t slot = 0; slot < block; ++slot) {
            Outcome outcome;
            outcome.status = cols.status[slot];
            switch (cols.status[slot]) {
            case PointStatus::feasible:
                packResult(cols, slot, outcome.result);
                break;
            case PointStatus::failedPoint:
                outcome.failure = std::move(cols.failures[slot]);
                outcome.result = nanPinnedResult();
                break;
            case PointStatus::infeasible:
            case PointStatus::overMemory:
                break;
            }
            outcomes.push_back(std::move(outcome));
        }
    }
    return RunStatus::Completed;
}

} // namespace explore
} // namespace amped

/**
 * @file
 * Configuration-file loaders: build transformer models, accelerators
 * and systems from user-written key = value files, so new design
 * points do not require recompiling the library.
 *
 * Model file keys:
 *   name, layers, hidden, heads, seq, vocab,
 *   ffn (default 4 x hidden),
 *   experts, experts-per-token, moe-interval (MoE, optional)
 *
 * Accelerator file keys:
 *   name, frequency-ghz, cores, mac-units, mac-width,
 *   nonlin-units, nonlin-width, memory-gb, offchip-gbits,
 *   precision-param, precision-act, precision-nonlin,
 *   precision-mac-unit, precision-nonlin-unit (bits, default 16)
 *
 * System file keys:
 *   name, nodes, per-node, nics (default per-node),
 *   intra-latency-us, intra-gbits, inter-latency-us, inter-gbits,
 *   pooled-fabric (0/1, default 0)
 */

#ifndef AMPED_EXPLORE_CONFIG_IO_HPP
#define AMPED_EXPLORE_CONFIG_IO_HPP

#include <string>

#include "common/keyval.hpp"
#include "hw/accelerator.hpp"
#include "model/transformer_config.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace explore {

/** Builds a validated TransformerConfig from a parsed document. */
model::TransformerConfig
modelFromConfig(const KeyValueConfig &config);

/** Loads a model config file. */
model::TransformerConfig modelFromFile(const std::string &path);

/** Builds a validated AcceleratorConfig from a parsed document. */
hw::AcceleratorConfig
acceleratorFromConfig(const KeyValueConfig &config);

/** Loads an accelerator config file. */
hw::AcceleratorConfig acceleratorFromFile(const std::string &path);

/** Builds a validated SystemConfig from a parsed document. */
net::SystemConfig systemFromConfig(const KeyValueConfig &config);

/** Loads a system config file. */
net::SystemConfig systemFromFile(const std::string &path);

/**
 * Admission preflight for sweep-style commands: computes the exact
 * grid size a sweep over @p system would enumerate — every valid
 * (tp, pp, dp) mapping (capped at @p max_pipeline total pipeline
 * stages; 0 = uncapped) times @p num_jobs job variants — and rejects
 * it up front when it exceeds @p max_grid_points.
 *
 * The rejection names the responsible inputs (nodes, per-node,
 * batch-list length, the cap) and the computed point count, so an
 * over-ambitious config file fails in milliseconds with an
 * actionable message instead of soaking the machine for hours.
 *
 * @return The computed grid point count (mappings x jobs).
 * @throws UserError when the grid exceeds @p max_grid_points
 *         (0 = unlimited, never throws).
 */
std::size_t preflightGridPoints(const net::SystemConfig &system,
                                std::int64_t max_pipeline,
                                std::size_t num_jobs,
                                std::size_t max_grid_points);

} // namespace explore
} // namespace amped

#endif // AMPED_EXPLORE_CONFIG_IO_HPP

#include "optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "explore/batch.hpp"
#include "explore/sweep_kernel.hpp"
#include "mapping/parallelism.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace explore {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Wave sizing.  The prune threshold is refreshed only at wave
 * boundaries, and boundaries depend on nothing but the deterministic
 * visit order — so prune counters and results are identical at every
 * thread count.  Waves ramp geometrically from a small first wave
 * (points are visited best-bound-first, so a handful of evaluations
 * usually pins the k-th best time and everything after prunes) up to
 * a cap that keeps the batch kernel's parallelism fed when pruning
 * is not biting.
 */
constexpr std::size_t kFirstWavePoints = 16;
constexpr std::size_t kWaveGrowth = 4;
constexpr std::size_t kMaxWavePoints = 4096;

/** Relative safety margin absorbing floating-point reassociation
 *  between the bound's arithmetic and the batch kernel's. */
constexpr double kBoundMargin = 1e-9;

/** Where a screened grid point goes next. */
enum class Disposition : unsigned char
{
    needEval,  ///< Survives the screen; carries a lower bound.
    infeasible,///< Provably invalid: skipped without evaluation.
    overMemory ///< Memory screen said no: pruned without evaluation.
};

/** One ranked candidate (feasible or NaN-pinned) in the top-k heap. */
struct Candidate
{
    double key = 0.0; ///< totalTime with NaN mapped to +infinity.
    std::size_t gridIndex = 0;
    SweepEntry entry;
};

/** Ascending (key, gridIndex) — brute force's exact ranking. */
bool
ranksBefore(const Candidate &a, const Candidate &b)
{
    if (a.key != b.key)
        return a.key < b.key;
    return a.gridIndex < b.gridIndex;
}

/** Model-option scalars shared by the screen (names match the
 *  batch kernel's hoisted constants). */
struct BoundScalars
{
    double layersD = 0.0;
    double bwdCompute = 0.0;
    double fb = 0.0;
    double ppMult = 0.0;
    double bubbleRatio = 0.0;
};

/**
 * Classifies one grid point from the kernel's constant tables alone,
 * following AmpedModel::evaluate's exact step order (see
 * SweepKernel::evaluatePointInto), and assembles the admissible
 * lower bound for survivors.
 *
 * Failure mapping: a step the scalar path answers with UserError
 * proves the point infeasible (it can never enter the ranking); a
 * step that throws anything else means the point will NaN-pin, whose
 * ranking key is +infinity — so its bound IS +infinity and the
 * normal prune rule handles it.  The bound of a healthy point is its
 * exact additive total scaled down by kBoundMargin (admissibility
 * argument in DESIGN.md).
 */
Disposition
screenPoint(const SweepKernel &kernel,
            const core::MemoryModel *memory_model,
            const BoundScalars &sc, std::size_t mapping_index,
            std::size_t job_index, double &bound)
{
    bound = kInf;
    const MappingInfo &mi = kernel.mappingInfo(mapping_index);
    const JobInfo &ji = kernel.jobInfo(job_index);
    const JcEntry &entry = kernel.jcEntry(mi.classIdx, job_index);
    const core::SweepTermCache &cache = kernel.termCache();
    using Status = core::SweepTermCache::LookupStatus;

    if (memory_model != nullptr) {
        if (entry.ubKind == kUserError)
            return Disposition::infeasible;
        if (entry.ubKind == kError)
            return Disposition::needEval;
        try {
            if (!memory_model->fits(kernel.mappingAt(mapping_index),
                                    ji.batch, entry.ub))
                return Disposition::overMemory;
        } catch (const UserError &) {
            return Disposition::infeasible;
        } catch (const std::exception &) {
            return Disposition::needEval;
        }
    }
    if (mi.kind == kUserError || ji.validKind == kUserError)
        return Disposition::infeasible;
    if (mi.kind == kError || ji.validKind == kError)
        return Disposition::needEval;
    if (memory_model == nullptr) {
        if (entry.ubKind == kUserError)
            return Disposition::infeasible;
        if (entry.ubKind == kError)
            return Disposition::needEval;
    }
    if (entry.preKind == kUserError)
        return Disposition::infeasible;
    if (entry.preKind == kError)
        return Disposition::needEval;

    // Term probes and closed forms, in the evaluator's lookup order
    // (the first failing step decides the point's classification).
    const auto fwd = cache.probeForwardCompute(entry.fwdId);
    if (fwd.status == Status::userError)
        return Disposition::infeasible;
    if (fwd.status == Status::error)
        return Disposition::needEval;
    const auto upd = cache.probeWeightUpdate(entry.updId);
    if (upd.status == Status::userError)
        return Disposition::infeasible;
    if (upd.status == Status::error)
        return Disposition::needEval;

    double tp_intra_layer = 0.0;
    double tp_inter_layer = 0.0;
    double pp_layer = 0.0;
    try {
        tp_intra_layer =
            cache.tpIntraCommTime(mi.tpIntra, entry.replicaBatch)
                .value();
        tp_inter_layer =
            cache.tpInterCommTime(mi.tpInter, entry.replicaBatch)
                .value();
        pp_layer = cache.ppCommTime(mi.ppIntra, mi.ppInter,
                                    entry.replicaBatch)
                       .value();
    } catch (const UserError &) {
        return Disposition::infeasible;
    } catch (const std::exception &) {
        return Disposition::needEval;
    }

    const auto moe = cache.probeMoeForward(entry.moeId);
    if (moe.status == Status::userError)
        return Disposition::infeasible;
    if (moe.status == Status::error)
        return Disposition::needEval;
    const auto grad = cache.probeGrad(mi.gradId);
    if (grad.status == Status::userError)
        return Disposition::infeasible;
    if (grad.status == Status::error)
        return Disposition::needEval;
    if (ji.nbKind == kUserError)
        return Disposition::infeasible;
    if (ji.nbKind == kError)
        return Disposition::needEval;

    // Additive reassembly of the exact per-batch time (the same
    // terms the kernel computes, associated slightly differently).
    const double cf = fwd.value / mi.workers;
    const double cb = sc.bwdCompute * fwd.value / mi.workers;
    const double wu = upd.value / mi.workers;
    const double comm_tp_intra =
        sc.fb * tp_intra_layer * sc.layersD * mi.stageOverlap;
    const double comm_tp_inter =
        sc.fb * tp_inter_layer * sc.layersD * mi.stageOverlap;
    const double comm_pp = sc.fb * pp_layer * sc.layersD * sc.ppMult;
    const double comm_moe = sc.fb * moe.value * mi.stageOverlap;
    const double useful = cf + cb + comm_tp_intra + comm_tp_inter +
                          comm_pp + comm_moe;
    double bubble = 0.0;
    if (mi.pp > 1)
        bubble =
            sc.bubbleRatio * (mi.ppD - 1.0) / entry.nub * useful;
    const double time_per_batch = useful + wu + grad.value +
                                  grad.value2 + bubble;
    const double total = ji.numBatches * time_per_batch;
    if (!std::isfinite(total))
        return Disposition::needEval; // Will NaN-pin; key +infinity.
    bound = total - kBoundMargin * std::abs(total);
    return Disposition::needEval;
}

} // namespace

Optimizer::Optimizer(core::AmpedModel model) : model_(std::move(model))
{
}

void
Optimizer::setMemoryModel(core::MemoryModel memory_model)
{
    memoryModel_.emplace(std::move(memory_model));
}

OptimizerResult
Optimizer::optimize(const OptimizerRequest &request) const
{
    mapping::MappingSpace space(model_.system());
    const std::int64_t max_pp = model_.opCounter().config().numLayers;
    return optimizeOver(space.enumerate(max_pp), request);
}

OptimizerResult
Optimizer::optimizeOver(
    const std::vector<mapping::ParallelismConfig> &mappings,
    const OptimizerRequest &request) const
{
    auto &metrics = obs::MetricsRegistry::global();
    static obs::Counter &points_counter =
        metrics.counter("explore.optimize.points");
    static obs::Counter &evaluated_counter =
        metrics.counter("explore.optimize.evaluated");
    static obs::Counter &memory_counter =
        metrics.counter("explore.optimize.pruned_by_memory");
    static obs::Counter &bound_counter =
        metrics.counter("explore.optimize.pruned_by_bound");
    static obs::Counter &infeasible_counter =
        metrics.counter("explore.optimize.skipped_infeasible");
    static obs::Histogram &optimize_seconds =
        metrics.histogram("explore.optimize.seconds", /*timing=*/true);
    obs::ScopedTimer timer(optimize_seconds);

    if (request.topK == 0)
        throw UserError("optimize: topK must be >= 1");
    if (request.batchSizes.empty())
        throw UserError(
            "optimize: at least one batch size is required");
    if (request.expertParallel < 1)
        throw UserError(
            "optimize: expert-parallel degree must be >= 1 (got " +
            std::to_string(request.expertParallel) + ")");
    const std::int64_t experts =
        model_.opCounter().config().moe.numExperts;
    if (request.expertParallel > 1) {
        if (experts <= 0)
            throw UserError(
                "optimize: expert parallelism (requested degree " +
                std::to_string(request.expertParallel) +
                ") requires a mixture-of-experts model, and this "
                "model has no experts");
        if (experts % request.expertParallel != 0)
            throw UserError(
                "optimize: expert-parallel degree " +
                std::to_string(request.expertParallel) +
                " must divide the model's expert count " +
                std::to_string(experts));
    }

    std::vector<core::TrainingJob> jobs;
    jobs.reserve(request.batchSizes.size());
    for (const double batch : request.batchSizes) {
        core::TrainingJob job = request.jobTemplate;
        job.batchSize = batch;
        jobs.push_back(job);
    }

    OptimizerResult out;
    const std::size_t num_jobs = jobs.size();
    const std::size_t count = mappings.size() * num_jobs;
    out.counters.points = count;
    points_counter.add(count);
    if (count == 0)
        return out;

    const core::MemoryModel *memory_model =
        memoryModel_ ? &*memoryModel_ : nullptr;
    const SweepKernel kernel(model_, memory_model, mappings, jobs,
                             threads_, token_);
    out.counters.cells = kernel.numClasses() * num_jobs;
    if (kernel.primeStatus() != RunStatus::Completed) {
        out.status = kernel.primeStatus();
        out.counters.cancelledUnvisited = count;
        return out;
    }

    BoundScalars sc;
    const auto &options = model_.options();
    sc.layersD =
        static_cast<double>(model_.opCounter().config().numLayers);
    sc.bwdCompute = options.backwardComputeMultiplier;
    sc.fb = (1.0 + options.zeroDpOverhead) *
            (1.0 + options.backwardCommMultiplier);
    sc.ppMult = options.ppCommMultiplier;
    sc.bubbleRatio = options.bubbleOverlapRatio;

    // ---- Screen + bound every grid point (parallel, pure). ---------
    std::vector<Disposition> dispositions(count);
    std::vector<double> bounds(count);
    const unsigned workers =
        threads_ > 0 ? threads_ : ThreadPool::defaultThreadCount();
    const RunStatus screen_status = ThreadPool::shared().parallelFor(
        mappings.size(), /*chunk=*/16,
        [&](std::size_t m) {
            for (std::size_t j = 0; j < num_jobs; ++j) {
                const std::size_t index = m * num_jobs + j;
                dispositions[index] = screenPoint(
                    kernel, memory_model, sc, m, j, bounds[index]);
            }
        },
        token_, workers);
    if (screen_status != RunStatus::Completed) {
        // Screen slots are torn; nothing was dispositioned yet.
        out.status = screen_status;
        out.counters.cancelledUnvisited = count;
        return out;
    }

    std::vector<std::size_t> order;
    order.reserve(count);
    for (std::size_t index = 0; index < count; ++index) {
        switch (dispositions[index]) {
        case Disposition::needEval:
            order.push_back(index);
            break;
        case Disposition::infeasible:
            ++out.counters.skippedInfeasible;
            break;
        case Disposition::overMemory:
            ++out.counters.prunedByMemory;
            break;
        }
    }
    // Best-first: ascending bound, grid order among equals.
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (bounds[a] != bounds[b])
                      return bounds[a] < bounds[b];
                  return a < b;
              });

    // ---- Best-first waves over the survivors. ----------------------
    // Max-heap of the k best candidates; the root is the current
    // k-th best key.  The prune threshold is refreshed per wave.
    std::vector<Candidate> heap;
    heap.reserve(request.topK + 1);
    const auto heap_cmp = [](const Candidate &a, const Candidate &b) {
        return ranksBefore(a, b); // push_heap keeps the worst on top
    };
    double kth_key = kInf;

    std::vector<std::size_t> wave;
    wave.reserve(kMaxWavePoints);
    std::size_t wave_cap =
        std::max<std::size_t>(kFirstWavePoints, request.topK);
    std::vector<SweepKernel::Outcome> outcomes;
    const auto flush = [&]() -> RunStatus {
        if (wave.empty())
            return RunStatus::Completed;
        // THE wave-boundary checkpoint: the only deterministic stop
        // point of the search.  Waves are built from the (thread-
        // count-independent) bound order, so "stop before wave N"
        // yields identical best-so-far results on any machine.
        const RunStatus stop = token_.checkpoint();
        if (stop != RunStatus::Completed)
            return stop;
        outcomes.clear();
        outcomes.reserve(wave.size());
        const RunStatus eval =
            kernel.evaluatePoints(wave, outcomes, threads_);
        if (eval != RunStatus::Completed)
            return eval; // Wave discarded whole; heap untouched.
        for (std::size_t i = 0; i < wave.size(); ++i) {
            const std::size_t index = wave[i];
            SweepKernel::Outcome &outcome = outcomes[i];
            ++out.counters.evaluated;
            Candidate candidate;
            candidate.gridIndex = index;
            switch (outcome.status) {
            case PointStatus::feasible:
                ++out.counters.feasible;
                candidate.key = outcome.result.totalTime;
                break;
            case PointStatus::infeasible:
                ++out.counters.infeasible;
                continue;
            case PointStatus::overMemory:
                ++out.counters.overMemory;
                continue;
            case PointStatus::failedPoint: {
                ++out.counters.failed;
                const auto &m = mappings[index / num_jobs];
                log::warn("sweep point ", m.toString(), " batch ",
                          jobs[index % num_jobs].batchSize,
                          " failed (", outcome.failure,
                          "); pinning it to nan");
                candidate.key = kInf;
                break;
            }
            }
            candidate.entry.mapping = mappings[index / num_jobs];
            candidate.entry.batchSize =
                jobs[index % num_jobs].batchSize;
            candidate.entry.result = std::move(outcome.result);
            heap.push_back(std::move(candidate));
            std::push_heap(heap.begin(), heap.end(), heap_cmp);
            if (heap.size() > request.topK) {
                std::pop_heap(heap.begin(), heap.end(), heap_cmp);
                heap.pop_back();
            }
        }
        wave.clear();
        if (heap.size() == request.topK)
            kth_key = heap.front().key;
        return RunStatus::Completed;
    };

    std::size_t consumed = 0; // Order entries dispositioned so far.
    RunStatus search = RunStatus::Completed;
    for (const std::size_t index : order) {
        // Strictly-greater prune: a bound above the k-th best key
        // means the exact time is strictly above it too (bound <=
        // exact), so the point cannot displace any ranked entry.
        if (heap.size() == request.topK && bounds[index] > kth_key) {
            ++out.counters.prunedByBound;
            ++consumed;
            continue;
        }
        wave.push_back(index);
        ++consumed;
        if (wave.size() >= wave_cap) {
            search = flush();
            if (search != RunStatus::Completed)
                break;
            wave_cap =
                std::min(wave_cap * kWaveGrowth, kMaxWavePoints);
        }
    }
    if (search == RunStatus::Completed)
        search = flush();
    if (search != RunStatus::Completed) {
        // A stopped flush leaves its wave queued, not evaluated:
        // those points plus the never-consumed tail of the visit
        // order complete the disposition partition.
        out.status = search;
        out.counters.cancelledUnvisited =
            wave.size() + (order.size() - consumed);
    }

    std::sort_heap(heap.begin(), heap.end(), heap_cmp);
    out.topK.reserve(heap.size());
    for (Candidate &candidate : heap)
        out.topK.push_back(std::move(candidate.entry));

    evaluated_counter.add(out.counters.evaluated);
    memory_counter.add(out.counters.prunedByMemory);
    bound_counter.add(out.counters.prunedByBound);
    infeasible_counter.add(out.counters.skippedInfeasible);

    // ---- Heterogeneity-aware refinement of the winner. -------------
    // Only a Completed search is refined: a best-so-far winner from a
    // stopped search may not be the real one.
    if (out.status == RunStatus::Completed &&
        !request.heterogeneousStages.empty() && !out.topK.empty() &&
        std::isfinite(out.topK.front().result.totalTime)) {
        const SweepEntry &best = out.topK.front();
        std::vector<core::HeterogeneousStage> stages =
            request.heterogeneousStages;
        for (core::HeterogeneousStage &stage : stages)
            stage.tpDegree = best.mapping.tp();
        stages = core::HeterogeneousPipelineModel::balanceLayers(
            model_.opCounter(), std::move(stages),
            best.result.microbatchSize);
        const core::HeterogeneousPipelineModel hetero(
            model_.opCounter(), stages, model_.system().interLink,
            options.backwardComputeMultiplier);
        core::TrainingJob job = request.jobTemplate;
        job.batchSize = best.batchSize /
                        static_cast<double>(best.mapping.dp());
        HeterogeneousPlan plan;
        plan.stages = std::move(stages);
        plan.result = hetero.evaluate(job);
        out.heterogeneous = std::move(plan);
    }

    return out;
}

} // namespace explore
} // namespace amped

#include "diff.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/math_util.hpp"

namespace amped {
namespace testing {

namespace {

/** almostEqual extended with the golden NaN-pins-NaN convention. */
bool
valuesAgree(double expected, double actual,
            const DiffOptions &options)
{
    return math::almostEqual(expected, actual, options.absTol,
                             options.relTol);
}

double
relErrorOf(double expected, double actual)
{
    const double scale =
        std::max(std::fabs(expected), std::fabs(actual));
    return scale > 0.0 ? std::fabs(expected - actual) / scale : 0.0;
}

} // namespace

DiffReport
diffRecords(const GoldenRecord &expected, const GoldenRecord &actual,
            const DiffOptions &options)
{
    DiffReport report;
    std::set<std::string> expected_keys;
    for (const auto &entry : expected.entries()) {
        expected_keys.insert(entry.key);
        const double *value = actual.find(entry.key);
        if (value == nullptr) {
            report.entries.push_back(DiffEntry{
                DiffKind::missingKey, entry.key, entry.value, 0.0});
            continue;
        }
        ++report.compared;
        if (!valuesAgree(entry.value, *value, options)) {
            report.entries.push_back(DiffEntry{
                DiffKind::valueMismatch, entry.key, entry.value,
                *value});
        }
    }
    for (const auto &entry : actual.entries()) {
        if (!expected_keys.count(entry.key)) {
            report.entries.push_back(DiffEntry{
                DiffKind::extraKey, entry.key, 0.0, entry.value});
        }
    }
    return report;
}

std::string
DiffReport::render(const std::string &label,
                   const DiffOptions &options) const
{
    std::ostringstream oss;
    oss << "[" << label << "] ";
    if (clean()) {
        oss << "OK: " << compared
            << " metrics within tolerance (abs "
            << formatCanonical(options.absTol) << ", rel "
            << formatCanonical(options.relTol) << ")\n";
        return oss.str();
    }
    oss << entries.size() << " difference"
        << (entries.size() == 1 ? "" : "s") << " (" << compared
        << " metrics compared, abs tol "
        << formatCanonical(options.absTol) << ", rel tol "
        << formatCanonical(options.relTol) << ")\n";
    for (const auto &entry : entries) {
        switch (entry.kind) {
        case DiffKind::valueMismatch:
            oss << "  MISMATCH " << entry.key << ": expected "
                << formatCanonical(entry.expected) << " actual "
                << formatCanonical(entry.actual) << " (abs err "
                << formatCanonical(
                       std::fabs(entry.expected - entry.actual))
                << ", rel err "
                << formatCanonical(
                       relErrorOf(entry.expected, entry.actual))
                << ")\n";
            break;
        case DiffKind::missingKey:
            oss << "  MISSING  " << entry.key << ": expected "
                << formatCanonical(entry.expected)
                << " but the key is absent from the output\n";
            break;
        case DiffKind::extraKey:
            oss << "  EXTRA    " << entry.key << ": output has "
                << formatCanonical(entry.actual)
                << " but the golden does not pin this key\n";
            break;
        }
    }
    return oss.str();
}

} // namespace testing
} // namespace amped

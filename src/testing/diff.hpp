/**
 * @file
 * Tolerance-aware comparison of golden records.
 *
 * The diff engine pairs two GoldenRecords by key and classifies
 * every difference: a value outside the abs/rel tolerance envelope
 * (math::almostEqual), a key present only in the expected record, or
 * a key present only in the actual record.  NaN expected values
 * match only NaN actual values, so infeasible design points are
 * pinned exactly like numbers.  Reports render human-readable
 * mismatch lines with both values and the observed errors.
 */

#ifndef AMPED_TESTING_DIFF_HPP
#define AMPED_TESTING_DIFF_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "testing/golden.hpp"

namespace amped {
namespace testing {

/** Tolerance envelope: a value passes on either criterion. */
struct DiffOptions
{
    double absTol = 1e-9; ///< Absolute tolerance |a - b|.
    double relTol = 1e-6; ///< Relative tolerance vs max(|a|, |b|).
};

/** What went wrong with one key. */
enum class DiffKind
{
    valueMismatch, ///< Both present, outside tolerance.
    missingKey,    ///< In expected only (metric disappeared).
    extraKey,      ///< In actual only (new, unpinned metric).
};

/** One difference between two records. */
struct DiffEntry
{
    DiffKind kind = DiffKind::valueMismatch;
    std::string key;
    double expected = 0.0; ///< Meaningful unless kind == extraKey.
    double actual = 0.0;   ///< Meaningful unless kind == missingKey.
};

/** Outcome of diffing one record pair. */
struct DiffReport
{
    std::size_t compared = 0;       ///< Keys present in both records.
    std::vector<DiffEntry> entries; ///< All differences, golden order.

    /** True when the records agree within tolerance. */
    bool clean() const { return entries.empty(); }

    /**
     * Renders the mismatches: one line per difference with expected
     * and actual values, absolute and relative error, and the
     * tolerances that were applied, plus a summary line.
     */
    std::string render(const std::string &label,
                       const DiffOptions &options) const;
};

/**
 * Compares @p actual against @p expected within @p options.
 * Differences come back in the expected record's key order with
 * extra keys appended.
 */
DiffReport diffRecords(const GoldenRecord &expected,
                       const GoldenRecord &actual,
                       const DiffOptions &options = {});

} // namespace testing
} // namespace amped

#endif // AMPED_TESTING_DIFF_HPP

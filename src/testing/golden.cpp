#include "golden.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <locale>
#include <sstream>

#include "common/error.hpp"
#include "common/parse_num.hpp"

namespace amped {
namespace testing {

std::string
formatCanonical(double value)
{
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return value > 0.0 ? "inf" : "-inf";
    // Shortest precision that survives a parse round trip.  Classic-
    // locale stream + locale-independent reparse: golden bytes are
    // identical no matter what locale the process runs under.
    for (int precision = 1; precision <= 17; ++precision) {
        std::ostringstream oss;
        oss.imbue(std::locale::classic());
        oss.precision(precision);
        oss << value;
        const std::string text = oss.str();
        if (parseDouble(text.c_str()) == value)
            return text;
    }
    AMPED_ASSERT(false, "17 significant digits must round-trip");
    return {};
}

void
GoldenRecord::add(const std::string &key, double value)
{
    require(!key.empty(), "golden: empty metric key");
    require(key.find('\t') == std::string::npos &&
                key.find('\n') == std::string::npos,
            "golden: key '", key, "' contains a tab or newline");
    require(index_.find(key) == index_.end(),
            "golden: duplicate metric key '", key, "'");
    index_[key] = entries_.size();
    entries_.push_back(GoldenEntry{key, value});
}

const double *
GoldenRecord::find(const std::string &key) const
{
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr
                              : &entries_[it->second].value;
}

void
GoldenRecord::serialize(std::ostream &os) const
{
    os << "# amped-golden v1\n";
    for (const auto &entry : entries_)
        os << entry.key << '\t' << formatCanonical(entry.value)
           << '\n';
}

std::string
GoldenRecord::toString() const
{
    std::ostringstream oss;
    serialize(oss);
    return oss.str();
}

GoldenRecord
GoldenRecord::parse(std::istream &is, const std::string &source)
{
    GoldenRecord record;
    std::string line;
    int line_number = 0;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;
        const auto tab = line.find('\t');
        require(tab != std::string::npos, source, ":", line_number,
                ": golden line has no tab separator: '", line, "'");
        const std::string key = line.substr(0, tab);
        const std::string text = line.substr(tab + 1);
        require(!key.empty(), source, ":", line_number,
                ": golden line has an empty key");
        double value = 0.0;
        if (text == "nan") {
            value = std::nan("");
        } else if (text == "inf") {
            value = HUGE_VAL;
        } else if (text == "-inf") {
            value = -HUGE_VAL;
        } else {
            require(tryParseDouble(text.c_str(), value), source, ":",
                    line_number, ": value '", text, "' of key '",
                    key, "' is not a number");
        }
        record.add(key, value);
    }
    return record;
}

GoldenRecord
GoldenRecord::fromString(const std::string &text)
{
    std::istringstream iss(text);
    return parse(iss, "<string>");
}

GoldenRecord
GoldenRecord::fromFile(const std::string &path)
{
    std::ifstream file(path);
    require(file.good(), "cannot open golden file '", path, "'");
    return parse(file, path);
}

void
GoldenRecord::writeFile(const std::string &path) const
{
    std::ofstream file(path);
    require(file.good(), "cannot write golden file '", path, "'");
    serialize(file);
    file.flush();
    require(file.good(), "error while writing golden file '", path,
            "'");
}

} // namespace testing
} // namespace amped

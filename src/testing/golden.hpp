/**
 * @file
 * Golden-file records: the machine-readable output format behind the
 * figure/table regression harness.
 *
 * A GoldenRecord is an ordered list of (key, double) metrics.  The
 * canonical serialization is line-oriented TSV — one `key<TAB>value`
 * per line, '#' comments, values rendered with the shortest
 * representation that round-trips through strtod — so goldens are
 * diffable by humans and stable across platforms up to floating-
 * point noise (which the tolerance-aware diff in diff.hpp absorbs).
 *
 * Infeasible design points are recorded as NaN: a point silently
 * becoming feasible (or infeasible) is a golden mismatch, not a
 * silently dropped row.
 */

#ifndef AMPED_TESTING_GOLDEN_HPP
#define AMPED_TESTING_GOLDEN_HPP

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace amped {
namespace testing {

/** One named metric of a golden record. */
struct GoldenEntry
{
    std::string key;    ///< Hierarchical name ("fig4/TP2_PP64/b8192/days").
    double value = 0.0; ///< The pinned number (NaN = infeasible point).
};

/**
 * Renders a double as the shortest decimal string that parses back
 * to the identical bits (canonical golden representation).
 */
std::string formatCanonical(double value);

/**
 * An ordered, key-unique collection of metrics.
 */
class GoldenRecord
{
  public:
    /**
     * Appends a metric.
     *
     * @throws UserError on duplicate keys or keys containing tabs,
     *         newlines, or nothing at all.
     */
    void add(const std::string &key, double value);

    /** Entries in insertion order. */
    const std::vector<GoldenEntry> &entries() const { return entries_; }

    /** Number of metrics. */
    std::size_t size() const { return entries_.size(); }

    /** Pointer to the value of @p key, or nullptr when absent. */
    const double *find(const std::string &key) const;

    /** Writes the canonical TSV form. */
    void serialize(std::ostream &os) const;

    /** serialize() into a string. */
    std::string toString() const;

    /**
     * Parses the canonical form.
     *
     * @param source Name used in diagnostics (path or "<string>").
     * @throws UserError on malformed lines, with line numbers.
     */
    static GoldenRecord parse(std::istream &is,
                              const std::string &source);

    /** parse() from a string. */
    static GoldenRecord fromString(const std::string &text);

    /** parse() from a file; throws UserError when unreadable. */
    static GoldenRecord fromFile(const std::string &path);

    /** Serializes to a file; throws UserError when unwritable. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<GoldenEntry> entries_;
    std::map<std::string, std::size_t> index_;
};

} // namespace testing
} // namespace amped

#endif // AMPED_TESTING_GOLDEN_HPP

/**
 * @file
 * Minimal key = value configuration-file reader (no external
 * dependencies): '#' comments, blank lines, whitespace-trimmed keys
 * and values, typed accessors with defaults, and unknown-key
 * detection so typos fail loudly.
 */

#ifndef AMPED_COMMON_KEYVAL_HPP
#define AMPED_COMMON_KEYVAL_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace amped {

/**
 * A parsed key = value document.
 */
class KeyValueConfig
{
  public:
    /** Parses text; throws UserError on malformed lines. */
    static KeyValueConfig fromString(const std::string &text);

    /** Reads and parses a file; throws UserError if unreadable. */
    static KeyValueConfig fromFile(const std::string &path);

    /** True when the key is present. */
    bool has(const std::string &key) const;

    /** String value; throws UserError when absent. */
    std::string getString(const std::string &key) const;

    /** String value with a default. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Double value; throws UserError when absent or malformed. */
    double getDouble(const std::string &key) const;

    /** Double value with a default. */
    double getDouble(const std::string &key, double fallback) const;

    /** Integer value; throws UserError when absent or malformed. */
    std::int64_t getInt(const std::string &key) const;

    /** Integer value with a default. */
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;

    /** All keys, sorted (for diagnostics). */
    std::vector<std::string> keys() const;

    /**
     * Throws UserError when the document contains keys outside
     * @p allowed — catches typos in user config files.
     */
    void requireOnly(const std::set<std::string> &allowed) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace amped

#endif // AMPED_COMMON_KEYVAL_HPP

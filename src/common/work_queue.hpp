/**
 * @file
 * Bounded admission queue with overload shedding, per-item
 * deadlines, and retry-with-backoff — the backpressure substrate the
 * ROADMAP's `amped serve` service will mount in front of the
 * evaluation engines.
 *
 * Design: the queue is *caller-driven* and synchronous.  It owns no
 * threads; submit() admits (or sheds/rejects) work and drainReady()
 * runs whatever is runnable at the clock's current time on the
 * calling thread.  A service loop alternates the two; tests drive
 * them with a ManualClock so every behavior — capacity rejection,
 * shed-oldest, queued-deadline expiry, exponential backoff — is
 * exactly reproducible without sleeping.
 *
 * Failure taxonomy (mirrors the sweep engines' UserError / error
 * split, DESIGN.md "Cancellation and overload control"):
 *
 *  - TransientError: the designated "try again" class (downstream
 *    briefly overloaded, resource momentarily unavailable).  The
 *    item is re-enqueued with exponential backoff plus seeded jitter
 *    until WorkQueueOptions::maxAttempts is exhausted.
 *  - Any other exception: a permanent failure; the item finishes
 *    with ItemOutcome::failed and its message, no retry.
 *
 * Observability (`common.queue.*`): depth gauge plus submitted /
 * completed / rejected / shed / expired / retries / failed counters.
 */

#ifndef AMPED_COMMON_WORK_QUEUE_HPP
#define AMPED_COMMON_WORK_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"

namespace amped {

namespace obs {
class MetricsRegistry;
class Counter;
class Gauge;
} // namespace obs

/**
 * The designated transient failure class: a task throwing this is
 * retried with backoff; any other exception fails it permanently.
 */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(std::string message)
        : std::runtime_error(std::move(message))
    {}
};

/** What to do with new work when the queue is full. */
enum class OverloadPolicy : unsigned char
{
    rejectNewest, ///< Refuse the incoming item (caller sees it).
    shedOldest,   ///< Drop the oldest queued item, admit the new one.
};

/** Queue sizing, retry, and injection knobs. */
struct WorkQueueOptions
{
    /** Maximum queued items (>= 1). */
    std::size_t capacity = 64;

    OverloadPolicy policy = OverloadPolicy::rejectNewest;

    /** Total runs of one item, first attempt included (>= 1). */
    unsigned maxAttempts = 3;

    /** Backoff before retry k (1-based): min(maxBackoffSeconds,
     *  initialBackoffSeconds * backoffMultiplier^(k-1)), scaled by a
     *  jitter factor in [0.5, 1). */
    double initialBackoffSeconds = 0.05;
    double backoffMultiplier = 2.0;
    double maxBackoffSeconds = 5.0;

    /** Seed of the jitter stream (deterministic per queue). */
    std::uint64_t jitterSeed = 0;

    /** Time source (nullptr = the steady monotonic clock). */
    const Clock *clock = nullptr;

    /** Metrics destination (nullptr = the global registry). */
    obs::MetricsRegistry *registry = nullptr;
};

/** How one admitted item ended. */
enum class ItemOutcome : unsigned char
{
    completed, ///< Task ran and returned.
    expired,   ///< Deadline passed while queued; task never ran.
    shed,      ///< Dropped by shed-oldest overload handling.
    failed,    ///< Permanent failure (non-transient throw or
               ///< transient failures exhausting maxAttempts).
};

/** Terminal record for one item (returned by drainReady / submit). */
struct WorkItemResult
{
    std::uint64_t id = 0;    ///< Admission id (from submit()).
    ItemOutcome outcome = ItemOutcome::completed;
    unsigned attempts = 0;   ///< Times the task actually ran.
    std::string error;       ///< Last failure message, if any.
};

/**
 * Bounded FIFO admission queue.  Not thread-safe: the service loop
 * owning it serializes submit/drain (the evaluation work itself
 * parallelizes on the ThreadPool underneath).
 *
 * That contract is machine-checked with a phantom SerialGate
 * capability (common/thread_annotations.hpp): the queue state is
 * AMPED_GUARDED_BY(serial_), every public entry point enters the
 * gate, and private helpers require it — so a new method reaching
 * the queue without going through a serialized entry point fails
 * `-Werror=thread-safety`.  The gate costs nothing at run time and
 * proves access *discipline*, not mutual exclusion.
 */
class WorkQueue
{
  public:
    explicit WorkQueue(WorkQueueOptions options = {});

    /** Outcome of one submit() call. */
    struct Admission
    {
        bool accepted = false;
        std::uint64_t id = 0; ///< Valid when accepted.
        /** The item dropped to make room (shedOldest only). */
        std::optional<WorkItemResult> shedItem;
    };

    /**
     * Admits @p task, applying the overload policy at capacity.
     *
     * @param task The work to run (may throw; see the taxonomy).
     * @param deadline Per-item expiry: an item still queued (or
     *        awaiting retry) past it finishes as expired without
     *        running.  never() = none.
     */
    Admission submit(std::function<void()> task,
                     Deadline deadline = Deadline());

    /** Items currently queued (including ones backing off). */
    std::size_t
    depth() const
    {
        SerialSection section(serial_);
        return items_.size();
    }

    /**
     * Runs every item that is runnable now — admission order, skipping
     * items still backing off — until none is runnable, and returns
     * the terminal results produced (completed / expired / failed).
     * Items whose retry backoff has not elapsed stay queued; advance
     * the clock (or wait) and call again.
     */
    std::vector<WorkItemResult> drainReady();

    /**
     * Clock seconds at which the earliest queued item becomes
     * runnable; +infinity when the queue is empty.  A service loop
     * sleeps until this; tests advance their ManualClock to it.
     */
    double nextReadySeconds() const;

    const WorkQueueOptions &options() const { return options_; }

  private:
    struct Item
    {
        std::uint64_t id = 0;
        std::function<void()> task;
        Deadline deadline;
        unsigned attempts = 0;      ///< Runs so far.
        double notBeforeSeconds = 0.0; ///< Backoff gate.
        std::string lastError;
    };

    double nowSeconds() const;
    double backoffSeconds(unsigned retry_index)
        AMPED_REQUIRES(serial_);
    void publishDepth() AMPED_REQUIRES(serial_);

    /** Phantom capability standing in for "the owning loop". */
    SerialGate serial_;

    WorkQueueOptions options_;
    const Clock *clock_;
    std::deque<Item> items_ AMPED_GUARDED_BY(serial_);
    std::uint64_t nextId_ AMPED_GUARDED_BY(serial_) = 1;
    Rng jitter_ AMPED_GUARDED_BY(serial_);

    obs::Gauge *depthGauge_;
    obs::Counter *submittedCounter_;
    obs::Counter *completedCounter_;
    obs::Counter *rejectedCounter_;
    obs::Counter *shedCounter_;
    obs::Counter *expiredCounter_;
    obs::Counter *retriesCounter_;
    obs::Counter *failedCounter_;
};

/**
 * Pre-registers every `common.queue.*` metric in @p registry (the
 * run-report schema v2 guarantee, as registerCancellationMetrics).
 */
void registerWorkQueueMetrics(obs::MetricsRegistry &registry);

} // namespace amped

#endif // AMPED_COMMON_WORK_QUEUE_HPP

/**
 * @file
 * Compile-time dimensional analysis for the unit conventions of
 * units.hpp.
 *
 * Every AMPeD equation mixes times (seconds), data sizes (bits),
 * bandwidths (bits/s), compute work (FLOPs), compute rates (FLOP/s),
 * clock frequencies (Hz) and energies (joules).  Historically those
 * all travelled as raw `double`s, so a Gb-vs-GB or bits-vs-bytes slip
 * silently skewed every figure.  This header makes the dimension part
 * of the type:
 *
 *     Bits    traffic  = ...;
 *     Seconds transfer = traffic / link.bandwidth;   // ok
 *     Seconds broken   = traffic + transfer;         // compile error
 *
 * Design rules (DESIGN.md "Dimensional correctness"):
 *
 *  - A Quantity<Dim> is a single double tagged with a dimension
 *    vector (time, information, compute, energy exponents).  It is
 *    trivially copyable and exactly the size of a double — the
 *    abstraction costs nothing at run time.
 *  - Same-dimension quantities add, subtract and compare.  Products
 *    and quotients combine dimensions at compile time
 *    (Bits / BitsPerSecond -> Seconds, Flops / FlopsPerSecond ->
 *    Seconds, Seconds * Hertz -> dimensionless double).  A fully
 *    cancelled dimension collapses to plain double, so ratios and
 *    cycle counts flow back into ordinary arithmetic.
 *  - Construction from a raw double is explicit, and the only way
 *    back out is the explicit .value() escape hatch.  Raw doubles are
 *    confined to I/O boundaries (config parsing, report/JSON/CSV
 *    emission, golden records) and to documented nonlinear internals
 *    (e.g. sqrt in Daly's interval); tools/lint_units enforces that
 *    public seams do not regrow raw unit-suffixed doubles.
 *  - All quantities are stored in the canonical units of units.hpp
 *    (seconds, bits, bits/s, FLOPs, FLOP/s, Hz, joules).  There are
 *    no scaled types: converting vendor units (GB/s, Gb/s, hours)
 *    happens in named constructors that reuse the units:: helpers.
 *
 * Formatting reuses the existing units:: helpers, so typed values
 * render exactly like the raw doubles they replaced.
 */

#ifndef AMPED_COMMON_QUANTITY_HPP
#define AMPED_COMMON_QUANTITY_HPP

#include <functional>
#include <ostream>
#include <string>
#include <type_traits>

#include "common/units.hpp"

namespace amped {
namespace units {

/**
 * A dimension vector: exponents of the four base dimensions AMPeD
 * needs.  (No length/mass/temperature — this is a performance model,
 * not a physics engine.)  Cycles are deliberately dimensionless so
 * that Seconds * Hertz collapses to a plain double cycle count.
 */
template <int TimeE, int InfoE, int ComputeE, int EnergyE>
struct Dimension
{
    static constexpr int time = TimeE;       ///< seconds exponent
    static constexpr int info = InfoE;       ///< bits exponent
    static constexpr int compute = ComputeE; ///< FLOPs exponent
    static constexpr int energy = EnergyE;   ///< joules exponent

    static constexpr bool dimensionless =
        TimeE == 0 && InfoE == 0 && ComputeE == 0 && EnergyE == 0;
};

/** Dimension of a product. */
template <typename A, typename B>
using MulDimension = Dimension<A::time + B::time, A::info + B::info,
                               A::compute + B::compute,
                               A::energy + B::energy>;

/** Dimension of a quotient. */
template <typename A, typename B>
using DivDimension = Dimension<A::time - B::time, A::info - B::info,
                               A::compute - B::compute,
                               A::energy - B::energy>;

/** Dimension of a reciprocal. */
template <typename A>
using InverseDimension =
    Dimension<-A::time, -A::info, -A::compute, -A::energy>;

template <typename Dim>
class Quantity;

/**
 * Result type of dimension arithmetic: a fully cancelled dimension
 * collapses to plain double so ratios (Bits / Bits, Seconds * Hertz)
 * re-enter ordinary arithmetic without an escape hatch.
 */
template <typename Dim>
using QuantityOrDouble =
    std::conditional_t<Dim::dimensionless, double, Quantity<Dim>>;

namespace detail {

template <typename Dim>
constexpr QuantityOrDouble<Dim>
make(double value)
{
    if constexpr (Dim::dimensionless)
        return value;
    else
        return Quantity<Dim>{value};
}

} // namespace detail

/**
 * A double tagged with a compile-time dimension.  Zero-overhead:
 * trivially copyable, sizeof(double), every operation inlines to the
 * identical double arithmetic (the golden files are byte-identical
 * before and after the typed refactor).
 */
template <typename Dim>
class Quantity
{
  public:
    using dimension = Dim;

    /** Zero-initialized, like the `double x = 0.0` it replaces. */
    constexpr Quantity() = default;

    /** Explicit: raw doubles enter only where a unit is asserted. */
    constexpr explicit Quantity(double value) : value_(value) {}

    /** The raw canonical-unit value — the explicit escape hatch. */
    constexpr double value() const { return value_; }

    // --- same-dimension arithmetic -------------------------------
    constexpr Quantity operator-() const { return Quantity{-value_}; }

    constexpr Quantity &
    operator+=(Quantity other)
    {
        value_ += other.value_;
        return *this;
    }

    constexpr Quantity &
    operator-=(Quantity other)
    {
        value_ -= other.value_;
        return *this;
    }

    constexpr Quantity &
    operator*=(double scale)
    {
        value_ *= scale;
        return *this;
    }

    constexpr Quantity &
    operator/=(double scale)
    {
        value_ /= scale;
        return *this;
    }

    friend constexpr Quantity
    operator+(Quantity a, Quantity b)
    {
        return Quantity{a.value_ + b.value_};
    }

    friend constexpr Quantity
    operator-(Quantity a, Quantity b)
    {
        return Quantity{a.value_ - b.value_};
    }

    // --- scalar scaling ------------------------------------------
    friend constexpr Quantity
    operator*(Quantity q, double scale)
    {
        return Quantity{q.value_ * scale};
    }

    friend constexpr Quantity
    operator*(double scale, Quantity q)
    {
        return Quantity{scale * q.value_};
    }

    friend constexpr Quantity
    operator/(Quantity q, double scale)
    {
        return Quantity{q.value_ / scale};
    }

    /** double / Quantity inverts the dimension (1 / rate). */
    friend constexpr QuantityOrDouble<InverseDimension<Dim>>
    operator/(double scale, Quantity q)
    {
        return detail::make<InverseDimension<Dim>>(scale / q.value_);
    }

    // --- comparisons (same dimension only) -----------------------
    friend constexpr bool
    operator==(Quantity a, Quantity b)
    {
        return a.value_ == b.value_;
    }
    friend constexpr bool
    operator!=(Quantity a, Quantity b)
    {
        return a.value_ != b.value_;
    }
    friend constexpr bool
    operator<(Quantity a, Quantity b)
    {
        return a.value_ < b.value_;
    }
    friend constexpr bool
    operator<=(Quantity a, Quantity b)
    {
        return a.value_ <= b.value_;
    }
    friend constexpr bool
    operator>(Quantity a, Quantity b)
    {
        return a.value_ > b.value_;
    }
    friend constexpr bool
    operator>=(Quantity a, Quantity b)
    {
        return a.value_ >= b.value_;
    }

    /**
     * Streams the raw canonical-unit value, so log lines, cache keys
     * and error messages render exactly as the doubles did.
     */
    friend std::ostream &
    operator<<(std::ostream &os, Quantity q)
    {
        return os << q.value_;
    }

  private:
    double value_ = 0.0;
};

/** Dimension-combining product. */
template <typename DA, typename DB>
constexpr QuantityOrDouble<MulDimension<DA, DB>>
operator*(Quantity<DA> a, Quantity<DB> b)
{
    return detail::make<MulDimension<DA, DB>>(a.value() * b.value());
}

/** Dimension-combining quotient; same dimensions cancel to double. */
template <typename DA, typename DB>
constexpr QuantityOrDouble<DivDimension<DA, DB>>
operator/(Quantity<DA> a, Quantity<DB> b)
{
    return detail::make<DivDimension<DA, DB>>(a.value() / b.value());
}

// ---------------------------------------------------------------------
// The named quantities of Table IV (canonical units of units.hpp).
// ---------------------------------------------------------------------

/** Time in seconds. */
using Seconds = Quantity<Dimension<1, 0, 0, 0>>;

/** Frequency in cycles per second; Seconds * Hertz -> double cycles. */
using Hertz = Quantity<Dimension<-1, 0, 0, 0>>;

/** Data size in bits (Table IV convention). */
using Bits = Quantity<Dimension<0, 1, 0, 0>>;

/** Bandwidth in bits per second. */
using BitsPerSecond = Quantity<Dimension<-1, 1, 0, 0>>;

/** Compute work in FLOPs (1 MAC = 2 FLOPs, DESIGN.md Sec. 3). */
using Flops = Quantity<Dimension<0, 0, 1, 0>>;

/** Compute rate in FLOP per second. */
using FlopsPerSecond = Quantity<Dimension<-1, 0, 1, 0>>;

/** Reciprocal throughput C_MAC / C_nonlin (Eq. 3-4), s/FLOP. */
using SecondsPerFlop = Quantity<Dimension<1, 0, -1, 0>>;

/** Energy in joules. */
using Joules = Quantity<Dimension<0, 0, 0, 1>>;

/** Power in watts (J/s). */
using Watts = Quantity<Dimension<-1, 0, 0, 1>>;

// ---------------------------------------------------------------------
// Dimension algebra the model relies on, enforced at compile time.
// ---------------------------------------------------------------------

static_assert(std::is_same_v<decltype(Bits{} / BitsPerSecond{}), Seconds>,
              "bits / (bits/s) must be seconds");
static_assert(
    std::is_same_v<decltype(Flops{} / FlopsPerSecond{}), Seconds>,
    "FLOPs / (FLOP/s) must be seconds");
static_assert(std::is_same_v<decltype(Seconds{} * Hertz{}), double>,
              "seconds * Hz must be a dimensionless cycle count");
static_assert(std::is_same_v<decltype(Flops{} * SecondsPerFlop{}), Seconds>,
              "FLOPs * (s/FLOP) must be seconds");
static_assert(
    std::is_same_v<decltype(1.0 / FlopsPerSecond{}), SecondsPerFlop>,
    "1 / (FLOP/s) must be s/FLOP");
static_assert(
    std::is_same_v<decltype(BitsPerSecond{} * Seconds{}), Bits>,
    "(bits/s) * s must be bits");
static_assert(std::is_same_v<decltype(Joules{} / Seconds{}), Watts>,
              "J / s must be W");
static_assert(std::is_same_v<decltype(Watts{} * Seconds{}), Joules>,
              "W * s must be J");
static_assert(std::is_same_v<decltype(Seconds{} / Seconds{}), double>,
              "a same-dimension ratio must collapse to double");
static_assert(std::is_trivially_copyable_v<Seconds> &&
                  sizeof(Seconds) == sizeof(double),
              "Quantity must stay a zero-overhead double wrapper");

// ---------------------------------------------------------------------
// Typed vendor-unit constructors (reuse the double helpers above so
// the conversion factors live in exactly one place).
// ---------------------------------------------------------------------

/** GB/s (vendor datasheet convention) as a typed bandwidth. */
constexpr BitsPerSecond
gigabytesPerSecondBw(double gbps)
{
    return BitsPerSecond{gigabytesPerSecond(gbps)};
}

/** Gb/s (network-card convention) as a typed bandwidth. */
constexpr BitsPerSecond
gigabitsPerSecondBw(double gbps)
{
    return BitsPerSecond{gigabitsPerSecond(gbps)};
}

/** Bytes (storage convention) as typed bits. */
constexpr Bits
bytesToBits(double bytes)
{
    return Bits{bytes * bitsPerByte};
}

// ---------------------------------------------------------------------
// Formatting: typed overloads of the units:: helpers, so reports and
// benches render quantities without reaching for .value().
// ---------------------------------------------------------------------

/** Adaptive duration formatting (formatDuration). */
inline std::string
format(Seconds s)
{
    return formatDuration(s.value());
}

/** Compute-rate formatting (formatFlops). */
inline std::string
format(FlopsPerSecond rate)
{
    return formatFlops(rate.value());
}

/** Bandwidth formatting (formatBandwidth). */
inline std::string
format(BitsPerSecond bw)
{
    return formatBandwidth(bw.value());
}

/** Data-size formatting: SI count suffix plus the unit. */
inline std::string
format(Bits bits)
{
    return formatCount(bits.value()) + "bit";
}

} // namespace units

// The model namespaces use the type names pervasively; lift them to
// amped:: so seams read `units::Seconds`-free (mirrors how error.hpp
// lifts require()).
using units::Bits;
using units::BitsPerSecond;
using units::Flops;
using units::FlopsPerSecond;
using units::Hertz;
using units::Joules;
using units::Seconds;
using units::SecondsPerFlop;
using units::Watts;

} // namespace amped

/** std::hash support (cache keys of typed configs). */
template <typename Dim>
struct std::hash<amped::units::Quantity<Dim>>
{
    std::size_t
    operator()(amped::units::Quantity<Dim> q) const noexcept
    {
        return std::hash<double>{}(q.value());
    }
};

#endif // AMPED_COMMON_QUANTITY_HPP

/**
 * @file
 * FNV-1a 64-bit hashing (header-only).
 *
 * Used to key memoization caches on configuration state (e.g. the
 * `Explorer::sweepAll` result cache): the caller builds a canonical
 * description string of every input that influences the result and
 * hashes it.  FNV-1a is not cryptographic; cache users must verify
 * the full key on a hash hit to rule out collisions.
 */

#ifndef AMPED_COMMON_HASH_HPP
#define AMPED_COMMON_HASH_HPP

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace amped {

/** FNV-1a offset basis / prime (64-bit variant). */
inline constexpr std::uint64_t kFnv1aOffsetBasis =
    1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/** Incremental FNV-1a hasher. */
class Fnv1a
{
  public:
    /** Mixes @p size raw bytes into the state. */
    void
    bytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            state_ ^= static_cast<std::uint64_t>(p[i]);
            state_ *= kFnv1aPrime;
        }
    }

    /** Mixes a string's bytes (no length prefix; caller delimits). */
    void add(std::string_view text)
    {
        bytes(text.data(), text.size());
    }

    std::uint64_t digest() const { return state_; }

  private:
    std::uint64_t state_ = kFnv1aOffsetBasis;
};

/** One-shot FNV-1a of a byte string. */
inline std::uint64_t
fnv1a64(std::string_view text)
{
    Fnv1a hasher;
    hasher.add(text);
    return hasher.digest();
}

} // namespace amped

#endif // AMPED_COMMON_HASH_HPP

#include "error.hpp"

#include <cstdio>
#include <cstdlib>

namespace amped {
namespace detail {

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file,
                 line);
    std::abort();
}

} // namespace detail
} // namespace amped

/**
 * @file
 * Reusable fixed-size worker pool with a deterministic parallel-for
 * primitive.
 *
 * The design-space sweeps of the case studies evaluate hundreds to
 * thousands of independent (mapping, batch) points; each evaluation
 * is const and takes microseconds, so the natural scaling axis is
 * host cores.  ThreadPool provides exactly the primitive those
 * sweeps need: parallelFor(n, chunk, fn) invokes fn(i) once for
 * every index in [0, n), handing out contiguous chunks to workers
 * from an atomic cursor.  Callers write results into pre-sized
 * vectors by index, so the output of a parallel run is byte-
 * identical to a serial run regardless of the thread count or
 * scheduling order.
 *
 * Thread-count selection (first match wins):
 *
 *  1. an explicit count passed to the constructor / parallelFor's
 *     max_workers cap (e.g. from a --threads CLI flag);
 *  2. the AMPED_THREADS environment variable (positive integer);
 *  3. std::thread::hardware_concurrency().
 *
 * A count of 1 (or n <= chunk) degrades to a plain serial loop on
 * the calling thread — no queueing, no synchronization — so the
 * pool is safe to use unconditionally.
 */

#ifndef AMPED_COMMON_THREAD_POOL_HPP
#define AMPED_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/thread_annotations.hpp"

namespace amped {

/**
 * Fixed-size worker pool.  Threads are spawned once in the
 * constructor and joined in the destructor; every parallelFor call
 * reuses them.
 *
 * The calling thread always participates in the loop it issues, so
 * a pool constructed with @c threads == k runs loops at parallelism
 * k using k - 1 pooled workers plus the caller.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total parallelism including the calling thread;
     *        0 selects defaultThreadCount().
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers.  Outstanding loops must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Parallelism of this pool (pooled workers + the caller). */
    unsigned threadCount() const { return threadCount_; }

    /**
     * Invokes @p fn(i) exactly once for every i in [0, n).
     *
     * Work is handed out in contiguous index chunks of @p chunk
     * (0 is treated as 1) from an atomic cursor.  Determinism
     * contract: fn must only write to per-index state (e.g. slot i
     * of a pre-sized vector); under that contract the results are
     * independent of thread count and scheduling.
     *
     * When fn throws, remaining chunks are abandoned at the next
     * chunk boundary and the exception thrown at the *lowest index*
     * is rethrown on the calling thread after all workers quiesce —
     * the same exception a serial run would surface, independent of
     * thread count and scheduling.
     *
     * Runs serially inline when the effective parallelism —
     * min(threadCount(), max_workers if nonzero, number of chunks)
     * — is 1.  Must not be called from inside fn (no nesting).
     *
     * @param n Number of indices.
     * @param chunk Indices per work grab (amortizes the cursor).
     * @param fn Body, invoked as fn(index).
     * @param max_workers Optional cap on parallelism for this call
     *        (0 = use the whole pool); lets one shared pool serve
     *        callers with different --threads settings.
     */
    void parallelFor(std::size_t n, std::size_t chunk,
                     const std::function<void(std::size_t)> &fn,
                     std::size_t max_workers = 0);

    /**
     * Cancellable parallelFor: additionally polls @p token
     * (status(), not checkpoint() — chunk boundaries are not
     * deterministic observation points) at every chunk boundary and
     * abandons remaining chunks once it answers non-Completed.
     *
     * Returns Completed when every index ran; otherwise the token's
     * stop status.  On a stop, which indices ran is scheduling-
     * dependent — callers needing deterministic partial results must
     * checkpoint *between* parallelFor calls (the block/wave
     * discipline in common/cancel.hpp) and discard the loop's
     * output.  An inert token makes this identical to the plain
     * overload.
     */
    RunStatus parallelFor(std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t)> &fn,
                          const CancelToken &token,
                          std::size_t max_workers = 0);

    /**
     * AMPED_THREADS when set to a positive integer, otherwise
     * hardware_concurrency() (at least 1).
     */
    static unsigned defaultThreadCount();

    /**
     * Process-wide pool, created on first use with
     * defaultThreadCount() threads.  Sweep callers share it instead
     * of spawning threads per sweep; per-call max_workers caps keep
     * different --threads settings independent.
     */
    static ThreadPool &shared();

  private:
    void workerMain();

    unsigned threadCount_;
    std::vector<std::thread> workers_;
    Mutex mutex_;
    // condition_variable_any waits on MutexLock directly, so the
    // thread-safety analysis sees the capability held across waits
    // (see common/thread_annotations.hpp).
    std::condition_variable_any workAvailable_;
    std::deque<std::function<void()>> queue_ AMPED_GUARDED_BY(mutex_);
    bool stop_ AMPED_GUARDED_BY(mutex_) = false;
};

} // namespace amped

#endif // AMPED_COMMON_THREAD_POOL_HPP

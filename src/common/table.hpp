/**
 * @file
 * Text-table and CSV writers used by the benchmark harness to print
 * the paper's tables and figure series.
 */

#ifndef AMPED_COMMON_TABLE_HPP
#define AMPED_COMMON_TABLE_HPP

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace amped {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"Model", "TFLOP/s/GPU", "Error (%)"});
 *   t.addRow({"145B", "147.0", "0.6"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Renders the table with aligned columns and a header rule. */
    void print(std::ostream &os) const;

    /** Renders the table as RFC-4180-style CSV (quoting when needed). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Escapes a CSV cell: wraps in quotes when it contains a comma,
 * quote, or newline; doubles embedded quotes.
 */
std::string csvEscape(const std::string &cell);

} // namespace amped

#endif // AMPED_COMMON_TABLE_HPP

/**
 * @file
 * Status-message helpers in the spirit of gem5's inform()/warn():
 * purely informational, never terminate the program.  Output can be
 * silenced globally (used by tests and benchmark harnesses).
 */

#ifndef AMPED_COMMON_LOG_HPP
#define AMPED_COMMON_LOG_HPP

#include <iostream>
#include <sstream>
#include <string>

namespace amped {
namespace log {

/** Global verbosity switch; defaults to enabled. */
bool enabled();

/** Enables or disables inform/warn output; returns previous state. */
bool setEnabled(bool on);

namespace detail {
void emit(const char *prefix, const std::string &message);
} // namespace detail

/** Prints an informational status message ("info: ..."). */
template <typename... Args>
void
inform(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    detail::emit("info", oss.str());
}

/**
 * Prints a warning: something works but is approximated or suspect
 * (e.g. an efficiency fit clamped at its floor).
 */
template <typename... Args>
void
warn(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    detail::emit("warn", oss.str());
}

/** RAII guard that silences logging within a scope. */
class Silencer
{
  public:
    Silencer() : previous_(setEnabled(false)) {}
    ~Silencer() { setEnabled(previous_); }
    Silencer(const Silencer &) = delete;
    Silencer &operator=(const Silencer &) = delete;

  private:
    bool previous_;
};

} // namespace log
} // namespace amped

#endif // AMPED_COMMON_LOG_HPP

/**
 * @file
 * Locale-independent double parsing — the one place the repo turns
 * text into floating point.
 *
 * Everything downstream of a parsed double is part of the
 * determinism contract: goldens, JSON round-trips, config files, CLI
 * flags.  `std::strtod` and friends read the *current C locale's*
 * radix character, so a process running under LC_ALL=de_DE.UTF-8
 * parses "0.5" as 0 and silently corrupts every golden.  The
 * `no-locale-parse` rule of tools/amped_lint bans strtod / atof /
 * sscanf-float across the tree; this header is the canonical
 * replacement they route through.
 *
 * Semantics (deliberately the strtod C-locale contract, so swapping
 * parsers never changed a golden):
 *
 *  - leading whitespace is skipped, an optional '+' or '-' sign is
 *    accepted (std::from_chars itself takes neither);
 *  - "inf" / "infinity" / "nan" parse case-insensitively;
 *  - overflow parses to +-HUGE_VAL and underflow to a signed zero,
 *    exactly as strtod reports them;
 *  - @p end (when non-null) receives the first unconsumed character,
 *    strtod-style, and equals @p begin when nothing parsed.
 *
 * Implementation: std::from_chars — locale-independent by
 * specification, and it already accepts inf/infinity/nan — with a
 * byte-level prefix scan for the leading whitespace and '+'/'-' sign
 * from_chars does not take.  Header-only so the obs layer (which
 * links *below* amped_common) can use it.
 */

#ifndef AMPED_COMMON_PARSE_NUM_HPP
#define AMPED_COMMON_PARSE_NUM_HPP

#include <cctype>
#include <charconv>
#include <cstddef>
#include <limits>
#include <system_error>

#if !defined(__cpp_lib_to_chars)
#include <cstdlib>
#endif

namespace amped {

/**
 * Parses a double from the NUL-terminated @p text, strtod-style but
 * immune to the process locale.
 *
 * @param text Input; leading whitespace and an optional sign are
 *        consumed before the number.
 * @param end When non-null, receives a pointer to the first
 *        character after the parsed number — equal to @p text when
 *        nothing parsed (and 0.0 is returned).
 * @return The parsed value; +-HUGE_VAL on overflow, a signed zero on
 *         underflow, 0.0 when nothing parsed.
 */
inline double
parseDouble(const char *text, const char **end = nullptr)
{
#if !defined(__cpp_lib_to_chars)
    // Toolchains without floating-point from_chars (libstdc++ < 11)
    // fall back to strtod, whose semantics this function mirrors.
    // That re-opens the locale hole on those toolchains only; every
    // supported CI compiler has from_chars, and the allowlist entry
    // no-locale-parse:src/common/parse_num.hpp:strtod documents this
    // as the one sanctioned use.
    char *stop = nullptr;
    const double value = std::strtod(text, &stop);
    if (end != nullptr)
        *end = stop == nullptr ? text : stop;
    return value;
#else
    const char *cursor = text;
    while (*cursor != '\0' &&
           std::isspace(static_cast<unsigned char>(*cursor)) != 0)
        ++cursor;

    bool negative = false;
    const char *digits = cursor;
    if (*digits == '+' || *digits == '-') {
        negative = *digits == '-';
        ++digits;
    }

    // from_chars needs an end pointer; the NUL terminator bounds the
    // scan without a strlen pass over long documents.
    const char *stop = digits;
    while (*stop != '\0')
        ++stop;

    double magnitude = 0.0;
    const auto result = std::from_chars(digits, stop, magnitude);
    if (result.ec == std::errc()) {
        if (end != nullptr)
            *end = result.ptr;
        return negative ? -magnitude : magnitude;
    }
    if (result.ec == std::errc::result_out_of_range) {
        // from_chars consumed a well-formed number but leaves the
        // output unmodified on overflow *and* underflow, so decide
        // from the token which side it fell off: a negative exponent
        // ("1e-400") or a sub-one mantissa ("0.00...1") underflows
        // to a signed zero; everything else overflows to +-infinity
        // — exactly how strtod reports the two cases.
        if (end != nullptr)
            *end = result.ptr;
        const char *exponent = digits;
        while (exponent != result.ptr && *exponent != 'e' &&
               *exponent != 'E')
            ++exponent;
        bool underflow;
        if (exponent != result.ptr) {
            underflow =
                exponent + 1 != result.ptr && exponent[1] == '-';
        } else {
            // No exponent: only a >308-digit integer part can
            // overflow, so a token starting below one underflowed.
            underflow = *digits == '0' || *digits == '.';
        }
        magnitude =
            underflow ? 0.0 : std::numeric_limits<double>::infinity();
        return negative ? -magnitude : magnitude;
    }
    // Nothing parsed.
    if (end != nullptr)
        *end = text;
    return 0.0;
#endif // __cpp_lib_to_chars
}

/**
 * Convenience form: true (with @p out set) when @p text holds a
 * valid double and nothing else (trailing whitespace included is a
 * failure, matching the strict config/CLI parsers).
 */
inline bool
tryParseDouble(const char *text, double &out)
{
    const char *end = nullptr;
    const double value = parseDouble(text, &end);
    if (end == text || *end != '\0')
        return false;
    out = value;
    return true;
}

} // namespace amped

#endif // AMPED_COMMON_PARSE_NUM_HPP

#include "table.hpp"

#include <algorithm>
#include <iomanip>

#include "error.hpp"

namespace amped {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    require(!headers_.empty(), "TextTable: need at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(), "TextTable: row has ",
            cells.size(), " cells, expected ", headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 < row.size() ? "  " : "");
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w;
    total += 2 * (widths.size() - 1);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << csvEscape(row[c]);
            os << (c + 1 < row.size() ? "," : "");
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
csvEscape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace amped

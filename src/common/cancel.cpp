#include "cancel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.hpp"

namespace amped {

const char *
toString(RunStatus status)
{
    switch (status) {
    case RunStatus::Completed:
        return "completed";
    case RunStatus::Cancelled:
        return "cancelled";
    case RunStatus::DeadlineExceeded:
        return "deadline-exceeded";
    }
    return "unknown";
}

namespace {

class SteadyClock final : public Clock
{
  public:
    double nowSeconds() const override
    {
        // steady_clock reads CLOCK_MONOTONIC, which POSIX lists as
        // async-signal-safe — cancel() relies on that.
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
            .count();
    }
};

} // namespace

const Clock &
Clock::steady()
{
    static const SteadyClock clock;
    return clock;
}

Deadline
Deadline::after(double seconds, const Clock &clock)
{
    Deadline deadline;
    deadline.clock_ = &clock;
    deadline.expiry_ = clock.nowSeconds() + seconds;
    return deadline;
}

bool
Deadline::expired() const
{
    return clock_ != nullptr && clock_->nowSeconds() >= expiry_;
}

double
Deadline::remainingSeconds() const
{
    if (clock_ == nullptr)
        return std::numeric_limits<double>::infinity();
    return std::max(0.0, expiry_ - clock_->nowSeconds());
}

/**
 * Shared token state.  Everything the signal-context cancel() path
 * touches is a lock-free atomic or a pre-resolved pointer; the
 * registry lookup (which takes a mutex) happens once in make().
 */
struct CancelToken::State
{
    std::shared_ptr<State> parent;
    Deadline deadline;

    /** The time source pairing cancel() stamps with latency reads. */
    const Clock *clock = &Clock::steady();

    std::atomic<bool> cancelled{false};
    /** When the first cancel() landed (clock seconds); inf = never. */
    std::atomic<double> requestSeconds{
        std::numeric_limits<double>::infinity()};
    /** Latched by the first checkpoint that observes a stop. */
    std::atomic<bool> observed{false};
    std::atomic<std::uint64_t> checkpoints{0};
    /** tripAfterCheckpoints seam; 0 = disabled. */
    std::atomic<std::uint64_t> tripAt{0};

    // Metric handles, shared down the child chain (one registry per
    // token tree).  Never null on a live state.
    obs::Counter *tokensCounter = nullptr;
    obs::Counter *requestsCounter = nullptr;
    obs::Counter *checkpointsCounter = nullptr;
    obs::Counter *observedCounter = nullptr;
    obs::Histogram *latencyHistogram = nullptr;
};

CancelToken
CancelToken::make(Deadline deadline, obs::MetricsRegistry *registry)
{
    obs::MetricsRegistry &reg =
        registry != nullptr ? *registry
                            : obs::MetricsRegistry::global();
    auto state = std::make_shared<State>();
    state->deadline = deadline;
    if (deadline.clock() != nullptr)
        state->clock = deadline.clock();
    state->tokensCounter = &reg.counter("common.cancel.tokens");
    state->requestsCounter = &reg.counter("common.cancel.requests");
    state->checkpointsCounter =
        &reg.counter("common.cancel.checkpoints");
    state->observedCounter = &reg.counter("common.cancel.observed");
    state->latencyHistogram = &reg.histogram(
        "common.cancel.latency_seconds", /*timing=*/true);
    state->tokensCounter->add(1);

    CancelToken token;
    token.state_ = std::move(state);
    return token;
}

CancelToken
CancelToken::child(Deadline deadline) const
{
    if (state_ == nullptr)
        return make(deadline);
    auto state = std::make_shared<State>();
    state->parent = state_;
    state->deadline = deadline;
    state->clock = deadline.clock() != nullptr ? deadline.clock()
                                               : state_->clock;
    state->tokensCounter = state_->tokensCounter;
    state->requestsCounter = state_->requestsCounter;
    state->checkpointsCounter = state_->checkpointsCounter;
    state->observedCounter = state_->observedCounter;
    state->latencyHistogram = state_->latencyHistogram;
    state->tokensCounter->add(1);

    CancelToken token;
    token.state_ = std::move(state);
    return token;
}

void
CancelToken::cancel() const
{
    if (state_ == nullptr)
        return;
    // Stamp the request time first so any checkpoint that sees the
    // flag also sees a finite stamp (relaxed is fine: the stamp only
    // feeds the advisory latency histogram).
    double expected = std::numeric_limits<double>::infinity();
    state_->requestSeconds.compare_exchange_strong(
        expected, state_->clock->nowSeconds(),
        std::memory_order_relaxed);
    if (!state_->cancelled.exchange(true, std::memory_order_release))
        state_->requestsCounter->add(1);
}

bool
CancelToken::cancelRequested() const
{
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_acquire);
}

RunStatus
CancelToken::status() const
{
    if (state_ == nullptr)
        return RunStatus::Completed;
    // Explicit cancellation anywhere in the chain wins over deadline
    // expiry anywhere in the chain.
    for (const State *s = state_.get(); s != nullptr;
         s = s->parent.get())
        if (s->cancelled.load(std::memory_order_acquire))
            return RunStatus::Cancelled;
    for (const State *s = state_.get(); s != nullptr;
         s = s->parent.get())
        if (s->deadline.expired())
            return RunStatus::DeadlineExceeded;
    return RunStatus::Completed;
}

RunStatus
CancelToken::checkpoint() const
{
    if (state_ == nullptr)
        return RunStatus::Completed;
    state_->checkpointsCounter->add(1);
    const std::uint64_t seen =
        state_->checkpoints.fetch_add(1, std::memory_order_relaxed) +
        1;
    const std::uint64_t trip =
        state_->tripAt.load(std::memory_order_relaxed);
    if (trip != 0 && seen >= trip)
        cancel();

    const RunStatus result = status();
    if (result == RunStatus::Completed)
        return result;

    bool expected = false;
    if (state_->observed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
        // First observation: record request-to-checkpoint latency.
        // Reference time: the earliest trigger found on the chain —
        // the cancel() stamp for explicit requests, the expiry for
        // deadlines — read against that node's own clock so manual
        // test clocks measure deterministically.
        double latency = 0.0;
        if (result == RunStatus::Cancelled) {
            for (const State *s = state_.get(); s != nullptr;
                 s = s->parent.get()) {
                if (!s->cancelled.load(std::memory_order_acquire))
                    continue;
                const double stamp = s->requestSeconds.load(
                    std::memory_order_relaxed);
                if (std::isfinite(stamp))
                    latency = std::max(
                        0.0, s->clock->nowSeconds() - stamp);
                break;
            }
        } else {
            for (const State *s = state_.get(); s != nullptr;
                 s = s->parent.get()) {
                if (!s->deadline.expired())
                    continue;
                latency = std::max(
                    0.0, s->deadline.clock()->nowSeconds() -
                             s->deadline.expirySeconds());
                break;
            }
        }
        state_->observedCounter->add(1);
        state_->latencyHistogram->observe(latency);
    }
    return result;
}

void
CancelToken::tripAfterCheckpoints(std::uint64_t n) const
{
    if (state_ != nullptr)
        state_->tripAt.store(n, std::memory_order_relaxed);
}

void
registerCancellationMetrics(obs::MetricsRegistry &registry)
{
    registry.counter("common.cancel.tokens");
    registry.counter("common.cancel.requests");
    registry.counter("common.cancel.checkpoints");
    registry.counter("common.cancel.observed");
    registry.histogram("common.cancel.latency_seconds",
                       /*timing=*/true);
}

} // namespace amped

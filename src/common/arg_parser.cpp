#include "arg_parser.hpp"

#include <cstdlib>
#include <sstream>

#include "error.hpp"
#include "parse_num.hpp"

namespace amped {

void
ArgParser::addOption(const std::string &name,
                     const std::string &description,
                     const std::string &default_value)
{
    require(!name.empty(), "option name must not be empty");
    require(options_.find(name) == options_.end() &&
                flagDescriptions_.find(name) ==
                    flagDescriptions_.end(),
            "duplicate option --", name);
    options_[name] = Option{description, default_value};
}

void
ArgParser::addFlag(const std::string &name,
                   const std::string &description)
{
    require(!name.empty(), "flag name must not be empty");
    require(options_.find(name) == options_.end() &&
                flagDescriptions_.find(name) ==
                    flagDescriptions_.end(),
            "duplicate flag --", name);
    flagDescriptions_[name] = description;
}

void
ArgParser::parse(const std::vector<std::string> &args)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &token = args[i];
        require(token.rfind("--", 0) == 0,
                "expected an option starting with --, got '", token,
                "'");
        const std::string name = token.substr(2);
        if (flagDescriptions_.count(name)) {
            flagsSet_.insert(name);
            provided_.insert(name);
            continue;
        }
        const auto it = options_.find(name);
        require(it != options_.end(), "unknown option --", name,
                "\n", helpText());
        require(i + 1 < args.size(), "option --", name,
                " needs a value");
        values_[name] = args[++i];
        provided_.insert(name);
    }
}

std::string
ArgParser::get(const std::string &name) const
{
    const auto value = values_.find(name);
    if (value != values_.end())
        return value->second;
    const auto option = options_.find(name);
    require(option != options_.end(), "undeclared option --", name);
    return option->second.defaultValue;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string text = get(name);
    double value = 0.0;
    require(tryParseDouble(text.c_str(), value), "option --", name,
            ": '", text, "' is not a number");
    return value;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    const std::string text = get(name);
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    require(end != nullptr && *end == '\0' && !text.empty(),
            "option --", name, ": '", text, "' is not an integer");
    return static_cast<std::int64_t>(value);
}

bool
ArgParser::getFlag(const std::string &name) const
{
    require(flagDescriptions_.count(name) > 0, "undeclared flag --",
            name);
    return flagsSet_.count(name) > 0;
}

bool
ArgParser::wasProvided(const std::string &name) const
{
    return provided_.count(name) > 0;
}

std::string
ArgParser::helpText() const
{
    std::ostringstream oss;
    oss << "options:\n";
    for (const auto &[name, option] : options_) {
        oss << "  --" << name << " <value>  " << option.description
            << " (default: " << option.defaultValue << ")\n";
    }
    for (const auto &[name, description] : flagDescriptions_)
        oss << "  --" << name << "  " << description << "\n";
    return oss.str();
}

} // namespace amped

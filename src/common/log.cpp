#include "log.hpp"

namespace amped {
namespace log {

namespace {
bool g_enabled = true;
} // namespace

bool
enabled()
{
    return g_enabled;
}

bool
setEnabled(bool on)
{
    const bool previous = g_enabled;
    g_enabled = on;
    return previous;
}

namespace detail {

void
emit(const char *prefix, const std::string &message)
{
    if (!g_enabled)
        return;
    std::cerr << prefix << ": " << message << '\n';
}

} // namespace detail
} // namespace log
} // namespace amped

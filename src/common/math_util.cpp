#include "math_util.hpp"

#include <algorithm>
#include <cmath>

#include "error.hpp"

namespace amped {
namespace math {

std::int64_t
ceilDiv(std::int64_t numerator, std::int64_t denominator)
{
    require(numerator >= 0, "ceilDiv: negative numerator ", numerator);
    require(denominator > 0, "ceilDiv: non-positive denominator ",
            denominator);
    return (numerator + denominator - 1) / denominator;
}

bool
approxEqual(double a, double b, double tol)
{
    const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    return std::fabs(a - b) <= tol * scale;
}

bool
almostEqual(double a, double b, double abs_tol, double rel_tol)
{
    require(abs_tol >= 0.0 && rel_tol >= 0.0 &&
                !std::isnan(abs_tol) && !std::isnan(rel_tol),
            "almostEqual: tolerances must be non-negative, got abs ",
            abs_tol, " rel ", rel_tol);
    if (std::isnan(a) || std::isnan(b))
        return std::isnan(a) && std::isnan(b);
    if (std::isinf(a) || std::isinf(b))
        return a == b;
    const double diff = std::fabs(a - b);
    return diff <= abs_tol ||
           diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

double
relativeError(double measured, double reference)
{
    require(reference != 0.0, "relativeError: zero reference value");
    return std::fabs(measured - reference) / std::fabs(reference);
}

bool
isPowerOfTwo(std::int64_t n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

std::vector<std::int64_t>
divisorsOf(std::int64_t n)
{
    require(n >= 1, "divisorsOf: n must be positive, got ", n);
    std::vector<std::int64_t> low, high;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            low.push_back(d);
            if (d != n / d)
                high.push_back(n / d);
        }
    }
    low.insert(low.end(), high.rbegin(), high.rend());
    return low;
}

std::vector<std::pair<std::int64_t, std::int64_t>>
factorPairs(std::int64_t n)
{
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    for (std::int64_t d : divisorsOf(n))
        pairs.emplace_back(d, n / d);
    return pairs;
}

namespace {

double
residual(const std::vector<Sample> &samples,
         const std::function<double(double, double, double)> &model,
         double a, double b)
{
    double sse = 0.0;
    for (const auto &s : samples) {
        const double err = model(a, b, s.x) - s.y;
        sse += err * err;
    }
    return sse;
}

} // namespace

FitResult
fitTwoParam(const std::vector<Sample> &samples,
            const std::function<double(double, double, double)> &model,
            std::pair<double, double> a_range,
            std::pair<double, double> b_range, int grid, int levels)
{
    require(!samples.empty(), "fitTwoParam: no samples");
    require(grid >= 3, "fitTwoParam: grid must be >= 3");
    require(levels >= 1, "fitTwoParam: levels must be >= 1");
    require(a_range.first <= a_range.second,
            "fitTwoParam: invalid a range");
    require(b_range.first <= b_range.second,
            "fitTwoParam: invalid b range");

    double a_lo = a_range.first, a_hi = a_range.second;
    double b_lo = b_range.first, b_hi = b_range.second;

    FitResult best;
    best.sumSquaredError = std::numeric_limits<double>::infinity();

    for (int level = 0; level < levels; ++level) {
        const double a_step = (a_hi - a_lo) / (grid - 1);
        const double b_step = (b_hi - b_lo) / (grid - 1);
        for (int i = 0; i < grid; ++i) {
            for (int j = 0; j < grid; ++j) {
                const double a = a_lo + i * a_step;
                const double b = b_lo + j * b_step;
                const double sse = residual(samples, model, a, b);
                if (sse < best.sumSquaredError)
                    best = FitResult{a, b, sse};
            }
        }
        // Zoom the search window around the current optimum.
        const double a_span = std::max(a_step * 2.0, 1e-12);
        const double b_span = std::max(b_step * 2.0, 1e-12);
        a_lo = std::max(a_range.first, best.a - a_span);
        a_hi = std::min(a_range.second, best.a + a_span);
        b_lo = std::max(b_range.first, best.b - b_span);
        b_hi = std::min(b_range.second, best.b + b_span);
    }
    return best;
}

} // namespace math
} // namespace amped

/**
 * @file
 * Physical-unit conventions and human-readable formatting.
 *
 * Throughout AMPeD:
 *  - time is in seconds (double),
 *  - bandwidth is in bits per second (matching Table IV of the paper),
 *  - data sizes are in bits,
 *  - compute rates are in FLOP per second,
 *  - frequencies are in cycles per second (Hz).
 */

#ifndef AMPED_COMMON_UNITS_HPP
#define AMPED_COMMON_UNITS_HPP

#include <cstdint>
#include <string>

namespace amped {
namespace units {

// ---------------------------------------------------------------------
// Multipliers.
// ---------------------------------------------------------------------

inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;
inline constexpr double tera = 1e12;
inline constexpr double peta = 1e15;

/** Seconds in a minute/hour/day, for training-time reporting. */
inline constexpr double minute = 60.0;
inline constexpr double hour = 3600.0;
inline constexpr double day = 86400.0;

/** Bits per byte; link bandwidths are specified in bits/s. */
inline constexpr double bitsPerByte = 8.0;

/** Converts GB/s (common in vendor datasheets) to bits/s. */
constexpr double
gigabytesPerSecond(double gbps)
{
    return gbps * giga * bitsPerByte;
}

/** Converts Gb/s (network-card convention) to bits/s. */
constexpr double
gigabitsPerSecond(double gbps)
{
    return gbps * giga;
}

// ---------------------------------------------------------------------
// Formatting helpers (for reports and bench output).
// ---------------------------------------------------------------------

/**
 * Formats a duration with an adaptive unit.
 *
 * Examples: "532 us", "1.24 s", "3.5 hours", "18.2 days".
 */
std::string formatDuration(double seconds);

/** Formats a rate as e.g. "312.0 TFLOP/s". */
std::string formatFlops(double flops_per_second);

/** Formats a bandwidth as e.g. "2.40 Tbit/s". */
std::string formatBandwidth(double bits_per_second);

/** Formats a count with SI suffix, e.g. "145.0 G" for 1.45e11. */
std::string formatCount(double count);

/** Formats a fixed-precision double (printf "%.*f"). */
std::string formatFixed(double value, int decimals);

} // namespace units
} // namespace amped

#endif // AMPED_COMMON_UNITS_HPP

/**
 * @file
 * Minimal command-line option parser for the amped tool: one
 * positional subcommand followed by "--key value" options and
 * "--flag" switches.  No external dependencies; unknown options are
 * user errors with a helpful message.
 */

#ifndef AMPED_COMMON_ARG_PARSER_HPP
#define AMPED_COMMON_ARG_PARSER_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace amped {

/**
 * Declarative option specification + parser.
 */
class ArgParser
{
  public:
    /**
     * Declares a valued option.
     *
     * @param name Option name without dashes ("batch").
     * @param description Help text.
     * @param default_value Value when the option is absent.
     */
    void addOption(const std::string &name,
                   const std::string &description,
                   const std::string &default_value);

    /** Declares a boolean switch (present/absent). */
    void addFlag(const std::string &name,
                 const std::string &description);

    /**
     * Parses argv after the subcommand.
     *
     * @param args Tokens to parse.
     * @throws UserError on unknown options or missing values.
     */
    void parse(const std::vector<std::string> &args);

    /** String value of an option (default when not given). */
    std::string get(const std::string &name) const;

    /** Double value of an option. */
    double getDouble(const std::string &name) const;

    /** Integer value of an option. */
    std::int64_t getInt(const std::string &name) const;

    /** True when a declared flag was present. */
    bool getFlag(const std::string &name) const;

    /** True when the user explicitly provided the option. */
    bool wasProvided(const std::string &name) const;

    /** Renders a help block listing every option and flag. */
    std::string helpText() const;

  private:
    struct Option
    {
        std::string description;
        std::string defaultValue;
    };
    std::map<std::string, Option> options_;
    std::map<std::string, std::string> flagDescriptions_;
    std::map<std::string, std::string> values_;
    std::set<std::string> flagsSet_;
    std::set<std::string> provided_;
};

} // namespace amped

#endif // AMPED_COMMON_ARG_PARSER_HPP

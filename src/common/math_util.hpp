/**
 * @file
 * Small math helpers shared across AMPeD modules: integer ceiling
 * division, approximate floating-point comparison, divisor
 * enumeration, and a grid-refinement least-squares fitter used to
 * calibrate the microbatch-efficiency curve.
 */

#ifndef AMPED_COMMON_MATH_UTIL_HPP
#define AMPED_COMMON_MATH_UTIL_HPP

#include <cstdint>
#include <functional>
#include <vector>

namespace amped {
namespace math {

/** Integer ceiling division; both operands must be positive. */
std::int64_t ceilDiv(std::int64_t numerator, std::int64_t denominator);

/**
 * Relative approximate equality.
 *
 * @retval true when |a - b| <= tol * max(|a|, |b|, 1).
 */
bool approxEqual(double a, double b, double tol = 1e-9);

/**
 * Absolute-or-relative approximate equality (the golden-diff
 * criterion): values agree when |a - b| <= abs_tol OR
 * |a - b| <= rel_tol * max(|a|, |b|).
 *
 * Non-finite conventions: two NaNs compare equal (a pinned
 * infeasible point stays pinned); a NaN never equals a number;
 * infinities agree only when identical.
 *
 * @throws UserError when either tolerance is negative or NaN.
 */
bool almostEqual(double a, double b, double abs_tol = 1e-9,
                 double rel_tol = 1e-6);

/** Relative error |measured - reference| / |reference| (in [0, inf)). */
double relativeError(double measured, double reference);

/** Returns true iff @p n is a power of two (n >= 1). */
bool isPowerOfTwo(std::int64_t n);

/** All positive divisors of @p n in ascending order. */
std::vector<std::int64_t> divisorsOf(std::int64_t n);

/** All ways to write n = a * b with a, b >= 1, as (a, b) pairs. */
std::vector<std::pair<std::int64_t, std::int64_t>>
factorPairs(std::int64_t n);

/**
 * A 2-D sample point for curve fitting.
 */
struct Sample
{
    double x = 0.0; ///< Independent variable (e.g. microbatch size).
    double y = 0.0; ///< Observed value (e.g. measured efficiency).
};

/**
 * Result of a two-parameter least-squares fit.
 */
struct FitResult
{
    double a = 0.0;           ///< First fitted parameter.
    double b = 0.0;           ///< Second fitted parameter.
    double sumSquaredError = 0.0; ///< Residual at the optimum.
};

/**
 * Fits parameters (a, b) of an arbitrary two-parameter model to
 * samples by coarse grid search followed by iterative refinement.
 *
 * Robust for the smooth, low-dimensional fits AMPeD needs (the
 * a*ub/(b+ub) efficiency form); not intended as a general optimizer.
 *
 * @param samples Observed (x, y) points; must be non-empty.
 * @param model Callable model(a, b, x) -> predicted y.
 * @param a_range Inclusive search interval for a.
 * @param b_range Inclusive search interval for b.
 * @param grid Points per axis per refinement level (>= 3).
 * @param levels Number of refinement levels (>= 1).
 */
FitResult fitTwoParam(
    const std::vector<Sample> &samples,
    const std::function<double(double, double, double)> &model,
    std::pair<double, double> a_range, std::pair<double, double> b_range,
    int grid = 33, int levels = 6);

} // namespace math
} // namespace amped

#endif // AMPED_COMMON_MATH_UTIL_HPP

/**
 * @file
 * Clang thread-safety annotations and the annotated lock types the
 * concurrent core is written against.
 *
 * The determinism contract (DESIGN.md "Static concurrency &
 * determinism enforcement") is enforced three ways: TSan replays
 * catch races dynamically, goldens pin byte-identical output at
 * 1/4 threads, and — this header — Clang's `-Wthread-safety`
 * analysis proves at *compile time* that every access to a guarded
 * member happens with its capability held.  GCC compiles the same
 * code with the macros expanded away, so the annotations cost
 * nothing off Clang.
 *
 * Three building blocks:
 *
 *  - The `AMPED_*` attribute macros, mirroring the standard Clang
 *    capability vocabulary (CAPABILITY, GUARDED_BY, REQUIRES, ...).
 *
 *  - `Mutex` / `MutexLock`: a `std::mutex` wrapper annotated as a
 *    capability, plus its scoped guard.  libstdc++'s `std::mutex`
 *    carries no capability attributes, so `GUARDED_BY` on members
 *    only analyzes when the mutex type itself is annotated — every
 *    mutex-protected class in the repo (`ThreadPool`,
 *    `obs::MetricsRegistry`, `serve::SweepCacheLru`, the Explorer
 *    memo cache) holds an `amped::Mutex`.  `MutexLock` exposes
 *    `lock()`/`unlock()` so `std::condition_variable_any` can wait
 *    on it directly; the analysis sees the capability held across
 *    the wait, which matches the cv contract (the lock is
 *    reacquired before `wait` returns).
 *
 *  - `SerialGate` / `SerialSection`: a *phantom* capability for
 *    caller-serialized classes (`WorkQueue`, `serve::Server`) whose
 *    contract is "one service loop drives me" rather than "I take a
 *    lock".  The gate's acquire/release compile to nothing; its
 *    value is that every member touching confined state must be
 *    annotated and every entry point must enter the gate, so a new
 *    helper that reaches confined state without going through a
 *    serialized entry point fails the build under Clang.  It proves
 *    access *discipline*, not mutual exclusion — the latter is the
 *    owning loop's job (and TSan's to check).
 */

#ifndef AMPED_COMMON_THREAD_ANNOTATIONS_HPP
#define AMPED_COMMON_THREAD_ANNOTATIONS_HPP

#include <mutex>

#if defined(__clang__)
#define AMPED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AMPED_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/** Marks a type as a capability ("mutex", "role", ...). */
#define AMPED_CAPABILITY(x) AMPED_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor / releases in its
 *  dtor. */
#define AMPED_SCOPED_CAPABILITY AMPED_THREAD_ANNOTATION(scoped_lockable)

/** Member data that may only be touched while holding @p x. */
#define AMPED_GUARDED_BY(x) AMPED_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by @p x. */
#define AMPED_PT_GUARDED_BY(x) AMPED_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the capabilities held. */
#define AMPED_REQUIRES(...) \
    AMPED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the capabilities and holds them on exit. */
#define AMPED_ACQUIRE(...) \
    AMPED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the capabilities. */
#define AMPED_RELEASE(...) \
    AMPED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that must NOT be called with the capabilities held. */
#define AMPED_EXCLUDES(...) \
    AMPED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Run-time assertion that the capability is held (analysis trusts
 *  it; used at the WorkQueue task boundary, see serve/server.cpp). */
#define AMPED_ASSERT_CAPABILITY(x) \
    AMPED_THREAD_ANNOTATION(assert_capability(x))

/** Function returning a reference to the named capability. */
#define AMPED_RETURN_CAPABILITY(x) \
    AMPED_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; every use needs a justifying comment. */
#define AMPED_NO_THREAD_SAFETY_ANALYSIS \
    AMPED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace amped {

/**
 * `std::mutex` annotated as a Clang capability.  Same cost, same
 * semantics; the wrapper exists solely so `AMPED_GUARDED_BY(mutex_)`
 * analyzes on libstdc++ (whose `std::mutex` is unannotated).
 */
class AMPED_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() AMPED_ACQUIRE() { mutex_.lock(); }
    void unlock() AMPED_RELEASE() { mutex_.unlock(); }

  private:
    std::mutex mutex_;
};

/**
 * Scoped guard over `Mutex` — `std::lock_guard` with capability
 * attributes, plus the `lock()`/`unlock()` BasicLockable face that
 * lets `std::condition_variable_any::wait(MutexLock &)` unlock and
 * reacquire it.  Waiters use the manual-predicate form
 *
 *     MutexLock lock(mutex_);
 *     while (!predicateOverGuardedState())
 *         cv_.wait(lock);
 *
 * so the analysis sees every guarded access under the capability
 * (the lambda-predicate `wait` overload hides the reacquisition
 * from it).
 */
class AMPED_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) AMPED_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() AMPED_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    // BasicLockable face for condition_variable_any.  The analysis
    // attributes these to the underlying mutex, so the capability
    // state stays balanced across a wait (release on entry,
    // reacquire before return).
    void lock() AMPED_ACQUIRE() { mutex_.lock(); }
    void unlock() AMPED_RELEASE() { mutex_.unlock(); }

  private:
    Mutex &mutex_;
};

/**
 * Phantom capability for caller-serialized state: classes whose
 * thread-safety contract is "one service loop drives me".  Entering
 * and leaving compile to nothing; the annotations make Clang verify
 * that confined members are only reached through entry points that
 * enter the gate.
 */
class AMPED_CAPABILITY("serial") SerialGate
{
  public:
    SerialGate() = default;
    SerialGate(const SerialGate &) = delete;
    SerialGate &operator=(const SerialGate &) = delete;

    void enter() const AMPED_ACQUIRE() {}
    void exit() const AMPED_RELEASE() {}

    /**
     * Declares (without checking) that the calling context is inside
     * the gate — the escape for work the analysis cannot follow,
     * e.g. a closure submitted to a WorkQueue that the same loop
     * drains synchronously.  Each use documents why it holds.
     */
    void assertEntered() const AMPED_ASSERT_CAPABILITY(this) {}
};

/** RAII section over a SerialGate. */
class AMPED_SCOPED_CAPABILITY SerialSection
{
  public:
    explicit SerialSection(const SerialGate &gate) AMPED_ACQUIRE(gate)
        : gate_(gate)
    {
        gate_.enter();
    }

    ~SerialSection() AMPED_RELEASE() { gate_.exit(); }

    SerialSection(const SerialSection &) = delete;
    SerialSection &operator=(const SerialSection &) = delete;

  private:
    const SerialGate &gate_;
};

} // namespace amped

#endif // AMPED_COMMON_THREAD_ANNOTATIONS_HPP

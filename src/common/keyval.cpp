#include "keyval.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "error.hpp"
#include "parse_num.hpp"

namespace amped {

namespace {

std::string
trimmed(const std::string &text)
{
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return {};
    const auto last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

} // namespace

KeyValueConfig
KeyValueConfig::fromString(const std::string &text)
{
    KeyValueConfig config;
    std::istringstream stream(text);
    std::string line;
    int line_number = 0;
    while (std::getline(stream, line)) {
        ++line_number;
        // Strip comments.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trimmed(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        require(eq != std::string::npos, "config line ", line_number,
                ": expected 'key = value', got '", line, "'");
        const std::string key = trimmed(line.substr(0, eq));
        const std::string value = trimmed(line.substr(eq + 1));
        require(!key.empty(), "config line ", line_number,
                ": empty key");
        require(config.values_.find(key) == config.values_.end(),
                "config line ", line_number, ": duplicate key '",
                key, "'");
        config.values_[key] = value;
    }
    return config;
}

KeyValueConfig
KeyValueConfig::fromFile(const std::string &path)
{
    std::ifstream file(path);
    require(file.good(), "cannot open config file '", path, "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return fromString(buffer.str());
}

bool
KeyValueConfig::has(const std::string &key) const
{
    return values_.find(key) != values_.end();
}

std::string
KeyValueConfig::getString(const std::string &key) const
{
    const auto it = values_.find(key);
    require(it != values_.end(), "config: missing required key '",
            key, "'");
    return it->second;
}

std::string
KeyValueConfig::getString(const std::string &key,
                          const std::string &fallback) const
{
    return has(key) ? values_.at(key) : fallback;
}

double
KeyValueConfig::getDouble(const std::string &key) const
{
    const std::string text = getString(key);
    double value = 0.0;
    require(tryParseDouble(text.c_str(), value), "config key '", key,
            "': '", text, "' is not a number");
    return value;
}

double
KeyValueConfig::getDouble(const std::string &key,
                          double fallback) const
{
    return has(key) ? getDouble(key) : fallback;
}

std::int64_t
KeyValueConfig::getInt(const std::string &key) const
{
    const std::string text = getString(key);
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    require(end != nullptr && *end == '\0' && !text.empty(),
            "config key '", key, "': '", text,
            "' is not an integer");
    return static_cast<std::int64_t>(value);
}

std::int64_t
KeyValueConfig::getInt(const std::string &key,
                       std::int64_t fallback) const
{
    return has(key) ? getInt(key) : fallback;
}

std::vector<std::string>
KeyValueConfig::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[key, value] : values_) {
        (void)value;
        out.push_back(key);
    }
    return out;
}

void
KeyValueConfig::requireOnly(const std::set<std::string> &allowed) const
{
    for (const auto &[key, value] : values_) {
        (void)value;
        if (!allowed.count(key)) {
            std::ostringstream oss;
            oss << "config: unknown key '" << key
                << "'; allowed keys:";
            for (const auto &name : allowed)
                oss << ' ' << name;
            fatal(oss.str());
        }
    }
}

} // namespace amped

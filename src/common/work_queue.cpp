#include "work_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace amped {

WorkQueue::WorkQueue(WorkQueueOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : &Clock::steady()),
      jitter_(options.jitterSeed)
{
    require(options_.capacity >= 1,
            "WorkQueue: capacity must be >= 1, got ",
            options_.capacity);
    require(options_.maxAttempts >= 1,
            "WorkQueue: maxAttempts must be >= 1, got ",
            options_.maxAttempts);
    require(options_.initialBackoffSeconds >= 0.0 &&
                std::isfinite(options_.initialBackoffSeconds),
            "WorkQueue: initialBackoffSeconds must be finite and "
            ">= 0, got ",
            options_.initialBackoffSeconds);
    require(options_.backoffMultiplier >= 1.0,
            "WorkQueue: backoffMultiplier must be >= 1, got ",
            options_.backoffMultiplier);
    require(options_.maxBackoffSeconds >=
                options_.initialBackoffSeconds,
            "WorkQueue: maxBackoffSeconds (",
            options_.maxBackoffSeconds,
            ") must be >= initialBackoffSeconds (",
            options_.initialBackoffSeconds, ")");

    obs::MetricsRegistry &reg =
        options_.registry != nullptr ? *options_.registry
                                     : obs::MetricsRegistry::global();
    depthGauge_ = &reg.gauge("common.queue.depth");
    submittedCounter_ = &reg.counter("common.queue.submitted");
    completedCounter_ = &reg.counter("common.queue.completed");
    rejectedCounter_ = &reg.counter("common.queue.rejected");
    shedCounter_ = &reg.counter("common.queue.shed");
    expiredCounter_ = &reg.counter("common.queue.expired");
    retriesCounter_ = &reg.counter("common.queue.retries");
    failedCounter_ = &reg.counter("common.queue.failed");
    SerialSection section(serial_);
    publishDepth();
}

double
WorkQueue::nowSeconds() const
{
    return clock_->nowSeconds();
}

double
WorkQueue::backoffSeconds(unsigned retry_index)
{
    double backoff = options_.initialBackoffSeconds;
    for (unsigned i = 1; i < retry_index; ++i)
        backoff *= options_.backoffMultiplier;
    backoff = std::min(backoff, options_.maxBackoffSeconds);
    // Jitter factor in [0.5, 1): decorrelates retry storms without
    // ever exceeding the nominal backoff; the stream is seeded per
    // queue, so retry schedules are reproducible.
    return backoff * (0.5 + 0.5 * jitter_.uniformReal(0.0, 1.0));
}

void
WorkQueue::publishDepth()
{
    depthGauge_->set(static_cast<double>(items_.size()));
}

WorkQueue::Admission
WorkQueue::submit(std::function<void()> task, Deadline deadline)
{
    SerialSection section(serial_);
    Admission admission;
    if (items_.size() >= options_.capacity) {
        if (options_.policy == OverloadPolicy::rejectNewest) {
            rejectedCounter_->add(1);
            return admission; // accepted == false
        }
        // shedOldest: the head has waited longest; drop it.
        WorkItemResult shed;
        shed.id = items_.front().id;
        shed.outcome = ItemOutcome::shed;
        shed.attempts = items_.front().attempts;
        items_.pop_front();
        shedCounter_->add(1);
        admission.shedItem = std::move(shed);
    }

    Item item;
    item.id = nextId_++;
    item.task = std::move(task);
    item.deadline = deadline;
    item.notBeforeSeconds = -std::numeric_limits<double>::infinity();
    items_.push_back(std::move(item));
    submittedCounter_->add(1);
    publishDepth();

    admission.accepted = true;
    admission.id = items_.back().id;
    return admission;
}

std::vector<WorkItemResult>
WorkQueue::drainReady()
{
    SerialSection section(serial_);
    std::vector<WorkItemResult> results;
    for (;;) {
        // First runnable item in admission order; retries re-enter
        // at the back with a notBefore gate, so a backing-off item
        // never starves the items admitted after it.
        const double now = nowSeconds();
        auto it = std::find_if(
            items_.begin(), items_.end(), [now](const Item &item) {
                return item.notBeforeSeconds <= now;
            });
        if (it == items_.end())
            break;

        Item item = std::move(*it);
        items_.erase(it);

        if (item.deadline.expired()) {
            expiredCounter_->add(1);
            WorkItemResult result;
            result.id = item.id;
            result.outcome = ItemOutcome::expired;
            result.attempts = item.attempts;
            results.push_back(std::move(result));
            continue;
        }

        ++item.attempts;
        bool transient = false;
        std::string error;
        try {
            item.task();
        } catch (const TransientError &e) {
            transient = true;
            error = e.what();
        } catch (const std::exception &e) {
            error = e.what();
            WorkItemResult result;
            result.id = item.id;
            result.outcome = ItemOutcome::failed;
            result.attempts = item.attempts;
            result.error = std::move(error);
            failedCounter_->add(1);
            results.push_back(std::move(result));
            continue;
        }

        if (!transient) {
            completedCounter_->add(1);
            WorkItemResult result;
            result.id = item.id;
            result.outcome = ItemOutcome::completed;
            result.attempts = item.attempts;
            results.push_back(std::move(result));
            continue;
        }

        if (item.attempts >= options_.maxAttempts) {
            failedCounter_->add(1);
            WorkItemResult result;
            result.id = item.id;
            result.outcome = ItemOutcome::failed;
            result.attempts = item.attempts;
            result.error = std::move(error);
            results.push_back(std::move(result));
            continue;
        }

        // Transient failure with attempts left: back off and requeue.
        retriesCounter_->add(1);
        item.lastError = std::move(error);
        item.notBeforeSeconds =
            nowSeconds() + backoffSeconds(item.attempts);
        items_.push_back(std::move(item));
    }
    publishDepth();
    return results;
}

double
WorkQueue::nextReadySeconds() const
{
    SerialSection section(serial_);
    double earliest = std::numeric_limits<double>::infinity();
    for (const Item &item : items_)
        earliest = std::min(earliest, item.notBeforeSeconds);
    // An item admitted with no backoff is runnable immediately.
    return std::max(earliest, nowSeconds());
}

void
registerWorkQueueMetrics(obs::MetricsRegistry &registry)
{
    registry.gauge("common.queue.depth");
    registry.counter("common.queue.submitted");
    registry.counter("common.queue.completed");
    registry.counter("common.queue.rejected");
    registry.counter("common.queue.shed");
    registry.counter("common.queue.expired");
    registry.counter("common.queue.retries");
    registry.counter("common.queue.failed");
}

} // namespace amped

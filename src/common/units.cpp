#include "units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace amped {
namespace units {

namespace {

std::string
printfString(const char *fmt, double value, const char *suffix)
{
    std::array<char, 64> buf{};
    std::snprintf(buf.data(), buf.size(), fmt, value, suffix);
    return std::string(buf.data());
}

} // namespace

std::string
formatDuration(double seconds)
{
    const double abs = std::fabs(seconds);
    if (abs < 1e-6)
        return printfString("%.3g %s", seconds * 1e9, "ns");
    if (abs < 1e-3)
        return printfString("%.3g %s", seconds * 1e6, "us");
    if (abs < 1.0)
        return printfString("%.3g %s", seconds * 1e3, "ms");
    if (abs < minute)
        return printfString("%.3g %s", seconds, "s");
    if (abs < hour)
        return printfString("%.3g %s", seconds / minute, "min");
    if (abs < day)
        return printfString("%.3g %s", seconds / hour, "hours");
    return printfString("%.3g %s", seconds / day, "days");
}

std::string
formatFlops(double flops_per_second)
{
    const double abs = std::fabs(flops_per_second);
    if (abs >= peta)
        return printfString("%.1f %s", flops_per_second / peta, "PFLOP/s");
    if (abs >= tera)
        return printfString("%.1f %s", flops_per_second / tera, "TFLOP/s");
    if (abs >= giga)
        return printfString("%.1f %s", flops_per_second / giga, "GFLOP/s");
    return printfString("%.1f %s", flops_per_second, "FLOP/s");
}

std::string
formatBandwidth(double bits_per_second)
{
    const double abs = std::fabs(bits_per_second);
    if (abs >= tera)
        return printfString("%.2f %s", bits_per_second / tera, "Tbit/s");
    if (abs >= giga)
        return printfString("%.2f %s", bits_per_second / giga, "Gbit/s");
    if (abs >= mega)
        return printfString("%.2f %s", bits_per_second / mega, "Mbit/s");
    return printfString("%.2f %s", bits_per_second, "bit/s");
}

std::string
formatCount(double count)
{
    const double abs = std::fabs(count);
    if (abs >= peta)
        return printfString("%.1f %s", count / peta, "P");
    if (abs >= tera)
        return printfString("%.1f %s", count / tera, "T");
    if (abs >= giga)
        return printfString("%.1f %s", count / giga, "G");
    if (abs >= mega)
        return printfString("%.1f %s", count / mega, "M");
    if (abs >= kilo)
        return printfString("%.1f %s", count / kilo, "K");
    return printfString("%.0f%s", count, "");
}

std::string
formatFixed(double value, int decimals)
{
    std::array<char, 64> buf{};
    std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
    return std::string(buf.data());
}

} // namespace units
} // namespace amped

/**
 * @file
 * Error-handling machinery for AMPeD.
 *
 * Two failure categories, mirroring the gem5 fatal/panic distinction:
 *
 *  - UserError (fatal): the caller supplied an invalid configuration
 *    (e.g. a parallelism degree that does not divide the device
 *    count).  Thrown as an exception so applications can catch,
 *    report, and continue exploring other configurations.
 *
 *  - AMPED_ASSERT / panic: an internal invariant of the model itself
 *    was violated, i.e. a bug in AMPeD.  Aborts the process.
 */

#ifndef AMPED_COMMON_ERROR_HPP
#define AMPED_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace amped {

/**
 * Exception thrown for invalid user-supplied configuration.
 *
 * Corresponds to gem5's fatal(): the simulation/model cannot continue
 * because of a condition that is the user's fault, not a model bug.
 */
class UserError : public std::runtime_error
{
  public:
    explicit UserError(std::string message)
        : std::runtime_error(std::move(message))
    {}
};

namespace detail {

/** Builds a message from stream-formattable parts. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Aborts with a panic message; never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);

} // namespace detail

/**
 * Throws UserError with a streamed message.
 *
 * @param args Parts of the message, each streamable to std::ostream.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw UserError(detail::concatMessage(std::forward<Args>(args)...));
}

/**
 * Throws UserError unless @p condition holds.
 *
 * @param condition Predicate that must be true for valid user input.
 * @param args Message parts used when the check fails.
 */
template <typename... Args>
void
require(bool condition, Args &&...args)
{
    if (!condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace amped

/**
 * Internal-invariant check.  Failure indicates a bug in AMPeD itself
 * (never a user-configuration problem) and aborts the process.
 */
#define AMPED_ASSERT(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::amped::detail::panicImpl(                                     \
                __FILE__, __LINE__,                                         \
                std::string("assertion '" #cond "' failed: ") + (msg));     \
        }                                                                   \
    } while (false)

#endif // AMPED_COMMON_ERROR_HPP

#include "thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/metrics.hpp"

namespace amped {

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("AMPED_THREADS")) {
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1)
            return static_cast<unsigned>(parsed);
        // Malformed values fall through to hardware detection.
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? hardware : 1;
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(unsigned threads)
    : threadCount_(threads > 0 ? threads : defaultThreadCount())
{
    workers_.reserve(threadCount_ - 1);
    for (unsigned i = 1; i < threadCount_; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    workAvailable_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerMain()
{
    for (;;) {
        std::function<void()> job;
        {
            MutexLock lock(mutex_);
            // Manual predicate loop: the analysis sees the guarded
            // reads under the capability, which the lambda-predicate
            // wait overload would hide from it.
            while (!stop_ && queue_.empty())
                workAvailable_.wait(lock);
            if (queue_.empty())
                return; // stop_ set and nothing left to drain.
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
    }
}

void
ThreadPool::parallelFor(std::size_t n, std::size_t chunk,
                        const std::function<void(std::size_t)> &fn,
                        std::size_t max_workers)
{
    parallelFor(n, chunk, fn, CancelToken(), max_workers);
}

RunStatus
ThreadPool::parallelFor(std::size_t n, std::size_t chunk,
                        const std::function<void(std::size_t)> &fn,
                        const CancelToken &token,
                        std::size_t max_workers)
{
    // Counters fire for every call — including the n == 0 early-out
    // and the serial path — so the totals depend only on the
    // workload, not on how many threads ended up running it.
    auto &metrics = obs::MetricsRegistry::global();
    static obs::Counter &calls_counter =
        metrics.counter("threadpool.parallel_for.calls");
    static obs::Counter &indices_counter =
        metrics.counter("threadpool.parallel_for.indices");
    static obs::Histogram &loop_seconds = metrics.histogram(
        "threadpool.parallel_for.seconds", /*timing=*/true);
    calls_counter.add(1);
    indices_counter.add(n);
    obs::ScopedTimer timer(loop_seconds);

    if (n == 0)
        return RunStatus::Completed;
    if (chunk == 0)
        chunk = 1;

    const std::size_t task_count = (n + chunk - 1) / chunk;
    std::size_t parallelism = threadCount_;
    if (max_workers > 0)
        parallelism = std::min(parallelism, max_workers);
    parallelism = std::min(parallelism, task_count);

    if (parallelism <= 1) {
        for (std::size_t begin = 0; begin < n; begin += chunk) {
            if (token.installed()) {
                const RunStatus status = token.status();
                if (status != RunStatus::Completed)
                    return status;
            }
            const std::size_t end = std::min(begin + chunk, n);
            for (std::size_t i = begin; i < end; ++i)
                fn(i);
        }
        return RunStatus::Completed;
    }

    // Shared loop state.  Helpers may still be queued when the
    // caller returns only if an exception fired; even then the
    // caller waits for pending == 0, so state and fn outlive every
    // helper.  shared_ptr keeps the queued closures safe regardless.
    struct LoopState
    {
        std::atomic<std::size_t> cursor{0};
        std::atomic<std::size_t> pending{0};
        std::atomic<bool> abort{false};
        std::atomic<bool> stopped{false}; ///< Token observed a stop.
        Mutex doneMutex;
        std::condition_variable_any done;
        Mutex errorMutex;
        std::exception_ptr error AMPED_GUARDED_BY(errorMutex);
        std::size_t errorIndex AMPED_GUARDED_BY(errorMutex) = 0;

        /** Lowest-index failure, if any (never under contention:
         *  callers read it only after every worker quiesced). */
        std::exception_ptr
        takeError()
        {
            MutexLock lock(errorMutex);
            return error;
        }
    };
    auto state = std::make_shared<LoopState>();
    const std::function<void(std::size_t)> *body = &fn;

    auto drain = [state, n, chunk, body, token] {
        while (!state->abort.load(std::memory_order_relaxed)) {
            if (token.installed() &&
                token.status() != RunStatus::Completed) {
                // Abandon remaining chunks at this boundary; peers
                // notice through the shared abort flag.
                state->stopped.store(true, std::memory_order_relaxed);
                state->abort.store(true, std::memory_order_relaxed);
                return;
            }
            const std::size_t begin =
                state->cursor.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= n)
                return;
            const std::size_t end = std::min(begin + chunk, n);
            for (std::size_t i = begin; i < end; ++i) {
                try {
                    (*body)(i);
                } catch (...) {
                    {
                        // Keep the lowest-index failure: chunks are
                        // handed out in index order and abort is only
                        // checked at chunk boundaries, so the chunk
                        // holding the globally lowest throwing index
                        // is always drained far enough to throw —
                        // making the rethrown exception deterministic
                        // at every thread count.
                        MutexLock lock(state->errorMutex);
                        if (!state->error || i < state->errorIndex) {
                            state->error = std::current_exception();
                            state->errorIndex = i;
                        }
                    }
                    state->abort.store(true,
                                       std::memory_order_relaxed);
                    return;
                }
            }
        }
    };

    const std::size_t helpers = parallelism - 1;
    state->pending.store(helpers, std::memory_order_relaxed);
    {
        MutexLock lock(mutex_);
        for (std::size_t i = 0; i < helpers; ++i) {
            queue_.emplace_back([state, drain] {
                drain();
                // Release-ordered so the caller's acquire load of
                // pending publishes every per-index write.
                if (state->pending.fetch_sub(
                        1, std::memory_order_acq_rel) == 1) {
                    MutexLock lock(state->doneMutex);
                    state->done.notify_all();
                }
            });
        }
    }
    workAvailable_.notify_all();

    drain(); // The caller works too.

    {
        MutexLock lock(state->doneMutex);
        while (state->pending.load(std::memory_order_acquire) != 0)
            state->done.wait(lock);
    }

    if (auto error = state->takeError())
        std::rethrow_exception(error);

    if (state->stopped.load(std::memory_order_relaxed))
        return token.status();
    return RunStatus::Completed;
}

} // namespace amped

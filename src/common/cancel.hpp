/**
 * @file
 * Cooperative cancellation and deadline propagation.
 *
 * Every long-running path in the repository — grid sweeps, the
 * branch-and-bound optimizer, term-cache priming, the Monte-Carlo
 * replicator, the simulator schedules — runs to completion once
 * started unless it observes a CancelToken.  This header provides
 * that substrate:
 *
 *  - Clock / ManualClock: a monotonic time source with a test seam.
 *    Deadlines read a Clock so tests inject time deterministically
 *    instead of sleeping.
 *  - Deadline: an absolute monotonic expiry ("no later than now +
 *    750 ms"), or never().
 *  - CancelToken: a shared stop request combining three triggers —
 *    explicit cancel(), deadline expiry, and a cancelled parent
 *    token (child() composes; a request trips the whole subtree).
 *  - RunStatus: the structured outcome threaded through every
 *    cancellable API.  Completed means the work ran to the end;
 *    Cancelled / DeadlineExceeded mean it stopped at a checkpoint
 *    with a *deterministic* partial result.
 *
 * Checkpoint discipline (the determinism contract, DESIGN.md
 * "Cancellation and overload control"): work only observes the token
 * at coarse, thread-count-independent boundaries — between SoA sweep
 * blocks, between optimizer waves, between Monte-Carlo replication
 * blocks — via checkpoint().  Cancellation therefore never tears a
 * result: a cancelled sweep's populated prefix is bit-identical to
 * the same prefix of a full run at every thread count.  status() is
 * the passive query for finer-grained abort (e.g. between
 * parallelFor chunks) where no partial result is produced.
 *
 * Zero-cost when unused: a default-constructed token is inert —
 * checkpoint() is a null check returning Completed, no metrics are
 * touched, no clock is read.  Code paths thread `const CancelToken &`
 * with a `{}` default and pay nothing until a caller installs one.
 *
 * Signal safety: cancel() performs only lock-free atomic stores and
 * a CLOCK_MONOTONIC read, so a SIGINT handler may call it directly
 * (the CLI's Ctrl-C path).  The metric handles it updates are
 * resolved at make() time, outside signal context.
 *
 * Observability (`common.cancel.*` in the metrics registry):
 *   tokens          tokens created (make + child)
 *   requests        explicit cancel() calls that tripped a token
 *   checkpoints     checkpoint() polls on live tokens
 *   observed        first observations of a stop at a checkpoint
 *   latency_seconds histogram of request-to-first-observation time
 */

#ifndef AMPED_COMMON_CANCEL_HPP
#define AMPED_COMMON_CANCEL_HPP

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

namespace amped {

namespace obs {
class MetricsRegistry;
class Counter;
class Histogram;
} // namespace obs

/** Outcome of a cancellable run. */
enum class RunStatus : unsigned char
{
    Completed,        ///< Ran to the end; the result is complete.
    Cancelled,        ///< Stopped by an explicit cancel() request.
    DeadlineExceeded, ///< Stopped because a deadline expired.
};

/** Stable lowercase name ("completed", "cancelled", ...). */
const char *toString(RunStatus status);

/**
 * Monotonic time source in seconds.  The default implementation
 * reads std::chrono::steady_clock; tests substitute ManualClock to
 * make deadline expiry and latency measurements deterministic.
 */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Monotonic seconds since an arbitrary epoch. */
    virtual double nowSeconds() const = 0;

    /** The process-wide steady_clock-backed instance. */
    static const Clock &steady();
};

/**
 * Test clock: time advances only when told to.  All operations are
 * relaxed atomics, so a ManualClock may be shared between the thread
 * advancing time and workers polling deadlines.
 */
class ManualClock : public Clock
{
  public:
    explicit ManualClock(double start_seconds = 0.0)
        : now_(start_seconds)
    {}

    double nowSeconds() const override
    {
        return now_.load(std::memory_order_relaxed);
    }

    void set(double seconds)
    {
        now_.store(seconds, std::memory_order_relaxed);
    }

    void advance(double seconds)
    {
        // fetch_add on atomic<double> needs C++20; CAS loop instead.
        double current = now_.load(std::memory_order_relaxed);
        while (!now_.compare_exchange_weak(current, current + seconds,
                                           std::memory_order_relaxed))
        {}
    }

  private:
    std::atomic<double> now_;
};

/**
 * Absolute monotonic expiry.  Default-constructed = never expires.
 * Value type; copies share nothing but the clock pointer, which must
 * outlive every copy (the steady clock always does; a test's
 * ManualClock must outlive its tokens).
 */
class Deadline
{
  public:
    /** Never expires. */
    Deadline() = default;

    /** Never expires (spelled out). */
    static Deadline never() { return Deadline(); }

    /**
     * Expires @p seconds from @p clock's current time.  Negative or
     * zero budgets produce an already-expired deadline.
     */
    static Deadline after(double seconds,
                          const Clock &clock = Clock::steady());

    /** True when an expiry is installed (even if far in the future). */
    bool isSet() const { return clock_ != nullptr; }

    /** True when the installed expiry has passed.  Never-set: false. */
    bool expired() const;

    /**
     * Seconds until expiry (clamped at 0 once expired); +infinity
     * when never set.
     */
    double remainingSeconds() const;

    /** The absolute expiry in clock seconds; +infinity if never. */
    double expirySeconds() const { return expiry_; }

    /** The clock this deadline reads, or nullptr when never set. */
    const Clock *clock() const { return clock_; }

  private:
    const Clock *clock_ = nullptr;
    double expiry_ = std::numeric_limits<double>::infinity();
};

/**
 * Shared cooperative stop request.  Value type over a shared state;
 * copies observe (and trip) the same request.  Default-constructed
 * tokens are inert: every query answers Completed at the cost of one
 * null check, and cancel() is a no-op.
 *
 * Thread-safety annotations (common/thread_annotations.hpp):
 * deliberately none.  The shared state is atomics-only — no mutex,
 * no compound invariant spanning two fields — because cancel() must
 * stay async-signal-safe (a mutex in a SIGTERM handler can
 * deadlock).  This is the repo's documented convention: single-word
 * flags crossed by signal handlers or hot paths stay atomic; state
 * with multi-field invariants takes a Mutex and AMPED_GUARDED_BY.
 */
class CancelToken
{
  public:
    /** Inert token (nothing installed; never stops anything). */
    CancelToken() = default;

    /**
     * A live root token, optionally deadline-bounded.
     *
     * @param deadline Expiry for this token (never() = none).
     * @param registry Metrics destination (nullptr = the global
     *        registry).  Resolved here, outside signal context, so
     *        cancel() stays async-signal-safe.
     */
    static CancelToken make(Deadline deadline = Deadline(),
                            obs::MetricsRegistry *registry = nullptr);

    /**
     * A child observing this token plus its own deadline: the child
     * stops when the parent stops OR its deadline expires, whichever
     * comes first.  A child of an inert token is a fresh root.
     */
    CancelToken child(Deadline deadline = Deadline()) const;

    /** True when a live state is installed (non-default token). */
    bool installed() const { return state_ != nullptr; }

    /**
     * Requests cancellation.  Async-signal-safe: atomic stores and a
     * monotonic clock read only.  Idempotent; no-op on inert tokens.
     */
    void cancel() const;

    /** True when cancel() was called on this token (not parents). */
    bool cancelRequested() const;

    /**
     * Passive stop query: Cancelled if this token or any ancestor
     * was cancelled, else DeadlineExceeded if this token's or an
     * ancestor's deadline expired, else Completed.  Explicit
     * cancellation wins over deadline expiry.  Cheap enough for
     * per-chunk polling; records no metrics.
     */
    RunStatus status() const;

    /**
     * THE cancellation point.  Work calls this at deterministic
     * boundaries (block / wave / replication-block); a non-Completed
     * answer means "stop now, publish the partial result".
     *
     * On live tokens each call bumps `common.cancel.checkpoints`,
     * applies the tripAfterCheckpoints test seam, and — on the first
     * checkpoint that observes a stop — records the request-to-
     * observation latency into `common.cancel.latency_seconds` and
     * bumps `common.cancel.observed`.  Inert tokens return Completed
     * immediately.
     */
    RunStatus checkpoint() const;

    /**
     * Test seam: trips this token (as an explicit cancel) when its
     * Nth checkpoint() is reached.  Combined with the block/wave
     * checkpoint discipline this makes "cancel after N blocks"
     * exactly reproducible at every thread count.  0 disables.
     */
    void tripAfterCheckpoints(std::uint64_t n) const;

  private:
    struct State;

    std::shared_ptr<State> state_;
};

/**
 * Pre-registers every `common.cancel.*` metric in @p registry so
 * reports render them (as zeros) even before any token exists —
 * run-report schema v2 relies on this for a deterministic metrics
 * section.
 */
void registerCancellationMetrics(obs::MetricsRegistry &registry);

} // namespace amped

#endif // AMPED_COMMON_CANCEL_HPP

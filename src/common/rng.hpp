/**
 * @file
 * Deterministic random-number wrapper.
 *
 * The discrete-event simulator and the property tests need
 * reproducible randomness: the same seed must produce the same event
 * ordering on every platform, so we fix the engine (mt19937_64) and
 * expose only the distributions we use.
 */

#ifndef AMPED_COMMON_RNG_HPP
#define AMPED_COMMON_RNG_HPP

#include <cstdint>
#include <random>

namespace amped {

/**
 * Seeded pseudo-random source with a small, explicit interface.
 */
class Rng
{
  public:
    /** Creates a generator with the given seed (default: fixed). */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Normal with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    /** Access to the raw engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace amped

#endif // AMPED_COMMON_RNG_HPP

/**
 * @file
 * Training-energy model.
 *
 * Case Study II observes that a pipeline configuration that trains
 * slightly *slower* can still be more energy-efficient: during
 * pipeline bubbles the accelerators idle at reduced power, and "if
 * the power savings of the system during these bubbles is larger
 * than the extra energy cost due to the increased training time,
 * this is still a more energy-efficient configuration" — the paper
 * estimates the break-even low-power state at ~30 % of full power
 * and leaves power modeling as future work.  This module is that
 * model: busy phases draw TDP, bubble (idle) phases draw
 * idleFraction x TDP, and the break-even idle fraction between two
 * configurations is computed in closed form.
 */

#ifndef AMPED_CORE_ENERGY_MODEL_HPP
#define AMPED_CORE_ENERGY_MODEL_HPP

#include <cstdint>

#include "common/quantity.hpp"
#include "core/amped_model.hpp"

namespace amped {
namespace core {

/** Accelerator power characteristics. */
struct PowerSpec
{
    /** Full-execution power draw per accelerator. */
    Watts tdpWatts{400.0};

    /** Idle (low-power state) draw as a fraction of TDP, in [0, 1]. */
    double idleFraction = 0.3;

    /** Validates the spec. */
    void validate() const;
};

/**
 * Converts evaluation results into energy figures.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(PowerSpec spec);

    /**
     * Energy of one training batch across @p workers accelerators:
     * busy time (everything except the pipeline bubble) at TDP,
     * bubble time at idle power.
     */
    Joules energyPerBatchJoules(const EvaluationResult &result,
                                std::int64_t workers) const;

    /** Whole-job energy: per-batch energy x batch count. */
    Joules trainingEnergyJoules(const EvaluationResult &result,
                                std::int64_t workers) const;

    /** Mean power draw per accelerator over a batch. */
    Watts averagePowerWatts(const EvaluationResult &result) const;

    /**
     * Break-even idle fraction between a bubbly configuration and a
     * busier reference: the idle fraction below which @p bubbly
     * consumes less total energy than @p reference despite taking
     * longer (the paper's "~30 % of the power of the system"
     * threshold).  Both results must use the same worker count.
     *
     * @return Fraction in [0, 1]; 0 when @p bubbly can never win
     *         (its busy energy alone exceeds the reference), 1 when
     *         it wins even with no power savings.
     */
    static double breakEvenIdleFraction(const EvaluationResult &bubbly,
                                        const EvaluationResult &reference);

    /** The power spec in use. */
    const PowerSpec &spec() const { return spec_; }

  private:
    PowerSpec spec_;
};

} // namespace core
} // namespace amped

#endif // AMPED_CORE_ENERGY_MODEL_HPP

#include "memory_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace amped {
namespace core {

std::string
zeroStageName(ZeroStage stage)
{
    switch (stage) {
      case ZeroStage::none:
        return "plain-DP";
      case ZeroStage::optimizer:
        return "ZeRO-1";
      case ZeroStage::gradients:
        return "ZeRO-2";
      case ZeroStage::parameters:
        return "ZeRO-3";
    }
    AMPED_ASSERT(false, "unknown ZeroStage enumerator");
    return {};
}

double
zeroCommOverhead(ZeroStage stage)
{
    return stage == ZeroStage::parameters ? 0.5 : 0.0;
}

double
MemoryFootprint::totalBytes() const
{
    return parameterBytes + gradientBytes + optimizerBytes +
           activationBytes + workspaceBytes;
}

MemoryModel::MemoryModel(model::OpCounter counter,
                         hw::AcceleratorConfig accel,
                         MemoryOptions options)
    : counter_(std::move(counter)), accel_(std::move(accel)),
      options_(options)
{
    accel_.validate();
    require(options_.optimizerBytesPerParam >= 0.0,
            "optimizerBytesPerParam must be non-negative");
    require(options_.workspaceBytes >= 0.0,
            "workspaceBytes must be non-negative");
}

double
MemoryModel::residentParameters(
    const mapping::ParallelismConfig &mapping) const
{
    const auto &cfg = counter_.config();
    // Layer weights are sharded across TP ranks; the layer stack is
    // split across PP stages; expert banks are sharded across the
    // cluster, so a device holds ~1/E of each expert bank's weights
    // (mirroring OpCounter::gradientsPerLayer).
    double total = 0.0;
    for (std::int64_t l = 0; l < cfg.numLayers; ++l)
        total += counter_.gradientsPerLayer(l);
    double resident =
        total / static_cast<double>(mapping.tp() * mapping.pp());
    // Embeddings live on the first/last stage; amortize per device.
    resident += static_cast<double>(cfg.vocabSize + cfg.seqLength) *
                static_cast<double>(cfg.hiddenSize) /
                static_cast<double>(mapping.tp() * mapping.pp());
    return resident;
}

double
MemoryModel::activationBytesPerMicrobatch(
    const mapping::ParallelismConfig &mapping, double microbatch) const
{
    const auto &cfg = counter_.config();
    const double s = static_cast<double>(cfg.seqLength);
    const double h = static_cast<double>(cfg.hiddenSize);
    const double ffn = static_cast<double>(cfg.ffnHiddenSize);
    const double a = static_cast<double>(cfg.numHeads);
    const double act_bytes =
        accel_.precisions.activationBits.value() / units::bitsPerByte;

    const double layers_per_stage =
        static_cast<double>(cfg.numLayers) /
        static_cast<double>(mapping.pp());

    double per_layer_elements;
    if (options_.activationRecompute) {
        // Only the layer input is checkpointed.
        per_layer_elements = microbatch * s * h;
    } else {
        // Attention (qkv 3bsh + scores b a s^2 + context bsh) + MLP
        // (inner b s ffn + output bsh) + 2 norms.
        per_layer_elements =
            microbatch * s * (3.0 * h + h + ffn + h + 2.0 * h) +
            microbatch * a * s * s;
    }
    // Activations are sharded across TP ranks.
    return per_layer_elements * layers_per_stage * act_bytes /
           static_cast<double>(mapping.tp());
}

MemoryFootprint
MemoryModel::footprint(const mapping::ParallelismConfig &mapping,
                       double batch, double microbatch) const
{
    mapping.validate();
    require(batch >= 1.0, "memory footprint: batch must be >= 1");
    require(microbatch >= 1.0,
            "memory footprint: microbatch must be >= 1");
    require(microbatch <= batch,
            "memory footprint: microbatch exceeds batch");

    const double params = residentParameters(mapping);
    const double dp = static_cast<double>(mapping.dp());
    const double param_bytes_each =
        accel_.precisions.parameterBits.value() / units::bitsPerByte;

    MemoryFootprint fp;
    fp.parameterBytes = params * param_bytes_each;
    fp.gradientBytes = params * param_bytes_each;
    fp.optimizerBytes = params * options_.optimizerBytesPerParam;

    switch (options_.zeroStage) {
      case ZeroStage::none:
        break;
      case ZeroStage::parameters:
        fp.parameterBytes /= dp;
        [[fallthrough]];
      case ZeroStage::gradients:
        fp.gradientBytes /= dp;
        [[fallthrough]];
      case ZeroStage::optimizer:
        fp.optimizerBytes /= dp;
        break;
    }

    double in_flight = options_.activationsInFlightOverride;
    if (in_flight <= 0.0) {
        in_flight =
            mapping.pp() > 1 ? static_cast<double>(mapping.pp()) : 1.0;
    }
    fp.activationBytes =
        activationBytesPerMicrobatch(mapping, microbatch) * in_flight;
    fp.workspaceBytes = options_.workspaceBytes;
    return fp;
}

bool
MemoryModel::fits(const mapping::ParallelismConfig &mapping,
                  double batch, double microbatch) const
{
    return footprint(mapping, batch, microbatch).totalBytes() <=
           accel_.memoryBytes;
}

double
MemoryModel::largestFittingMicrobatch(
    const mapping::ParallelismConfig &mapping, double batch) const
{
    const double per_replica = batch / static_cast<double>(mapping.dp());
    double best = 0.0;
    for (double ub = 1.0; ub <= per_replica; ub *= 2.0) {
        if (fits(mapping, batch, ub))
            best = ub;
        else
            break;
    }
    return best;
}

} // namespace core
} // namespace amped

/**
 * @file
 * Free-function compute-cost helpers shared by the analytical
 * evaluator (core::AmpedModel) and the discrete-event simulator:
 * both must price a layer's forward pass identically so that their
 * disagreement isolates *scheduling* effects (bubbles, overlap,
 * serialization), not arithmetic differences.
 */

#ifndef AMPED_CORE_COMPUTE_COST_HPP
#define AMPED_CORE_COMPUTE_COST_HPP

#include <cstdint>

#include "common/quantity.hpp"
#include "hw/accelerator.hpp"
#include "model/op_counter.hpp"

namespace amped {
namespace core {

/**
 * U_f(l) of Eq. 2: forward compute time of one layer for @p batch
 * sequences on one accelerator running at eff = @p efficiency.
 */
Seconds layerForwardComputeTime(const model::OpCounter &counter,
                                const hw::AcceleratorConfig &accel,
                                double efficiency, std::int64_t layer,
                                double batch);

/** U_w(l) of Eq. 12: weight-update time of one layer. */
Seconds layerWeightUpdateTime(const model::OpCounter &counter,
                              const hw::AcceleratorConfig &accel,
                              double efficiency, std::int64_t layer);

} // namespace core
} // namespace amped

#endif // AMPED_CORE_COMPUTE_COST_HPP

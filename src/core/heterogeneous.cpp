#include "heterogeneous.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/compute_cost.hpp"
#include "net/collectives.hpp"

namespace amped {
namespace core {

HeterogeneousPipelineModel::HeterogeneousPipelineModel(
    model::OpCounter counter, std::vector<HeterogeneousStage> stages,
    net::LinkConfig hop_link, double backward_multiplier)
    : counter_(std::move(counter)), stages_(std::move(stages)),
      hopLink_(std::move(hop_link)),
      backwardMultiplier_(backward_multiplier)
{
    require(!stages_.empty(),
            "heterogeneous pipeline: need at least one stage");
    require(backwardMultiplier_ >= 0.0,
            "heterogeneous pipeline: backward multiplier must be "
            "non-negative");
    hopLink_.validate();
    std::int64_t layers = 0;
    for (const auto &stage : stages_) {
        stage.accelerator.validate();
        require(stage.numLayers >= 1,
                "heterogeneous pipeline: every stage needs >= 1 "
                "layer");
        require(stage.tpDegree >= 1,
                "heterogeneous pipeline: tpDegree must be >= 1");
        layers += stage.numLayers;
    }
    require(layers == counter_.config().numLayers,
            "heterogeneous pipeline: stage layers sum to ", layers,
            " but the model has ", counter_.config().numLayers);
}

double
HeterogeneousPipelineModel::stageTime(std::size_t stage_index,
                                      std::int64_t first_layer,
                                      double microbatch) const
{
    const auto &stage = stages_[stage_index];
    const double eff = stage.efficiency(microbatch);
    Seconds fwd{0.0};
    for (std::int64_t l = 0; l < stage.numLayers; ++l) {
        fwd += layerForwardComputeTime(counter_, stage.accelerator,
                                       eff, first_layer + l,
                                       microbatch);
    }
    // TP inside the stage shards the compute; its all-reduce cost is
    // charged per layer on the stage's off-chip link.
    Seconds tp_comm{0.0};
    if (stage.tpDegree > 1) {
        fwd /= static_cast<double>(stage.tpDegree);
        const net::LinkConfig intra{"stage-intra", Seconds{1e-6},
                                    stage.accelerator.offChipBandwidth};
        tp_comm = static_cast<double>(stage.numLayers) *
                  net::allReduceTime(
                      stage.tpDegree,
                      counter_.activationsTensorParallel(microbatch),
                      stage.accelerator.precisions.activationBits,
                      intra);
    }
    return ((1.0 + backwardMultiplier_) * (fwd + tp_comm)).value();
}

HeterogeneousResult
HeterogeneousPipelineModel::evaluate(const TrainingJob &job) const
{
    job.validate();
    const auto &cfg = counter_.config();

    // Microbatching with DP = 1 and PP = stage count.
    mapping::ParallelismConfig pseudo;
    pseudo.ppIntra = static_cast<std::int64_t>(stages_.size());
    const double ub =
        job.microbatching.microbatchSize(job.batchSize, pseudo);
    const double n_ub =
        job.microbatching.numMicrobatches(job.batchSize, pseudo);

    HeterogeneousResult result;
    std::int64_t first_layer = 0;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const double t = stageTime(s, first_layer, ub);
        result.stageTimes.push_back(t);
        if (t > result.bottleneckTime) {
            result.bottleneckTime = t;
            result.bottleneckStage = static_cast<std::int64_t>(s);
        }
        first_layer += stages_[s].numLayers;
    }

    // Steady state: N_ub slots of the bottleneck; ramp: one pass of
    // every other stage (fill + drain).
    double ramp = 0.0;
    for (double t : result.stageTimes)
        ramp += t;
    ramp -= result.bottleneckTime;

    // Hop communication: each boundary moves the whole per-batch
    // activation volume once (forward + backward).
    if (stages_.size() > 1) {
        const Bits act_bits =
            counter_.activationsPipelineParallel(job.batchSize) *
            stages_.front().accelerator.precisions.activationBits;
        result.hopCommTime =
            (2.0 * (hopLink_.latency * n_ub +
                    act_bits / hopLink_.bandwidth))
                .value();
    }

    result.timePerBatch = n_ub * result.bottleneckTime + ramp +
                          result.hopCommTime;
    result.totalTime =
        result.timePerBatch * job.numBatches(cfg.seqLength);
    return result;
}

std::vector<HeterogeneousStage>
HeterogeneousPipelineModel::balanceLayers(
    const model::OpCounter &counter,
    std::vector<HeterogeneousStage> stages, double microbatch)
{
    require(!stages.empty(), "balanceLayers: need stages");
    require(microbatch >= 1.0,
            "balanceLayers: microbatch must be >= 1");
    const std::int64_t layers = counter.config().numLayers;
    require(layers >= static_cast<std::int64_t>(stages.size()),
            "balanceLayers: more stages than layers");

    // Per-layer cost on each stage's hardware.
    std::vector<std::vector<double>> cost(stages.size());
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const double eff = stages[s].efficiency(microbatch);
        const double tp = static_cast<double>(stages[s].tpDegree);
        cost[s].resize(layers);
        for (std::int64_t l = 0; l < layers; ++l) {
            cost[s][l] = (layerForwardComputeTime(
                              counter, stages[s].accelerator, eff, l,
                              microbatch) /
                          tp)
                             .value();
        }
    }

    // Feasibility: can contiguous blocks with per-stage sums
    // <= bound cover all layers (every stage gets >= 1 layer)?
    auto assign = [&](double bound,
                      std::vector<std::int64_t> &out) -> bool {
        out.assign(stages.size(), 0);
        std::int64_t layer = 0;
        for (std::size_t s = 0; s < stages.size(); ++s) {
            const std::int64_t remaining_stages =
                static_cast<std::int64_t>(stages.size() - s - 1);
            double sum = 0.0;
            std::int64_t taken = 0;
            while (layer < layers - remaining_stages) {
                if (taken >= 1 && sum + cost[s][layer] > bound)
                    break;
                sum += cost[s][layer];
                ++taken;
                ++layer;
                if (taken == 1 && sum > bound) {
                    // A single layer may exceed the bound; it still
                    // must be placed somewhere, so only stop here if
                    // more layers would make it worse.
                    break;
                }
            }
            if (taken == 0)
                return false;
            out[s] = taken;
        }
        return layer == layers;
    };

    // Binary search over the bottleneck bound.
    double lo = 0.0, hi = 0.0;
    for (std::size_t s = 0; s < stages.size(); ++s)
        for (std::int64_t l = 0; l < layers; ++l)
            hi = std::max(hi, cost[s][l]);
    hi *= static_cast<double>(layers);
    std::vector<std::int64_t> best;
    {
        std::vector<std::int64_t> trial;
        AMPED_ASSERT(assign(hi, trial),
                     "maximal bound must be feasible");
        best = trial;
    }
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        std::vector<std::int64_t> trial;
        if (assign(mid, trial)) {
            hi = mid;
            best = trial;
        } else {
            lo = mid;
        }
    }
    for (std::size_t s = 0; s < stages.size(); ++s)
        stages[s].numLayers = best[s];
    return stages;
}

} // namespace core
} // namespace amped

/**
 * @file
 * Per-accelerator memory-footprint model.
 *
 * The paper incorporates memory constraints only implicitly, through
 * the fitted microbatch-efficiency curve, and names a comprehensive
 * memory model as future work (Sec. IX).  This module is that
 * extension: it predicts the per-device memory footprint of a
 * (model, mapping, job) triple — parameters, gradients, optimizer
 * state, and activations — including the ZeRO partitioning stages
 * and activation recomputation, and turns it into a feasibility
 * check for design-space exploration.
 *
 * Footprint components, for P parameters resident on a device:
 *
 *  - parameters: P x parameter precision (fp16 working copy);
 *  - gradients:  P x gradient precision;
 *  - optimizer:  Adam keeps an fp32 master copy plus two fp32
 *    moments (12 bytes per parameter by default);
 *  - activations: per microbatch in flight, each layer's
 *    intermediate tensors (attention + MLP + norms); with
 *    recomputation only layer-boundary activations are stored.
 *
 * ZeRO stages shard across the DP group: stage 1 shards the
 * optimizer state, stage 2 also gradients, stage 3 also parameters
 * (Rajbhandari et al. [17]).
 */

#ifndef AMPED_CORE_MEMORY_MODEL_HPP
#define AMPED_CORE_MEMORY_MODEL_HPP

#include <cstdint>
#include <string>

#include "hw/accelerator.hpp"
#include "mapping/parallelism.hpp"
#include "model/op_counter.hpp"

namespace amped {
namespace core {

/** ZeRO partitioning stage (0 = plain data parallelism). */
enum class ZeroStage
{
    none,      ///< Replicated parameters, gradients and optimizer.
    optimizer, ///< Stage 1: optimizer state sharded across DP.
    gradients, ///< Stage 2: + gradients sharded.
    parameters ///< Stage 3: + parameters sharded.
};

/** Returns a short display name ("ZeRO-2", ...). */
std::string zeroStageName(ZeroStage stage);

/**
 * The forward/backward communication overhead factor M_f_DP of Eq. 5
 * implied by a ZeRO stage: stages 1 and 2 add no forward/backward
 * traffic; stage 3 re-gathers parameters in both passes, a ~50 %
 * communication increase (Rajbhandari et al. [17]).
 */
double zeroCommOverhead(ZeroStage stage);

/** Memory-model knobs. */
struct MemoryOptions
{
    /** ZeRO partitioning stage applied across the DP group. */
    ZeroStage zeroStage = ZeroStage::none;

    /** Bytes of optimizer state per parameter (Adam: 4+4+4). */
    double optimizerBytesPerParam = 12.0;

    /**
     * Store only layer-boundary activations and recompute the rest
     * in the backward pass (Megatron-style checkpointing).
     */
    bool activationRecompute = true;

    /**
     * Microbatches whose activations are simultaneously alive.  0
     * derives it from the schedule: N_PP for a GPipe-style pipeline
     * (every in-flight microbatch holds its activations), 1 without
     * pipelining.
     */
    double activationsInFlightOverride = 0.0;

    /** Framework / workspace overhead added on top (bytes). */
    double workspaceBytes = 1.5e9;
};

/** Byte-level breakdown of one accelerator's footprint. */
struct MemoryFootprint
{
    double parameterBytes = 0.0;
    double gradientBytes = 0.0;
    double optimizerBytes = 0.0;
    double activationBytes = 0.0;
    double workspaceBytes = 0.0;

    /** Sum of all components. */
    double totalBytes() const;
};

/**
 * Computes per-accelerator memory footprints for mappings of a
 * transformer model.
 *
 * Thread safety: immutable after construction; footprint() / fits()
 * are const with no hidden state and safe to call concurrently
 * (the parallel Explorer screens points on a shared instance).
 */
class MemoryModel
{
  public:
    /**
     * @param counter Operation/element counter of the model (copied;
     *        it is a small value type).
     * @param accel Accelerator (provides capacity and precisions).
     * @param options Memory-model knobs.
     */
    MemoryModel(model::OpCounter counter, hw::AcceleratorConfig accel,
                MemoryOptions options = {});

    /**
     * Footprint of one accelerator under @p mapping with global
     * batch @p batch and microbatch size @p microbatch.
     */
    MemoryFootprint footprint(const mapping::ParallelismConfig &mapping,
                              double batch, double microbatch) const;

    /**
     * True when the footprint fits the accelerator's memory.
     */
    bool fits(const mapping::ParallelismConfig &mapping, double batch,
              double microbatch) const;

    /**
     * Largest power-of-two microbatch that fits, or 0 when even
     * microbatch 1 overflows.
     */
    double largestFittingMicrobatch(
        const mapping::ParallelismConfig &mapping, double batch) const;

    /** The options in use. */
    const MemoryOptions &options() const { return options_; }

  private:
    /** Parameters resident on one device (TP/PP/expert sharded). */
    double residentParameters(
        const mapping::ParallelismConfig &mapping) const;

    /** Activation bytes for one microbatch on one device. */
    double activationBytesPerMicrobatch(
        const mapping::ParallelismConfig &mapping,
        double microbatch) const;

    model::OpCounter counter_;
    hw::AcceleratorConfig accel_;
    MemoryOptions options_;
};

} // namespace core
} // namespace amped

#endif // AMPED_CORE_MEMORY_MODEL_HPP

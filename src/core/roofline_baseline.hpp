/**
 * @file
 * A deliberately naive roofline baseline estimator.
 *
 * The related-work section positions AMPeD against simpler
 * predictors; this class is the strawman they all reduce to: total
 * model FLOPs over aggregate peak compute, plus total communicated
 * bytes over bisection bandwidth — no microbatch efficiency, no
 * topology factors, no intra/inter distinction, no pipeline
 * bubbles.  The baseline-comparison bench shows exactly which
 * effects each of AMPeD's extra terms captures (mapping-dependent
 * cost differences the roofline cannot see).
 */

#ifndef AMPED_CORE_ROOFLINE_BASELINE_HPP
#define AMPED_CORE_ROOFLINE_BASELINE_HPP

#include "common/quantity.hpp"
#include "core/training_job.hpp"
#include "hw/accelerator.hpp"
#include "mapping/parallelism.hpp"
#include "model/op_counter.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace core {

/**
 * Roofline estimate of the per-batch training time.
 */
class RooflineBaseline
{
  public:
    /**
     * @param counter Model op counter (copied).
     * @param accel Accelerator (peak FLOP/s).
     * @param system System (bandwidths).
     */
    RooflineBaseline(model::OpCounter counter,
                     hw::AcceleratorConfig accel,
                     net::SystemConfig system);

    /**
     * Per-batch time estimate: compute at full peak across all
     * workers, plus every communicated byte (TP activations,
     * pipeline hops, gradients) at the aggregate inter-node
     * bandwidth — ignoring who communicates with whom.
     */
    Seconds timePerBatch(const mapping::ParallelismConfig &mapping,
                         const TrainingJob &job) const;

    /** Compute-only component of the estimate. */
    Seconds computeTime(double batch) const;

    /** Communication component of the estimate. */
    Seconds communicationTime(const mapping::ParallelismConfig &mapping,
                              double batch) const;

  private:
    model::OpCounter counter_;
    hw::AcceleratorConfig accel_;
    net::SystemConfig system_;
};

} // namespace core
} // namespace amped

#endif // AMPED_CORE_ROOFLINE_BASELINE_HPP

/**
 * @file
 * Checkpoint/restart cost model: expected time-to-train under
 * failures.
 *
 * AMPeD predicts failure-free training time; at the cluster scales
 * the ROADMAP targets, device failures and the checkpoints that
 * guard against them add a first-class term.  This module prices it
 * analytically:
 *
 *  - checkpoint size from the memory model (resident parameters +
 *    optimizer state) and write time over a storage link;
 *  - Daly's optimal checkpoint interval for a write cost and MTBF;
 *  - expected completion time of a training run partitioned into
 *    checkpointed segments under exponential failures, using the
 *    classic renewal result
 *        E[segment of wall length L] = (M + R) (e^{L/M} - 1)
 *    for MTBF M and restart cost R (each failed attempt costs the
 *    time to the failure plus R, then the segment restarts from its
 *    checkpoint);
 *  - a seeded Monte-Carlo replication of exactly that renewal
 *    process, run in parallel on the shared thread pool, which the
 *    differential tests compare against the closed form (and against
 *    fault-injected simulator runs).
 *
 * The segmentation convention shared by the analytic and Monte-Carlo
 * paths: solve time W at interval tau yields k = ceil(W / tau)
 * segments — the first k - 1 of wall length tau + delta (work plus
 * checkpoint write), the last of length W - (k - 1) tau with no
 * trailing checkpoint.
 */

#ifndef AMPED_CORE_RESILIENCE_HPP
#define AMPED_CORE_RESILIENCE_HPP

#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/cancel.hpp"
#include "common/quantity.hpp"
#include "core/memory_model.hpp"
#include "net/link.hpp"

namespace amped {

class ThreadPool;

namespace core {

/** Failure and checkpoint/restart cost knobs. */
struct ResilienceConfig
{
    /**
     * Cluster mean time between failures in seconds (> 0).  May be
     * infinity for a failure-free cluster.  For homogeneous devices
     * use clusterMtbfSeconds().
     */
    Seconds mtbfSeconds{std::numeric_limits<double>::infinity()};

    /** Checkpoint write cost delta (>= 0). */
    Seconds checkpointWriteSeconds{0.0};

    /** Restart cost R (>= 0): detect, reload, rewind. */
    Seconds restartSeconds{0.0};

    /**
     * Checkpoint interval tau in work seconds (> 0), or 0 to use
     * dalyOptimalInterval(checkpointWriteSeconds, mtbfSeconds).
     */
    Seconds checkpointIntervalSeconds{0.0};

    /** @throws UserError on out-of-range knobs. */
    void validate() const;
};

/** Expected-time-to-train estimate. */
struct ResilienceEstimate
{
    Seconds expectedSeconds{0.0};    ///< E[completion] with failures.
    Seconds failureFreeSeconds{0.0}; ///< Work + checkpoint writes.
    Seconds solveSeconds{0.0};       ///< Pure work W (no overheads).
    Seconds intervalSeconds{0.0};    ///< Interval tau actually used.
    double expectedFailures = 0.0;   ///< E[failure count].
    std::size_t segmentCount = 0;    ///< Checkpointed segments k.

    /** (expected - solve) / solve; 0 when solve is 0. */
    double overheadFraction() const;
};

/** Monte-Carlo statistics over replications of the renewal process. */
struct MonteCarloStats
{
    Seconds meanSeconds{0.0};
    Seconds stddevSeconds{0.0};
    Seconds standardError{0.0}; ///< stddev / sqrt(replications).

    /**
     * Replications the statistics actually cover.  Equals the request
     * when status is Completed; on a stop it is the whole number of
     * replication blocks finished before the checkpoint that
     * observed it (replication r always uses Rng(seed + r), so the
     * prefix statistics are the same ones a full run computes over
     * its first `replications` slots).
     */
    std::size_t replications = 0;

    /** How the estimation ended (see common/cancel.hpp). */
    RunStatus status = RunStatus::Completed;
};

/**
 * Bytes a device must persist per checkpoint: resident parameters
 * plus optimizer state (gradients and activations are recomputed,
 * not restored).
 */
double checkpointBytes(const MemoryFootprint &footprint);

/**
 * Seconds to write @p bytes over @p storage_link
 * (bytes * 8 / bandwidth + latency).
 *
 * @throws UserError when bytes is negative or the link is invalid.
 */
Seconds checkpointWriteSeconds(double bytes,
                               const net::LinkConfig &storage_link);

/**
 * Cluster MTBF for @p devices homogeneous devices failing
 * independently at @p device_failures_per_second each:
 * 1 / (rate * devices).  Infinity when the rate is 0.
 *
 * @throws UserError when the rate is negative or devices < 1.
 */
Seconds clusterMtbfSeconds(double device_failures_per_second,
                           std::int64_t devices);

/**
 * Daly's higher-order optimum checkpoint interval for write cost
 * @p delta and MTBF @p mtbf (J. T. Daly, FGCS 2006):
 *
 *   tau = sqrt(2 delta M) [1 + (1/3) sqrt(delta / 2M)
 *                            + (1/9) (delta / 2M)] - delta
 *
 * for delta < 2M, and tau = M otherwise.  Returns infinity for an
 * infinite MTBF (checkpoint never).
 *
 * @throws UserError unless delta > 0 and mtbf > 0.
 */
Seconds dalyOptimalInterval(Seconds delta, Seconds mtbf);

/**
 * Expected wall time to complete a segment of fault-free wall length
 * @p wall under exponential failures (MTBF @p mtbf) with restart
 * cost @p restart: (M + R)(e^{L/M} - 1); @p wall when the MTBF is
 * infinite.
 */
Seconds expectedSegmentSeconds(Seconds wall, Seconds mtbf,
                               Seconds restart);

/**
 * Expected time-to-train for @p solve_seconds of work under
 * @p config, using the segmentation convention in the file header.
 *
 * @throws UserError when the config is invalid, solve_seconds is
 *         negative/non-finite, or no checkpoint interval is usable
 *         (interval 0 with zero write cost and finite MTBF).
 */
ResilienceEstimate estimateTimeToTrain(Seconds solve_seconds,
                                       const ResilienceConfig &config);

/**
 * Monte-Carlo replications of the renewal process that
 * estimateTimeToTrain sums in closed form: each replication walks
 * the same segments, drawing exponential failure times from
 * Rng(seed + replication) until a draw survives the segment.
 *
 * Runs on @p pool via parallelFor with per-replication slots and an
 * index-order reduction, so the statistics are byte-identical for
 * every thread count / @p max_workers cap.
 *
 * Cancellable: replications run in fixed-size blocks with one
 * token checkpoint before each block, so a stop yields statistics
 * over a deterministic replication prefix (MonteCarloStats::status /
 * replications).  A stop before the first block completes returns
 * zeroed statistics with replications == 0.
 *
 * @param replications Number of replications (>= 1).
 * @param seed Base seed; replication r uses Rng(seed + r).
 * @param pool Worker pool (e.g. ThreadPool::shared()).
 * @param max_workers Optional per-call parallelism cap (0 = pool).
 * @param token Cooperative stop request (inert by default).
 */
MonteCarloStats
monteCarloTimeToTrain(Seconds solve_seconds,
                      const ResilienceConfig &config,
                      std::size_t replications, std::uint64_t seed,
                      ThreadPool &pool, std::size_t max_workers = 0,
                      const CancelToken &token = {});

} // namespace core
} // namespace amped

#endif // AMPED_CORE_RESILIENCE_HPP

#include "training_job.hpp"

#include "common/error.hpp"

namespace amped {
namespace core {

double
TrainingJob::numBatches(std::int64_t seq_length) const
{
    validate();
    if (numBatchesOverride > 0.0)
        return numBatchesOverride;
    require(seq_length > 0, "numBatches: sequence length must be "
            "positive, got ", seq_length);
    return totalTrainingTokens /
           (batchSize * static_cast<double>(seq_length));
}

void
TrainingJob::validate() const
{
    require(batchSize > 0.0, "TrainingJob: batchSize must be positive, "
            "got ", batchSize);
    require(totalTrainingTokens > 0.0 || numBatchesOverride > 0.0,
            "TrainingJob: need a token budget or an explicit batch "
            "count");
}

} // namespace core
} // namespace amped

#include "amped_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/compute_cost.hpp"
#include "net/collectives.hpp"

namespace amped {
namespace core {

double
EvaluationResult::trainingDays() const
{
    return totalTime / units::day;
}

AmpedModel::AmpedModel(model::TransformerConfig model_config,
                       hw::AcceleratorConfig accelerator,
                       hw::MicrobatchEfficiency efficiency,
                       net::SystemConfig system, ModelOptions options,
                       model::OpCountOptions op_options)
    : opCounter_(std::move(model_config), op_options),
      accel_(std::move(accelerator)), efficiency_(efficiency),
      system_(std::move(system)), options_(options)
{
    accel_.validate();
    system_.validate();
    require(options_.bubbleOverlapRatio >= 0.0,
            "bubbleOverlapRatio R must be non-negative, got ",
            options_.bubbleOverlapRatio);
    require(options_.zeroDpOverhead >= 0.0,
            "zeroDpOverhead must be non-negative, got ",
            options_.zeroDpOverhead);
    require(options_.backwardComputeMultiplier >= 0.0,
            "backwardComputeMultiplier must be non-negative");
    require(options_.backwardCommMultiplier >= 0.0,
            "backwardCommMultiplier must be non-negative");
    require(options_.ppCommMultiplier >= 1.0,
            "ppCommMultiplier must be >= 1, got ",
            options_.ppCommMultiplier);
}

net::LinkConfig
AmpedModel::interLinkEffective() const
{
    return net::LinkConfig{"inter-effective", system_.interLatency(),
                           system_.perStreamInterBandwidth()};
}

Seconds
AmpedModel::forwardComputeTime(std::int64_t layer, double batch,
                               double efficiency_value) const
{
    return layerForwardComputeTime(opCounter_, accel_,
                                   efficiency_value, layer, batch);
}

Seconds
AmpedModel::weightUpdateTime(std::int64_t layer,
                             double efficiency_value) const
{
    return layerWeightUpdateTime(opCounter_, accel_, efficiency_value,
                                 layer);
}

Seconds
AmpedModel::tpIntraCommTime(const mapping::ParallelismConfig &mapping,
                            double replica_batch) const
{
    if (mapping.tpIntra <= 1)
        return Seconds{0.0};
    const double n_act =
        opCounter_.activationsTensorParallel(replica_batch);
    const Bits s_act = accel_.precisions.activationBits;
    return net::allReduceTime(mapping.tpIntra, n_act, s_act,
                              system_.intraLink,
                              options_.intraTopologyFactorOverride);
}

Seconds
AmpedModel::tpInterCommTime(const mapping::ParallelismConfig &mapping,
                            double replica_batch) const
{
    if (mapping.tpInter <= 1)
        return Seconds{0.0};
    const double n_act =
        opCounter_.activationsTensorParallel(replica_batch);
    const Bits s_act = accel_.precisions.activationBits;
    return net::allReduceTime(mapping.tpInter, n_act, s_act,
                              interLinkEffective(),
                              options_.interTopologyFactorOverride);
}

Seconds
AmpedModel::ppCommTime(const mapping::ParallelismConfig &mapping,
                       double replica_batch) const
{
    const double layers =
        static_cast<double>(opCounter_.config().numLayers);
    const double n_act =
        opCounter_.activationsPipelineParallel(replica_batch);
    const Bits s_act = accel_.precisions.activationBits;

    Seconds intra{0.0};
    if (mapping.ppIntra > 1) {
        intra = net::pointToPointTime(n_act, s_act, system_.intraLink) /
                layers;
    }
    Seconds inter{0.0};
    if (mapping.ppInter > 1) {
        // A pipeline hop is node-to-node: every NIC participates
        // (scatter-gather of the activation slices), so the hop sees
        // the node-aggregate bandwidth rather than one stream's
        // share.
        const net::LinkConfig hop{"inter-hop", system_.interLatency(),
                                  system_.interBandwidth()};
        inter = net::pointToPointTime(n_act, s_act, hop) / layers;
    }
    return std::max(intra, inter);
}

Seconds
AmpedModel::moeCommTime(std::int64_t layer, double replica_batch) const
{
    if (!options_.enableMoeComm)
        return Seconds{0.0};
    const double n_act = opCounter_.activationsMoe(layer, replica_batch);
    if (n_act == 0.0)
        return Seconds{0.0};
    const Bits s_act = accel_.precisions.activationBits;
    // Two all-to-all exchanges per expert layer (dispatch +
    // combine).  On a pooled fabric (photonic substrate) the
    // exchange sees the node-aggregate bandwidth; with conventional
    // per-accelerator NICs each exchange stream rides its own NIC.
    const BitsPerSecond inter_bw =
        system_.interIsPooledFabric ? system_.interBandwidth()
                                    : system_.perStreamInterBandwidth();
    return 2.0 * net::allToAllTime(system_.numNodes, n_act, s_act,
                                   system_.intraLink,
                                   system_.interLatency(), inter_bw);
}

Seconds
AmpedModel::gradCommTime(const mapping::ParallelismConfig &mapping,
                         std::int64_t layer, Seconds &intra_part,
                         Seconds &inter_part) const
{
    intra_part = Seconds{0.0};
    inter_part = Seconds{0.0};
    if (mapping.dp() <= 1)
        return Seconds{0.0};

    // Gradients of layer l are sharded across TP ranks and live on a
    // single pipeline stage; stages reduce concurrently, so the
    // per-layer share is N_g / (N_TP N_PP) (DESIGN.md Sec. 3), with
    // N_g accounting for expert-parallel sharding on MoE layers.
    const double n_g = opCounter_.gradientsPerLayer(layer) /
                       static_cast<double>(mapping.tp() * mapping.pp());
    const Bits s_g = options_.gradientBits > Bits{0.0}
                         ? options_.gradientBits
                         : accel_.precisions.parameterBits;

    if (options_.hierarchicalGradAllReduce) {
        intra_part = net::allReduceTime(
            mapping.dpIntra, n_g, s_g, system_.intraLink,
            options_.intraTopologyFactorOverride);
        inter_part = net::allReduceTime(
            mapping.dpInter, n_g, s_g, interLinkEffective(),
            options_.interTopologyFactorOverride);
    } else {
        // Ablation: one flat all-reduce over every DP rank on the
        // slower inter-node tier.
        inter_part = net::allReduceTime(
            mapping.dp(), n_g, s_g, interLinkEffective(),
            options_.interTopologyFactorOverride);
    }
    return intra_part + inter_part;
}

EvaluationResult
AmpedModel::evaluate(const mapping::ParallelismConfig &mapping,
                     const TrainingJob &job) const
{
    mapping.validateFor(system_);
    job.validate();

    const auto &cfg = opCounter_.config();
    const double batch = job.batchSize;
    const double ub = job.microbatching.microbatchSize(batch, mapping);
    const double n_ub =
        job.microbatching.numMicrobatches(batch, mapping);
    const double eff = efficiency_(ub);
    const double workers = static_cast<double>(mapping.totalWorkers());

    // Activation traffic is per DP replica: replicas communicate in
    // parallel (DESIGN.md Sec. 3).
    const double replica_batch =
        batch / static_cast<double>(mapping.dp());

    Breakdown bd;

    // --- Computation (Eq. 2-4, Eq. 12), scaled by all workers (Eq. 1).
    // Breakdown is a plain-double reporting struct, so typed Seconds
    // unwrap via .value() at the assignment boundary.
    Seconds fwd_total{0.0};
    Seconds update_total{0.0};
    for (std::int64_t l = 0; l < cfg.numLayers; ++l) {
        fwd_total += forwardComputeTime(l, batch, eff);
        update_total += weightUpdateTime(l, eff);
    }
    bd.computeForward = (fwd_total / workers).value();
    bd.computeBackward =
        (options_.backwardComputeMultiplier * fwd_total / workers)
            .value();
    bd.weightUpdate = (update_total / workers).value();

    // --- Forward communication (Eq. 5-7, 9) summed over layers.
    const double zero_factor = 1.0 + options_.zeroDpOverhead;
    const double bwd_factor = options_.backwardCommMultiplier;
    const double layers = static_cast<double>(cfg.numLayers);

    const Seconds tp_intra_layer =
        tpIntraCommTime(mapping, replica_batch);
    const Seconds tp_inter_layer =
        tpInterCommTime(mapping, replica_batch);
    const Seconds pp_layer = ppCommTime(mapping, replica_batch);

    Seconds moe_total_fwd{0.0};
    for (std::int64_t l = 0; l < cfg.numLayers; ++l)
        moe_total_fwd += moeCommTime(l, replica_batch);

    // With pipelining, each stage owns L / N_PP layers and the
    // stages' per-layer all-reduces run concurrently, so the
    // wall-clock sum over layers is scaled by 1 / N_PP — the same
    // concurrency the paper's Eq. 7 encodes via its 1/L factor
    // (DESIGN.md Sec. 3).  PP hop communication is already a single
    // boundary's traffic after the 1/L scaling, so it is not scaled
    // again.
    const double stage_overlap =
        1.0 / static_cast<double>(mapping.pp());
    const double fb = zero_factor * (1.0 + bwd_factor);
    bd.commTpIntra =
        (fb * tp_intra_layer * layers * stage_overlap).value();
    bd.commTpInter =
        (fb * tp_inter_layer * layers * stage_overlap).value();
    bd.commPp =
        (fb * pp_layer * layers * options_.ppCommMultiplier).value();
    bd.commMoe = (fb * moe_total_fwd * stage_overlap).value();

    // --- Gradient all-reduce (Eq. 10-11) summed over layers.
    for (std::int64_t l = 0; l < cfg.numLayers; ++l) {
        Seconds intra{0.0}, inter{0.0};
        gradCommTime(mapping, l, intra, inter);
        bd.commGradIntra += intra.value();
        bd.commGradInter += inter.value();
    }

    // --- Pipeline bubble (Eq. 8): R (N_PP - 1)/N_ub times the useful
    // per-batch step work (compute already scaled by all workers,
    // plus forward+backward communication).
    if (mapping.pp() > 1) {
        const double useful =
            bd.computeForward + bd.computeBackward + bd.commTpIntra +
            bd.commTpInter + bd.commPp + bd.commMoe;
        bd.bubble = options_.bubbleOverlapRatio *
                    (static_cast<double>(mapping.pp()) - 1.0) / n_ub *
                    useful;
    }

    EvaluationResult result;
    result.perBatch = bd;
    result.timePerBatch = bd.total();
    result.numBatches = job.numBatches(cfg.seqLength);
    result.totalTime = result.numBatches * result.timePerBatch;
    result.microbatchSize = ub;
    result.numMicrobatches = n_ub;
    result.efficiency = eff;
    result.achievedFlopsPerGpu =
        opCounter_.modelFlopsPerBatch(batch) /
        (result.timePerBatch * workers);
    result.tokensPerSecond =
        batch * static_cast<double>(cfg.seqLength) /
        result.timePerBatch;
    return result;
}

} // namespace core
} // namespace amped

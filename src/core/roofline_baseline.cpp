#include "roofline_baseline.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace amped {
namespace core {

RooflineBaseline::RooflineBaseline(model::OpCounter counter,
                                   hw::AcceleratorConfig accel,
                                   net::SystemConfig system)
    : counter_(std::move(counter)), accel_(std::move(accel)),
      system_(std::move(system))
{
    accel_.validate();
    system_.validate();
}

Seconds
RooflineBaseline::computeTime(double batch) const
{
    require(batch > 0.0, "roofline: batch must be positive");
    const Flops total_flops{counter_.modelFlopsPerBatch(batch)};
    const FlopsPerSecond aggregate_peak =
        accel_.peakMacFlops() *
        static_cast<double>(system_.totalAccelerators());
    return total_flops / aggregate_peak;
}

Seconds
RooflineBaseline::communicationTime(
    const mapping::ParallelismConfig &mapping, double batch) const
{
    mapping.validate();
    const auto &cfg = counter_.config();
    const Bits s_act = accel_.precisions.activationBits;
    const Bits s_g = accel_.precisions.parameterBits;

    // Every byte the training step moves, lumped together.
    Bits bits{0.0};
    if (mapping.tp() > 1) {
        bits += counter_.activationsTensorParallel(batch) * s_act *
                static_cast<double>(cfg.numLayers) * 2.0; // fwd+bwd
    }
    if (mapping.pp() > 1) {
        bits += counter_.activationsPipelineParallel(batch) * s_act *
                2.0;
    }
    if (mapping.dp() > 1) {
        for (std::int64_t l = 0; l < cfg.numLayers; ++l)
            bits += counter_.gradientsPerLayer(l) * s_g;
    }

    // Everything flows through "the network": aggregate inter-node
    // bandwidth of the whole system (the roofline's single number).
    const BitsPerSecond network_bandwidth =
        system_.interBandwidth() *
        static_cast<double>(system_.numNodes);
    return bits / network_bandwidth;
}

Seconds
RooflineBaseline::timePerBatch(
    const mapping::ParallelismConfig &mapping,
    const TrainingJob &job) const
{
    job.validate();
    return computeTime(job.batchSize) +
           communicationTime(mapping, job.batchSize);
}

} // namespace core
} // namespace amped

#include "compute_cost.hpp"

namespace amped {
namespace core {

Seconds
layerForwardComputeTime(const model::OpCounter &counter,
                        const hw::AcceleratorConfig &accel,
                        double efficiency, std::int64_t layer,
                        double batch)
{
    const SecondsPerFlop c_mac = hw::cMac(accel, efficiency);
    const SecondsPerFlop c_non = hw::cNonlin(accel);
    const double mac_factor = hw::macPrecisionFactor(accel.precisions);
    const double non_factor =
        hw::nonlinPrecisionFactor(accel.precisions);

    Seconds time{0.0};
    for (const auto &op : counter.layerOps(layer, batch)) {
        // One MAC = 2 FLOPs against the FLOP-rate peak (DESIGN.md
        // Sec. 3).
        time += Flops{2.0 * op.macs} * c_mac * mac_factor;
        time += Flops{op.nonlinear} * c_non * non_factor;
    }
    return time;
}

Seconds
layerWeightUpdateTime(const model::OpCounter &counter,
                      const hw::AcceleratorConfig &accel,
                      double efficiency, std::int64_t layer)
{
    const SecondsPerFlop c_mac = hw::cMac(accel, efficiency);
    const double mac_factor = hw::macPrecisionFactor(accel.precisions);
    return Flops{2.0 * counter.weightsPerLayer(layer)} * c_mac *
           mac_factor;
}

} // namespace core
} // namespace amped

#include "resilience.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace core {

namespace {

/**
 * Resolves the segmentation of @p solve seconds of work at interval
 * @p tau with checkpoint cost @p delta: count k and the wall length
 * of the (shorter, checkpoint-free) final segment.
 */
struct Segmentation
{
    std::size_t count = 1;
    double fullWall = 0.0; ///< tau + delta (segments 0 .. k-2).
    double lastWall = 0.0; ///< W - (k-1) tau, no checkpoint.
};

Segmentation
segment(double solve, double tau, double delta)
{
    Segmentation s;
    if (solve <= 0.0) {
        s.count = 1;
        s.lastWall = 0.0;
        return s;
    }
    if (!std::isfinite(tau) || tau >= solve) {
        // One segment, never checkpointed.
        s.count = 1;
        s.lastWall = solve;
        return s;
    }
    s.count = static_cast<std::size_t>(std::ceil(solve / tau));
    AMPED_ASSERT(s.count >= 1, "segment count underflow");
    s.fullWall = tau + delta;
    s.lastWall =
        solve - static_cast<double>(s.count - 1) * tau;
    // Guard against ceil() landing exactly on a boundary plus
    // floating-point dust: the last segment carries (0, tau] work.
    if (s.lastWall <= 0.0) {
        --s.count;
        s.lastWall = solve - static_cast<double>(s.count - 1) * tau;
    }
    return s;
}

/** The checkpoint interval a config resolves to for a given run. */
Seconds
resolveInterval(const ResilienceConfig &config)
{
    if (config.checkpointIntervalSeconds > Seconds{0.0})
        return config.checkpointIntervalSeconds;
    if (!std::isfinite(config.mtbfSeconds.value()))
        return Seconds{std::numeric_limits<double>::infinity()};
    require(config.checkpointWriteSeconds > Seconds{0.0},
            "ResilienceConfig: cannot derive a Daly interval with a "
            "zero checkpoint write cost under a finite MTBF; set "
            "checkpointIntervalSeconds explicitly");
    return dalyOptimalInterval(config.checkpointWriteSeconds,
                               config.mtbfSeconds);
}

} // namespace

void
ResilienceConfig::validate() const
{
    require(mtbfSeconds > Seconds{0.0}
            && !std::isnan(mtbfSeconds.value()),
            "ResilienceConfig.mtbfSeconds must be > 0 (infinity = "
            "failure-free), got ", mtbfSeconds);
    require(std::isfinite(checkpointWriteSeconds.value())
            && checkpointWriteSeconds >= Seconds{0.0},
            "ResilienceConfig.checkpointWriteSeconds must be finite "
            "and >= 0, got ", checkpointWriteSeconds);
    require(std::isfinite(restartSeconds.value())
            && restartSeconds >= Seconds{0.0},
            "ResilienceConfig.restartSeconds must be finite and "
            ">= 0, got ", restartSeconds);
    require(!std::isnan(checkpointIntervalSeconds.value())
            && checkpointIntervalSeconds >= Seconds{0.0},
            "ResilienceConfig.checkpointIntervalSeconds must be >= 0 "
            "(0 = Daly optimal), got ", checkpointIntervalSeconds);
}

double
ResilienceEstimate::overheadFraction() const
{
    if (solveSeconds <= Seconds{0.0})
        return 0.0;
    return (expectedSeconds - solveSeconds) / solveSeconds;
}

double
checkpointBytes(const MemoryFootprint &footprint)
{
    return footprint.parameterBytes + footprint.optimizerBytes;
}

Seconds
checkpointWriteSeconds(double bytes,
                       const net::LinkConfig &storage_link)
{
    require(std::isfinite(bytes) && bytes >= 0.0,
            "checkpointWriteSeconds: bytes must be finite and >= 0, "
            "got ", bytes);
    storage_link.validate();
    return Bits{bytes * 8.0} / storage_link.bandwidth
        + storage_link.latency;
}

Seconds
clusterMtbfSeconds(double device_failures_per_second,
                   std::int64_t devices)
{
    require(std::isfinite(device_failures_per_second)
            && device_failures_per_second >= 0.0,
            "clusterMtbfSeconds: failure rate must be finite and "
            ">= 0, got ", device_failures_per_second);
    require(devices >= 1, "clusterMtbfSeconds: need >= 1 device, "
            "got ", devices);
    if (device_failures_per_second == 0.0)
        return Seconds{std::numeric_limits<double>::infinity()};
    return Seconds{1.0
                   / (device_failures_per_second
                      * static_cast<double>(devices))};
}

Seconds
dalyOptimalInterval(Seconds delta, Seconds mtbf)
{
    // Nonlinear internals (sqrt of a seconds-squared product) fall
    // outside the dimension algebra; unwrap once, compute in raw
    // doubles, and re-wrap the result.
    const double d = delta.value();
    const double m = mtbf.value();
    require(std::isfinite(d) && d > 0.0,
            "dalyOptimalInterval: checkpoint cost must be > 0, got ",
            delta);
    require(m > 0.0 && !std::isnan(m),
            "dalyOptimalInterval: MTBF must be > 0, got ", mtbf);
    if (!std::isfinite(m))
        return Seconds{std::numeric_limits<double>::infinity()};
    if (d >= 2.0 * m)
        return mtbf;
    const double half = d / (2.0 * m);
    return Seconds{std::sqrt(2.0 * d * m)
                       * (1.0 + std::sqrt(half) / 3.0 + half / 9.0)
                   - d};
}

Seconds
expectedSegmentSeconds(Seconds wall, Seconds mtbf, Seconds restart)
{
    AMPED_ASSERT(wall >= Seconds{0.0} && restart >= Seconds{0.0}
                     && mtbf > Seconds{0.0},
                 "expectedSegmentSeconds preconditions violated");
    if (!std::isfinite(mtbf.value()) || wall == Seconds{0.0})
        return wall;
    return (mtbf + restart) * std::expm1(wall / mtbf);
}

ResilienceEstimate
estimateTimeToTrain(Seconds solve_seconds,
                    const ResilienceConfig &config)
{
    config.validate();
    require(std::isfinite(solve_seconds.value())
            && solve_seconds >= Seconds{0.0},
            "estimateTimeToTrain: solve time must be finite and "
            ">= 0, got ", solve_seconds);

    const Seconds tau = resolveInterval(config);
    const Segmentation seg =
        segment(solve_seconds.value(), tau.value(),
                config.checkpointWriteSeconds.value());
    const auto full = static_cast<double>(seg.count - 1);

    ResilienceEstimate est;
    est.solveSeconds = solve_seconds;
    est.intervalSeconds = tau;
    est.segmentCount = seg.count;
    est.failureFreeSeconds =
        solve_seconds + full * config.checkpointWriteSeconds;
    est.expectedSeconds =
        full
            * expectedSegmentSeconds(Seconds{seg.fullWall},
                                     config.mtbfSeconds,
                                     config.restartSeconds)
        + expectedSegmentSeconds(Seconds{seg.lastWall},
                                 config.mtbfSeconds,
                                 config.restartSeconds);
    if (std::isfinite(config.mtbfSeconds.value())) {
        // Retries per segment follow e^{L/M} - 1 in expectation.
        est.expectedFailures =
            full
                * std::expm1(seg.fullWall
                             / config.mtbfSeconds.value())
            + std::expm1(seg.lastWall / config.mtbfSeconds.value());
    }
    return est;
}

MonteCarloStats
monteCarloTimeToTrain(Seconds solve_seconds,
                      const ResilienceConfig &config,
                      std::size_t replications, std::uint64_t seed,
                      ThreadPool &pool, std::size_t max_workers,
                      const CancelToken &token)
{
    config.validate();
    require(std::isfinite(solve_seconds.value())
            && solve_seconds >= Seconds{0.0},
            "monteCarloTimeToTrain: solve time must be finite and "
            ">= 0, got ", solve_seconds);
    require(replications >= 1,
            "monteCarloTimeToTrain: need >= 1 replication");

    auto &metrics = obs::MetricsRegistry::global();
    static obs::Counter &replications_counter =
        metrics.counter("core.monte_carlo.replications");
    static obs::Histogram &mc_seconds = metrics.histogram(
        "core.monte_carlo.seconds", /*timing=*/true);
    replications_counter.add(replications);
    obs::ScopedTimer timer(mc_seconds);

    // The replication walk is raw double arithmetic; unwrap the typed
    // inputs once at the boundary.
    const Seconds tau = resolveInterval(config);
    const Segmentation seg =
        segment(solve_seconds.value(), tau.value(),
                config.checkpointWriteSeconds.value());
    const double mtbf = config.mtbfSeconds.value();
    const double restart = config.restartSeconds.value();

    // Walks one segment to completion under exponential failures.
    const auto run_segment = [&](double wall, Rng &rng) {
        if (!std::isfinite(mtbf) || wall == 0.0)
            return wall;
        double elapsed = 0.0;
        for (;;) {
            const double u = rng.uniformReal(0.0, 1.0);
            const double failure = -mtbf * std::log1p(-u);
            if (failure >= wall)
                return elapsed + wall;
            elapsed += failure + restart;
        }
    };

    // Per-replication slots keep the reduction independent of
    // scheduling; Rng(seed + r) decouples replications, which is
    // also what makes the cancelled prefix exact: the first
    // `completed` slots of a stopped run hold the same draws a full
    // run puts there.  One checkpoint per fixed-size block is the
    // deterministic stop granularity.
    constexpr std::size_t kBlockReplications = 4096;
    std::vector<double> totals(replications, 0.0);
    std::size_t completed = 0;
    RunStatus run_status = RunStatus::Completed;
    for (std::size_t base = 0; base < replications;
         base += kBlockReplications) {
        const RunStatus stop = token.checkpoint();
        if (stop != RunStatus::Completed) {
            run_status = stop;
            break;
        }
        const std::size_t block =
            std::min(kBlockReplications, replications - base);
        const RunStatus loop = pool.parallelFor(
            block, 16,
            [&](std::size_t i) {
                const std::size_t r = base + i;
                Rng rng(seed + static_cast<std::uint64_t>(r));
                double total = 0.0;
                for (std::size_t s = 0; s + 1 < seg.count; ++s)
                    total += run_segment(seg.fullWall, rng);
                total += run_segment(seg.lastWall, rng);
                totals[r] = total;
            },
            token, max_workers);
        if (loop != RunStatus::Completed) {
            // Mid-block stop: slots are torn; drop the whole block.
            run_status = loop;
            break;
        }
        completed += block;
    }

    MonteCarloStats stats;
    stats.status = run_status;
    stats.replications = completed;
    if (completed == 0)
        return stats;

    double sum = 0.0;
    for (std::size_t r = 0; r < completed; ++r)
        sum += totals[r];
    const double mean = sum / static_cast<double>(completed);
    double var = 0.0;
    for (std::size_t r = 0; r < completed; ++r)
        var += (totals[r] - mean) * (totals[r] - mean);
    if (completed > 1)
        var /= static_cast<double>(completed - 1);

    stats.meanSeconds = Seconds{mean};
    stats.stddevSeconds = Seconds{std::sqrt(var)};
    stats.standardError =
        stats.stddevSeconds
        / std::sqrt(static_cast<double>(completed));
    return stats;
}

} // namespace core
} // namespace amped

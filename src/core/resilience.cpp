#include "resilience.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace core {

namespace {

/**
 * Resolves the segmentation of @p solve seconds of work at interval
 * @p tau with checkpoint cost @p delta: count k and the wall length
 * of the (shorter, checkpoint-free) final segment.
 */
struct Segmentation
{
    std::size_t count = 1;
    double fullWall = 0.0; ///< tau + delta (segments 0 .. k-2).
    double lastWall = 0.0; ///< W - (k-1) tau, no checkpoint.
};

Segmentation
segment(double solve, double tau, double delta)
{
    Segmentation s;
    if (solve <= 0.0) {
        s.count = 1;
        s.lastWall = 0.0;
        return s;
    }
    if (!std::isfinite(tau) || tau >= solve) {
        // One segment, never checkpointed.
        s.count = 1;
        s.lastWall = solve;
        return s;
    }
    s.count = static_cast<std::size_t>(std::ceil(solve / tau));
    AMPED_ASSERT(s.count >= 1, "segment count underflow");
    s.fullWall = tau + delta;
    s.lastWall =
        solve - static_cast<double>(s.count - 1) * tau;
    // Guard against ceil() landing exactly on a boundary plus
    // floating-point dust: the last segment carries (0, tau] work.
    if (s.lastWall <= 0.0) {
        --s.count;
        s.lastWall = solve - static_cast<double>(s.count - 1) * tau;
    }
    return s;
}

/** The checkpoint interval a config resolves to for a given run. */
double
resolveInterval(const ResilienceConfig &config)
{
    if (config.checkpointIntervalSeconds > 0.0)
        return config.checkpointIntervalSeconds;
    if (!std::isfinite(config.mtbfSeconds))
        return std::numeric_limits<double>::infinity();
    require(config.checkpointWriteSeconds > 0.0,
            "ResilienceConfig: cannot derive a Daly interval with a "
            "zero checkpoint write cost under a finite MTBF; set "
            "checkpointIntervalSeconds explicitly");
    return dalyOptimalInterval(config.checkpointWriteSeconds,
                               config.mtbfSeconds);
}

} // namespace

void
ResilienceConfig::validate() const
{
    require(mtbfSeconds > 0.0 && !std::isnan(mtbfSeconds),
            "ResilienceConfig.mtbfSeconds must be > 0 (infinity = "
            "failure-free), got ", mtbfSeconds);
    require(std::isfinite(checkpointWriteSeconds)
            && checkpointWriteSeconds >= 0.0,
            "ResilienceConfig.checkpointWriteSeconds must be finite "
            "and >= 0, got ", checkpointWriteSeconds);
    require(std::isfinite(restartSeconds) && restartSeconds >= 0.0,
            "ResilienceConfig.restartSeconds must be finite and "
            ">= 0, got ", restartSeconds);
    require(!std::isnan(checkpointIntervalSeconds)
            && checkpointIntervalSeconds >= 0.0,
            "ResilienceConfig.checkpointIntervalSeconds must be >= 0 "
            "(0 = Daly optimal), got ", checkpointIntervalSeconds);
}

double
ResilienceEstimate::overheadFraction() const
{
    if (solveSeconds <= 0.0)
        return 0.0;
    return (expectedSeconds - solveSeconds) / solveSeconds;
}

double
checkpointBytes(const MemoryFootprint &footprint)
{
    return footprint.parameterBytes + footprint.optimizerBytes;
}

double
checkpointWriteSeconds(double bytes,
                       const net::LinkConfig &storage_link)
{
    require(std::isfinite(bytes) && bytes >= 0.0,
            "checkpointWriteSeconds: bytes must be finite and >= 0, "
            "got ", bytes);
    storage_link.validate();
    return bytes * 8.0 / storage_link.bandwidthBits
        + storage_link.latencySeconds;
}

double
clusterMtbfSeconds(double device_failures_per_second,
                   std::int64_t devices)
{
    require(std::isfinite(device_failures_per_second)
            && device_failures_per_second >= 0.0,
            "clusterMtbfSeconds: failure rate must be finite and "
            ">= 0, got ", device_failures_per_second);
    require(devices >= 1, "clusterMtbfSeconds: need >= 1 device, "
            "got ", devices);
    if (device_failures_per_second == 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0
        / (device_failures_per_second
           * static_cast<double>(devices));
}

double
dalyOptimalInterval(double delta, double mtbf)
{
    require(std::isfinite(delta) && delta > 0.0,
            "dalyOptimalInterval: checkpoint cost must be > 0, got ",
            delta);
    require(mtbf > 0.0 && !std::isnan(mtbf),
            "dalyOptimalInterval: MTBF must be > 0, got ", mtbf);
    if (!std::isfinite(mtbf))
        return std::numeric_limits<double>::infinity();
    if (delta >= 2.0 * mtbf)
        return mtbf;
    const double half = delta / (2.0 * mtbf);
    return std::sqrt(2.0 * delta * mtbf)
        * (1.0 + std::sqrt(half) / 3.0 + half / 9.0)
        - delta;
}

double
expectedSegmentSeconds(double wall, double mtbf, double restart)
{
    AMPED_ASSERT(wall >= 0.0 && restart >= 0.0 && mtbf > 0.0,
                 "expectedSegmentSeconds preconditions violated");
    if (!std::isfinite(mtbf) || wall == 0.0)
        return wall;
    return (mtbf + restart) * std::expm1(wall / mtbf);
}

ResilienceEstimate
estimateTimeToTrain(double solve_seconds,
                    const ResilienceConfig &config)
{
    config.validate();
    require(std::isfinite(solve_seconds) && solve_seconds >= 0.0,
            "estimateTimeToTrain: solve time must be finite and "
            ">= 0, got ", solve_seconds);

    const double tau = resolveInterval(config);
    const Segmentation seg =
        segment(solve_seconds, tau, config.checkpointWriteSeconds);
    const auto full = static_cast<double>(seg.count - 1);

    ResilienceEstimate est;
    est.solveSeconds = solve_seconds;
    est.intervalSeconds = tau;
    est.segmentCount = seg.count;
    est.failureFreeSeconds =
        solve_seconds + full * config.checkpointWriteSeconds;
    est.expectedSeconds =
        full
            * expectedSegmentSeconds(seg.fullWall, config.mtbfSeconds,
                                     config.restartSeconds)
        + expectedSegmentSeconds(seg.lastWall, config.mtbfSeconds,
                                 config.restartSeconds);
    if (std::isfinite(config.mtbfSeconds)) {
        // Retries per segment follow e^{L/M} - 1 in expectation.
        est.expectedFailures =
            full * std::expm1(seg.fullWall / config.mtbfSeconds)
            + std::expm1(seg.lastWall / config.mtbfSeconds);
    }
    return est;
}

MonteCarloStats
monteCarloTimeToTrain(double solve_seconds,
                      const ResilienceConfig &config,
                      std::size_t replications, std::uint64_t seed,
                      ThreadPool &pool, std::size_t max_workers)
{
    config.validate();
    require(std::isfinite(solve_seconds) && solve_seconds >= 0.0,
            "monteCarloTimeToTrain: solve time must be finite and "
            ">= 0, got ", solve_seconds);
    require(replications >= 1,
            "monteCarloTimeToTrain: need >= 1 replication");

    auto &metrics = obs::MetricsRegistry::global();
    static obs::Counter &replications_counter =
        metrics.counter("core.monte_carlo.replications");
    static obs::Histogram &mc_seconds = metrics.histogram(
        "core.monte_carlo.seconds", /*timing=*/true);
    replications_counter.add(replications);
    obs::ScopedTimer timer(mc_seconds);

    const double tau = resolveInterval(config);
    const Segmentation seg =
        segment(solve_seconds, tau, config.checkpointWriteSeconds);
    const double mtbf = config.mtbfSeconds;
    const double restart = config.restartSeconds;

    // Walks one segment to completion under exponential failures.
    const auto run_segment = [&](double wall, Rng &rng) {
        if (!std::isfinite(mtbf) || wall == 0.0)
            return wall;
        double elapsed = 0.0;
        for (;;) {
            const double u = rng.uniformReal(0.0, 1.0);
            const double failure = -mtbf * std::log1p(-u);
            if (failure >= wall)
                return elapsed + wall;
            elapsed += failure + restart;
        }
    };

    // Per-replication slots keep the reduction independent of
    // scheduling; Rng(seed + r) decouples replications.
    std::vector<double> totals(replications, 0.0);
    pool.parallelFor(
        replications, 16,
        [&](std::size_t r) {
            Rng rng(seed + static_cast<std::uint64_t>(r));
            double total = 0.0;
            for (std::size_t s = 0; s + 1 < seg.count; ++s)
                total += run_segment(seg.fullWall, rng);
            total += run_segment(seg.lastWall, rng);
            totals[r] = total;
        },
        max_workers);

    double sum = 0.0;
    for (double t : totals)
        sum += t;
    const double mean = sum / static_cast<double>(replications);
    double var = 0.0;
    for (double t : totals)
        var += (t - mean) * (t - mean);
    if (replications > 1)
        var /= static_cast<double>(replications - 1);

    MonteCarloStats stats;
    stats.replications = replications;
    stats.meanSeconds = mean;
    stats.stddevSeconds = std::sqrt(var);
    stats.standardError =
        stats.stddevSeconds
        / std::sqrt(static_cast<double>(replications));
    return stats;
}

} // namespace core
} // namespace amped

#include "breakdown.hpp"

namespace amped {
namespace core {

double
Breakdown::total() const
{
    return computation() + communication() + bubble;
}

double
Breakdown::communication() const
{
    return commTpIntra + commTpInter + commPp + commMoe +
           commGradIntra + commGradInter;
}

double
Breakdown::computation() const
{
    return computeForward + computeBackward + weightUpdate;
}

std::vector<std::pair<std::string, double>>
Breakdown::phases() const
{
    return {
        {"compute-forward", computeForward},
        {"compute-backward", computeBackward},
        {"weight-update", weightUpdate},
        {"comm-TP-intra", commTpIntra},
        {"comm-TP-inter", commTpInter},
        {"comm-PP", commPp},
        {"comm-MoE", commMoe},
        {"comm-grad-intra", commGradIntra},
        {"comm-grad-inter", commGradInter},
        {"pipeline-bubble", bubble},
    };
}

} // namespace core
} // namespace amped

/**
 * @file
 * Workload description: what is being trained, for how long.
 */

#ifndef AMPED_CORE_TRAINING_JOB_HPP
#define AMPED_CORE_TRAINING_JOB_HPP

#include <cstdint>

#include "mapping/parallelism.hpp"

namespace amped {
namespace core {

/**
 * One training job: global batch size, training length, and the
 * microbatching policy.
 *
 * The paper's Eq. 1 multiplies the per-batch time by N_batch; the
 * case studies fix a token budget instead (DESIGN.md: 300 B tokens,
 * the GPT-3 convention), from which N_batch = tokens / (B * s).
 */
struct TrainingJob
{
    /** Global batch size B in sequences. */
    double batchSize = 0.0;

    /**
     * Total training tokens; used to derive the number of batches
     * when numBatchesOverride is 0.
     */
    double totalTrainingTokens = 300e9;

    /** Direct batch-count override (validation runs fix N_batch). */
    double numBatchesOverride = 0.0;

    /** Microbatch policy (size / count overrides). */
    mapping::Microbatching microbatching;

    /**
     * Number of batches N_batch for a model with sequence length
     * @p seq_length.
     */
    double numBatches(std::int64_t seq_length) const;

    /** Validates the job parameters. */
    void validate() const;
};

} // namespace core
} // namespace amped

#endif // AMPED_CORE_TRAINING_JOB_HPP

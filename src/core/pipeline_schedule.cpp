#include "pipeline_schedule.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/options.hpp"

namespace amped {
namespace core {

std::string
PipelineSchedule::name() const
{
    switch (kind) {
      case PipelineScheduleKind::gpipe:
        return "GPipe";
      case PipelineScheduleKind::oneFOneB:
        return "1F1B";
      case PipelineScheduleKind::interleaved:
        return "interleaved-1F1B(v=" +
               std::to_string(interleaveDegree) + ")";
    }
    AMPED_ASSERT(false, "unknown PipelineScheduleKind enumerator");
    return {};
}

void
PipelineSchedule::validate() const
{
    require(interleaveDegree >= 1,
            "pipeline schedule: interleave degree must be >= 1, got ",
            interleaveDegree);
    if (kind != PipelineScheduleKind::interleaved) {
        require(interleaveDegree == 1, "pipeline schedule: ",
                name(), " does not take an interleave degree");
    }
}

double
PipelineSchedule::bubbleOverlapRatio() const
{
    validate();
    if (kind == PipelineScheduleKind::interleaved)
        return 1.0 / static_cast<double>(interleaveDegree);
    return 1.0;
}

double
PipelineSchedule::ppCommMultiplier() const
{
    validate();
    if (kind == PipelineScheduleKind::interleaved)
        return static_cast<double>(interleaveDegree);
    return 1.0;
}

double
PipelineSchedule::activationsInFlight(std::int64_t pp,
                                      double n_ub) const
{
    validate();
    require(pp >= 1, "pipeline schedule: pp must be >= 1, got ", pp);
    require(n_ub >= 1.0,
            "pipeline schedule: n_ub must be >= 1, got ", n_ub);
    if (pp == 1)
        return 1.0;
    switch (kind) {
      case PipelineScheduleKind::gpipe:
        // Every microbatch's activations live until its backward.
        return n_ub;
      case PipelineScheduleKind::oneFOneB:
        // At most the pipeline depth is in flight.
        return std::min(static_cast<double>(pp), n_ub);
      case PipelineScheduleKind::interleaved:
        // 1F1B residency plus one extra chunk's worth of warm-up
        // microbatches per additional chunk.
        return std::min(
            static_cast<double>(pp) *
                (1.0 + (static_cast<double>(interleaveDegree) - 1.0) /
                           static_cast<double>(interleaveDegree)),
            n_ub);
    }
    AMPED_ASSERT(false, "unknown PipelineScheduleKind enumerator");
    return 1.0;
}

void
applySchedule(const PipelineSchedule &schedule, ModelOptions &options)
{
    schedule.validate();
    options.bubbleOverlapRatio = schedule.bubbleOverlapRatio();
    options.ppCommMultiplier = schedule.ppCommMultiplier();
}

} // namespace core
} // namespace amped

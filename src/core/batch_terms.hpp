/**
 * @file
 * Batch-friendly, memoized evaluation of the AMPeD model terms.
 *
 * The design-space sweeps (paper Sec. VI) evaluate the same additive
 * model at up to millions of (mapping, job) grid points.  The scalar
 * evaluator (core::AmpedModel::evaluate) re-derives every per-layer
 * sum — forward compute, weight update, MoE all-to-all, gradient
 * all-reduce — from scratch at every point, allocating a
 * std::vector<SublayerOps> per layer per point.  Across a grid those
 * sums only depend on a handful of distinct inputs:
 *
 *   - forward compute:   (global batch, eff(ub))
 *   - weight update:     eff(ub)
 *   - MoE forward comm:  per-replica batch
 *   - gradient comm:     (N_TP * N_PP, dpIntra, dpInter)
 *   - model FLOPs:       global batch
 *
 * SweepTermCache deduplicates those inputs, computes each distinct
 * sum once (in parallel), and serves the results to the batched sweep
 * kernels (explore/batch.cpp) as O(1) array lookups.
 *
 * Bit-exactness contract: every cached value is produced by the same
 * floating-point operations, in the same order, on the same inputs as
 * the scalar evaluator — per-layer sub-accumulators included — so a
 * sweep evaluated through this cache is byte-identical to one
 * evaluated through AmpedModel::evaluate.  tests/test_explore_batch.cpp
 * asserts this property over randomized grids; the goldens pin it for
 * the paper's case studies.  Any change to the scalar term order must
 * be mirrored here (and vice versa), or the property test fails.
 *
 * Failure semantics: registration never throws.  If computing a
 * cached sum throws (the scalar path would throw the same exception
 * at every point sharing the inputs), the entry is poisoned and the
 * lookup rethrows an exception of the same category (UserError vs
 * other) with the same message, so the sweep engine classifies the
 * point exactly as the scalar engine would (skip vs NaN-pin).
 *
 * Thread safety: construction and register*() calls are
 * single-threaded; prime() fills all registered entries (internally
 * parallel); after prime() returns, every lookup and per-point term
 * function is const and safe to call concurrently.
 */

#ifndef AMPED_CORE_BATCH_TERMS_HPP
#define AMPED_CORE_BATCH_TERMS_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.hpp"
#include "core/amped_model.hpp"
#include "hw/accelerator.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace core {

/**
 * Memoized per-term evaluator for batched sweeps.  See the file
 * comment for the contract.
 */
class SweepTermCache
{
  public:
    /** Accumulated gradient all-reduce times (Eq. 10-11). */
    struct GradTotals
    {
        Seconds intra{0.0}; ///< Sum over layers of the intra stage.
        Seconds inter{0.0}; ///< Sum over layers of the inter stage.
    };

    /**
     * @param model The evaluator whose terms are cached.  The model
     *        must outlive the cache (the cache keeps references).
     */
    explicit SweepTermCache(const AmpedModel &model);

    // -----------------------------------------------------------------
    // Registration: dedup by value, return a stable entry id.
    // Single-threaded; ids are valid after the next prime() call.
    // -----------------------------------------------------------------

    /** Sum over layers of U_f(l, batch, eff) (Eq. 2). */
    std::size_t registerForwardCompute(double batch, double eff);

    /** Sum over layers of U_w(l, eff) (Eq. 12). */
    std::size_t registerWeightUpdate(double eff);

    /** Sum over layers of M_f,MoE(l, replica_batch) (Eq. 9). */
    std::size_t registerMoeForward(double replica_batch);

    /** Sums over layers of the gradient all-reduce (Eq. 10-11). */
    std::size_t registerGrad(const mapping::ParallelismConfig &mapping);

    /** OpCounter::modelFlopsPerBatch(batch). */
    std::size_t registerModelFlops(double batch);

    /**
     * Computes every registered entry that has not been primed yet.
     * Parallelized on the shared ThreadPool (results are
     * deterministic: each entry is an independent pure computation).
     *
     * Cancellable: @p token is polled between phases and between
     * parallelFor chunks.  On a stop, unfilled entries stay pending —
     * a later prime() (with a fresh token) completes them; lookups
     * before that assert.  Inert token = always Completed.
     *
     * @param max_workers Parallelism cap (0 = whole pool).
     */
    RunStatus prime(unsigned max_workers = 0,
                    const CancelToken &token = {});

    // -----------------------------------------------------------------
    // Lookups: const, thread-safe after prime().  Poisoned entries
    // rethrow the recorded failure (same category and message the
    // scalar path would produce).
    // -----------------------------------------------------------------

    Seconds forwardComputeTotal(std::size_t id) const;
    Seconds weightUpdateTotal(std::size_t id) const;
    Seconds moeForwardTotal(std::size_t id) const;
    GradTotals gradTotals(std::size_t id) const;
    double modelFlopsPerBatch(std::size_t id) const;

    // -----------------------------------------------------------------
    // Probes: non-throwing variants of the lookups above for the
    // branch-and-bound optimizer's bound assembly (explore/optimizer).
    // A bound computation touches every registered entry of a search
    // cell, including poisoned ones; probes report the recorded
    // outcome as a status instead of rethrowing so the optimizer can
    // classify the cell (evaluate everything vs provably infeasible)
    // without exception round-trips.
    // -----------------------------------------------------------------

    /** How a probed entry's computation ended. */
    enum class LookupStatus : std::uint8_t
    {
        ok,        ///< value (and value2 for grad) valid.
        userError, ///< The throwing lookup raises UserError.
        error      ///< The throwing lookup raises std::runtime_error.
    };

    /** Non-throwing lookup result. */
    struct Probe
    {
        LookupStatus status = LookupStatus::ok;
        double value = 0.0;  ///< Same scalar the lookup returns.
        double value2 = 0.0; ///< Grad inter sum; unused otherwise.
    };

    Probe probeForwardCompute(std::size_t id) const;
    Probe probeWeightUpdate(std::size_t id) const;
    Probe probeMoeForward(std::size_t id) const;
    Probe probeGrad(std::size_t id) const;

    // -----------------------------------------------------------------
    // Per-point terms: cheap closed forms with no layer loop, computed
    // from the const parameter snapshots.  Bit-exact mirrors of the
    // corresponding AmpedModel member functions.
    // -----------------------------------------------------------------

    /** Mirrors AmpedModel::tpIntraCommTime. */
    Seconds tpIntraCommTime(std::int64_t tp_intra,
                            double replica_batch) const;

    /** Mirrors AmpedModel::tpInterCommTime. */
    Seconds tpInterCommTime(std::int64_t tp_inter,
                            double replica_batch) const;

    /** Mirrors AmpedModel::ppCommTime. */
    Seconds ppCommTime(std::int64_t pp_intra, std::int64_t pp_inter,
                       double replica_batch) const;

    /** The model whose terms are cached. */
    const AmpedModel &model() const { return model_; }

  private:
    /** How a cached computation ended. */
    enum class Outcome : std::uint8_t
    {
        pending,   ///< Registered, not primed yet.
        ok,        ///< value fields valid.
        userError, ///< Scalar path throws UserError(message).
        error      ///< Scalar path throws std::runtime_error(message).
    };

    /** One memoized sum (two values cover the two-part grad case). */
    struct Entry
    {
        double keyA = 0.0; ///< First input (batch / eff / replica...).
        double keyB = 0.0; ///< Second input when the key is a pair.
        std::int64_t intA = 0, intB = 0, intC = 0; ///< Grad key parts.
        double value = 0.0;
        double value2 = 0.0;
        Outcome outcome = Outcome::pending;
        std::string message;
    };

    /** Exact-match dedup key over two doubles (bit patterns). */
    struct PairKey
    {
        std::uint64_t a = 0, b = 0;
        bool operator==(const PairKey &o) const
        {
            return a == o.a && b == o.b;
        }
    };
    struct PairKeyHash
    {
        std::size_t operator()(const PairKey &k) const;
    };

    /** Exact-match dedup key over three integers. */
    struct TripleKey
    {
        std::int64_t a = 0, b = 0, c = 0;
        bool operator==(const TripleKey &o) const
        {
            return a == o.a && b == o.b && c == o.c;
        }
    };
    struct TripleKeyHash
    {
        std::size_t operator()(const TripleKey &k) const;
    };

    /** Per-sublayer constants of one layer's forward pass. */
    struct OpTerm
    {
        double macs2 = 0.0;    ///< 2.0 * SublayerOps::macs.
        double nonlinear = 0.0; ///< SublayerOps::nonlinear.
    };

    /** Per-batch table of every layer's forward-op constants. */
    struct OpsTable
    {
        double batch = 0.0;
        std::vector<OpTerm> terms;        ///< All layers, flattened.
        std::vector<std::uint32_t> layerEnd; ///< End index per layer.
        Outcome outcome = Outcome::pending;
        std::string message;
    };

    void primeOpsTable(OpsTable &table) const;
    void primeForwardCompute(Entry &entry) const;
    void primeWeightUpdate(Entry &entry) const;
    void primeMoeForward(Entry &entry) const;
    void primeGrad(Entry &entry) const;
    void primeModelFlops(Entry &entry) const;

    /** Rethrows a poisoned entry's recorded failure. */
    static void rethrow(const Entry &entry);

    const AmpedModel &model_;
    hw::ComputeRateSnapshot rates_;
    net::SystemSnapshot system_;

    // Per-layer constants captured once at construction.
    std::vector<double> weights2_;   ///< 2.0 * weightsPerLayer(l).
    std::vector<double> gradients_;  ///< gradientsPerLayer(l).
    bool moeActive_ = false; ///< enableMoeComm and >= 1 MoE layer.

    std::unordered_map<PairKey, std::size_t, PairKeyHash> forwardIds_;
    std::unordered_map<std::uint64_t, std::size_t> updateIds_;
    std::unordered_map<std::uint64_t, std::size_t> moeIds_;
    std::unordered_map<TripleKey, std::size_t, TripleKeyHash> gradIds_;
    std::unordered_map<std::uint64_t, std::size_t> flopsIds_;
    std::unordered_map<std::uint64_t, std::size_t> opsTableIds_;

    std::vector<Entry> forward_;
    std::vector<Entry> update_;
    std::vector<Entry> moe_;
    std::vector<Entry> grad_;
    std::vector<Entry> flops_;
    std::vector<OpsTable> opsTables_;
    std::vector<std::size_t> forwardOpsTable_; ///< forward id -> table.
    /** Representative mapping per grad entry (same key => same sums). */
    std::vector<mapping::ParallelismConfig> gradMappings_;
};

} // namespace core
} // namespace amped

#endif // AMPED_CORE_BATCH_TERMS_HPP

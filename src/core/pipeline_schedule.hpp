/**
 * @file
 * Pipeline-schedule models.
 *
 * The paper exposes pipeline efficiency through two knobs: the
 * bubble-overlap ratio R of Eq. 8 ("allowing to easily estimate more
 * efficient pipeline strategies") and the number of in-flight
 * microbatches that drive memory pressure.  This module derives both
 * from the actual schedule instead of hand-tuning:
 *
 *  - GPipe: all forwards, then all backwards.  Bubble fraction
 *    (P-1)/M of the useful work (R = 1); every microbatch's
 *    activations are alive simultaneously.
 *  - 1F1B (PipeDream-flush): same bubble as GPipe (R = 1) but at
 *    most P microbatches in flight — the memory win.
 *  - Interleaved 1F1B (Megatron): each device hosts v model chunks;
 *    the bubble shrinks by v (R = 1/v) at the cost of v x more
 *    pipeline communication.
 */

#ifndef AMPED_CORE_PIPELINE_SCHEDULE_HPP
#define AMPED_CORE_PIPELINE_SCHEDULE_HPP

#include <cstdint>
#include <string>

namespace amped {
namespace core {

/** Which pipeline schedule the deployment runs. */
enum class PipelineScheduleKind
{
    gpipe,      ///< All-forward-then-all-backward.
    oneFOneB,   ///< 1F1B with flush (PipeDream-style).
    interleaved ///< Interleaved 1F1B with v chunks per device.
};

/**
 * A pipeline schedule and its derived model parameters.
 */
struct PipelineSchedule
{
    PipelineScheduleKind kind = PipelineScheduleKind::gpipe;

    /** Model chunks per device, v (interleaved only; >= 1). */
    std::int64_t interleaveDegree = 1;

    /** Display name ("GPipe", "1F1B", "interleaved-1F1B(v=4)"). */
    std::string name() const;

    /**
     * Bubble-overlap ratio R for Eq. 8: 1 for GPipe and 1F1B, 1/v
     * for the interleaved schedule.
     *
     * @throws UserError when interleaveDegree is invalid.
     */
    double bubbleOverlapRatio() const;

    /**
     * Pipeline-communication multiplier: the interleaved schedule
     * sends activations between devices once per chunk, so hop
     * traffic scales by v.
     */
    double ppCommMultiplier() const;

    /**
     * Microbatches whose activations are simultaneously alive on a
     * stage, given pipeline depth @p pp and @p n_ub microbatches —
     * the memory-model input.
     */
    double activationsInFlight(std::int64_t pp, double n_ub) const;

    /** Validates the schedule parameters. */
    void validate() const;
};

// Forward declaration: defined in core/options.hpp.
struct ModelOptions;

/**
 * Applies a schedule to evaluator options: sets the bubble-overlap
 * ratio R and the pipeline-communication multiplier.
 */
void applySchedule(const PipelineSchedule &schedule,
                   ModelOptions &options);

} // namespace core
} // namespace amped

#endif // AMPED_CORE_PIPELINE_SCHEDULE_HPP

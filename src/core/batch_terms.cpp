#include "batch_terms.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"
#include "net/collectives.hpp"

namespace amped {
namespace core {

namespace {

/** The bit pattern of a double (exact-match memo keys). */
std::uint64_t
doubleBits(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value), "double is 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

} // namespace

std::size_t
SweepTermCache::PairKeyHash::operator()(const PairKey &k) const
{
    Fnv1a hasher;
    hasher.bytes(&k.a, sizeof(k.a));
    hasher.bytes(&k.b, sizeof(k.b));
    return static_cast<std::size_t>(hasher.digest());
}

std::size_t
SweepTermCache::TripleKeyHash::operator()(const TripleKey &k) const
{
    Fnv1a hasher;
    hasher.bytes(&k.a, sizeof(k.a));
    hasher.bytes(&k.b, sizeof(k.b));
    hasher.bytes(&k.c, sizeof(k.c));
    return static_cast<std::size_t>(hasher.digest());
}

SweepTermCache::SweepTermCache(const AmpedModel &model)
    : model_(model), rates_(hw::computeRateSnapshot(model.accelerator())),
      system_(model.system().snapshot())
{
    const auto &counter = model_.opCounter();
    const std::int64_t layers = counter.config().numLayers;
    weights2_.reserve(static_cast<std::size_t>(layers));
    gradients_.reserve(static_cast<std::size_t>(layers));
    for (std::int64_t l = 0; l < layers; ++l) {
        weights2_.push_back(2.0 * counter.weightsPerLayer(l));
        gradients_.push_back(counter.gradientsPerLayer(l));
    }
    moeActive_ = model_.options().enableMoeComm &&
                 counter.config().moe.numExperts > 0;
    if (!moeActive_) {
        // Sentinel id 0: every MoE lookup resolves to an exact +0.0,
        // matching the scalar sum of per-layer zeros.
        Entry zero;
        zero.outcome = Outcome::ok;
        moe_.push_back(std::move(zero));
    }
}

std::size_t
SweepTermCache::registerForwardCompute(double batch, double eff)
{
    const PairKey key{doubleBits(batch), doubleBits(eff)};
    const auto it = forwardIds_.find(key);
    if (it != forwardIds_.end())
        return it->second;

    const std::uint64_t batch_key = doubleBits(batch);
    std::size_t table = 0;
    const auto table_it = opsTableIds_.find(batch_key);
    if (table_it != opsTableIds_.end()) {
        table = table_it->second;
    } else {
        table = opsTables_.size();
        OpsTable ops;
        ops.batch = batch;
        opsTables_.push_back(std::move(ops));
        opsTableIds_.emplace(batch_key, table);
    }

    const std::size_t id = forward_.size();
    Entry entry;
    entry.keyA = batch;
    entry.keyB = eff;
    forward_.push_back(std::move(entry));
    forwardOpsTable_.push_back(table);
    forwardIds_.emplace(key, id);
    return id;
}

std::size_t
SweepTermCache::registerWeightUpdate(double eff)
{
    const std::uint64_t key = doubleBits(eff);
    const auto it = updateIds_.find(key);
    if (it != updateIds_.end())
        return it->second;
    const std::size_t id = update_.size();
    Entry entry;
    entry.keyA = eff;
    update_.push_back(std::move(entry));
    updateIds_.emplace(key, id);
    return id;
}

std::size_t
SweepTermCache::registerMoeForward(double replica_batch)
{
    if (!moeActive_)
        return 0; // The +0.0 sentinel seeded by the constructor.
    const std::uint64_t key = doubleBits(replica_batch);
    const auto it = moeIds_.find(key);
    if (it != moeIds_.end())
        return it->second;
    const std::size_t id = moe_.size();
    Entry entry;
    entry.keyA = replica_batch;
    moe_.push_back(std::move(entry));
    moeIds_.emplace(key, id);
    return id;
}

std::size_t
SweepTermCache::registerGrad(const mapping::ParallelismConfig &mapping)
{
    // The per-layer gradient all-reduce depends on the mapping only
    // through N_TP * N_PP (gradient sharding) and the two DP tiers.
    const TripleKey key{mapping.tp() * mapping.pp(), mapping.dpIntra,
                        mapping.dpInter};
    const auto it = gradIds_.find(key);
    if (it != gradIds_.end())
        return it->second;
    const std::size_t id = grad_.size();
    grad_.push_back(Entry{});
    gradMappings_.push_back(mapping);
    gradIds_.emplace(key, id);
    return id;
}

std::size_t
SweepTermCache::registerModelFlops(double batch)
{
    const std::uint64_t key = doubleBits(batch);
    const auto it = flopsIds_.find(key);
    if (it != flopsIds_.end())
        return it->second;
    const std::size_t id = flops_.size();
    Entry entry;
    entry.keyA = batch;
    flops_.push_back(std::move(entry));
    flopsIds_.emplace(key, id);
    return id;
}

void
SweepTermCache::primeOpsTable(OpsTable &table) const
{
    try {
        const auto &counter = model_.opCounter();
        const std::int64_t layers = counter.config().numLayers;
        table.terms.clear();
        table.layerEnd.clear();
        table.layerEnd.reserve(static_cast<std::size_t>(layers));
        for (std::int64_t l = 0; l < layers; ++l) {
            for (const auto &op : counter.layerOps(l, table.batch)) {
                OpTerm term;
                term.macs2 = 2.0 * op.macs;
                term.nonlinear = op.nonlinear;
                table.terms.push_back(term);
            }
            table.layerEnd.push_back(
                static_cast<std::uint32_t>(table.terms.size()));
        }
        table.outcome = Outcome::ok;
    } catch (const UserError &e) {
        table.outcome = Outcome::userError;
        table.message = e.what();
    } catch (const std::exception &e) {
        table.outcome = Outcome::error;
        table.message = e.what();
    }
}

void
SweepTermCache::primeForwardCompute(Entry &entry) const
{
    const std::size_t table_index =
        forwardOpsTable_[static_cast<std::size_t>(&entry -
                                                  forward_.data())];
    const OpsTable &table = opsTables_[table_index];
    if (table.outcome != Outcome::ok) {
        entry.outcome = table.outcome;
        entry.message = table.message;
        return;
    }
    try {
        // Mirrors core::layerForwardComputeTime summed over layers,
        // per-layer sub-accumulator included: identical operations in
        // identical order yield identical bits.
        const SecondsPerFlop c_mac =
            hw::cMac(model_.accelerator(), entry.keyB);
        const SecondsPerFlop c_non = rates_.cNonlin;
        Seconds fwd_total{0.0};
        std::size_t begin = 0;
        for (const std::uint32_t end : table.layerEnd) {
            Seconds time{0.0};
            for (std::size_t i = begin; i < end; ++i) {
                time += Flops{table.terms[i].macs2} * c_mac *
                        rates_.macFactor;
                time += Flops{table.terms[i].nonlinear} * c_non *
                        rates_.nonlinFactor;
            }
            fwd_total += time;
            begin = end;
        }
        entry.value = fwd_total.value();
        entry.outcome = Outcome::ok;
    } catch (const UserError &e) {
        entry.outcome = Outcome::userError;
        entry.message = e.what();
    } catch (const std::exception &e) {
        entry.outcome = Outcome::error;
        entry.message = e.what();
    }
}

void
SweepTermCache::primeWeightUpdate(Entry &entry) const
{
    try {
        // Mirrors core::layerWeightUpdateTime summed over layers.
        const SecondsPerFlop c_mac =
            hw::cMac(model_.accelerator(), entry.keyA);
        Seconds update_total{0.0};
        for (const double w2 : weights2_)
            update_total += Flops{w2} * c_mac * rates_.macFactor;
        entry.value = update_total.value();
        entry.outcome = Outcome::ok;
    } catch (const UserError &e) {
        entry.outcome = Outcome::userError;
        entry.message = e.what();
    } catch (const std::exception &e) {
        entry.outcome = Outcome::error;
        entry.message = e.what();
    }
}

void
SweepTermCache::primeMoeForward(Entry &entry) const
{
    try {
        const std::int64_t layers =
            model_.opCounter().config().numLayers;
        Seconds total{0.0};
        for (std::int64_t l = 0; l < layers; ++l)
            total += model_.moeCommTime(l, entry.keyA);
        entry.value = total.value();
        entry.outcome = Outcome::ok;
    } catch (const UserError &e) {
        entry.outcome = Outcome::userError;
        entry.message = e.what();
    } catch (const std::exception &e) {
        entry.outcome = Outcome::error;
        entry.message = e.what();
    }
}

void
SweepTermCache::primeGrad(Entry &entry) const
{
    const std::size_t id =
        static_cast<std::size_t>(&entry - grad_.data());
    const mapping::ParallelismConfig &mapping = gradMappings_[id];
    try {
        const std::int64_t layers =
            model_.opCounter().config().numLayers;
        // Mirrors the evaluate() gradient loop, accumulating raw
        // doubles exactly as Breakdown::commGrad* do.
        double intra_sum = 0.0;
        double inter_sum = 0.0;
        for (std::int64_t l = 0; l < layers; ++l) {
            Seconds intra{0.0};
            Seconds inter{0.0};
            model_.gradCommTime(mapping, l, intra, inter);
            intra_sum += intra.value();
            inter_sum += inter.value();
        }
        entry.value = intra_sum;
        entry.value2 = inter_sum;
        entry.outcome = Outcome::ok;
    } catch (const UserError &e) {
        entry.outcome = Outcome::userError;
        entry.message = e.what();
    } catch (const std::exception &e) {
        entry.outcome = Outcome::error;
        entry.message = e.what();
    }
}

void
SweepTermCache::primeModelFlops(Entry &entry) const
{
    try {
        entry.value = model_.opCounter().modelFlopsPerBatch(entry.keyA);
        entry.outcome = Outcome::ok;
    } catch (const UserError &e) {
        entry.outcome = Outcome::userError;
        entry.message = e.what();
    } catch (const std::exception &e) {
        entry.outcome = Outcome::error;
        entry.message = e.what();
    }
}

RunStatus
SweepTermCache::prime(unsigned max_workers, const CancelToken &token)
{
    const std::size_t workers =
        max_workers > 0 ? max_workers
                        : ThreadPool::defaultThreadCount();

    // Phase 1: per-batch op tables (forward entries read them).
    std::vector<std::size_t> pending_tables;
    for (std::size_t i = 0; i < opsTables_.size(); ++i)
        if (opsTables_[i].outcome == Outcome::pending)
            pending_tables.push_back(i);
    if (!pending_tables.empty()) {
        const RunStatus status = ThreadPool::shared().parallelFor(
            pending_tables.size(), /*chunk=*/1,
            [&](std::size_t i) {
                primeOpsTable(opsTables_[pending_tables[i]]);
            },
            token, workers);
        if (status != RunStatus::Completed)
            return status;
    }

    // Phase 2: every pending entry, each an independent pure
    // computation (deterministic at any worker count).
    enum Kind : unsigned char
    {
        kForward,
        kUpdate,
        kMoe,
        kGrad,
        kFlops
    };
    std::vector<std::pair<Kind, std::size_t>> work;
    const auto collect = [&work](Kind kind,
                                 const std::vector<Entry> &entries) {
        for (std::size_t i = 0; i < entries.size(); ++i)
            if (entries[i].outcome == Outcome::pending)
                work.emplace_back(kind, i);
    };
    collect(kForward, forward_);
    collect(kUpdate, update_);
    collect(kMoe, moe_);
    collect(kGrad, grad_);
    collect(kFlops, flops_);
    if (work.empty())
        return RunStatus::Completed;

    return ThreadPool::shared().parallelFor(
        work.size(), /*chunk=*/8,
        [&](std::size_t i) {
            const auto [kind, index] = work[i];
            switch (kind) {
            case kForward:
                primeForwardCompute(forward_[index]);
                break;
            case kUpdate:
                primeWeightUpdate(update_[index]);
                break;
            case kMoe:
                primeMoeForward(moe_[index]);
                break;
            case kGrad:
                primeGrad(grad_[index]);
                break;
            case kFlops:
                primeModelFlops(flops_[index]);
                break;
            }
        },
        token, workers);
}

void
SweepTermCache::rethrow(const Entry &entry)
{
    AMPED_ASSERT(entry.outcome != Outcome::pending,
                 "SweepTermCache lookup before prime()");
    if (entry.outcome == Outcome::userError)
        throw UserError(entry.message);
    throw std::runtime_error(entry.message);
}

Seconds
SweepTermCache::forwardComputeTotal(std::size_t id) const
{
    const Entry &entry = forward_[id];
    if (entry.outcome != Outcome::ok)
        rethrow(entry);
    return Seconds{entry.value};
}

Seconds
SweepTermCache::weightUpdateTotal(std::size_t id) const
{
    const Entry &entry = update_[id];
    if (entry.outcome != Outcome::ok)
        rethrow(entry);
    return Seconds{entry.value};
}

Seconds
SweepTermCache::moeForwardTotal(std::size_t id) const
{
    const Entry &entry = moe_[id];
    if (entry.outcome != Outcome::ok)
        rethrow(entry);
    return Seconds{entry.value};
}

SweepTermCache::GradTotals
SweepTermCache::gradTotals(std::size_t id) const
{
    const Entry &entry = grad_[id];
    if (entry.outcome != Outcome::ok)
        rethrow(entry);
    GradTotals totals;
    totals.intra = Seconds{entry.value};
    totals.inter = Seconds{entry.value2};
    return totals;
}

double
SweepTermCache::modelFlopsPerBatch(std::size_t id) const
{
    const Entry &entry = flops_[id];
    if (entry.outcome != Outcome::ok)
        rethrow(entry);
    return entry.value;
}

namespace {

/** Converts a primed entry into the non-throwing probe form. */
SweepTermCache::Probe
probeEntry(double value, double value2, bool ok, bool user_error)
{
    SweepTermCache::Probe probe;
    if (ok) {
        probe.status = SweepTermCache::LookupStatus::ok;
        probe.value = value;
        probe.value2 = value2;
    } else {
        probe.status = user_error
                           ? SweepTermCache::LookupStatus::userError
                           : SweepTermCache::LookupStatus::error;
    }
    return probe;
}

} // namespace

SweepTermCache::Probe
SweepTermCache::probeForwardCompute(std::size_t id) const
{
    const Entry &entry = forward_[id];
    AMPED_ASSERT(entry.outcome != Outcome::pending,
                 "SweepTermCache probe before prime()");
    return probeEntry(entry.value, 0.0, entry.outcome == Outcome::ok,
                      entry.outcome == Outcome::userError);
}

SweepTermCache::Probe
SweepTermCache::probeWeightUpdate(std::size_t id) const
{
    const Entry &entry = update_[id];
    AMPED_ASSERT(entry.outcome != Outcome::pending,
                 "SweepTermCache probe before prime()");
    return probeEntry(entry.value, 0.0, entry.outcome == Outcome::ok,
                      entry.outcome == Outcome::userError);
}

SweepTermCache::Probe
SweepTermCache::probeMoeForward(std::size_t id) const
{
    const Entry &entry = moe_[id];
    AMPED_ASSERT(entry.outcome != Outcome::pending,
                 "SweepTermCache probe before prime()");
    return probeEntry(entry.value, 0.0, entry.outcome == Outcome::ok,
                      entry.outcome == Outcome::userError);
}

SweepTermCache::Probe
SweepTermCache::probeGrad(std::size_t id) const
{
    const Entry &entry = grad_[id];
    AMPED_ASSERT(entry.outcome != Outcome::pending,
                 "SweepTermCache probe before prime()");
    return probeEntry(entry.value, entry.value2,
                      entry.outcome == Outcome::ok,
                      entry.outcome == Outcome::userError);
}

Seconds
SweepTermCache::tpIntraCommTime(std::int64_t tp_intra,
                                double replica_batch) const
{
    if (tp_intra <= 1)
        return Seconds{0.0};
    const double n_act =
        model_.opCounter().activationsTensorParallel(replica_batch);
    const Bits s_act = model_.accelerator().precisions.activationBits;
    return net::allReduceTime(
        tp_intra, n_act, s_act, system_.intraLink,
        model_.options().intraTopologyFactorOverride);
}

Seconds
SweepTermCache::tpInterCommTime(std::int64_t tp_inter,
                                double replica_batch) const
{
    if (tp_inter <= 1)
        return Seconds{0.0};
    const double n_act =
        model_.opCounter().activationsTensorParallel(replica_batch);
    const Bits s_act = model_.accelerator().precisions.activationBits;
    return net::allReduceTime(
        tp_inter, n_act, s_act, system_.interEffective,
        model_.options().interTopologyFactorOverride);
}

Seconds
SweepTermCache::ppCommTime(std::int64_t pp_intra, std::int64_t pp_inter,
                           double replica_batch) const
{
    const double layers =
        static_cast<double>(model_.opCounter().config().numLayers);
    const double n_act =
        model_.opCounter().activationsPipelineParallel(replica_batch);
    const Bits s_act = model_.accelerator().precisions.activationBits;

    Seconds intra{0.0};
    if (pp_intra > 1) {
        intra = net::pointToPointTime(n_act, s_act, system_.intraLink) /
                layers;
    }
    Seconds inter{0.0};
    if (pp_inter > 1) {
        inter = net::pointToPointTime(n_act, s_act, system_.interHop) /
                layers;
    }
    return std::max(intra, inter);
}

} // namespace core
} // namespace amped

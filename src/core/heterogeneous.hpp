/**
 * @file
 * Heterogeneous-pipeline extension.
 *
 * The paper's conclusion states "AMPeD can be easily extended for
 * heterogeneous accelerators"; this module is that extension for the
 * pipeline dimension, the natural place for heterogeneity (each
 * stage is an independent device group): every pipeline stage may
 * run a different accelerator type with its own efficiency curve and
 * tensor-parallel width.
 *
 * A pipeline's steady-state throughput is set by its slowest stage:
 * time/batch ~ N_ub x bottleneck-stage time plus the fill/drain ramp
 * of (sum of all stage times) and inter-stage hop communication.
 * The module also provides a layer-partitioning optimizer that
 * assigns contiguous layer blocks to stages to minimize the
 * bottleneck (binary search over the bottleneck value with a greedy
 * feasibility check).
 */

#ifndef AMPED_CORE_HETEROGENEOUS_HPP
#define AMPED_CORE_HETEROGENEOUS_HPP

#include <cstdint>
#include <vector>

#include "core/training_job.hpp"
#include "hw/accelerator.hpp"
#include "hw/efficiency.hpp"
#include "model/op_counter.hpp"
#include "net/link.hpp"

namespace amped {
namespace core {

/** One stage of a heterogeneous pipeline. */
struct HeterogeneousStage
{
    hw::AcceleratorConfig accelerator; ///< Device type of the stage.
    hw::MicrobatchEfficiency efficiency{0.9, 4.0}; ///< Its eff(ub).
    std::int64_t numLayers = 0; ///< Contiguous layers assigned.
    std::int64_t tpDegree = 1;  ///< Tensor-parallel width inside.
};

/** Prediction for one heterogeneous-pipeline training batch. */
struct HeterogeneousResult
{
    double timePerBatch = 0.0;   ///< Seconds per global batch.
    double totalTime = 0.0;      ///< Over the whole token budget.
    double bottleneckTime = 0.0; ///< Slowest stage, per microbatch.
    std::int64_t bottleneckStage = 0; ///< Index of that stage.
    std::vector<double> stageTimes;   ///< Per-microbatch f+b times.
    double hopCommTime = 0.0;    ///< Inter-stage transfer total.
};

/**
 * Evaluator for pipelines whose stages differ in hardware.
 */
class HeterogeneousPipelineModel
{
  public:
    /**
     * @param counter Model op counter (copied).
     * @param stages Stage descriptions; layer counts must sum to the
     *        model's layer count.
     * @param hop_link Link between consecutive stages.
     * @param backward_multiplier U_b / U_f ratio.
     */
    HeterogeneousPipelineModel(model::OpCounter counter,
                               std::vector<HeterogeneousStage> stages,
                               net::LinkConfig hop_link,
                               double backward_multiplier = 3.0);

    /**
     * Evaluates one job: the batch is split into N_ub microbatches
     * (job.microbatching rules with DP = 1, PP = stage count).
     */
    HeterogeneousResult evaluate(const TrainingJob &job) const;

    /**
     * Balances the layer assignment: finds the contiguous partition
     * of the model's layers over the given stage hardware that
     * minimizes the bottleneck stage time for microbatch size
     * @p microbatch, and returns the stages with numLayers filled
     * in.  Uses binary search on the bottleneck value with a greedy
     * prefix-assignment feasibility test.
     */
    static std::vector<HeterogeneousStage>
    balanceLayers(const model::OpCounter &counter,
                  std::vector<HeterogeneousStage> stages,
                  double microbatch);

    /** The stage descriptions in use. */
    const std::vector<HeterogeneousStage> &stages() const
    {
        return stages_;
    }

  private:
    /** Forward+backward time of one stage for one microbatch. */
    double stageTime(std::size_t stage_index, std::int64_t first_layer,
                     double microbatch) const;

    model::OpCounter counter_;
    std::vector<HeterogeneousStage> stages_;
    net::LinkConfig hopLink_;
    double backwardMultiplier_;
};

} // namespace core
} // namespace amped

#endif // AMPED_CORE_HETEROGENEOUS_HPP

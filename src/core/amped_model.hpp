/**
 * @file
 * The AMPeD analytical performance model (paper Sec. IV, Eq. 1-12).
 *
 * Given a transformer configuration, an accelerator design, a
 * microbatch-efficiency curve, a system architecture, a parallelism
 * mapping, and a training job, the evaluator produces the per-batch
 * time breakdown, the end-to-end training time, and the achieved
 * TFLOP/s/GPU metric used throughout the paper's validation.
 */

#ifndef AMPED_CORE_AMPED_MODEL_HPP
#define AMPED_CORE_AMPED_MODEL_HPP

#include "core/breakdown.hpp"
#include "core/options.hpp"
#include "core/training_job.hpp"
#include "hw/accelerator.hpp"
#include "hw/efficiency.hpp"
#include "mapping/parallelism.hpp"
#include "model/op_counter.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace core {

/**
 * Everything AMPeD predicts for one (mapping, job) evaluation.
 */
struct EvaluationResult
{
    Breakdown perBatch;          ///< Per-batch phase times (seconds).
    double timePerBatch = 0.0;   ///< perBatch.total().
    double numBatches = 0.0;     ///< N_batch of Eq. 1.
    double totalTime = 0.0;      ///< N_batch * timePerBatch (seconds).
    double microbatchSize = 0.0; ///< ub used for eff(ub).
    double numMicrobatches = 0.0; ///< N_ub of Eq. 8.
    double efficiency = 0.0;     ///< eff(ub) applied to the MAC peak.
    double achievedFlopsPerGpu = 0.0; ///< Model FLOP/s per accelerator.
    double tokensPerSecond = 0.0; ///< End-to-end training throughput.

    /** Total training time in days (case-study reporting unit). */
    double trainingDays() const;
};

/**
 * The analytical evaluator.
 *
 * Immutable after construction; evaluate() is const and cheap
 * (microseconds), which is what makes the exhaustive design-space
 * exploration of the case studies practical.
 *
 * Thread safety: every const member function may be called
 * concurrently on one instance from multiple threads.  The
 * evaluator and everything it reaches (OpCounter,
 * AcceleratorConfig, MicrobatchEfficiency, SystemConfig,
 * ModelOptions, the collective cost functions) hold no mutable or
 * static state; explore::Explorer relies on this to evaluate sweep
 * points in parallel against one shared model.
 */
class AmpedModel
{
  public:
    /**
     * @param model_config Transformer architecture (validated).
     * @param accelerator Accelerator design (validated).
     * @param efficiency Microbatch-efficiency curve eff(ub).
     * @param system Cluster description (validated).
     * @param options Evaluator knobs (R, ZeRO, topology overrides...).
     * @param op_options Operation-count cost constants.
     */
    AmpedModel(model::TransformerConfig model_config,
               hw::AcceleratorConfig accelerator,
               hw::MicrobatchEfficiency efficiency,
               net::SystemConfig system, ModelOptions options = {},
               model::OpCountOptions op_options = {});

    /**
     * Evaluates Eq. 1 for a mapping and a job.
     *
     * @throws UserError when the mapping does not fit the system or
     *         the batch does not fit the mapping.
     */
    EvaluationResult evaluate(const mapping::ParallelismConfig &mapping,
                              const TrainingJob &job) const;

    // -----------------------------------------------------------------
    // Fine-grained model terms, exposed for tests and ablations.
    // All times are seconds; batch arguments are global batch sizes.
    // -----------------------------------------------------------------

    /** U_f(l) of Eq. 2 for the full global batch. */
    Seconds forwardComputeTime(std::int64_t layer, double batch,
                               double efficiency_value) const;

    /** U_w(l) of Eq. 12. */
    Seconds weightUpdateTime(std::int64_t layer,
                             double efficiency_value) const;

    /** M_f,TP,intra(l) of Eq. 6 (per-replica batch passed in). */
    Seconds tpIntraCommTime(const mapping::ParallelismConfig &mapping,
                            double replica_batch) const;

    /** M_f,TP,inter(l): Eq. 6 on the inter-node tier. */
    Seconds tpInterCommTime(const mapping::ParallelismConfig &mapping,
                            double replica_batch) const;

    /** max(M_f,PP,intra, M_f,PP,inter)(l) of Eq. 5/7. */
    Seconds ppCommTime(const mapping::ParallelismConfig &mapping,
                       double replica_batch) const;

    /** M_f,MoE(l) of Eq. 9. */
    Seconds moeCommTime(std::int64_t layer, double replica_batch) const;

    /** M_g(l) of Eq. 10-11 (both tiers summed). */
    Seconds gradCommTime(const mapping::ParallelismConfig &mapping,
                         std::int64_t layer, Seconds &intra_part,
                         Seconds &inter_part) const;

    /** The operation counter (model-side knob access). */
    const model::OpCounter &opCounter() const { return opCounter_; }

    /** The accelerator description. */
    const hw::AcceleratorConfig &accelerator() const { return accel_; }

    /** The system description. */
    const net::SystemConfig &system() const { return system_; }

    /** The evaluator options. */
    const ModelOptions &options() const { return options_; }

    /** The microbatch-efficiency curve eff(ub). */
    const hw::MicrobatchEfficiency &efficiency() const
    {
        return efficiency_;
    }

  private:
    /** Effective inter-node link (NIC-aggregated bandwidth). */
    net::LinkConfig interLinkEffective() const;

    model::OpCounter opCounter_;
    hw::AcceleratorConfig accel_;
    hw::MicrobatchEfficiency efficiency_;
    net::SystemConfig system_;
    ModelOptions options_;
};

} // namespace core
} // namespace amped

#endif // AMPED_CORE_AMPED_MODEL_HPP

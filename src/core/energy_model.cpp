#include "energy_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace amped {
namespace core {

void
PowerSpec::validate() const
{
    require(tdpWatts > Watts{0.0},
            "PowerSpec: tdpWatts must be positive");
    require(idleFraction >= 0.0 && idleFraction <= 1.0,
            "PowerSpec: idleFraction must be in [0, 1], got ",
            idleFraction);
}

EnergyModel::EnergyModel(PowerSpec spec) : spec_(spec)
{
    spec_.validate();
}

Joules
EnergyModel::energyPerBatchJoules(const EvaluationResult &result,
                                  std::int64_t workers) const
{
    require(workers >= 1, "energy: workers must be >= 1, got ",
            workers);
    const double idle = result.perBatch.bubble;
    const double busy = result.timePerBatch - idle;
    AMPED_ASSERT(busy >= -1e-12, "negative busy time in breakdown");
    const Joules per_device =
        spec_.tdpWatts * Seconds{busy + spec_.idleFraction * idle};
    return per_device * static_cast<double>(workers);
}

Joules
EnergyModel::trainingEnergyJoules(const EvaluationResult &result,
                                  std::int64_t workers) const
{
    return energyPerBatchJoules(result, workers) * result.numBatches;
}

Watts
EnergyModel::averagePowerWatts(const EvaluationResult &result) const
{
    require(result.timePerBatch > 0.0,
            "energy: result has zero batch time");
    const double idle = result.perBatch.bubble;
    const double busy = result.timePerBatch - idle;
    return spec_.tdpWatts *
           (busy + spec_.idleFraction * idle) / result.timePerBatch;
}

double
EnergyModel::breakEvenIdleFraction(const EvaluationResult &bubbly,
                                   const EvaluationResult &reference)
{
    require(bubbly.numBatches > 0.0 && reference.numBatches > 0.0,
            "energy: results lack batch counts");
    // Per-job per-device seconds (same worker count on both sides,
    // TDP cancels).
    const double bubbly_idle =
        bubbly.perBatch.bubble * bubbly.numBatches;
    const double bubbly_busy =
        bubbly.totalTime - bubbly_idle;
    const double ref_idle =
        reference.perBatch.bubble * reference.numBatches;
    const double ref_busy = reference.totalTime - ref_idle;

    // Energy(bubbly) <= Energy(reference):
    //   busy_b + f * idle_b <= busy_r + f * idle_r
    //   f <= (busy_r - busy_b) / (idle_b - idle_r)
    const double idle_delta = bubbly_idle - ref_idle;
    const double busy_delta = ref_busy - bubbly_busy;
    if (idle_delta <= 0.0) {
        // The "bubbly" config does not idle more: it wins iff its
        // busy energy is lower, independent of the idle power.
        return busy_delta >= 0.0 ? 1.0 : 0.0;
    }
    return std::clamp(busy_delta / idle_delta, 0.0, 1.0);
}

} // namespace core
} // namespace amped

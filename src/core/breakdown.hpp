/**
 * @file
 * Per-phase training-time breakdown (paper Sec. VI-A, Fig. 3).
 *
 * AMPeD "has the capability to show a detailed breakdown of the time
 * spent in computation and communication due to TP, PP, and DP
 * individually"; this struct is that capability.  All fields are
 * per-batch seconds.
 */

#ifndef AMPED_CORE_BREAKDOWN_HPP
#define AMPED_CORE_BREAKDOWN_HPP

#include <string>
#include <vector>

namespace amped {
namespace core {

/** Per-batch time split into the phases of Eq. 1. */
struct Breakdown
{
    double computeForward = 0.0;  ///< Sum_l U_f / (N_TP N_DP N_PP).
    double computeBackward = 0.0; ///< Sum_l U_b / (N_TP N_DP N_PP).
    double weightUpdate = 0.0;    ///< Sum_l U_w / (N_TP N_DP N_PP).
    double commTpIntra = 0.0;     ///< TP all-reduce, intra-node, f+b.
    double commTpInter = 0.0;     ///< TP all-reduce, inter-node, f+b.
    double commPp = 0.0;          ///< Pipeline hop transfers, f+b.
    double commMoe = 0.0;         ///< MoE all-to-all pairs, f+b.
    double commGradIntra = 0.0;   ///< Gradient all-reduce, intra stage.
    double commGradInter = 0.0;   ///< Gradient all-reduce, inter stage.
    double bubble = 0.0;          ///< Pipeline bubble waiting, Eq. 8.

    /** Total per-batch time (sum of all phases). */
    double total() const;

    /** Total communication (all comm phases, no compute/bubble). */
    double communication() const;

    /** Total computation (forward + backward + weight update). */
    double computation() const;

    /** (label, seconds) pairs for reports, in display order. */
    std::vector<std::pair<std::string, double>> phases() const;
};

} // namespace core
} // namespace amped

#endif // AMPED_CORE_BREAKDOWN_HPP

/**
 * @file
 * Tunable knobs of the AMPeD evaluator that are neither model, nor
 * hardware, nor mapping parameters.
 */

#ifndef AMPED_CORE_OPTIONS_HPP
#define AMPED_CORE_OPTIONS_HPP

#include "common/quantity.hpp"

namespace amped {
namespace core {

/**
 * Evaluator options.
 *
 * Defaults reproduce the paper's published settings: R = 1 (no
 * bubble overlap, Table II), plain DP (no ZeRO overhead), U_b = 2
 * U_f, hierarchical gradient all-reduce, ring topology factors.
 */
struct ModelOptions
{
    /**
     * R in Eq. 8: ratio of non-overlapping bubbles of the deployed
     * pipeline scheme to naive pipelining.  1 = naive (GPipe-style),
     * < 1 approximates interleaved schedules.
     */
    double bubbleOverlapRatio = 1.0;

    /**
     * M_f_DP in Eq. 5: multiplicative forward/backward communication
     * overhead of ZeRO-powered data parallelism; 0 = plain DP.
     */
    double zeroDpOverhead = 0.0;

    /**
     * U_b / U_f ratio.  2.0 is the standard backward cost; set 3.0
     * to include activation recomputation in the backward pass
     * (Megatron's accounting; pair with
     * OpCountOptions::activationRecompute so the achieved-TFLOP
     * metric stays consistent).
     */
    double backwardComputeMultiplier = 3.0;

    /**
     * M_b / M_f ratio (Sec. IV-E: backward communication mirrors the
     * forward with errors/gradients instead of activations).
     */
    double backwardCommMultiplier = 1.0;

    /**
     * Pipeline-hop traffic multiplier: interleaved schedules send
     * activations between devices once per model chunk
     * (PipelineSchedule::ppCommMultiplier); 1 for GPipe / 1F1B.
     */
    double ppCommMultiplier = 1.0;

    /**
     * Gradient element precision S_g in bits; 0 = use the parameter
     * precision of the accelerator.
     */
    Bits gradientBits{0.0};

    /**
     * Use the two-stage hierarchical gradient all-reduce of Eq. 10;
     * false collapses it to a single flat all-reduce over N_DP ranks
     * on the (slower) inter-node tier — an ablation knob.
     */
    bool hierarchicalGradAllReduce = true;

    /**
     * Topology-factor overrides: negative selects the paper's
     * defaults (ring for all-reduce, pairwise for all-to-all).
     */
    double intraTopologyFactorOverride = -1.0;
    double interTopologyFactorOverride = -1.0;

    /** Master switch for MoE communication (paper: parameterizable). */
    bool enableMoeComm = true;
};

} // namespace core
} // namespace amped

#endif // AMPED_CORE_OPTIONS_HPP

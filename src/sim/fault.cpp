#include "fault.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace amped {
namespace sim {

namespace {

/** Checks that @p p is a probability. */
void
requireProbability(double p, const char *name)
{
    require(std::isfinite(p) && p >= 0.0 && p <= 1.0, "FaultSpec.",
            name, " must be a probability in [0, 1], got ", p);
}

/** Checks a [min, max] multiplier range. */
void
requireMultiplierRange(double lo, double hi, const char *name)
{
    require(std::isfinite(lo) && std::isfinite(hi) && lo > 0.0
            && lo <= hi,
            "FaultSpec.", name, " range must satisfy 0 < min <= max, "
            "got [", lo, ", ", hi, "]");
}

} // namespace

void
FaultSpec::validate() const
{
    requireProbability(stragglerProbability, "stragglerProbability");
    requireProbability(linkDegradationProbability,
                       "linkDegradationProbability");
    requireMultiplierRange(stragglerSlowdownMin, stragglerSlowdownMax,
                           "stragglerSlowdown");
    requireMultiplierRange(linkSlowdownMin, linkSlowdownMax,
                           "linkSlowdown");
    require(std::isfinite(linkLatencyJitter) && linkLatencyJitter >= 0.0
            && linkLatencyJitter < 1.0,
            "FaultSpec.linkLatencyJitter must be in [0, 1), got ",
            linkLatencyJitter);
    require(std::isfinite(failureRate) && failureRate >= 0.0,
            "FaultSpec.failureRate must be finite and >= 0, got ",
            failureRate);
    require(std::isfinite(failureHorizon) && failureHorizon >= 0.0,
            "FaultSpec.failureHorizon must be finite and >= 0, got ",
            failureHorizon);
    for (const FailureEvent &f : failures) {
        require(f.resource >= 0,
                "FaultSpec explicit failure resource id must be >= 0, "
                "got ", f.resource);
        require(std::isfinite(f.time) && f.time >= 0.0,
                "FaultSpec explicit failure time must be finite and "
                ">= 0, got ", f.time);
    }
}

bool
FaultSpec::zero() const
{
    return stragglerProbability == 0.0
        && linkDegradationProbability == 0.0
        && linkLatencyJitter == 0.0
        && (failureRate == 0.0 || failureHorizon == 0.0)
        && failures.empty();
}

FaultPlan::FaultPlan(const TaskGraph &graph)
    : durationMultipliers_(graph.resourceCount(), 1.0),
      latencyMultipliers_(graph.resourceCount(), 1.0)
{}

FaultPlan
FaultPlan::generate(const TaskGraph &graph, const FaultSpec &spec)
{
    spec.validate();
    FaultPlan plan(graph);
    const auto n_resources =
        static_cast<ResourceId>(graph.resourceCount());
    Rng rng(spec.seed);

    // One pass over the resources in id order, drawing from a single
    // generator: the realization depends only on (seed, resource
    // kinds in id order), never on thread count or map iteration.
    for (ResourceId r = 0; r < n_resources; ++r) {
        switch (graph.resource(r).kind) {
          case ResourceKind::device:
            if (spec.stragglerProbability > 0.0
                && rng.bernoulli(spec.stragglerProbability)) {
                plan.durationMultipliers_[r] = rng.uniformReal(
                    spec.stragglerSlowdownMin,
                    spec.stragglerSlowdownMax);
            }
            break;
          case ResourceKind::channel:
            if (spec.linkDegradationProbability > 0.0
                && rng.bernoulli(spec.linkDegradationProbability)) {
                plan.durationMultipliers_[r] = rng.uniformReal(
                    spec.linkSlowdownMin, spec.linkSlowdownMax);
            }
            if (spec.linkLatencyJitter > 0.0) {
                plan.latencyMultipliers_[r] = rng.uniformReal(
                    1.0 - spec.linkLatencyJitter,
                    1.0 + spec.linkLatencyJitter);
            }
            break;
        }
    }

    // Exponential first-arrival failure per device over the horizon.
    if (spec.failureRate > 0.0 && spec.failureHorizon > 0.0) {
        for (ResourceId r = 0; r < n_resources; ++r) {
            if (graph.resource(r).kind != ResourceKind::device)
                continue;
            const double u = rng.uniformReal(0.0, 1.0);
            const double t = -std::log1p(-u) / spec.failureRate;
            if (t < spec.failureHorizon)
                plan.failures_.push_back(FailureEvent{r, t});
        }
    }

    for (const FailureEvent &f : spec.failures) {
        require(f.resource < n_resources, "FaultSpec explicit failure "
                "names resource ", f.resource, " but the graph has "
                "only ", graph.resourceCount(), " resources");
        plan.failures_.push_back(f);
    }

    std::sort(plan.failures_.begin(), plan.failures_.end(),
              [](const FailureEvent &a, const FailureEvent &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.resource < b.resource;
              });
    return plan;
}

double
FaultPlan::durationMultiplier(ResourceId resource) const
{
    AMPED_ASSERT(resource >= 0 && static_cast<std::size_t>(resource)
                 < durationMultipliers_.size(),
                 "FaultPlan resource id out of range");
    return durationMultipliers_[resource];
}

double
FaultPlan::latencyMultiplier(ResourceId resource) const
{
    AMPED_ASSERT(resource >= 0 && static_cast<std::size_t>(resource)
                 < latencyMultipliers_.size(),
                 "FaultPlan resource id out of range");
    return latencyMultipliers_[resource];
}

bool
FaultPlan::zero() const
{
    if (!failures_.empty())
        return false;
    const auto is_one = [](double m) { return m == 1.0; };
    return std::all_of(durationMultipliers_.begin(),
                       durationMultipliers_.end(), is_one)
        && std::all_of(latencyMultipliers_.begin(),
                       latencyMultipliers_.end(), is_one);
}

} // namespace sim
} // namespace amped

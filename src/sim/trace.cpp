#include "trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace amped {
namespace sim {

double
busyFraction(const ResourceStats &stats, double bucket_start,
             double bucket_end)
{
    require(bucket_end > bucket_start, "busyFraction: empty bucket");
    double busy = 0.0;
    for (const auto &interval : stats.intervals) {
        const double lo = std::max(interval.start, bucket_start);
        const double hi = std::min(interval.end, bucket_end);
        if (hi > lo)
            busy += hi - lo;
    }
    return busy / (bucket_end - bucket_start);
}

std::string
renderUtilizationTimeline(const SimResult &result,
                          const std::vector<ResourceId> &devices,
                          const std::vector<std::string> &names,
                          int width)
{
    require(width >= 1, "renderUtilizationTimeline: width must be >= 1");
    require(devices.size() == names.size(),
            "renderUtilizationTimeline: need one name per device "
            "(got ", devices.size(), " devices, ", names.size(),
            " names)");
    for (const ResourceId id : devices) {
        require(id >= 0 && id < static_cast<ResourceId>(
                                    result.resources.size()),
                "renderUtilizationTimeline: device id ", id,
                " out of range (result has ",
                result.resources.size(), " resources)");
    }
    if (result.makespan <= 0.0)
        return "(empty trace)\n";

    std::size_t label_width = 0;
    for (const auto &name : names)
        label_width = std::max(label_width, name.size());

    std::ostringstream oss;
    const double bucket = result.makespan / width;
    for (std::size_t row = 0; row < devices.size(); ++row) {
        oss << names[row]
            << std::string(label_width - names[row].size(), ' ')
            << " |";
        const auto &stats = result.resources[devices[row]];
        for (int b = 0; b < width; ++b) {
            const double frac =
                busyFraction(stats, b * bucket, (b + 1) * bucket);
            if (frac <= 0.005) {
                oss << '.';
            } else {
                const int digit = std::min(
                    9, static_cast<int>(frac * 10.0));
                oss << static_cast<char>('0' + digit);
            }
        }
        oss << "| "
            << units::formatFixed(
                   100.0 * stats.busyTime / result.makespan, 1)
            << " % busy\n";
    }
    oss << "timeline: 0 .. " << units::formatDuration(result.makespan)
        << " (" << width << " buckets; digit = busy tenths)\n";
    return oss.str();
}

} // namespace sim
} // namespace amped

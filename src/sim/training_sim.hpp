/**
 * @file
 * Training-schedule simulator.
 *
 * Lowers one training step of each parallelization strategy to a
 * task graph and executes it with the discrete-event engine:
 *
 *  - Data parallelism: per-device forward/backward compute followed
 *    by a chunked ring all-reduce of the gradients and the weight
 *    update.  The 2 (N-1) ring steps are individual transfer tasks,
 *    so the all-reduce cost *emerges* instead of being a formula.
 *  - GPipe pipeline parallelism: stages hold contiguous layer
 *    blocks; microbatches flow forward then backward through
 *    point-to-point channels.  Pipeline bubbles emerge from resource
 *    serialization.
 *  - Tensor parallelism: per-layer sharded compute with two ring
 *    all-reduces of the activations per layer (Megatron pattern).
 *
 * This module is the repository's stand-in for the paper's
 * real-hardware validation runs (DESIGN.md Sec. 1): the simulator
 * executes the schedules AMPeD summarizes in closed form, providing
 * an independent "Experimental" series for Figs. 1 and 2a/2b.
 */

#ifndef AMPED_SIM_TRAINING_SIM_HPP
#define AMPED_SIM_TRAINING_SIM_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/cancel.hpp"
#include "hw/accelerator.hpp"
#include "hw/efficiency.hpp"
#include "model/op_counter.hpp"
#include "net/link.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace amped {
namespace sim {

/** Outcome of one simulated training step. */
struct SimOutcome
{
    double stepTime = 0.0;        ///< Makespan of the step (seconds).
    std::vector<double> deviceUtilization; ///< Busy fraction per device.
    SimResult raw;                ///< Full engine result (traces).
    std::vector<ResourceId> deviceIds; ///< Device resource ids.

    /**
     * Failure accounting when a fault spec is installed (see
     * TrainingSimulator::setFaultSpec).  When failure.failed is
     * true the step did not finish: stepTime is the partial makespan
     * of the aborted attempt.  Default-initialized (no failure) on
     * fault-free runs.
     */
    FailureOutcome failure;

    /**
     * The executed task graph (labels, categories, dependency
     * edges), kept alive for trace export: the Chrome-trace exporter
     * joins raw.resources intervals and raw.deliveryTime against the
     * tasks by id.  Never null after a simulate* call.
     */
    std::shared_ptr<const TaskGraph> graph;

    /**
     * Peak simultaneously-live microbatches per pipeline stage
     * (activation residency): a microbatch is live on a stage from
     * the end of its forward until the start of its backward.  Only
     * filled by pipeline schedules; cross-checks
     * core::PipelineSchedule::activationsInFlight.
     */
    std::vector<std::int64_t> peakMicrobatchesInFlight;

    /**
     * How the simulation ended.  A cancellation token installed via
     * TrainingSimulator::setCancelToken is checkpointed at schedule
     * entry and polled again before the engine run; a stop returns an
     * empty outcome (zero step time, no devices, empty — but still
     * non-null — graph) carrying the stop status.  Steps are never
     * partially executed: a simulate* call either runs its whole
     * graph or none of it.
     */
    RunStatus status = RunStatus::Completed;
};

/**
 * Builds and runs training-step task graphs.
 */
class TrainingSimulator
{
  public:
    /**
     * @param model_config Transformer architecture.
     * @param accel Accelerator pricing compute tasks.
     * @param efficiency eff(ub) applied at the simulated microbatch.
     * @param link Link connecting the devices (intra-node for the
     *        HGX-2 validation runs).
     * @param op_options Operation-count constants.
     */
    TrainingSimulator(model::TransformerConfig model_config,
                      hw::AcceleratorConfig accel,
                      hw::MicrobatchEfficiency efficiency,
                      net::LinkConfig link,
                      model::OpCountOptions op_options = {});

    /**
     * One data-parallel step: every device computes
     * forward + backward on @p per_device_batch sequences, then a
     * chunked ring all-reduce of all gradients, then the weight
     * update.
     *
     * @param devices Number of DP replicas (>= 1).
     * @param per_device_batch Per-replica batch (= the microbatch
     *        whose eff(ub) prices the compute).
     */
    SimOutcome simulateDataParallelStep(std::int64_t devices,
                                        double per_device_batch) const;

    /**
     * One GPipe step: @p stages pipeline stages over contiguous
     * layer blocks; @p num_microbatches microbatches of
     * @p microbatch sequences flow forward then backward.
     */
    SimOutcome simulateGPipeStep(std::int64_t stages,
                                 double microbatch,
                                 std::int64_t num_microbatches) const;

    /**
     * One tensor-parallel step: each layer's compute is sharded over
     * @p devices, followed by two ring all-reduces of the layer
     * activations (attention + MLP), forward and backward.
     *
     * @param batch The (replica) batch processed by the TP group.
     */
    SimOutcome simulateTensorParallelStep(std::int64_t devices,
                                          double batch) const;

    /**
     * One *hierarchical* data-parallel step across @p nodes nodes of
     * @p devices_per_node accelerators: per-device compute, an
     * intra-node ring all-reduce inside every node over the
     * (fast) construction link, an inter-node ring among the node
     * leaders over @p inter_link, and a final intra-node broadcast
     * ring — the schedule behind the paper's Eq. 10.
     */
    SimOutcome simulateHierarchicalDataParallelStep(
        std::int64_t nodes, std::int64_t devices_per_node,
        double per_device_batch, const net::LinkConfig &inter_link) const;

    /**
     * One combined DP x PP training step: @p replicas independent
     * GPipe pipelines of @p stages stages run the microbatch
     * schedule, then corresponding stages of all replicas ring-
     * all-reduce their gradient shards over @p dp_link — the 2-D
     * schedule whose closed form is Eq. 1 with both N_DP and N_PP
     * set, including the bubble x all-reduce interaction.
     */
    SimOutcome simulateDataPipelineStep(
        std::int64_t replicas, std::int64_t stages, double microbatch,
        std::int64_t num_microbatches,
        const net::LinkConfig &dp_link) const;

    /**
     * A pairwise-exchange all-to-all among @p participants ranks,
     * each contributing @p elements elements of
     * @p bits_per_element bits distributed uniformly over the peers
     * (the MoE dispatch pattern of Eq. 9).  Uses one egress channel
     * per rank on @p link.
     */
    SimOutcome simulateAllToAll(std::int64_t participants,
                                double elements, Bits bits_per_element,
                                const net::LinkConfig &link) const;

    /**
     * One expert-parallel MoE training step over @p nodes
     * single-accelerator nodes connected by @p inter_link: every
     * node computes each layer for its @p per_node_batch sequences;
     * on MoE layers the forward (and backward) pass inserts the
     * dispatch and combine all-to-alls of Eq. 9.  The model must
     * have MoE enabled.
     */
    SimOutcome simulateMoeStep(std::int64_t nodes,
                               double per_node_batch,
                               const net::LinkConfig &inter_link) const;

    /** The operation counter (for tests). */
    const model::OpCounter &opCounter() const { return opCounter_; }

    /** Backward/forward compute ratio (default 2.0). */
    void setBackwardMultiplier(double multiplier);

    /** Gradient element precision (default 32 bits). */
    void setGradientBits(Bits bits);

    /**
     * Installs a fault spec: every subsequent simulate* call
     * realizes it (FaultPlan::generate, deterministic in spec.seed
     * and the schedule's resource layout) and runs the step under
     * the resulting plan.  The outcome's failure field reports what
     * happened; a spec for which FaultSpec::zero() holds reproduces
     * fault-free results bit-identically.
     *
     * @throws UserError when the spec is invalid.
     */
    void setFaultSpec(FaultSpec spec);

    /** Removes the installed fault spec (fault-free runs again). */
    void clearFaultSpec() { faultSpec_.reset(); }

    /** The installed fault spec, if any. */
    const std::optional<FaultSpec> &faultSpec() const
    {
        return faultSpec_;
    }

    /**
     * Installs a cancellation token observed by every subsequent
     * simulate* call (checkpoint at entry, poll before the engine
     * run) — see SimOutcome::status.  The default inert token costs
     * nothing.
     */
    void setCancelToken(CancelToken token)
    {
        token_ = std::move(token);
    }

    /** The installed cancellation token (inert by default). */
    const CancelToken &cancelToken() const { return token_; }

  private:
    /**
     * Appends a chunked ring all-reduce over @p devices to @p graph.
     *
     * @param graph Graph under construction.
     * @param device_count Ring size.
     * @param channels Per-hop channels, channels[i]: i -> (i+1)%N.
     * @param bits Payload per device (full tensor).
     * @param entry_tasks entry_tasks[i] must complete before device i
     *        joins the ring.
     * @param label_prefix Trace label prefix.
     * @return Per-device task that completes when its reduced copy is
     *         available (equal to entry task when device_count == 1).
     */
    std::vector<TaskId>
    appendRingAllReduce(TaskGraph &graph, std::int64_t device_count,
                        const std::vector<ResourceId> &channels,
                        Bits bits,
                        const std::vector<TaskId> &entry_tasks,
                        const std::string &label_prefix) const;

    /** Forward compute time of one layer at a given batch. */
    Seconds layerForwardTime(std::int64_t layer, double batch,
                             double eff) const;

    /** Builds the SimOutcome from an engine run. */
    static SimOutcome
    makeOutcome(SimResult result,
                const std::vector<ResourceId> &devices);

    /** An empty outcome carrying a stop status (graph non-null). */
    static SimOutcome stoppedOutcome(RunStatus status);

    /**
     * Runs @p graph — fault-free, or under the installed fault spec
     * realized against this graph — and builds the outcome.
     */
    SimOutcome finishRun(TaskGraph &graph,
                         const std::vector<ResourceId> &devices) const;

    model::OpCounter opCounter_;
    hw::AcceleratorConfig accel_;
    hw::MicrobatchEfficiency efficiency_;
    net::LinkConfig link_;
    double backwardMultiplier_ = 2.0;
    Bits gradientBits_{32.0};
    std::optional<FaultSpec> faultSpec_;
    CancelToken token_;
};

} // namespace sim
} // namespace amped

#endif // AMPED_SIM_TRAINING_SIM_HPP

/**
 * @file
 * Discrete-event execution engine for TaskGraph.
 *
 * Classic event-queue simulation: tasks become ready when all their
 * dependencies have delivered; each resource executes its ready
 * tasks one at a time in ready-order (FIFO, task-id tiebreak, fully
 * deterministic).  Completion events release the resource and notify
 * successors — for transfers, successors are notified one link
 * latency after the channel is released (cut-through).
 */

#ifndef AMPED_SIM_ENGINE_HPP
#define AMPED_SIM_ENGINE_HPP

#include <vector>

#include "sim/fault.hpp"
#include "sim/task_graph.hpp"

namespace amped {
namespace sim {

/** A closed busy interval of one resource. */
struct BusyInterval
{
    double start = 0.0;
    double end = 0.0;
    TaskId task = -1;
};

/** Per-resource outcome of a simulation run. */
struct ResourceStats
{
    double busyTime = 0.0;             ///< Total occupancy.
    std::vector<BusyInterval> intervals; ///< Trace (time-ordered).
};

/** Whole-run outcome. */
struct SimResult
{
    double makespan = 0.0;             ///< Last delivery time.
    std::vector<ResourceStats> resources; ///< Indexed by ResourceId.

    /**
     * Delivery instant of each task, indexed by TaskId; -1 for tasks
     * that never delivered (aborted or unreached under faults).
     * Trace export pairs these with busy intervals to draw
     * send→receive flow edges.
     */
    std::vector<double> deliveryTime;

    /** Busy fraction of a resource: busy / makespan (0 if empty). */
    double utilization(ResourceId id) const;

    /** Delivery instant of @p task, or -1 if it never delivered. */
    double deliveredAt(TaskId task) const;
};

/** Outcome of a fault-injected run: schedule + failure accounting. */
struct FaultSimResult
{
    /** Surviving schedule; partial when failure.failed is true. */
    SimResult result;

    /** What (if anything) went wrong and how much it cost. */
    FailureOutcome failure;
};

/**
 * Runs a task graph to completion.
 */
class Engine
{
  public:
    /**
     * Executes the graph.
     *
     * @param graph The DAG to run (dependency counters are consumed;
     *        the graph can be re-run, counters are rebuilt).
     * @return Makespan and per-resource statistics.
     * @throws UserError when the graph contains a dependency cycle
     *         (some tasks never become ready); the message names the
     *         first few never-ready tasks.
     */
    SimResult run(TaskGraph &graph) const;

    /**
     * Executes the graph under a fault plan.
     *
     * Task durations and delivery latencies are scaled by the plan's
     * per-resource multipliers.  At each scheduled failure the
     * resource dies: its in-flight task is aborted (the busy interval
     * is truncated at the failure instant), its queued tasks are
     * dropped, and tasks that later become ready on it are aborted
     * immediately.  Surviving resources keep executing whatever is
     * still reachable, so the result holds the partial schedule of
     * the failed attempt.  A failure is reported in the returned
     * FailureOutcome — never thrown.
     *
     * A zero plan (all multipliers exactly 1, no failures) reproduces
     * the fault-free run(graph) result bit-identically.
     *
     * @throws UserError when the plan was generated for a different
     *         resource set, or when the graph has a dependency cycle
     *         that no injected failure explains.
     */
    FaultSimResult run(TaskGraph &graph, const FaultPlan &plan) const;

  private:
    SimResult runImpl(TaskGraph &graph, const FaultPlan *plan,
                      FailureOutcome *outcome) const;
};

} // namespace sim
} // namespace amped

#endif // AMPED_SIM_ENGINE_HPP

/**
 * @file
 * Discrete-event execution engine for TaskGraph.
 *
 * Classic event-queue simulation: tasks become ready when all their
 * dependencies have delivered; each resource executes its ready
 * tasks one at a time in ready-order (FIFO, task-id tiebreak, fully
 * deterministic).  Completion events release the resource and notify
 * successors — for transfers, successors are notified one link
 * latency after the channel is released (cut-through).
 */

#ifndef AMPED_SIM_ENGINE_HPP
#define AMPED_SIM_ENGINE_HPP

#include <vector>

#include "sim/task_graph.hpp"

namespace amped {
namespace sim {

/** A closed busy interval of one resource. */
struct BusyInterval
{
    double start = 0.0;
    double end = 0.0;
    TaskId task = -1;
};

/** Per-resource outcome of a simulation run. */
struct ResourceStats
{
    double busyTime = 0.0;             ///< Total occupancy.
    std::vector<BusyInterval> intervals; ///< Trace (time-ordered).
};

/** Whole-run outcome. */
struct SimResult
{
    double makespan = 0.0;             ///< Last delivery time.
    std::vector<ResourceStats> resources; ///< Indexed by ResourceId.

    /** Busy fraction of a resource: busy / makespan (0 if empty). */
    double utilization(ResourceId id) const;
};

/**
 * Runs a task graph to completion.
 */
class Engine
{
  public:
    /**
     * Executes the graph.
     *
     * @param graph The DAG to run (dependency counters are consumed;
     *        the graph can be re-run, counters are rebuilt).
     * @return Makespan and per-resource statistics.
     * @throws UserError when the graph contains a dependency cycle
     *         (some tasks never become ready).
     */
    SimResult run(TaskGraph &graph) const;
};

} // namespace sim
} // namespace amped

#endif // AMPED_SIM_ENGINE_HPP

#include "training_sim.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "core/compute_cost.hpp"

namespace amped {
namespace sim {

TrainingSimulator::TrainingSimulator(
    model::TransformerConfig model_config, hw::AcceleratorConfig accel,
    hw::MicrobatchEfficiency efficiency, net::LinkConfig link,
    model::OpCountOptions op_options)
    : opCounter_(std::move(model_config), op_options),
      accel_(std::move(accel)), efficiency_(efficiency),
      link_(std::move(link))
{
    accel_.validate();
    link_.validate();
}

void
TrainingSimulator::setBackwardMultiplier(double multiplier)
{
    require(multiplier >= 0.0,
            "backward multiplier must be non-negative, got ",
            multiplier);
    backwardMultiplier_ = multiplier;
}

void
TrainingSimulator::setGradientBits(Bits bits)
{
    require(bits > Bits{0.0}, "gradient bits must be positive, got ",
            bits);
    gradientBits_ = bits;
}

void
TrainingSimulator::setFaultSpec(FaultSpec spec)
{
    spec.validate();
    faultSpec_ = std::move(spec);
}

SimOutcome
TrainingSimulator::stoppedOutcome(RunStatus status)
{
    SimOutcome outcome;
    outcome.status = status;
    // Keep the "never null after a simulate* call" graph contract.
    outcome.graph = std::make_shared<TaskGraph>();
    return outcome;
}

SimOutcome
TrainingSimulator::finishRun(TaskGraph &graph,
                             const std::vector<ResourceId> &devices) const
{
    // Last look before committing to the engine run (the entry
    // checkpoint already counted; this one is a passive poll so
    // graph-building time cannot blow through a deadline unobserved).
    const RunStatus stop = token_.status();
    if (stop != RunStatus::Completed)
        return stoppedOutcome(stop);

    // The graph moves into shared ownership so the outcome can carry
    // it for trace export; the caller's graph is left moved-from.
    auto shared = std::make_shared<TaskGraph>(std::move(graph));
    Engine engine;
    SimOutcome outcome;
    if (!faultSpec_) {
        outcome = makeOutcome(engine.run(*shared), devices);
    } else {
        const FaultPlan plan =
            FaultPlan::generate(*shared, *faultSpec_);
        FaultSimResult fault_run = engine.run(*shared, plan);
        outcome = makeOutcome(std::move(fault_run.result), devices);
        outcome.failure = std::move(fault_run.failure);
    }
    outcome.graph = std::move(shared);
    return outcome;
}

Seconds
TrainingSimulator::layerForwardTime(std::int64_t layer, double batch,
                                    double eff) const
{
    return core::layerForwardComputeTime(opCounter_, accel_, eff,
                                         layer, batch);
}

SimOutcome
TrainingSimulator::makeOutcome(SimResult result,
                               const std::vector<ResourceId> &devices)
{
    SimOutcome outcome;
    outcome.stepTime = result.makespan;
    outcome.deviceIds = devices;
    outcome.deviceUtilization.reserve(devices.size());
    for (ResourceId id : devices)
        outcome.deviceUtilization.push_back(result.utilization(id));
    outcome.raw = std::move(result);
    return outcome;
}

std::vector<TaskId>
TrainingSimulator::appendRingAllReduce(
    TaskGraph &graph, std::int64_t device_count,
    const std::vector<ResourceId> &channels, Bits bits,
    const std::vector<TaskId> &entry_tasks,
    const std::string &label_prefix) const
{
    AMPED_ASSERT(entry_tasks.size() ==
                     static_cast<std::size_t>(device_count),
                 "one entry task per ring member required");
    if (device_count == 1)
        return entry_tasks;
    AMPED_ASSERT(channels.size() ==
                     static_cast<std::size_t>(device_count),
                 "one channel per ring hop required");

    const Bits chunk_bits = bits / static_cast<double>(device_count);
    const std::int64_t steps = 2 * (device_count - 1);

    // previous[i]: the task device i must finish before sending in
    // the next step (initially its entry task; afterwards its last
    // received chunk).
    std::vector<TaskId> previous = entry_tasks;
    for (std::int64_t step = 0; step < steps; ++step) {
        std::vector<TaskId> received(device_count);
        for (std::int64_t d = 0; d < device_count; ++d) {
            const std::int64_t to = (d + 1) % device_count;
            std::ostringstream label;
            label << label_prefix << "-step" << step << "-d" << d;
            const TaskId transfer = graph.addTransfer(
                channels[d], chunk_bits, link_.bandwidth,
                link_.latency, label.str(), "collective");
            // The sender must hold the chunk from the previous step.
            graph.addDependency(previous[d], transfer);
            received[to] = transfer;
        }
        previous = std::move(received);
    }
    return previous;
}

SimOutcome
TrainingSimulator::simulateDataParallelStep(std::int64_t devices,
                                            double per_device_batch) const
{
    if (const RunStatus stop = token_.checkpoint();
        stop != RunStatus::Completed)
        return stoppedOutcome(stop);
    require(devices >= 1, "simulateDataParallelStep: need >= 1 device, "
            "got ", devices);
    require(per_device_batch >= 1.0,
            "simulateDataParallelStep: per-device batch must be >= 1, "
            "got ", per_device_batch);

    const auto &cfg = opCounter_.config();
    const double eff = efficiency_(per_device_batch);

    TaskGraph graph;
    std::vector<ResourceId> device_ids;
    std::vector<ResourceId> channel_ids;
    for (std::int64_t d = 0; d < devices; ++d) {
        device_ids.push_back(graph.addDevice("gpu" + std::to_string(d)));
        channel_ids.push_back(graph.addChannel(
            "link" + std::to_string(d) + "->" +
            std::to_string((d + 1) % devices)));
    }

    // Per-device forward then backward, layer by layer.
    std::vector<TaskId> last_bwd(devices);
    for (std::int64_t d = 0; d < devices; ++d) {
        TaskId prev = -1;
        for (std::int64_t l = 0; l < cfg.numLayers; ++l) {
            const Seconds fwd =
                layerForwardTime(l, per_device_batch, eff);
            const TaskId task = graph.addCompute(
                device_ids[d], fwd,
                "fwd-l" + std::to_string(l) + "-d" + std::to_string(d),
                "forward");
            if (prev >= 0)
                graph.addDependency(prev, task);
            prev = task;
        }
        for (std::int64_t l = cfg.numLayers - 1; l >= 0; --l) {
            const Seconds bwd =
                backwardMultiplier_ *
                layerForwardTime(l, per_device_batch, eff);
            const TaskId task = graph.addCompute(
                device_ids[d], bwd,
                "bwd-l" + std::to_string(l) + "-d" + std::to_string(d),
                "backward");
            graph.addDependency(prev, task);
            prev = task;
        }
        last_bwd[d] = prev;
    }

    // Chunked ring all-reduce of all gradients.
    const Bits grad_bits =
        opCounter_.totalLayerWeights() * gradientBits_;
    const auto reduced = appendRingAllReduce(
        graph, devices, channel_ids, grad_bits, last_bwd, "allreduce");

    // Weight update once gradients are in.
    for (std::int64_t d = 0; d < devices; ++d) {
        Seconds update{0.0};
        for (std::int64_t l = 0; l < cfg.numLayers; ++l) {
            update += core::layerWeightUpdateTime(opCounter_, accel_,
                                                  eff, l);
        }
        const TaskId task = graph.addCompute(
            device_ids[d], update, "update-d" + std::to_string(d),
            "update");
        graph.addDependency(reduced[d], task);
    }

    return finishRun(graph, device_ids);
}

SimOutcome
TrainingSimulator::simulateHierarchicalDataParallelStep(
    std::int64_t nodes, std::int64_t devices_per_node,
    double per_device_batch, const net::LinkConfig &inter_link) const
{
    if (const RunStatus stop = token_.checkpoint();
        stop != RunStatus::Completed)
        return stoppedOutcome(stop);
    require(nodes >= 1, "hierarchical DP: need >= 1 node, got ",
            nodes);
    require(devices_per_node >= 1,
            "hierarchical DP: need >= 1 device per node, got ",
            devices_per_node);
    require(per_device_batch >= 1.0,
            "hierarchical DP: per-device batch must be >= 1, got ",
            per_device_batch);
    inter_link.validate();

    const auto &cfg = opCounter_.config();
    const double eff = efficiency_(per_device_batch);
    const Bits grad_bits =
        opCounter_.totalLayerWeights() * gradientBits_;

    TaskGraph graph;
    // devices[n][d], intra channels per node, inter channels among
    // node leaders.
    std::vector<std::vector<ResourceId>> devices(nodes);
    std::vector<std::vector<ResourceId>> intra_channels(nodes);
    std::vector<ResourceId> inter_channels;
    std::vector<ResourceId> all_devices;
    for (std::int64_t n = 0; n < nodes; ++n) {
        for (std::int64_t d = 0; d < devices_per_node; ++d) {
            devices[n].push_back(graph.addDevice(
                "n" + std::to_string(n) + "g" + std::to_string(d)));
            all_devices.push_back(devices[n].back());
            intra_channels[n].push_back(graph.addChannel(
                "intra-n" + std::to_string(n) + "-" +
                std::to_string(d)));
        }
        inter_channels.push_back(
            graph.addChannel("inter-n" + std::to_string(n)));
    }

    // Per-device forward + backward (single fused tasks keep the
    // graph small at cluster scale).
    std::vector<std::vector<TaskId>> done(
        nodes, std::vector<TaskId>(devices_per_node));
    for (std::int64_t n = 0; n < nodes; ++n) {
        for (std::int64_t d = 0; d < devices_per_node; ++d) {
            Seconds fwd{0.0};
            for (std::int64_t l = 0; l < cfg.numLayers; ++l)
                fwd += layerForwardTime(l, per_device_batch, eff);
            const TaskId task = graph.addCompute(
                devices[n][d], (1.0 + backwardMultiplier_) * fwd,
                "fwd+bwd-n" + std::to_string(n) + "g" +
                    std::to_string(d),
                "compute");
            done[n][d] = task;
        }
    }

    // Stage 1: intra-node ring all-reduce per node.
    std::vector<std::vector<TaskId>> reduced(nodes);
    for (std::int64_t n = 0; n < nodes; ++n) {
        reduced[n] = appendRingAllReduce(
            graph, devices_per_node, intra_channels[n], grad_bits,
            done[n], "intra-ar-n" + std::to_string(n));
    }

    // Stage 2: inter-node ring among the node leaders (device 0 of
    // each node), moving the full gradient payload.
    std::vector<TaskId> leader_entry(nodes);
    for (std::int64_t n = 0; n < nodes; ++n)
        leader_entry[n] = reduced[n][0];
    std::vector<TaskId> leader_done = leader_entry;
    if (nodes > 1) {
        const Bits chunk = grad_bits / static_cast<double>(nodes);
        std::vector<TaskId> previous = leader_entry;
        for (std::int64_t step = 0; step < 2 * (nodes - 1); ++step) {
            std::vector<TaskId> received(nodes);
            for (std::int64_t n = 0; n < nodes; ++n) {
                const TaskId transfer = graph.addTransfer(
                    inter_channels[n], chunk, inter_link.bandwidth,
                    inter_link.latency,
                    "inter-ar-s" + std::to_string(step) + "-n" +
                        std::to_string(n),
                    "collective");
                graph.addDependency(previous[n], transfer);
                received[(n + 1) % nodes] = transfer;
            }
            previous = std::move(received);
        }
        leader_done = previous;
    }

    // Stage 3: intra-node broadcast of the final gradients (one
    // ring pass: (N-1)/N of the payload per hop).
    for (std::int64_t n = 0; n < nodes; ++n) {
        if (devices_per_node == 1)
            continue;
        TaskId previous = leader_done[n];
        for (std::int64_t d = 0; d + 1 < devices_per_node; ++d) {
            const TaskId transfer = graph.addTransfer(
                intra_channels[n][d],
                grad_bits / static_cast<double>(devices_per_node),
                link_.bandwidth, link_.latency,
                "bcast-n" + std::to_string(n) + "-" +
                    std::to_string(d),
                "collective");
            graph.addDependency(previous, transfer);
            previous = transfer;
        }
    }

    return finishRun(graph, all_devices);
}

SimOutcome
TrainingSimulator::simulateDataPipelineStep(
    std::int64_t replicas, std::int64_t stages, double microbatch,
    std::int64_t num_microbatches,
    const net::LinkConfig &dp_link) const
{
    if (const RunStatus stop = token_.checkpoint();
        stop != RunStatus::Completed)
        return stoppedOutcome(stop);
    const auto &cfg = opCounter_.config();
    require(replicas >= 1, "DPxPP: need >= 1 replica, got ", replicas);
    require(stages >= 1 && stages <= cfg.numLayers,
            "DPxPP: stages must be in [1, ", cfg.numLayers, "], got ",
            stages);
    require(microbatch >= 1.0,
            "DPxPP: microbatch must be >= 1, got ", microbatch);
    require(num_microbatches >= 1,
            "DPxPP: need >= 1 microbatch, got ", num_microbatches);
    dp_link.validate();

    const double eff = efficiency_(microbatch);

    TaskGraph graph;
    // devices[r][s]; forward/backward channels inside each replica;
    // one DP ring per stage index across replicas.
    std::vector<std::vector<ResourceId>> devices(replicas);
    std::vector<std::vector<ResourceId>> fwd_ch(replicas);
    std::vector<std::vector<ResourceId>> bwd_ch(replicas);
    std::vector<std::vector<ResourceId>> dp_ch(stages);
    std::vector<ResourceId> all_devices;
    for (std::int64_t r = 0; r < replicas; ++r) {
        for (std::int64_t s = 0; s < stages; ++s) {
            devices[r].push_back(graph.addDevice(
                "r" + std::to_string(r) + "s" + std::to_string(s)));
            all_devices.push_back(devices[r].back());
            if (s + 1 < stages) {
                fwd_ch[r].push_back(graph.addChannel(
                    "f-r" + std::to_string(r) + "s" +
                    std::to_string(s)));
                bwd_ch[r].push_back(graph.addChannel(
                    "b-r" + std::to_string(r) + "s" +
                    std::to_string(s)));
            }
        }
    }
    for (std::int64_t s = 0; s < stages; ++s) {
        for (std::int64_t r = 0; r < replicas; ++r) {
            dp_ch[s].push_back(graph.addChannel(
                "dp-s" + std::to_string(s) + "r" + std::to_string(r)));
        }
    }

    // Stage compute times and gradient shards.
    const std::int64_t base = cfg.numLayers / stages;
    const std::int64_t extra = cfg.numLayers % stages;
    std::vector<Seconds> stage_fwd(stages, Seconds{0.0});
    std::vector<Bits> stage_grad_bits(stages, Bits{0.0});
    std::int64_t layer = 0;
    for (std::int64_t s = 0; s < stages; ++s) {
        const std::int64_t count = base + (s < extra ? 1 : 0);
        for (std::int64_t i = 0; i < count; ++i, ++layer) {
            stage_fwd[s] += layerForwardTime(layer, microbatch, eff);
            stage_grad_bits[s] +=
                opCounter_.gradientsPerLayer(layer) * gradientBits_;
        }
    }
    const Bits act_bits =
        opCounter_.activationsPipelineParallel(microbatch) *
        accel_.precisions.activationBits;

    // GPipe schedule per replica.
    std::vector<std::vector<TaskId>> last_bwd(
        replicas, std::vector<TaskId>(stages));
    for (std::int64_t r = 0; r < replicas; ++r) {
        std::vector<std::vector<TaskId>> fwd(
            stages, std::vector<TaskId>(num_microbatches));
        for (std::int64_t m = 0; m < num_microbatches; ++m) {
            for (std::int64_t s = 0; s < stages; ++s) {
                const TaskId task = graph.addCompute(
                    devices[r][s], stage_fwd[s],
                    "f-r" + std::to_string(r) + "m" +
                        std::to_string(m) + "s" + std::to_string(s),
                    "forward");
                fwd[s][m] = task;
                if (s > 0) {
                    const TaskId transfer = graph.addTransfer(
                        fwd_ch[r][s - 1], act_bits, link_.bandwidth,
                        link_.latency,
                        "fx-r" + std::to_string(r) + "m" +
                            std::to_string(m) + "s" +
                            std::to_string(s - 1),
                        "p2p");
                    graph.addDependency(fwd[s - 1][m], transfer);
                    graph.addDependency(transfer, task);
                }
            }
        }
        std::vector<std::vector<TaskId>> bwd(
            stages, std::vector<TaskId>(num_microbatches));
        for (std::int64_t m = 0; m < num_microbatches; ++m) {
            for (std::int64_t s = stages - 1; s >= 0; --s) {
                const TaskId task = graph.addCompute(
                    devices[r][s],
                    backwardMultiplier_ * stage_fwd[s],
                    "b-r" + std::to_string(r) + "m" +
                        std::to_string(m) + "s" + std::to_string(s),
                    "backward");
                bwd[s][m] = task;
                graph.addDependency(fwd[s][m], task);
                if (s < stages - 1) {
                    const TaskId transfer = graph.addTransfer(
                        bwd_ch[r][s], act_bits, link_.bandwidth,
                        link_.latency,
                        "bx-r" + std::to_string(r) + "m" +
                            std::to_string(m) + "s" +
                            std::to_string(s + 1),
                        "p2p");
                    graph.addDependency(bwd[s + 1][m], transfer);
                    graph.addDependency(transfer, task);
                }
            }
        }
        for (std::int64_t s = 0; s < stages; ++s)
            last_bwd[r][s] = bwd[s][num_microbatches - 1];
    }

    // Per-stage DP ring all-reduce across replicas, then the weight
    // update on every device.
    for (std::int64_t s = 0; s < stages; ++s) {
        std::vector<TaskId> entries(replicas);
        for (std::int64_t r = 0; r < replicas; ++r)
            entries[r] = last_bwd[r][s];
        std::vector<TaskId> reduced = entries;
        if (replicas > 1) {
            const Bits chunk =
                stage_grad_bits[s] / static_cast<double>(replicas);
            std::vector<TaskId> previous = entries;
            for (std::int64_t step = 0; step < 2 * (replicas - 1);
                 ++step) {
                std::vector<TaskId> received(replicas);
                for (std::int64_t r = 0; r < replicas; ++r) {
                    const TaskId transfer = graph.addTransfer(
                        dp_ch[s][r], chunk, dp_link.bandwidth,
                        dp_link.latency,
                        "dpar-s" + std::to_string(s) + "-" +
                            std::to_string(step) + "-" +
                            std::to_string(r),
                        "collective");
                    graph.addDependency(previous[r], transfer);
                    received[(r + 1) % replicas] = transfer;
                }
                previous = std::move(received);
            }
            reduced = previous;
        }
        layer = 0;
        for (std::int64_t q = 0; q < s; ++q)
            layer += base + (q < extra ? 1 : 0);
        const std::int64_t count = base + (s < extra ? 1 : 0);
        Seconds update{0.0};
        for (std::int64_t i = 0; i < count; ++i) {
            update += core::layerWeightUpdateTime(opCounter_, accel_,
                                                  eff, layer + i);
        }
        for (std::int64_t r = 0; r < replicas; ++r) {
            const TaskId task = graph.addCompute(
                devices[r][s], update,
                "upd-r" + std::to_string(r) + "s" +
                    std::to_string(s),
                "update");
            graph.addDependency(reduced[r], task);
        }
    }

    return finishRun(graph, all_devices);
}

SimOutcome
TrainingSimulator::simulateAllToAll(std::int64_t participants,
                                    double elements,
                                    Bits bits_per_element,
                                    const net::LinkConfig &link) const
{
    if (const RunStatus stop = token_.checkpoint();
        stop != RunStatus::Completed)
        return stoppedOutcome(stop);
    require(participants >= 1,
            "all-to-all: need >= 1 participant, got ", participants);
    require(elements >= 0.0, "all-to-all: negative element count");
    require(bits_per_element > Bits{0.0},
            "all-to-all: bits per element must be positive");
    link.validate();

    TaskGraph graph;
    std::vector<ResourceId> device_ids;
    std::vector<ResourceId> egress;
    for (std::int64_t p = 0; p < participants; ++p) {
        device_ids.push_back(
            graph.addDevice("rank" + std::to_string(p)));
        egress.push_back(
            graph.addChannel("egress" + std::to_string(p)));
    }

    // Each rank starts ready (zero-length compute anchors the
    // device trace) and exchanges 1/N of its payload with every
    // peer in N-1 pairwise rounds.
    std::vector<TaskId> previous(participants);
    for (std::int64_t p = 0; p < participants; ++p) {
        previous[p] = graph.addCompute(device_ids[p], Seconds{0.0},
                                       "ready" + std::to_string(p),
                                       "compute");
    }
    const Bits chunk_bits =
        participants > 1
            ? elements * bits_per_element /
                  static_cast<double>(participants)
            : Bits{0.0};
    for (std::int64_t round = 1; round < participants; ++round) {
        std::vector<TaskId> received(participants);
        for (std::int64_t p = 0; p < participants; ++p) {
            const std::int64_t to = (p + round) % participants;
            const TaskId transfer = graph.addTransfer(
                egress[p], chunk_bits, link.bandwidth, link.latency,
                "a2a-r" + std::to_string(round) + "-p" +
                    std::to_string(p),
                "a2a");
            graph.addDependency(previous[p], transfer);
            received[to] = transfer;
        }
        previous = std::move(received);
    }

    return finishRun(graph, device_ids);
}

SimOutcome
TrainingSimulator::simulateMoeStep(
    std::int64_t nodes, double per_node_batch,
    const net::LinkConfig &inter_link) const
{
    if (const RunStatus stop = token_.checkpoint();
        stop != RunStatus::Completed)
        return stoppedOutcome(stop);
    const auto &cfg = opCounter_.config();
    require(cfg.moe.enabled(),
            "simulateMoeStep: the model has no experts");
    require(nodes >= 1, "simulateMoeStep: need >= 1 node, got ",
            nodes);
    require(per_node_batch >= 1.0,
            "simulateMoeStep: per-node batch must be >= 1, got ",
            per_node_batch);
    inter_link.validate();

    const double eff = efficiency_(per_node_batch);

    TaskGraph graph;
    std::vector<ResourceId> device_ids;
    std::vector<ResourceId> egress;
    for (std::int64_t n = 0; n < nodes; ++n) {
        device_ids.push_back(
            graph.addDevice("node" + std::to_string(n)));
        egress.push_back(
            graph.addChannel("egress" + std::to_string(n)));
    }

    // Appends one pairwise all-to-all round set; returns the tasks
    // each node waits on afterwards.
    auto all_to_all = [&](std::vector<TaskId> entry, Bits bits,
                          const std::string &tag) {
        if (nodes == 1)
            return entry;
        const Bits chunk = bits / static_cast<double>(nodes);
        std::vector<TaskId> previous = std::move(entry);
        for (std::int64_t round = 1; round < nodes; ++round) {
            std::vector<TaskId> received(nodes);
            for (std::int64_t n = 0; n < nodes; ++n) {
                const std::int64_t to = (n + round) % nodes;
                const TaskId transfer = graph.addTransfer(
                    egress[n], chunk, inter_link.bandwidth,
                    inter_link.latency,
                    tag + "-r" + std::to_string(round) + "-n" +
                        std::to_string(n),
                    "a2a");
                graph.addDependency(previous[n], transfer);
                received[to] = transfer;
            }
            previous = std::move(received);
        }
        return previous;
    };

    const Bits moe_bits =
        opCounter_.activationsMoe(
            cfg.moe.moeLayerInterval - 1, per_node_batch) *
        accel_.precisions.activationBits;

    // Frontier per node; fwd then bwd passes with per-layer tasks.
    std::vector<TaskId> frontier(nodes, -1);
    auto add_pass = [&](double multiplier, const std::string &tag) {
        for (std::int64_t l = 0; l < cfg.numLayers; ++l) {
            if (cfg.isMoeLayer(l)) {
                // Dispatch tokens to their experts before the FFN.
                if (frontier[0] >= 0) {
                    frontier = all_to_all(
                        frontier, moe_bits,
                        tag + "-disp-l" + std::to_string(l));
                }
            }
            std::vector<TaskId> computes(nodes);
            for (std::int64_t n = 0; n < nodes; ++n) {
                const TaskId task = graph.addCompute(
                    device_ids[n],
                    multiplier *
                        layerForwardTime(l, per_node_batch, eff),
                    tag + "-l" + std::to_string(l) + "-n" +
                        std::to_string(n),
                    tag == "fwd" ? "forward" : "backward");
                if (frontier[n] >= 0)
                    graph.addDependency(frontier[n], task);
                computes[n] = task;
            }
            frontier = std::move(computes);
            if (cfg.isMoeLayer(l)) {
                // Combine expert outputs back to the token owners.
                frontier = all_to_all(
                    frontier, moe_bits,
                    tag + "-comb-l" + std::to_string(l));
            }
        }
    };
    add_pass(1.0, "fwd");
    add_pass(backwardMultiplier_, "bwd");

    return finishRun(graph, device_ids);
}

SimOutcome
TrainingSimulator::simulateGPipeStep(std::int64_t stages,
                                     double microbatch,
                                     std::int64_t num_microbatches) const
{
    if (const RunStatus stop = token_.checkpoint();
        stop != RunStatus::Completed)
        return stoppedOutcome(stop);
    const auto &cfg = opCounter_.config();
    require(stages >= 1, "simulateGPipeStep: need >= 1 stage, got ",
            stages);
    require(stages <= cfg.numLayers, "simulateGPipeStep: ", stages,
            " stages exceed ", cfg.numLayers, " layers");
    require(microbatch >= 1.0,
            "simulateGPipeStep: microbatch must be >= 1, got ",
            microbatch);
    require(num_microbatches >= 1,
            "simulateGPipeStep: need >= 1 microbatch, got ",
            num_microbatches);

    const double eff = efficiency_(microbatch);

    TaskGraph graph;
    std::vector<ResourceId> device_ids;
    std::vector<ResourceId> fwd_channels; // stage s -> s+1
    std::vector<ResourceId> bwd_channels; // stage s+1 -> s
    for (std::int64_t s = 0; s < stages; ++s) {
        device_ids.push_back(
            graph.addDevice("stage" + std::to_string(s)));
        if (s + 1 < stages) {
            fwd_channels.push_back(graph.addChannel(
                "fwd" + std::to_string(s) + "->" +
                std::to_string(s + 1)));
            bwd_channels.push_back(graph.addChannel(
                "bwd" + std::to_string(s + 1) + "->" +
                std::to_string(s)));
        }
    }

    // Contiguous layer blocks, remainder spread over the first
    // stages.
    const std::int64_t base = cfg.numLayers / stages;
    const std::int64_t extra = cfg.numLayers % stages;
    std::vector<Seconds> stage_fwd_time(stages, Seconds{0.0});
    std::int64_t layer = 0;
    for (std::int64_t s = 0; s < stages; ++s) {
        const std::int64_t count = base + (s < extra ? 1 : 0);
        for (std::int64_t i = 0; i < count; ++i, ++layer) {
            stage_fwd_time[s] +=
                layerForwardTime(layer, microbatch, eff);
        }
    }

    const Bits act_bits =
        opCounter_.activationsPipelineParallel(microbatch) *
        accel_.precisions.activationBits;

    // Forward: microbatch m flows stage 0 -> stages-1.
    std::vector<std::vector<TaskId>> fwd(
        stages, std::vector<TaskId>(num_microbatches));
    for (std::int64_t m = 0; m < num_microbatches; ++m) {
        for (std::int64_t s = 0; s < stages; ++s) {
            const TaskId task = graph.addCompute(
                device_ids[s], stage_fwd_time[s],
                "fwd-m" + std::to_string(m) + "-s" + std::to_string(s),
                "forward");
            fwd[s][m] = task;
            if (s > 0) {
                const TaskId transfer = graph.addTransfer(
                    fwd_channels[s - 1], act_bits, link_.bandwidth,
                    link_.latency,
                    "fwd-xfer-m" + std::to_string(m) + "-s" +
                        std::to_string(s - 1),
                    "p2p");
                graph.addDependency(fwd[s - 1][m], transfer);
                graph.addDependency(transfer, task);
            }
        }
    }

    // Backward: microbatch m flows stages-1 -> 0 after the full
    // forward wave (GPipe schedule).
    std::vector<std::vector<TaskId>> bwd(
        stages, std::vector<TaskId>(num_microbatches));
    for (std::int64_t m = 0; m < num_microbatches; ++m) {
        for (std::int64_t s = stages - 1; s >= 0; --s) {
            const TaskId task = graph.addCompute(
                device_ids[s], backwardMultiplier_ * stage_fwd_time[s],
                "bwd-m" + std::to_string(m) + "-s" + std::to_string(s),
                "backward");
            bwd[s][m] = task;
            // The stage's own forward of this microbatch must be done.
            graph.addDependency(fwd[s][m], task);
            if (s < stages - 1) {
                const TaskId transfer = graph.addTransfer(
                    bwd_channels[s], act_bits, link_.bandwidth,
                    link_.latency,
                    "bwd-xfer-m" + std::to_string(m) + "-s" +
                        std::to_string(s + 1),
                    "p2p");
                graph.addDependency(bwd[s + 1][m], transfer);
                graph.addDependency(transfer, task);
            }
        }
    }

    // Per-stage weight update after its last backward.
    layer = 0;
    for (std::int64_t s = 0; s < stages; ++s) {
        const std::int64_t count = base + (s < extra ? 1 : 0);
        Seconds update{0.0};
        for (std::int64_t i = 0; i < count; ++i, ++layer) {
            update += core::layerWeightUpdateTime(opCounter_, accel_,
                                                  eff, layer);
        }
        const TaskId task = graph.addCompute(
            device_ids[s], update, "update-s" + std::to_string(s),
            "update");
        graph.addDependency(bwd[s][num_microbatches - 1], task);
    }

    auto outcome = finishRun(graph, device_ids);
    if (outcome.failure.failed) {
        // An aborted step has no complete residency trace: some
        // microbatches never ran their forward or backward.
        return outcome;
    }

    // Activation residency: a microbatch is live on a stage from its
    // forward's end to its backward's start.  Sweep start/end events
    // per stage for the peak overlap.
    outcome.peakMicrobatchesInFlight.assign(stages, 0);
    for (std::int64_t s = 0; s < stages; ++s) {
        std::map<TaskId, std::pair<double, double>> times;
        for (const auto &interval :
             outcome.raw.resources[device_ids[s]].intervals)
            times[interval.task] = {interval.start, interval.end};
        std::vector<std::pair<double, int>> events;
        for (std::int64_t m = 0; m < num_microbatches; ++m) {
            const double live_from = times.at(fwd[s][m]).second;
            const double live_to = times.at(bwd[s][m]).first;
            events.push_back({live_from, +1});
            events.push_back({live_to, -1});
        }
        std::sort(events.begin(), events.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second < b.second; // close before open
                  });
        std::int64_t live = 0, peak = 0;
        for (const auto &[time, delta] : events) {
            (void)time;
            live += delta;
            peak = std::max(peak, live);
        }
        outcome.peakMicrobatchesInFlight[s] = peak;
    }
    return outcome;
}

SimOutcome
TrainingSimulator::simulateTensorParallelStep(std::int64_t devices,
                                              double batch) const
{
    if (const RunStatus stop = token_.checkpoint();
        stop != RunStatus::Completed)
        return stoppedOutcome(stop);
    require(devices >= 1,
            "simulateTensorParallelStep: need >= 1 device, got ",
            devices);
    require(batch >= 1.0,
            "simulateTensorParallelStep: batch must be >= 1, got ",
            batch);

    const auto &cfg = opCounter_.config();
    const double eff = efficiency_(batch);

    TaskGraph graph;
    std::vector<ResourceId> device_ids;
    std::vector<ResourceId> channel_ids;
    for (std::int64_t d = 0; d < devices; ++d) {
        device_ids.push_back(graph.addDevice("gpu" + std::to_string(d)));
        channel_ids.push_back(graph.addChannel(
            "link" + std::to_string(d) + "->" +
            std::to_string((d + 1) % devices)));
    }

    // Each all-reduce moves b s h activation elements (half of
    // N_act_TP = 2 b s h, which covers both per-layer reductions).
    const Bits act_bits =
        opCounter_.activationsPipelineParallel(batch) *
        accel_.precisions.activationBits;

    // frontier[d]: last task of device d.
    std::vector<TaskId> frontier(devices, -1);
    auto add_sharded_pass = [&](double multiplier,
                                const std::string &tag) {
        for (std::int64_t l = 0; l < cfg.numLayers; ++l) {
            const Seconds shard =
                multiplier * layerForwardTime(l, batch, eff) /
                static_cast<double>(devices);
            // Half the layer (attention), all-reduce, second half
            // (MLP), all-reduce — the Megatron pattern.
            for (int half = 0; half < 2; ++half) {
                std::vector<TaskId> computes(devices);
                for (std::int64_t d = 0; d < devices; ++d) {
                    const TaskId task = graph.addCompute(
                        device_ids[d], shard / 2.0,
                        tag + "-l" + std::to_string(l) + "-h" +
                            std::to_string(half) + "-d" +
                            std::to_string(d),
                        tag == "fwd" ? "forward" : "backward");
                    if (frontier[d] >= 0)
                        graph.addDependency(frontier[d], task);
                    computes[d] = task;
                }
                frontier = appendRingAllReduce(
                    graph, devices, channel_ids, act_bits, computes,
                    tag + "-ar-l" + std::to_string(l) + "-h" +
                        std::to_string(half));
            }
        }
    };

    add_sharded_pass(1.0, "fwd");
    add_sharded_pass(backwardMultiplier_, "bwd");

    return finishRun(graph, device_ids);
}

} // namespace sim
} // namespace amped

#include "engine.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/error.hpp"

namespace amped {
namespace sim {

double
SimResult::utilization(ResourceId id) const
{
    require(id >= 0 && id < static_cast<ResourceId>(resources.size()),
            "utilization: invalid resource id ", id);
    if (makespan <= 0.0)
        return 0.0;
    return resources[id].busyTime / makespan;
}

namespace {

/** Event kinds processed by the run loop. */
enum class EventKind
{
    taskReady,    ///< All dependencies delivered; enqueue on resource.
    resourceFree, ///< Occupancy ended; start the next queued task.
    delivery      ///< Task output delivered; notify successors.
};

struct Event
{
    double time = 0.0;
    EventKind kind = EventKind::taskReady;
    TaskId task = -1;
    ResourceId resource = -1;
    std::uint64_t sequence = 0; ///< Deterministic tiebreak.
};

struct EventLater
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.sequence > b.sequence;
    }
};

struct ResourceState
{
    bool busy = false;
    std::deque<TaskId> readyQueue;
};

} // namespace

SimResult
Engine::run(TaskGraph &graph) const
{
    const std::size_t n_tasks = graph.taskCount();
    const std::size_t n_resources = graph.resourceCount();

    // Rebuild dependency counters so a graph can be run repeatedly.
    std::vector<std::int32_t> remaining(n_tasks, 0);
    for (std::size_t t = 0; t < n_tasks; ++t) {
        for (TaskId succ : graph.task(static_cast<TaskId>(t)).successors)
            ++remaining[succ];
    }

    std::priority_queue<Event, std::vector<Event>, EventLater> events;
    std::uint64_t sequence = 0;
    auto push = [&](double time, EventKind kind, TaskId task,
                    ResourceId resource) {
        events.push(Event{time, kind, task, resource, sequence++});
    };

    // Seed: every task with no dependencies is ready at t = 0.
    // Seeding in task-id order keeps FIFO queues deterministic.
    for (std::size_t t = 0; t < n_tasks; ++t) {
        if (remaining[t] == 0)
            push(0.0, EventKind::taskReady, static_cast<TaskId>(t),
                 graph.task(static_cast<TaskId>(t)).resource);
    }

    SimResult result;
    result.resources.resize(n_resources);
    std::vector<ResourceState> states(n_resources);
    std::size_t completed = 0;

    auto start_task = [&](ResourceId rid, double now) {
        ResourceState &state = states[rid];
        if (state.busy || state.readyQueue.empty())
            return;
        const TaskId tid = state.readyQueue.front();
        state.readyQueue.pop_front();
        state.busy = true;
        const Task &task = graph.task(tid);
        const double end = now + task.duration;
        result.resources[rid].busyTime += task.duration;
        result.resources[rid].intervals.push_back(
            BusyInterval{now, end, tid});
        push(end, EventKind::resourceFree, tid, rid);
        push(end + task.latency, EventKind::delivery, tid, rid);
    };

    while (!events.empty()) {
        const Event ev = events.top();
        events.pop();
        switch (ev.kind) {
          case EventKind::taskReady:
            states[ev.resource].readyQueue.push_back(ev.task);
            start_task(ev.resource, ev.time);
            break;
          case EventKind::resourceFree:
            states[ev.resource].busy = false;
            start_task(ev.resource, ev.time);
            break;
          case EventKind::delivery: {
            ++completed;
            result.makespan = std::max(result.makespan, ev.time);
            for (TaskId succ : graph.task(ev.task).successors) {
                AMPED_ASSERT(remaining[succ] > 0,
                             "dependency counter underflow");
                if (--remaining[succ] == 0)
                    push(ev.time, EventKind::taskReady, succ,
                         graph.task(succ).resource);
            }
            break;
          }
        }
    }

    require(completed == n_tasks, "task graph did not complete: ",
            completed, " of ", n_tasks,
            " tasks ran (dependency cycle?)");
    return result;
}

} // namespace sim
} // namespace amped

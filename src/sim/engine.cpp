#include "engine.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace sim {

double
SimResult::utilization(ResourceId id) const
{
    require(id >= 0 && id < static_cast<ResourceId>(resources.size()),
            "utilization: invalid resource id ", id);
    if (makespan <= 0.0)
        return 0.0;
    return resources[id].busyTime / makespan;
}

double
SimResult::deliveredAt(TaskId task) const
{
    require(task >= 0 &&
                task < static_cast<TaskId>(deliveryTime.size()),
            "deliveredAt: invalid task id ", task);
    return deliveryTime[task];
}

namespace {

/** Event kinds processed by the run loop. */
enum class EventKind
{
    taskReady,    ///< All dependencies delivered; enqueue on resource.
    resourceFree, ///< Occupancy ended; start the next queued task.
    delivery,     ///< Task output delivered; notify successors.
    resourceFail  ///< Injected fault: the resource dies.
};

struct Event
{
    double time = 0.0;
    EventKind kind = EventKind::taskReady;
    TaskId task = -1;
    ResourceId resource = -1;
    std::uint64_t sequence = 0; ///< Deterministic tiebreak.
};

struct EventLater
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.sequence > b.sequence;
    }
};

struct ResourceState
{
    bool busy = false;
    TaskId current = -1; ///< In-flight task (valid while busy).
    std::deque<TaskId> readyQueue;
};

/**
 * Names the first few tasks whose dependencies never delivered, for
 * the cycle diagnostic: "#3 'bwd mb0', #4 'bwd mb1' (+7 more)".
 */
std::string
describeNeverReady(const TaskGraph &graph,
                   const std::vector<std::int32_t> &remaining)
{
    constexpr std::size_t max_listed = 4;
    std::string described;
    std::size_t listed = 0;
    std::size_t never_ready = 0;
    for (std::size_t t = 0; t < remaining.size(); ++t) {
        if (remaining[t] <= 0)
            continue;
        ++never_ready;
        if (listed == max_listed)
            continue;
        if (listed > 0)
            described += ", ";
        described += "#";
        described += std::to_string(t);
        described += " '";
        described += graph.task(static_cast<TaskId>(t)).label;
        described += "'";
        ++listed;
    }
    if (never_ready > listed) {
        described += " (+" + std::to_string(never_ready - listed)
            + " more)";
    }
    return described;
}

} // namespace

SimResult
Engine::run(TaskGraph &graph) const
{
    return runImpl(graph, nullptr, nullptr);
}

FaultSimResult
Engine::run(TaskGraph &graph, const FaultPlan &plan) const
{
    require(plan.resourceCount() == graph.resourceCount(),
            "FaultPlan was generated for ", plan.resourceCount(),
            " resources but the graph has ", graph.resourceCount());
    FaultSimResult out;
    out.result = runImpl(graph, &plan, &out.failure);
    return out;
}

SimResult
Engine::runImpl(TaskGraph &graph, const FaultPlan *plan,
                FailureOutcome *outcome) const
{
    auto &metrics = obs::MetricsRegistry::global();
    static obs::Counter &runs_counter =
        metrics.counter("sim.engine.runs");
    static obs::Counter &tasks_counter =
        metrics.counter("sim.engine.tasks_completed");
    static obs::Counter &failures_counter =
        metrics.counter("sim.engine.failures_applied");
    static obs::Histogram &run_seconds =
        metrics.histogram("sim.engine.run.seconds", true);
    runs_counter.add(1);
    obs::ScopedTimer timer(run_seconds);

    const std::size_t n_tasks = graph.taskCount();
    const std::size_t n_resources = graph.resourceCount();

    // Rebuild dependency counters so a graph can be run repeatedly.
    std::vector<std::int32_t> remaining(n_tasks, 0);
    for (std::size_t t = 0; t < n_tasks; ++t) {
        for (TaskId succ : graph.task(static_cast<TaskId>(t)).successors)
            ++remaining[succ];
    }

    std::priority_queue<Event, std::vector<Event>, EventLater> events;
    std::uint64_t sequence = 0;
    auto push = [&](double time, EventKind kind, TaskId task,
                    ResourceId resource) {
        events.push(Event{time, kind, task, resource, sequence++});
    };

    // Failure events enter the queue first: at an equal timestamp a
    // failure outranks every ready/free/delivery event (lower
    // sequence pops first), so a task cannot slip through a resource
    // in the same instant it dies.  A zero plan pushes nothing, which
    // keeps all sequence numbers — and hence the whole run —
    // identical to the fault-free path.
    if (plan != nullptr) {
        for (const FailureEvent &f : plan->failures())
            push(f.time, EventKind::resourceFail, -1, f.resource);
    }

    // Seed: every task with no dependencies is ready at t = 0.
    // Seeding in task-id order keeps FIFO queues deterministic.
    for (std::size_t t = 0; t < n_tasks; ++t) {
        if (remaining[t] == 0)
            push(0.0, EventKind::taskReady, static_cast<TaskId>(t),
                 graph.task(static_cast<TaskId>(t)).resource);
    }

    SimResult result;
    result.resources.resize(n_resources);
    result.deliveryTime.assign(n_tasks, -1.0);
    std::vector<ResourceState> states(n_resources);
    std::vector<char> dead(n_resources, 0);
    std::vector<char> aborted(plan != nullptr ? n_tasks : 0, 0);
    std::size_t completed = 0;
    std::size_t aborted_count = 0;
    double lost_busy = 0.0;
    double last_fail_time = 0.0;

    auto start_task = [&](ResourceId rid, double now) {
        ResourceState &state = states[rid];
        if (state.busy || state.readyQueue.empty() || dead[rid])
            return;
        const TaskId tid = state.readyQueue.front();
        state.readyQueue.pop_front();
        state.busy = true;
        state.current = tid;
        const Task &task = graph.task(tid);
        double duration = task.duration;
        double latency = task.latency;
        if (plan != nullptr) {
            // Multiplying by an exactly-1.0 zero plan is a bitwise
            // no-op for every finite double, preserving bit-identity
            // with the fault-free path.
            duration *= plan->durationMultiplier(rid);
            latency *= plan->latencyMultiplier(rid);
        }
        const double end = now + duration;
        result.resources[rid].busyTime += duration;
        result.resources[rid].intervals.push_back(
            BusyInterval{now, end, tid});
        push(end, EventKind::resourceFree, tid, rid);
        push(end + latency, EventKind::delivery, tid, rid);
    };

    while (!events.empty()) {
        const Event ev = events.top();
        events.pop();
        switch (ev.kind) {
          case EventKind::taskReady:
            if (dead[ev.resource]) {
                aborted[ev.task] = 1;
                ++aborted_count;
                break;
            }
            states[ev.resource].readyQueue.push_back(ev.task);
            start_task(ev.resource, ev.time);
            break;
          case EventKind::resourceFree:
            if (dead[ev.resource])
                break;
            states[ev.resource].busy = false;
            states[ev.resource].current = -1;
            start_task(ev.resource, ev.time);
            break;
          case EventKind::delivery: {
            if (plan != nullptr && aborted[ev.task])
                break;
            ++completed;
            result.deliveryTime[ev.task] = ev.time;
            result.makespan = std::max(result.makespan, ev.time);
            for (TaskId succ : graph.task(ev.task).successors) {
                AMPED_ASSERT(remaining[succ] > 0,
                             "dependency counter underflow");
                if (--remaining[succ] == 0)
                    push(ev.time, EventKind::taskReady, succ,
                         graph.task(succ).resource);
            }
            break;
          }
          case EventKind::resourceFail: {
            const ResourceId rid = ev.resource;
            if (dead[rid])
                break;
            dead[rid] = 1;
            ++outcome->failuresApplied;
            outcome->events.push_back(FailureEvent{rid, ev.time});
            if (outcome->failuresApplied == 1) {
                outcome->firstFailureTime = ev.time;
                outcome->firstFailedResource = rid;
            }
            last_fail_time = std::max(last_fail_time, ev.time);
            ResourceState &state = states[rid];
            if (state.busy) {
                // Abort the in-flight task: truncate its busy
                // interval at the failure instant and charge the
                // partially executed occupancy as lost work.  Its
                // already-queued resourceFree/delivery events are
                // neutralized by the dead/aborted checks above.
                auto &intervals = result.resources[rid].intervals;
                AMPED_ASSERT(!intervals.empty()
                             && intervals.back().task == state.current,
                             "busy resource has no matching interval");
                BusyInterval &interval = intervals.back();
                result.resources[rid].busyTime -=
                    interval.end - ev.time;
                lost_busy += ev.time - interval.start;
                interval.end = ev.time;
                aborted[state.current] = 1;
                ++aborted_count;
                state.busy = false;
                state.current = -1;
            }
            for (TaskId tid : state.readyQueue) {
                aborted[tid] = 1;
                ++aborted_count;
            }
            state.readyQueue.clear();
            break;
          }
        }
    }

    tasks_counter.add(completed);
    if (outcome != nullptr)
        failures_counter.add(outcome->failuresApplied);

    if (outcome != nullptr) {
        outcome->failed = completed != n_tasks;
        outcome->completedTasks = completed;
        outcome->abortedTasks = aborted_count;
        outcome->unreachedTasks = n_tasks - completed - aborted_count;
        outcome->lostBusySeconds = Seconds{lost_busy};
        outcome->wastedWallSeconds = outcome->failed
            ? Seconds{std::max(result.makespan, last_fail_time)}
            : Seconds{0.0};
    }

    // An incomplete run is a reportable outcome when an injected
    // failure explains it; otherwise it is a dependency cycle and a
    // user error either way.
    const bool failure_explains = outcome != nullptr
        && outcome->failed && outcome->failuresApplied > 0;
    if (completed != n_tasks && !failure_explains) {
        fatal("task graph did not complete: ", completed, " of ",
              n_tasks, " tasks ran; never became ready (dependency "
              "cycle?): ", describeNeverReady(graph, remaining));
    }
    return result;
}

} // namespace sim
} // namespace amped

#include "task_graph.hpp"

#include "common/error.hpp"

namespace amped {
namespace sim {

ResourceId
TaskGraph::addDevice(std::string name)
{
    resources_.push_back(
        Resource{ResourceKind::device, std::move(name)});
    return static_cast<ResourceId>(resources_.size() - 1);
}

ResourceId
TaskGraph::addChannel(std::string name)
{
    resources_.push_back(
        Resource{ResourceKind::channel, std::move(name)});
    return static_cast<ResourceId>(resources_.size() - 1);
}

TaskId
TaskGraph::addCompute(ResourceId device, Seconds duration,
                      std::string label, std::string category)
{
    require(device >= 0 &&
                device < static_cast<ResourceId>(resources_.size()),
            "addCompute: invalid resource id ", device);
    require(resources_[device].kind == ResourceKind::device,
            "addCompute: resource ", device, " is not a device");
    require(duration >= Seconds{0.0}, "addCompute: negative duration");
    Task task;
    task.kind = TaskKind::compute;
    task.resource = device;
    task.duration = duration.value();
    task.label = std::move(label);
    task.category = std::move(category);
    tasks_.push_back(std::move(task));
    return static_cast<TaskId>(tasks_.size() - 1);
}

TaskId
TaskGraph::addTransfer(ResourceId channel, Bits bits,
                       BitsPerSecond bandwidth, Seconds latency,
                       std::string label, std::string category)
{
    require(channel >= 0 &&
                channel < static_cast<ResourceId>(resources_.size()),
            "addTransfer: invalid resource id ", channel);
    require(resources_[channel].kind == ResourceKind::channel,
            "addTransfer: resource ", channel, " is not a channel");
    require(bits >= Bits{0.0}, "addTransfer: negative size");
    require(bandwidth > BitsPerSecond{0.0},
            "addTransfer: bandwidth must be positive");
    require(latency >= Seconds{0.0}, "addTransfer: negative latency");
    Task task;
    task.kind = TaskKind::transfer;
    task.resource = channel;
    // The simulator core stays in raw doubles; unwrap at this seam.
    task.duration = (bits / bandwidth).value();
    task.latency = latency.value();
    task.label = std::move(label);
    task.category = std::move(category);
    tasks_.push_back(std::move(task));
    return static_cast<TaskId>(tasks_.size() - 1);
}

void
TaskGraph::addDependency(TaskId predecessor, TaskId successor)
{
    require(predecessor >= 0 &&
                predecessor < static_cast<TaskId>(tasks_.size()),
            "addDependency: invalid predecessor ", predecessor);
    require(successor >= 0 &&
                successor < static_cast<TaskId>(tasks_.size()),
            "addDependency: invalid successor ", successor);
    require(predecessor != successor,
            "addDependency: task cannot depend on itself");
    tasks_[predecessor].successors.push_back(successor);
    ++tasks_[successor].dependencyCount;
}

const Task &
TaskGraph::task(TaskId id) const
{
    require(id >= 0 && id < static_cast<TaskId>(tasks_.size()),
            "task: invalid id ", id);
    return tasks_[id];
}

const Resource &
TaskGraph::resource(ResourceId id) const
{
    require(id >= 0 && id < static_cast<ResourceId>(resources_.size()),
            "resource: invalid id ", id);
    return resources_[id];
}

Task &
TaskGraph::mutableTask(TaskId id)
{
    require(id >= 0 && id < static_cast<TaskId>(tasks_.size()),
            "mutableTask: invalid id ", id);
    return tasks_[id];
}

} // namespace sim
} // namespace amped

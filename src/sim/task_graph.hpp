/**
 * @file
 * Task-graph representation for the discrete-event cluster
 * simulator.
 *
 * A training step (DP, GPipe PP, TP, MoE) is lowered to a DAG of
 * tasks.  Two task kinds exist:
 *
 *  - compute: occupies one device for a fixed duration;
 *  - transfer: occupies one channel for its serialization time
 *    (bits / bandwidth) and delivers to its successors one link
 *    latency later (cut-through semantics: the channel is free for
 *    the next message while the last one is still in flight).
 *
 * Dependencies are explicit edges; resources additionally serialize
 * their tasks FIFO, which is what makes pipeline bubbles and
 * all-reduce step chains emerge from the simulation rather than from
 * a closed-form formula.
 */

#ifndef AMPED_SIM_TASK_GRAPH_HPP
#define AMPED_SIM_TASK_GRAPH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/quantity.hpp"

namespace amped {
namespace sim {

/** Identifies a task within its graph. */
using TaskId = std::int32_t;

/** Identifies a resource (device or channel) within its graph. */
using ResourceId = std::int32_t;

/** What a task does. */
enum class TaskKind
{
    compute, ///< Occupies a device.
    transfer ///< Occupies a channel, then adds latency.
};

/** What a resource models. */
enum class ResourceKind
{
    device, ///< An accelerator (utilization is traced).
    channel ///< A link (serializes transfers).
};

/** One node of the DAG. */
struct Task
{
    TaskKind kind = TaskKind::compute;
    ResourceId resource = -1;  ///< Owning device / channel.
    double duration = 0.0;     ///< Occupancy time in seconds.
    double latency = 0.0;      ///< Post-occupancy delivery delay.
    std::string label;         ///< For traces and debugging.
    /// Coarse schedule phase for trace export ("forward",
    /// "backward", "update", "collective", "p2p", ...).  Optional;
    /// empty means unclassified.
    std::string category;
    std::vector<TaskId> successors; ///< Dependent tasks.
    std::int32_t dependencyCount = 0; ///< Incoming edge count.
};

/** One resource of the graph. */
struct Resource
{
    ResourceKind kind = ResourceKind::device;
    std::string name;
};

/**
 * A DAG of tasks bound to resources.  Build once, run with Engine.
 */
class TaskGraph
{
  public:
    /** Adds a device resource; returns its id. */
    ResourceId addDevice(std::string name);

    /** Adds a channel resource; returns its id. */
    ResourceId addChannel(std::string name);

    /**
     * Adds a compute task.
     *
     * @param device A device resource id.
     * @param duration Occupancy time; >= 0.
     * @param label Trace label.
     * @param category Optional schedule phase for trace export.
     */
    TaskId addCompute(ResourceId device, Seconds duration,
                      std::string label, std::string category = {});

    /**
     * Adds a transfer task.
     *
     * @param channel A channel resource id.
     * @param bits Message size; >= 0.
     * @param bandwidth Channel bandwidth; > 0.
     * @param latency Link latency; >= 0.
     * @param label Trace label.
     * @param category Optional schedule phase for trace export.
     */
    TaskId addTransfer(ResourceId channel, Bits bits,
                       BitsPerSecond bandwidth, Seconds latency,
                       std::string label, std::string category = {});

    /**
     * Adds a dependency: @p successor cannot start before
     * @p predecessor has delivered.
     */
    void addDependency(TaskId predecessor, TaskId successor);

    /** Task count. */
    std::size_t taskCount() const { return tasks_.size(); }

    /** Resource count. */
    std::size_t resourceCount() const { return resources_.size(); }

    /** Task access (Engine and tests). */
    const Task &task(TaskId id) const;

    /** Resource access. */
    const Resource &resource(ResourceId id) const;

    /** Mutable task access (Engine resets dependency counters). */
    Task &mutableTask(TaskId id);

  private:
    std::vector<Task> tasks_;
    std::vector<Resource> resources_;
};

} // namespace sim
} // namespace amped

#endif // AMPED_SIM_TASK_GRAPH_HPP

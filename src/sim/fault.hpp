/**
 * @file
 * Fault injection for the discrete-event cluster simulator.
 *
 * The paper (and the simulator standing in for its HGX-2 validation
 * runs) assumes perfectly homogeneous, failure-free accelerators.  At
 * production scale that assumption dominates the error of any
 * time-to-train prediction: slow ranks ("stragglers") stretch every
 * collective they participate in, degraded links stretch every
 * transfer they carry, and device failures abort whole steps.  This
 * module describes those perturbations:
 *
 *  - FaultSpec: the *distribution* of faults — per-device straggler
 *    probability and slowdown range, per-link degradation and latency
 *    jitter, a device failure rate over a time horizon, plus
 *    explicitly scheduled failures.  Seeded; the same spec and seed
 *    always produce the same faults (common/rng.hpp).
 *
 *  - FaultPlan: the *realization* of a spec against one TaskGraph —
 *    a duration/latency multiplier per resource and a sorted list of
 *    failure events.  Engine::run(graph, plan) executes the graph
 *    under the plan; a failure aborts the failed resource's in-flight
 *    and queued tasks and the run reports a FailureOutcome instead of
 *    throwing.
 *
 * A default-constructed ("zero") spec realizes to multipliers of
 * exactly 1.0 and no failures; running any graph under it is
 * bit-identical to the fault-free Engine::run(graph) path, which is
 * what lets the resilience tests anchor against the existing goldens.
 */

#ifndef AMPED_SIM_FAULT_HPP
#define AMPED_SIM_FAULT_HPP

#include <cstdint>
#include <vector>

#include "common/quantity.hpp"
#include "sim/task_graph.hpp"

namespace amped {

class Rng;

namespace sim {

/** One scheduled resource failure: @p resource dies at @p time. */
struct FailureEvent
{
    ResourceId resource = -1; ///< Device or channel that fails.
    double time = 0.0;        ///< Failure instant in seconds; >= 0.
};

/**
 * Distribution of faults to inject, realized per graph by
 * FaultPlan::generate.  All knobs default to "no fault".
 */
struct FaultSpec
{
    /** Seed for the deterministic realization. */
    std::uint64_t seed = 0x5eed5eedULL;

    /** Probability that a device is a straggler. */
    double stragglerProbability = 0.0;

    /** Straggler compute-duration multiplier range (>= 1 typical). */
    double stragglerSlowdownMin = 1.0;
    double stragglerSlowdownMax = 1.0;

    /** Probability that a channel is degraded. */
    double linkDegradationProbability = 0.0;

    /** Degraded-channel serialization multiplier range. */
    double linkSlowdownMin = 1.0;
    double linkSlowdownMax = 1.0;

    /**
     * Per-channel latency jitter: every channel's delivery latency is
     * scaled by a factor drawn uniformly from [1 - j, 1 + j].  Must
     * be in [0, 1).
     */
    double linkLatencyJitter = 0.0;

    /**
     * Device failure rate in failures per device-second, sampled as
     * an exponential first-arrival time per device over
     * [0, failureHorizon).  0 disables sampling.
     */
    double failureRate = 0.0;

    /** Sampling horizon for failureRate, in seconds. */
    double failureHorizon = 0.0;

    /** Explicitly scheduled failures (applied on top of sampling). */
    std::vector<FailureEvent> failures;

    /** @throws UserError on out-of-range knobs. */
    void validate() const;

    /** True when the spec can only realize to a no-op plan. */
    bool zero() const;
};

/**
 * A FaultSpec realized against one graph: per-resource multipliers
 * plus the failure schedule.  Value type; cheap to copy.
 */
class FaultPlan
{
  public:
    /** A no-op plan for @p graph (all multipliers 1, no failures). */
    explicit FaultPlan(const TaskGraph &graph);

    /**
     * Realizes @p spec against @p graph.  Deterministic: resources
     * are visited in id order drawing from a single Rng seeded with
     * spec.seed, so the same (graph shape, spec) pair always yields
     * the same plan.
     *
     * @throws UserError when the spec is invalid or an explicit
     *         failure names a resource the graph does not have.
     */
    static FaultPlan generate(const TaskGraph &graph,
                              const FaultSpec &spec);

    /** Occupancy-duration multiplier of @p resource. */
    double durationMultiplier(ResourceId resource) const;

    /** Post-occupancy latency multiplier of @p resource. */
    double latencyMultiplier(ResourceId resource) const;

    /** Failure schedule, sorted by (time, resource). */
    const std::vector<FailureEvent> &failures() const
    {
        return failures_;
    }

    /** Number of resources the plan was built for. */
    std::size_t resourceCount() const
    {
        return durationMultipliers_.size();
    }

    /** True when the plan perturbs nothing. */
    bool zero() const;

  private:
    std::vector<double> durationMultipliers_;
    std::vector<double> latencyMultipliers_;
    std::vector<FailureEvent> failures_;
};

/**
 * Outcome of a fault-injected run.  When no failure fired (or every
 * failure landed after the last task delivered), @c failed is false
 * and the SimResult next to it is the complete schedule.
 */
struct FailureOutcome
{
    /** True when some task never delivered because of a failure. */
    bool failed = false;

    /** Number of failure events that were applied to live resources. */
    std::size_t failuresApplied = 0;

    /** First applied failure (valid when failuresApplied > 0). */
    double firstFailureTime = 0.0;
    ResourceId firstFailedResource = -1;

    /** Tasks that delivered their outputs. */
    std::size_t completedTasks = 0;

    /**
     * Tasks killed by a failure: the in-flight task of the failed
     * resource, its queued tasks, and tasks that became ready on a
     * dead resource afterwards.
     */
    std::size_t abortedTasks = 0;

    /** Tasks whose dependencies never delivered (downstream loss). */
    std::size_t unreachedTasks = 0;

    /** Truncated occupancy of aborted in-flight tasks. */
    Seconds lostBusySeconds{0.0};

    /**
     * Wall-clock invested in an attempt that did not complete (the
     * partial run's makespan): the time a checkpoint/restart scheme
     * would have to redo.  0 when the run completed.
     */
    Seconds wastedWallSeconds{0.0};

    /**
     * The failure events that were actually applied to live
     * resources, in application order (trace export renders them as
     * instant events).  A subset of the plan: events scheduled on an
     * already-dead resource are skipped.
     */
    std::vector<FailureEvent> events;
};

} // namespace sim
} // namespace amped

#endif // AMPED_SIM_FAULT_HPP

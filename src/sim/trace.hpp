/**
 * @file
 * Utilization-trace rendering (the repository's analogue of the
 * paper's Fig. 1 GPU-usage plots).
 *
 * Converts a SimResult's per-device busy intervals into a bucketed
 * ASCII timeline: one row per device, one character per time bucket,
 * '0'-'9' encoding 0-100 % busy within the bucket ('.' = fully
 * idle).
 */

#ifndef AMPED_SIM_TRACE_HPP
#define AMPED_SIM_TRACE_HPP

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace amped {
namespace sim {

/**
 * Busy fraction of one resource within [bucket_start, bucket_end).
 */
double busyFraction(const ResourceStats &stats, double bucket_start,
                    double bucket_end);

/**
 * Renders the utilization timeline of the given devices.
 *
 * @param result A completed simulation.
 * @param devices Device resource ids to show (row order).
 * @param names Row labels, same length as @p devices.
 * @param width Number of time buckets (columns).
 */
std::string renderUtilizationTimeline(
    const SimResult &result, const std::vector<ResourceId> &devices,
    const std::vector<std::string> &names, int width = 72);

} // namespace sim
} // namespace amped

#endif // AMPED_SIM_TRACE_HPP

#include "system_config.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace amped {
namespace net {

void
SystemConfig::validate() const
{
    require(numNodes > 0, name, ": numNodes must be positive, got ",
            numNodes);
    require(acceleratorsPerNode > 0, name,
            ": acceleratorsPerNode must be positive, got ",
            acceleratorsPerNode);
    require(nicsPerNode > 0, name, ": nicsPerNode must be positive, got ",
            nicsPerNode);
    intraLink.validate();
    interLink.validate();
}

std::int64_t
SystemConfig::totalAccelerators() const
{
    return numNodes * acceleratorsPerNode;
}

BitsPerSecond
SystemConfig::intraBandwidth() const
{
    return intraLink.bandwidth;
}

BitsPerSecond
SystemConfig::interBandwidth() const
{
    return interLink.bandwidth * static_cast<double>(nicsPerNode);
}

BitsPerSecond
SystemConfig::perStreamInterBandwidth() const
{
    return interBandwidth() /
           static_cast<double>(acceleratorsPerNode);
}

SystemSnapshot
SystemConfig::snapshot() const
{
    validate();
    SystemSnapshot snap;
    snap.numNodes = numNodes;
    snap.interIsPooledFabric = interIsPooledFabric;
    snap.intraLink = intraLink;
    // The link names match the ad-hoc LinkConfigs the scalar
    // evaluator builds (AmpedModel::interLinkEffective and
    // ppCommTime's hop link); names never enter the math.
    snap.interEffective = LinkConfig{"inter-effective", interLatency(),
                                     perStreamInterBandwidth()};
    snap.interHop =
        LinkConfig{"inter-hop", interLatency(), interBandwidth()};
    snap.interLatency = interLatency();
    snap.interBandwidth = interBandwidth();
    snap.perStreamInterBandwidth = perStreamInterBandwidth();
    return snap;
}

namespace presets {

SystemConfig
tinyTest()
{
    SystemConfig sys;
    sys.name = "tiny-test-2x2";
    sys.numNodes = 2;
    sys.acceleratorsPerNode = 2;
    sys.intraLink = LinkConfig{"test-intra", Seconds{1e-6},
                               units::gigabytesPerSecondBw(100.0)};
    sys.interLink = LinkConfig{"test-inter", Seconds{5e-6},
                               units::gigabitsPerSecondBw(100.0)};
    sys.nicsPerNode = 1;
    sys.validate();
    return sys;
}

LinkConfig
nvlinkV100()
{
    // NVLink2 + NVSwitch: 300 GB/s per GPU aggregate.
    return LinkConfig{"NVLink2+NVSwitch", Seconds{2e-6},
                      units::gigabytesPerSecondBw(300.0)};
}

LinkConfig
nvlinkA100()
{
    return LinkConfig{"NVLink3", Seconds{2e-6},
                      BitsPerSecond{2.4e12}}; // Table IV.
}

LinkConfig
nvlinkH100()
{
    return LinkConfig{"NVLink4", Seconds{2e-6},
                      BitsPerSecond{3.6e12}}; // Table IV.
}

LinkConfig
pcie3()
{
    return LinkConfig{"PCIe3 x16", Seconds{5e-6},
                      units::gigabytesPerSecondBw(15.75)};
}

LinkConfig
edrInfiniband()
{
    return LinkConfig{"EDR InfiniBand", Seconds{1.5e-6},
                      units::gigabitsPerSecondBw(100.0)};
}

LinkConfig
hdrInfiniband()
{
    return LinkConfig{"HDR InfiniBand", Seconds{1.2e-6},
                      units::gigabitsPerSecondBw(200.0)};
}

LinkConfig
ndrInfiniband()
{
    return LinkConfig{"NDR InfiniBand", Seconds{1.0e-6},
                      units::gigabitsPerSecondBw(400.0)};
}

LinkConfig
opticalFiber(BitsPerSecond off_chip)
{
    require(off_chip > BitsPerSecond{0.0},
            "opticalFiber: off-chip bandwidth must be positive");
    return LinkConfig{"optical fiber", Seconds{2e-7}, off_chip};
}

SystemConfig
hgx2(std::int64_t accelerators)
{
    require(accelerators >= 1 && accelerators <= 16,
            "hgx2: accelerator count must be in [1, 16], got ",
            accelerators);
    SystemConfig sys;
    sys.name = "HGX-2";
    sys.numNodes = 1;
    sys.acceleratorsPerNode = accelerators;
    sys.intraLink = nvlinkV100();
    // Single node: the inter-node link is unused but must be valid.
    sys.interLink = hdrInfiniband();
    sys.nicsPerNode = 1;
    sys.validate();
    return sys;
}

SystemConfig
a100Cluster1024()
{
    SystemConfig sys;
    sys.name = "128x8 A100 / HDR";
    sys.numNodes = 128;
    sys.acceleratorsPerNode = 8;
    sys.intraLink = nvlinkA100();
    sys.interLink = hdrInfiniband();
    sys.nicsPerNode = 8;
    sys.validate();
    return sys;
}

SystemConfig
lowEndCluster(std::int64_t accelerators_per_node)
{
    require(accelerators_per_node >= 1,
            "lowEndCluster: accelerators per node must be >= 1, got ",
            accelerators_per_node);
    require(1024 % accelerators_per_node == 0,
            "lowEndCluster: accelerators per node must divide 1024, "
            "got ",
            accelerators_per_node);
    SystemConfig sys;
    sys.name = "low-end " +
               std::to_string(1024 / accelerators_per_node) + "x" +
               std::to_string(accelerators_per_node) + " A100 / EDR";
    sys.numNodes = 1024 / accelerators_per_node;
    sys.acceleratorsPerNode = accelerators_per_node;
    sys.intraLink = nvlinkA100();
    sys.interLink = edrInfiniband();
    sys.nicsPerNode = accelerators_per_node;
    sys.validate();
    return sys;
}

SystemConfig
h100Cluster3072()
{
    SystemConfig sys;
    sys.name = "384x8 H100 / NDR";
    sys.numNodes = 384;
    sys.acceleratorsPerNode = 8;
    sys.intraLink = nvlinkH100();
    sys.interLink = ndrInfiniband();
    sys.nicsPerNode = 8;
    sys.validate();
    return sys;
}

} // namespace presets
} // namespace net
} // namespace amped

#include "collectives.hpp"

#include "common/error.hpp"

namespace amped {
namespace net {

Seconds
allReduceTime(std::int64_t participants, double elements,
              Bits bits_per_element, const LinkConfig &link,
              double topology_factor)
{
    require(participants >= 1,
            "allReduceTime: participants must be >= 1, got ",
            participants);
    require(elements >= 0.0, "allReduceTime: negative element count");
    require(bits_per_element > Bits{0.0},
            "allReduceTime: bits per element must be positive");
    if (participants == 1)
        return Seconds{0.0};
    const double factor = topology_factor >= 0.0
                              ? topology_factor
                              : topology::ringAllReduce(participants);
    const Seconds latency_term = link.latency * factor *
                                 static_cast<double>(participants);
    const Seconds bandwidth_term =
        elements * bits_per_element / link.bandwidth * factor;
    return latency_term + bandwidth_term;
}

Seconds
pointToPointTime(double elements, Bits bits_per_element,
                 const LinkConfig &link)
{
    require(elements >= 0.0, "pointToPointTime: negative element count");
    require(bits_per_element > Bits{0.0},
            "pointToPointTime: bits per element must be positive");
    return link.latency +
           elements * bits_per_element / link.bandwidth;
}

Seconds
allToAllTime(std::int64_t num_nodes, double elements,
             Bits bits_per_element, const LinkConfig &intra,
             Seconds inter_latency, BitsPerSecond inter_bandwidth)
{
    require(num_nodes >= 1, "allToAllTime: num_nodes must be >= 1, got ",
            num_nodes);
    require(elements >= 0.0, "allToAllTime: negative element count");
    require(bits_per_element > Bits{0.0},
            "allToAllTime: bits per element must be positive");
    require(inter_bandwidth > BitsPerSecond{0.0},
            "allToAllTime: inter bandwidth must be positive");
    if (num_nodes == 1) {
        // Purely intra-node exchange; latency still applies once per
        // participant pair but the topology factor is zero, so the
        // whole pattern collapses to a local shuffle.
        return Seconds{0.0};
    }
    const double nd = static_cast<double>(num_nodes);
    const double factor = topology::pairwiseAllToAll(num_nodes);
    const Seconds latency_term = inter_latency * factor * nd;
    const Bits data_bits = elements * bits_per_element;
    // Seconds per bit of the blended intra/inter path.
    const auto path_cost = 1.0 / (nd * intra.bandwidth) +
                           (nd - 1.0) / (nd * inter_bandwidth);
    const Seconds bandwidth_term = data_bits * factor * path_cost;
    return latency_term + bandwidth_term;
}

Seconds
hierarchicalAllReduceTime(std::int64_t intra_participants,
                          std::int64_t inter_participants,
                          double elements, Bits bits_per_element,
                          const LinkConfig &intra, Seconds inter_latency,
                          BitsPerSecond inter_bandwidth)
{
    require(intra_participants >= 1,
            "hierarchicalAllReduceTime: intra participants must be >= 1");
    require(inter_participants >= 1,
            "hierarchicalAllReduceTime: inter participants must be >= 1");
    require(inter_bandwidth > BitsPerSecond{0.0},
            "hierarchicalAllReduceTime: inter bandwidth must be "
            "positive");

    const Seconds intra_time = allReduceTime(
        intra_participants, elements, bits_per_element, intra);

    Seconds inter_time{0.0};
    if (inter_participants > 1) {
        const LinkConfig inter_link{"inter", inter_latency,
                                    inter_bandwidth};
        inter_time = allReduceTime(inter_participants, elements,
                                   bits_per_element, inter_link);
    }
    return intra_time + inter_time;
}

} // namespace net
} // namespace amped

/**
 * @file
 * Distributed-system description (paper Sec. IV, first paragraph):
 * multiple nodes, each holding several homogeneous accelerators;
 * accelerators within a node communicate over intra-node links,
 * across nodes over inter-node links whose aggregate bandwidth
 * scales with the number of network cards per node (Case Study II).
 */

#ifndef AMPED_NET_SYSTEM_CONFIG_HPP
#define AMPED_NET_SYSTEM_CONFIG_HPP

#include <cstdint>
#include <string>

#include "net/link.hpp"

namespace amped {
namespace net {

/**
 * A cluster of nodes with homogeneous accelerators.
 */
struct SystemConfig
{
    /** Display name ("128x8 A100 / HDR", ...). */
    std::string name = "unnamed";

    /** Number of multi-accelerator nodes, N_nodes. */
    std::int64_t numNodes = 0;

    /** Accelerators per node. */
    std::int64_t acceleratorsPerNode = 0;

    /** Intra-node link (per accelerator pair; NVLink class). */
    LinkConfig intraLink;

    /**
     * Inter-node link of a single network card (InfiniBand class or
     * one optical-fiber attachment).
     */
    LinkConfig interLink;

    /** Network cards (or fiber attachments) per node. */
    std::int64_t nicsPerNode = 1;

    /**
     * True when the inter-node links form a pooled switched fabric
     * (the photonic communication substrate of Case Study III): any
     * accelerator's traffic can use every attachment, so scattered
     * exchanges like the MoE all-to-all see the node-aggregate
     * bandwidth.  False models conventional NICs bound to specific
     * accelerators by PCIe locality, where one accelerator's
     * exchange stream rides one NIC (per-stream bandwidth).
     */
    bool interIsPooledFabric = false;

    /**
     * Validates the system description.
     * @throws UserError on the first violated constraint.
     */
    void validate() const;

    /** Total accelerator count numNodes * acceleratorsPerNode. */
    std::int64_t totalAccelerators() const;

    /** Effective intra-node bandwidth BW_intra. */
    BitsPerSecond intraBandwidth() const;

    /**
     * Aggregate per-node inter-node bandwidth: one NIC's bandwidth
     * times the NIC count.
     */
    BitsPerSecond interBandwidth() const;

    /**
     * Per-communication-stream inter-node bandwidth BW_inter: the
     * node aggregate divided by the accelerators sharing it.  This is
     * the bandwidth one accelerator's ring / all-to-all stream sees,
     * and the BW_inter every AMPeD equation uses: with one NIC per
     * accelerator (Case Studies I and II) it equals one NIC's
     * bandwidth; with one optical fiber per accelerator (Case Study
     * III, Opt. 1) it equals the accelerator's off-chip bandwidth; in
     * the larger substrate configurations (Opt. 2) it shrinks because
     * not every accelerator sits on the substrate edge.
     */
    BitsPerSecond perStreamInterBandwidth() const;

    /** Inter-node link latency C_inter. */
    Seconds interLatency() const { return interLink.latency; }

    /** Intra-node link latency C_intra. */
    Seconds intraLatency() const { return intraLink.latency; }

    /** Captures the derived link parameters (see SystemSnapshot). */
    struct SystemSnapshot snapshot() const;
};

/**
 * Immutable snapshot of every system-derived link parameter the
 * communication equations read per evaluation.  The scalar evaluator
 * re-derives these per call — including re-constructing the
 * "inter-effective" and "inter-hop" LinkConfigs (a heap-allocated
 * name string each) on every sweep point.  The batched sweep kernels
 * capture them once; every field is the bit-exact result of the
 * corresponding SystemConfig accessor, so snapshot-based evaluation
 * reproduces the scalar path exactly.
 */
struct SystemSnapshot
{
    std::int64_t numNodes = 0;          ///< SystemConfig::numNodes.
    bool interIsPooledFabric = false;   ///< Pooled-fabric flag.
    LinkConfig intraLink;               ///< The intra-node link.
    /** {"inter-effective", interLatency(), perStreamInterBandwidth()}. */
    LinkConfig interEffective;
    /** {"inter-hop", interLatency(), interBandwidth()}. */
    LinkConfig interHop;
    Seconds interLatency;               ///< SystemConfig::interLatency().
    BitsPerSecond interBandwidth;       ///< Node-aggregate inter BW.
    BitsPerSecond perStreamInterBandwidth; ///< One stream's share.
};

namespace presets {

/** Tiny 2x2 system for unit tests (not from the paper). */
SystemConfig tinyTest();

/** NVLink2 + NVSwitch intra-node link (HGX-2 / V100 class). */
LinkConfig nvlinkV100();

/** NVLink3 intra-node link, 2.4 Tbit/s (Table IV, A100). */
LinkConfig nvlinkA100();

/** NVLink4 intra-node link, 3.6 Tbit/s (Table IV, H100). */
LinkConfig nvlinkH100();

/** PCIe 3.0 x16 link (GPipe validation, Table III). */
LinkConfig pcie3();

/** EDR InfiniBand network card: 100 Gbit/s (Case Study II). */
LinkConfig edrInfiniband();

/** HDR InfiniBand network card: 200 Gbit/s (Case Study I). */
LinkConfig hdrInfiniband();

/** NDR InfiniBand network card: 400 Gbit/s (Case Study III ref). */
LinkConfig ndrInfiniband();

/**
 * One optical-fiber attachment on a photonic communication
 * substrate (Case Study III): carries the accelerator's full
 * off-chip bandwidth with sub-microsecond latency.
 *
 * @param off_chip Per-accelerator off-chip bandwidth.
 */
LinkConfig opticalFiber(BitsPerSecond off_chip);

/**
 * HGX-2 validation node (Table I): single node, up to 16 V100s on
 * NVLink+NVSwitch.
 *
 * @param accelerators Accelerators populated in the node (1..16).
 */
SystemConfig hgx2(std::int64_t accelerators);

/**
 * Case Study I system: 128 nodes x 8 A100, NVLink3 intra, HDR
 * InfiniBand inter with 8 NICs per node.
 */
SystemConfig a100Cluster1024();

/**
 * Case Study II low-end system: @p accelerators_per_node accelerators
 * and the same number of EDR NICs per node, node count chosen to keep
 * 1024 total accelerators.
 */
SystemConfig lowEndCluster(std::int64_t accelerators_per_node);

/**
 * Case Study III reference system: 384 nodes x 8 H100, NVLink4
 * intra, 8 NDR NICs per node (3072 accelerators).
 */
SystemConfig h100Cluster3072();

} // namespace presets
} // namespace net
} // namespace amped

#endif // AMPED_NET_SYSTEM_CONFIG_HPP

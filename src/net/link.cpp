#include "link.hpp"

#include <cmath>

#include "common/error.hpp"

namespace amped {
namespace net {

void
LinkConfig::validate() const
{
    require(latency >= Seconds{0.0}, name,
            ": link latency must be non-negative, got ", latency);
    require(bandwidth > BitsPerSecond{0.0}, name,
            ": link bandwidth must be positive, got ", bandwidth);
}

Seconds
LinkConfig::transferTime(Bits bits) const
{
    require(bits >= Bits{0.0}, name,
            ": transfer size must be non-negative");
    return bits / bandwidth;
}

LinkConfig
LinkConfig::scaledBandwidth(double factor) const
{
    require(factor > 0.0, name,
            ": bandwidth scale factor must be positive, got ", factor);
    LinkConfig scaled = *this;
    scaled.bandwidth *= factor;
    return scaled;
}

namespace topology {

double
ringAllReduce(std::int64_t n)
{
    require(n >= 1, "ringAllReduce: need at least one rank, got ", n);
    if (n == 1)
        return 0.0; // no communication with a single participant
    const double nd = static_cast<double>(n);
    return 2.0 * (nd - 1.0) / nd;
}

double
pairwiseAllToAll(std::int64_t n)
{
    require(n >= 1, "pairwiseAllToAll: need at least one rank, got ", n);
    if (n == 1)
        return 0.0;
    const double nd = static_cast<double>(n);
    return (nd - 1.0) / nd;
}

double
treeAllReduce(std::int64_t n)
{
    require(n >= 1, "treeAllReduce: need at least one rank, got ", n);
    if (n == 1)
        return 0.0;
    const double nd = static_cast<double>(n);
    return 2.0 * std::log2(nd) / nd;
}

double
bidirectionalRingAllReduce(std::int64_t n)
{
    return ringAllReduce(n) / 2.0;
}

double
hierarchicalRingAllReduce(std::int64_t a, std::int64_t b)
{
    require(a >= 1 && b >= 1,
            "hierarchicalRingAllReduce: dimensions must be >= 1, got ",
            a, " x ", b);
    return ringAllReduce(a) +
           ringAllReduce(b) / static_cast<double>(a);
}

} // namespace topology
} // namespace net
} // namespace amped

/**
 * @file
 * Communication-link description and topology factors (paper
 * Sec. IV-B).
 *
 * AMPeD separates intra-node links (NVLink-class) and inter-node
 * links (InfiniBand-class, or optical substrates in Case Study III),
 * each with a latency C and a bandwidth BW.  A topology factor T
 * converts an algorithm + topology pair into "effective traversals
 * of the link per element" (ring all-reduce: 2 (N-1)/N; pairwise
 * all-to-all: (N-1)/N).
 */

#ifndef AMPED_NET_LINK_HPP
#define AMPED_NET_LINK_HPP

#include <cstdint>
#include <string>

#include "common/quantity.hpp"

namespace amped {
namespace net {

/**
 * A point-to-point communication link.
 */
struct LinkConfig
{
    /** Display name ("NVLink3", "HDR InfiniBand", ...). */
    std::string name = "unnamed";

    /** Per-message latency C. */
    Seconds latency;

    /** Bandwidth BW (Table IV quotes bits per second). */
    BitsPerSecond bandwidth;

    /**
     * Validates the link (latency >= 0, bandwidth > 0).
     * @throws UserError on violation.
     */
    void validate() const;

    /** Pure serialization time for @p bits over this link. */
    Seconds transferTime(Bits bits) const;

    /** Returns a copy with the bandwidth scaled by @p factor. */
    LinkConfig scaledBandwidth(double factor) const;
};

namespace topology {

/**
 * Ring all-reduce topology factor 2 (N - 1) / N (paper Sec. IV-B1):
 * a reduce-scatter plus an all-gather, each moving (N-1)/N of the
 * data per rank.
 *
 * @param n Number of communicating accelerators; n >= 1.
 */
double ringAllReduce(std::int64_t n);

/**
 * Pairwise-exchange all-to-all topology factor (N - 1) / N (paper
 * Sec. IV-D).
 *
 * @param n Number of participants; n >= 1.
 */
double pairwiseAllToAll(std::int64_t n);

/**
 * Tree all-reduce topology factor 2 log2(N) / N: fewer steps than a
 * ring at large N at the cost of bandwidth efficiency at small N.
 * Provided as an alternative knob; the paper's defaults use the ring.
 */
double treeAllReduce(std::int64_t n);

/**
 * Bidirectional-ring all-reduce factor (N - 1) / N: half the
 * unidirectional factor, modeling NVSwitch-class fabrics whose links
 * move data in both directions at full rate simultaneously (the
 * per-direction bandwidth is what Table IV quotes).  Used as the
 * intra-node topology override on NVSwitch systems (EXPERIMENTS.md).
 */
double bidirectionalRingAllReduce(std::int64_t n);

/**
 * Hierarchical (2-D) ring all-reduce factor for n = a x b ranks:
 * reduce-scatter/all-gather rings of size @p a first, then rings of
 * size @p b over the already 1/a-sized shards —
 * ring(a) + ring(b) / a.  Algebraically this equals the flat
 * ring(a b) factor (the hierarchy wins by putting the size-a stage
 * on the *faster* tier, not by moving less data); the function
 * exists so callers can price the two stages against different
 * links, and to document that identity.  Degenerates to the plain
 * ring when either dimension is 1.
 */
double hierarchicalRingAllReduce(std::int64_t a, std::int64_t b);

} // namespace topology
} // namespace net
} // namespace amped

#endif // AMPED_NET_LINK_HPP

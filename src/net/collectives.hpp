/**
 * @file
 * Analytical cost models for the collective operations AMPeD uses.
 *
 * These are the generic alpha-beta-style building blocks behind the
 * paper's communication equations:
 *
 *  - allReduceTime: Eq. 6 / Eq. 11 form
 *      C * T * N  +  elements * bits / BW * T
 *  - pointToPointTime: Eq. 7 form (pipeline hops)
 *  - allToAllTime: Eq. 9 form (MoE dispatch / combine)
 *  - hierarchicalAllReduceTime: intra-node stage + inter-node stage
 *    (Eq. 10)
 *
 * Keeping them separate from the core model lets the simulator, the
 * core equations, and ablation benches share one audited
 * implementation.
 */

#ifndef AMPED_NET_COLLECTIVES_HPP
#define AMPED_NET_COLLECTIVES_HPP

#include <cstdint>

#include "net/link.hpp"

namespace amped {
namespace net {

/**
 * All-reduce over @p participants ranks connected by @p link.
 *
 * Cost = C * T * participants + elements * bits_per_element / BW * T,
 * where T is the topology factor (ring by default).  Zero when
 * participants <= 1.
 *
 * @param participants Communicating accelerators.
 * @param elements Elements reduced per rank.
 * @param bits_per_element Precision of each element (S_act or S_g).
 * @param link Link used for every step.
 * @param topology_factor Pass a custom T; negative selects the ring
 *        default 2 (N-1)/N.
 */
Seconds allReduceTime(std::int64_t participants, double elements,
                      Bits bits_per_element, const LinkConfig &link,
                      double topology_factor = -1.0);

/**
 * One point-to-point transfer (pipeline hop): C + bits / BW.
 *
 * @param elements Elements transferred.
 * @param bits_per_element Precision of each element.
 * @param link Link traversed.
 */
Seconds pointToPointTime(double elements, Bits bits_per_element,
                         const LinkConfig &link);

/**
 * Pairwise-exchange all-to-all across @p num_nodes nodes (paper
 * Eq. 9, one of the two exchanges).
 *
 * Cost = C_inter * T_MoE * N_nodes
 *      + elements * bits * T_MoE * [ 1 / (N_nodes * BW_intra)
 *      + (N_nodes - 1) / (N_nodes * BW_inter) ],
 * with T_MoE = (N-1)/N: tokens stay on-node with probability
 * 1/N_nodes and cross nodes otherwise (uniform routing, perfect load
 * balance).
 */
Seconds allToAllTime(std::int64_t num_nodes, double elements,
                     Bits bits_per_element, const LinkConfig &intra,
                     Seconds inter_latency,
                     BitsPerSecond inter_bandwidth);

/**
 * Hierarchical all-reduce: reduce within each node over @p intra,
 * then across nodes over the aggregate inter-node bandwidth
 * (Eq. 10 = Eq. 11 intra stage + inter stage).
 *
 * @param intra_participants Ranks inside one node.
 * @param inter_participants Node-level ranks.
 * @param elements Elements reduced.
 * @param bits_per_element Precision of each element.
 * @param intra Intra-node link.
 * @param inter_latency Inter-node latency.
 * @param inter_bandwidth Aggregate inter-node bandwidth.
 */
Seconds hierarchicalAllReduceTime(std::int64_t intra_participants,
                                  std::int64_t inter_participants,
                                  double elements,
                                  Bits bits_per_element,
                                  const LinkConfig &intra,
                                  Seconds inter_latency,
                                  BitsPerSecond inter_bandwidth);

} // namespace net
} // namespace amped

#endif // AMPED_NET_COLLECTIVES_HPP

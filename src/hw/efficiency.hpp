/**
 * @file
 * Microbatch-efficiency model eff(ub) (paper Sec. IV-A).
 *
 * The peak MAC throughput is scaled by eff(ub) to capture compute
 * utilization at a given microbatch size.  The paper uses the
 * empirical form  eff(ub) = a * ub / (b + ub)  fitted to measured
 * data, with a floor (Case Study I fixes a 25 % lower limit) and an
 * optional decay past a critical microbatch size (large microbatches
 * can lose efficiency, Sec. IV-A / [24]).
 */

#ifndef AMPED_HW_EFFICIENCY_HPP
#define AMPED_HW_EFFICIENCY_HPP

#include <vector>

#include "common/math_util.hpp"

namespace amped {
namespace hw {

/**
 * eff(ub) = clamp(a * ub / (b + ub), floor, 1), with an optional
 * linear decay beyond a critical microbatch size.
 */
class MicrobatchEfficiency
{
  public:
    /**
     * @param a Saturation efficiency (asymptote); in (0, 1].
     * @param b Half-saturation microbatch size; > 0.
     * @param floor Lower clamp (Case Study I uses 0.25); in [0, a].
     */
    MicrobatchEfficiency(double a, double b, double floor = 0.0);

    /**
     * Enables a decay region: beyond @p critical_ub the efficiency
     * decreases by @p decay_per_ub per unit of microbatch size
     * (still clamped to the floor).
     */
    void setDecay(double critical_ub, double decay_per_ub);

    /**
     * Evaluates eff(ub).
     *
     * @param ub Microbatch size; must be positive.
     * @return Efficiency in [max(floor, epsilon), 1].
     */
    double operator()(double ub) const;

    double a() const { return a_; }
    double b() const { return b_; }
    double floor() const { return floor_; }
    /** Decay onset microbatch size; 0 when decay is disabled. */
    double criticalUb() const { return criticalUb_; }
    /** Efficiency lost per unit microbatch beyond the onset. */
    double decayPerUb() const { return decayPerUb_; }

  private:
    double a_;
    double b_;
    double floor_;
    double criticalUb_ = 0.0;  // 0 = decay disabled
    double decayPerUb_ = 0.0;
};

/**
 * Fits the (a, b) parameters of eff(ub) = a * ub / (b + ub) to
 * measured (ub, efficiency) samples, as the paper does with
 * experimental runtime data.
 */
class EfficiencyFitter
{
  public:
    /** Adds a measured sample (microbatch size, observed efficiency). */
    void addSample(double ub, double efficiency);

    /** Number of samples added. */
    std::size_t sampleCount() const { return samples_.size(); }

    /**
     * Runs the fit.
     *
     * @param floor Floor applied to the returned model.
     * @return Fitted efficiency model.
     * @throws UserError when fewer than two samples were added.
     */
    MicrobatchEfficiency fit(double floor = 0.0) const;

    /** Residual sum of squared errors of the last fit. */
    double lastResidual() const { return lastResidual_; }

  private:
    std::vector<math::Sample> samples_;
    mutable double lastResidual_ = 0.0;
};

} // namespace hw
} // namespace amped

#endif // AMPED_HW_EFFICIENCY_HPP

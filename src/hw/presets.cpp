#include "presets.hpp"

#include "common/quantity.hpp"
#include "common/units.hpp"

namespace amped {
namespace hw {
namespace presets {

AcceleratorConfig
tinyTest()
{
    AcceleratorConfig cfg;
    cfg.name = "tiny-test";
    cfg.frequency = Hertz{1e9};
    cfg.numCores = 4;
    cfg.numMacUnits = 2;
    cfg.macUnitWidth = 16;
    cfg.numNonlinUnits = 16;
    cfg.nonlinUnitWidth = 2;
    cfg.memoryBytes = 4.0 * units::giga;
    cfg.offChipBandwidth = units::gigabytesPerSecondBw(50.0);
    cfg.validate();
    return cfg;
}

AcceleratorConfig
v100Sxm3()
{
    // Table I: Volta GV100, 80 SMs with 8 tensor cores each, boost
    // clock 1530 MHz.  Peak FP16: 1.53e9 * 80 * 8 * 128 = 125 TFLOP/s.
    AcceleratorConfig cfg;
    cfg.name = "NVIDIA V100 SXM3";
    cfg.frequency = Hertz{1.53e9};
    cfg.numCores = 80;
    cfg.numMacUnits = 8;
    cfg.macUnitWidth = 128;
    cfg.numNonlinUnits = 128;
    cfg.nonlinUnitWidth = 4;
    cfg.memoryBytes = 32.0 * units::giga;
    // NVLink2: 6 links x 50 GB/s = 300 GB/s aggregate.
    cfg.offChipBandwidth = units::gigabytesPerSecondBw(300.0);
    cfg.validate();
    return cfg;
}

AcceleratorConfig
p100Pcie()
{
    // Pascal GP100: 56 SMs, boost 1.48 GHz, no tensor cores.  Peak
    // FP16: 1.48e9 * 56 * 4 * 64 = 21.2 TFLOP/s.
    AcceleratorConfig cfg;
    cfg.name = "NVIDIA P100 PCIe";
    cfg.frequency = Hertz{1.48e9};
    cfg.numCores = 56;
    cfg.numMacUnits = 4;
    cfg.macUnitWidth = 64;
    cfg.numNonlinUnits = 112;
    cfg.nonlinUnitWidth = 4;
    cfg.memoryBytes = 16.0 * units::giga;
    // PCIe 3.0 x16: ~15.75 GB/s.
    cfg.offChipBandwidth = units::gigabytesPerSecondBw(15.75);
    cfg.validate();
    return cfg;
}

AcceleratorConfig
a100()
{
    // Table IV row 1.  Peak: 1.41e9 * 108 * 4 * 512 = 312 TFLOP/s.
    AcceleratorConfig cfg;
    cfg.name = "NVIDIA A100";
    cfg.frequency = Hertz{1.41e9};
    cfg.numCores = 108;
    cfg.numMacUnits = 4;
    cfg.macUnitWidth = 512;
    cfg.numNonlinUnits = 192;
    cfg.nonlinUnitWidth = 4;
    cfg.memoryBytes = 80.0 * units::giga;
    cfg.offChipBandwidth = BitsPerSecond{2.4e12}; // Table IV.
    cfg.validate();
    return cfg;
}

AcceleratorConfig
h100()
{
    // Table IV row 2.  Peak: 1.8e9 * 132 * 4 * 1024 = 973 TFLOP/s.
    AcceleratorConfig cfg;
    cfg.name = "NVIDIA H100";
    cfg.frequency = Hertz{1.8e9};
    cfg.numCores = 132;
    cfg.numMacUnits = 4;
    cfg.macUnitWidth = 1024;
    cfg.numNonlinUnits = 320;
    cfg.nonlinUnitWidth = 4;
    cfg.memoryBytes = 80.0 * units::giga;
    cfg.offChipBandwidth = BitsPerSecond{3.6e12}; // Table IV.
    cfg.validate();
    return cfg;
}

} // namespace presets
} // namespace hw
} // namespace amped

#include "efficiency.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace amped {
namespace hw {

namespace {
/// Efficiency may never reach exactly zero (it divides the peak).
constexpr double kMinEfficiency = 1e-6;
} // namespace

MicrobatchEfficiency::MicrobatchEfficiency(double a, double b,
                                           double floor)
    : a_(a), b_(b), floor_(floor)
{
    require(a > 0.0 && a <= 1.0,
            "efficiency parameter a must be in (0, 1], got ", a);
    require(b > 0.0, "efficiency parameter b must be positive, got ", b);
    require(floor >= 0.0 && floor <= a,
            "efficiency floor must be in [0, a], got ", floor);
}

void
MicrobatchEfficiency::setDecay(double critical_ub, double decay_per_ub)
{
    require(critical_ub > 0.0,
            "critical microbatch size must be positive, got ",
            critical_ub);
    require(decay_per_ub >= 0.0,
            "decay rate must be non-negative, got ", decay_per_ub);
    criticalUb_ = critical_ub;
    decayPerUb_ = decay_per_ub;
}

double
MicrobatchEfficiency::operator()(double ub) const
{
    require(ub > 0.0, "microbatch size must be positive, got ", ub);
    double eff = a_ * ub / (b_ + ub);
    if (criticalUb_ > 0.0 && ub > criticalUb_)
        eff -= decayPerUb_ * (ub - criticalUb_);
    eff = std::clamp(eff, std::max(floor_, kMinEfficiency), 1.0);
    return eff;
}

void
EfficiencyFitter::addSample(double ub, double efficiency)
{
    require(ub > 0.0, "sample microbatch size must be positive, got ",
            ub);
    require(efficiency > 0.0 && efficiency <= 1.0,
            "sample efficiency must be in (0, 1], got ", efficiency);
    samples_.push_back(math::Sample{ub, efficiency});
}

MicrobatchEfficiency
EfficiencyFitter::fit(double floor) const
{
    require(samples_.size() >= 2,
            "efficiency fit needs at least 2 samples, have ",
            samples_.size());
    // b spans several orders of magnitude (sub-1 to thousands of
    // samples), so search it on a log scale.
    const auto model = [](double a, double log_b, double x) {
        return a * x / (std::exp(log_b) + x);
    };
    const auto result = math::fitTwoParam(
        samples_, model, {1e-3, 1.0},
        {std::log(1e-3), std::log(4096.0)});
    lastResidual_ = result.sumSquaredError;
    return MicrobatchEfficiency(result.a, std::exp(result.b),
                                std::min(floor, result.a));
}

} // namespace hw
} // namespace amped

#include "accelerator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace amped {
namespace hw {

void
Precisions::validate() const
{
    require(parameterBits > Bits{0.0}, "parameterBits must be positive");
    require(activationBits > Bits{0.0},
            "activationBits must be positive");
    require(nonlinearBits > Bits{0.0}, "nonlinearBits must be positive");
    require(macUnitBits > Bits{0.0}, "macUnitBits must be positive");
    require(nonlinearUnitBits > Bits{0.0},
            "nonlinearUnitBits must be positive");
}

void
AcceleratorConfig::validate() const
{
    require(frequency > Hertz{0.0}, name,
            ": frequency must be positive");
    require(numCores > 0, name, ": numCores must be positive");
    require(numMacUnits > 0, name, ": numMacUnits must be positive");
    require(macUnitWidth > 0, name, ": macUnitWidth must be positive");
    require(numNonlinUnits > 0, name,
            ": numNonlinUnits must be positive");
    require(nonlinUnitWidth > 0, name,
            ": nonlinUnitWidth must be positive");
    require(memoryBytes > 0.0, name, ": memoryBytes must be positive");
    require(offChipBandwidth > BitsPerSecond{0.0}, name,
            ": offChipBandwidth must be positive");
    precisions.validate();
}

FlopsPerSecond
AcceleratorConfig::peakMacFlops() const
{
    // W_FU is FLOPs per cycle; cycles are dimensionless, so scaling
    // the clock rate by the device-total FLOPs-per-cycle and tagging
    // one FLOP per cycle yields FLOP/s without touching the value.
    const Hertz scaled = frequency * static_cast<double>(numCores) *
                         static_cast<double>(numMacUnits) *
                         static_cast<double>(macUnitWidth);
    return Flops{1.0} * scaled;
}

FlopsPerSecond
AcceleratorConfig::peakNonlinOps() const
{
    const Hertz scaled = frequency *
                         static_cast<double>(numNonlinUnits) *
                         static_cast<double>(nonlinUnitWidth);
    return Flops{1.0} * scaled;
}

double
macPrecisionFactor(const Precisions &p)
{
    const double ratio =
        std::max(p.parameterBits, p.activationBits) / p.macUnitBits;
    return std::max(1.0, std::ceil(ratio));
}

double
nonlinPrecisionFactor(const Precisions &p)
{
    const double ratio = p.nonlinearBits / p.nonlinearUnitBits;
    return std::max(1.0, std::ceil(ratio));
}

SecondsPerFlop
cMac(const AcceleratorConfig &accel, double efficiency)
{
    require(efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got ", efficiency);
    return 1.0 / (accel.peakMacFlops() * efficiency);
}

SecondsPerFlop
cNonlin(const AcceleratorConfig &accel)
{
    return 1.0 / accel.peakNonlinOps();
}

ComputeRateSnapshot
computeRateSnapshot(const AcceleratorConfig &accel)
{
    accel.validate();
    ComputeRateSnapshot snap;
    snap.peakMacFlops = accel.peakMacFlops();
    snap.cNonlin = cNonlin(accel);
    snap.macFactor = macPrecisionFactor(accel.precisions);
    snap.nonlinFactor = nonlinPrecisionFactor(accel.precisions);
    return snap;
}

} // namespace hw
} // namespace amped

/**
 * @file
 * Accelerator micro-architecture description (paper Sec. IV-A,
 * Table IV).
 *
 * The compute-time model needs: clock frequency f, core count
 * N_cores, MAC functional units per core N_FU with width W_FU,
 * a nonlinear functional-unit array (N_FU_nonlin, W_FU_nonlin), and
 * the operand / functional-unit precisions used in the ceil() scaling
 * of Eq. 2.
 *
 * Unit convention (Sec. 3 of DESIGN.md): the product
 * f * N_cores * N_FU * W_FU equals the accelerator's peak FLOP/s
 * (A100: 312 TFLOP/s, H100: 973 TFLOP/s, matching Table IV), so op
 * counts fed to the throughput model must be expressed in FLOPs
 * (1 MAC = 2 FLOPs).
 */

#ifndef AMPED_HW_ACCELERATOR_HPP
#define AMPED_HW_ACCELERATOR_HPP

#include <cstdint>
#include <string>

#include "common/quantity.hpp"

namespace amped {
namespace hw {

/**
 * Operand and functional-unit precisions in bits (Eq. 2).
 *
 * The compute time is scaled by ceil(max(S_p, S_act) / S_FU_MAC) for
 * MAC work and ceil(S_nonlin / S_FU_nonlin) for nonlinear work:
 * operands wider than the functional unit cost proportionally more
 * cycles, while narrower operands still occupy a full unit (ceil is
 * never below 1).
 */
struct Precisions
{
    Bits parameterBits{16.0};     ///< S_p.
    Bits activationBits{16.0};    ///< S_act.
    Bits nonlinearBits{16.0};     ///< S_nonlin.
    Bits macUnitBits{16.0};       ///< S_FU_MAC.
    Bits nonlinearUnitBits{16.0}; ///< S_FU_nonlin.

    /** Validates that every precision is positive. */
    void validate() const;
};

/**
 * Accelerator design parameters (one homogeneous device).
 */
struct AcceleratorConfig
{
    /** Display name ("NVIDIA A100", ...). */
    std::string name = "unnamed";

    /** Clock frequency f. */
    Hertz frequency;

    /** Number of compute cores (SMs), N_cores. */
    std::int64_t numCores = 0;

    /** MAC functional units per core, N_FU. */
    std::int64_t numMacUnits = 0;

    /** FLOPs per cycle per MAC unit, W_FU. */
    std::int64_t macUnitWidth = 0;

    /**
     * Nonlinear functional units, N_FU_nonlin.  Following Eq. 4 this
     * is a device-total count (the equation has no N_cores factor).
     */
    std::int64_t numNonlinUnits = 0;

    /** Ops per cycle per nonlinear unit, W_FU_nonlin. */
    std::int64_t nonlinUnitWidth = 0;

    /** Device memory capacity in bytes (feasibility checks). */
    double memoryBytes = 0.0;

    /**
     * Off-chip bandwidth (the per-accelerator intra-node bandwidth,
     * BW_intra in Table IV).
     */
    BitsPerSecond offChipBandwidth;

    /** Operand / functional-unit precisions. */
    Precisions precisions;

    /**
     * Validates all invariants.
     * @throws UserError on the first violated constraint.
     */
    void validate() const;

    /** Peak MAC-pipeline throughput f N_cores N_FU W_FU. */
    FlopsPerSecond peakMacFlops() const;

    /** Peak nonlinear throughput f N_FU_nonlin W_FU_nonlin. */
    FlopsPerSecond peakNonlinOps() const;
};

/**
 * Immutable snapshot of every accelerator-derived rate the compute
 * equations read per evaluation.  The scalar evaluator re-derives
 * these from the AcceleratorConfig on every call (they are cheap);
 * the batched sweep kernels (core::SweepTermCache) capture them once
 * and reuse them across millions of grid points.  Every field is the
 * bit-exact result of the corresponding helper below, so a
 * snapshot-based evaluation reproduces the scalar path exactly.
 */
struct ComputeRateSnapshot
{
    FlopsPerSecond peakMacFlops;  ///< AcceleratorConfig::peakMacFlops().
    SecondsPerFlop cNonlin;       ///< hw::cNonlin(accel).
    double macFactor = 1.0;       ///< hw::macPrecisionFactor.
    double nonlinFactor = 1.0;    ///< hw::nonlinPrecisionFactor.
};

/** Captures the derived compute rates of @p accel (validated). */
ComputeRateSnapshot computeRateSnapshot(const AcceleratorConfig &accel);

/** ceil(max(S_p, S_act) / S_FU_MAC), never below 1 (Eq. 2). */
double macPrecisionFactor(const Precisions &p);

/** ceil(S_nonlin / S_FU_nonlin), never below 1 (Eq. 2). */
double nonlinPrecisionFactor(const Precisions &p);

/**
 * Reciprocal MAC throughput C_MAC =
 * (f N_cores N_FU W_FU eff(ub))^-1 in seconds per FLOP (Eq. 3).
 *
 * @param accel Accelerator description.
 * @param efficiency eff(ub) in (0, 1].
 */
SecondsPerFlop cMac(const AcceleratorConfig &accel, double efficiency);

/**
 * Reciprocal nonlinear throughput C_nonlin =
 * (f N_FU_nonlin W_FU_nonlin)^-1 in seconds per op (Eq. 4).
 */
SecondsPerFlop cNonlin(const AcceleratorConfig &accel);

} // namespace hw
} // namespace amped

#endif // AMPED_HW_ACCELERATOR_HPP

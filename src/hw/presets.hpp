/**
 * @file
 * Accelerator presets covering every device the paper uses.
 *
 * A100 and H100 parameters come verbatim from Table IV; V100 follows
 * Table I (the HGX-2 validation node); P100 follows the GPipe
 * validation setup (Table III).  For devices without tensor cores
 * (P100) the MAC-unit array is sized so that f N_cores N_FU W_FU
 * equals the vendor peak FP16 FLOP/s, consistent with the Table IV
 * convention.
 */

#ifndef AMPED_HW_PRESETS_HPP
#define AMPED_HW_PRESETS_HPP

#include "hw/accelerator.hpp"

namespace amped {
namespace hw {
namespace presets {

/** Tiny accelerator for fast unit tests (not from the paper). */
AcceleratorConfig tinyTest();

/** NVIDIA V100 SXM3 (Table I: HGX-2 validation node). */
AcceleratorConfig v100Sxm3();

/** NVIDIA P100 with PCIe 3.0 (Table III: GPipe validation). */
AcceleratorConfig p100Pcie();

/** NVIDIA A100 (Table IV row 1). */
AcceleratorConfig a100();

/** NVIDIA H100 (Table IV row 2). */
AcceleratorConfig h100();

} // namespace presets
} // namespace hw
} // namespace amped

#endif // AMPED_HW_PRESETS_HPP

/**
 * @file
 * Parallelism mapping (paper Sec. II-B, Sec. IV).
 *
 * AMPeD distinguishes where each parallelism dimension lives: tensor
 * (TP), pipeline (PP), and data (DP) parallelism each have an
 * intra-node and an inter-node degree, because the two tiers use
 * different links.  A mapping is valid for a system when the product
 * of intra degrees equals the accelerators per node and the product
 * of inter degrees equals the node count (all accelerators are
 * used).
 *
 * Mixture-of-Experts expert placement follows the paper's Sec. IV-D
 * model: experts are spread uniformly over all nodes, so the
 * all-to-all term is driven by the system's node count, and MoE is
 * enabled purely by the model configuration (numExperts > 0).
 */

#ifndef AMPED_MAPPING_PARALLELISM_HPP
#define AMPED_MAPPING_PARALLELISM_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/system_config.hpp"

namespace amped {
namespace mapping {

/**
 * Degrees of TP / PP / DP split across the two system tiers.
 */
struct ParallelismConfig
{
    std::int64_t tpIntra = 1; ///< Tensor-parallel ranks inside a node.
    std::int64_t tpInter = 1; ///< Tensor-parallel ranks across nodes.
    std::int64_t ppIntra = 1; ///< Pipeline stages inside a node.
    std::int64_t ppInter = 1; ///< Pipeline stages across nodes.
    std::int64_t dpIntra = 1; ///< Data-parallel replicas inside a node.
    std::int64_t dpInter = 1; ///< Data-parallel replicas across nodes.

    /** Total tensor-parallel degree N_TP. */
    std::int64_t tp() const { return tpIntra * tpInter; }

    /** Total pipeline-parallel degree N_PP. */
    std::int64_t pp() const { return ppIntra * ppInter; }

    /** Total data-parallel degree N_DP. */
    std::int64_t dp() const { return dpIntra * dpInter; }

    /** Total workers N_TP * N_PP * N_DP. */
    std::int64_t totalWorkers() const { return tp() * pp() * dp(); }

    /** All degrees positive? (throws otherwise). */
    void validate() const;

    /**
     * Validates this mapping against a system: intra product must
     * equal accelerators-per-node and inter product must equal the
     * node count.
     *
     * @throws UserError describing the mismatch.
     */
    void validateFor(const net::SystemConfig &system) const;

    /** Compact display string like "TP8 | PP2*DP64 (intra|inter)". */
    std::string toString() const;
};

/** Named constructors for the common mappings in the case studies. */
ParallelismConfig makeMapping(std::int64_t tp_intra, std::int64_t pp_intra,
                              std::int64_t dp_intra, std::int64_t tp_inter,
                              std::int64_t pp_inter,
                              std::int64_t dp_inter);

/**
 * Microbatch bookkeeping (paper Sec. IV-C, Sec. VI-B).
 *
 * Default rule (used by the case studies): the microbatch size is the
 * global batch shrunk by every DP and PP degree, ub = B / (N_DP *
 * N_PP), which makes the number of microbatches per minibatch equal
 * to the pipeline degree (N_ub = N_PP), exactly as the validation
 * experiments set it.  Either quantity can be overridden: Table II
 * uses the published microbatch sizes (then N_ub = (B / N_DP) / ub),
 * and GPipe's Table III fixes N_ub = M = 32.
 */
struct Microbatching
{
    /** Microbatch size ub; 0 selects the default B / (N_DP * N_PP). */
    double microbatchSizeOverride = 0.0;

    /**
     * Microbatches per minibatch, N_ub; 0 derives it as the
     * per-replica batch divided by the microbatch size.
     */
    double numMicrobatchesOverride = 0.0;

    /**
     * Microbatch size for a batch and mapping.
     *
     * @throws UserError when the resulting size is below one sample.
     */
    double microbatchSize(double batch, const ParallelismConfig &p) const;

    /**
     * Effective N_ub = (B / N_DP) / ub (or the override).
     *
     * @throws UserError when fewer than one microbatch results.
     */
    double numMicrobatches(double batch, const ParallelismConfig &p) const;
};

/**
 * Enumerates every valid mapping of a system (paper Sec. VI:
 * "all possible combinations of data, pipeline, and tensor
 * parallelism in intra-node and inter-node accelerators").
 */
class MappingSpace
{
  public:
    /**
     * @param system The cluster being mapped.
     */
    explicit MappingSpace(net::SystemConfig system);

    /**
     * All ordered (tp, pp, dp) factorizations of the intra- and
     * inter-node device counts, combined.
     *
     * @param max_pp Optional cap on the total pipeline degree (a
     *        model with L layers supports at most L stages);
     *        0 = uncapped.
     */
    std::vector<ParallelismConfig>
    enumerate(std::int64_t max_pp = 0) const;

    /** The underlying system. */
    const net::SystemConfig &system() const { return system_; }

  private:
    net::SystemConfig system_;
};

/**
 * All ordered triples (a, b, c) with a * b * c == n, n >= 1.
 */
std::vector<std::array<std::int64_t, 3>>
threeWayFactorizations(std::int64_t n);

} // namespace mapping
} // namespace amped

#endif // AMPED_MAPPING_PARALLELISM_HPP

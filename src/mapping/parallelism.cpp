#include "parallelism.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace amped {
namespace mapping {

void
ParallelismConfig::validate() const
{
    require(tpIntra >= 1 && tpInter >= 1 && ppIntra >= 1 &&
                ppInter >= 1 && dpIntra >= 1 && dpInter >= 1,
            "parallelism degrees must all be >= 1 (", toString(), ")");
}

void
ParallelismConfig::validateFor(const net::SystemConfig &system) const
{
    validate();
    const std::int64_t intra = tpIntra * ppIntra * dpIntra;
    const std::int64_t inter = tpInter * ppInter * dpInter;
    require(intra == system.acceleratorsPerNode,
            "mapping ", toString(), ": intra-node degree product ",
            intra, " != accelerators per node ",
            system.acceleratorsPerNode);
    require(inter == system.numNodes, "mapping ", toString(),
            ": inter-node degree product ", inter, " != node count ",
            system.numNodes);
}

std::string
ParallelismConfig::toString() const
{
    std::ostringstream oss;
    auto part = [&oss](const char *label, std::int64_t value,
                       bool &first) {
        if (value > 1) {
            if (!first)
                oss << "*";
            oss << label << value;
            first = false;
        }
    };
    bool first = true;
    part("TP", tpIntra, first);
    part("PP", ppIntra, first);
    part("DP", dpIntra, first);
    if (first)
        oss << "1";
    oss << " | ";
    first = true;
    part("TP", tpInter, first);
    part("PP", ppInter, first);
    part("DP", dpInter, first);
    if (first)
        oss << "1";
    oss << " (intra|inter)";
    return oss.str();
}

ParallelismConfig
makeMapping(std::int64_t tp_intra, std::int64_t pp_intra,
            std::int64_t dp_intra, std::int64_t tp_inter,
            std::int64_t pp_inter, std::int64_t dp_inter)
{
    ParallelismConfig cfg;
    cfg.tpIntra = tp_intra;
    cfg.ppIntra = pp_intra;
    cfg.dpIntra = dp_intra;
    cfg.tpInter = tp_inter;
    cfg.ppInter = pp_inter;
    cfg.dpInter = dp_inter;
    cfg.validate();
    return cfg;
}

double
Microbatching::microbatchSize(double batch,
                              const ParallelismConfig &p) const
{
    require(batch > 0.0, "batch size must be positive, got ", batch);
    double ub;
    if (microbatchSizeOverride > 0.0) {
        ub = microbatchSizeOverride;
    } else if (numMicrobatchesOverride > 0.0) {
        // With a fixed microbatch count, the microbatch size follows
        // from the per-replica batch.
        ub = batch / static_cast<double>(p.dp()) /
             numMicrobatchesOverride;
    } else {
        ub = batch / static_cast<double>(p.dp() * p.pp());
    }
    require(ub >= 1.0, "batch ", batch, " too small for mapping ",
            p.toString(), ": microbatch size would be ", ub,
            " (< 1 sample)");
    return ub;
}

double
Microbatching::numMicrobatches(double batch,
                               const ParallelismConfig &p) const
{
    if (numMicrobatchesOverride > 0.0)
        return numMicrobatchesOverride;
    const double per_replica = batch / static_cast<double>(p.dp());
    const double n_ub = per_replica / microbatchSize(batch, p);
    require(n_ub >= 1.0, "batch ", batch, " with mapping ",
            p.toString(), " yields ", n_ub, " microbatches (< 1)");
    return n_ub;
}

MappingSpace::MappingSpace(net::SystemConfig system)
    : system_(std::move(system))
{
    system_.validate();
}

std::vector<ParallelismConfig>
MappingSpace::enumerate(std::int64_t max_pp) const
{
    const auto intra_splits =
        threeWayFactorizations(system_.acceleratorsPerNode);
    const auto inter_splits = threeWayFactorizations(system_.numNodes);

    std::vector<ParallelismConfig> mappings;
    mappings.reserve(intra_splits.size() * inter_splits.size());
    for (const auto &intra : intra_splits) {
        for (const auto &inter : inter_splits) {
            ParallelismConfig cfg = makeMapping(
                intra[0], intra[1], intra[2], inter[0], inter[1],
                inter[2]);
            if (max_pp > 0 && cfg.pp() > max_pp)
                continue;
            mappings.push_back(cfg);
        }
    }
    return mappings;
}

std::vector<std::array<std::int64_t, 3>>
threeWayFactorizations(std::int64_t n)
{
    require(n >= 1, "threeWayFactorizations: n must be >= 1, got ", n);
    std::vector<std::array<std::int64_t, 3>> result;
    for (std::int64_t a : math::divisorsOf(n)) {
        const std::int64_t rest = n / a;
        for (std::int64_t b : math::divisorsOf(rest))
            result.push_back({a, b, rest / b});
    }
    return result;
}

} // namespace mapping
} // namespace amped

/**
 * @file
 * Thread-safe metrics registry: counters, gauges, and log-spaced
 * histograms with scoped wall-clock timers.
 *
 * Design goals (DESIGN.md `src/obs`):
 *
 *  - Hot-path friendly: after the first name lookup every update is a
 *    single relaxed atomic op; callers cache `Counter &` references in
 *    function-local statics.  The registry never removes or moves a
 *    metric, so references stay valid for the process lifetime.
 *
 *  - Deterministic snapshots: `snapshot()` orders metrics by name and
 *    `renderText(RenderMode::deterministic)` omits every wall-clock
 *    derived value (timing sums and buckets) so the rendered text is
 *    byte-stable across `AMPED_THREADS=N` for a fixed workload.  The
 *    full mode adds sums and non-empty buckets for humans.
 *
 *  - No compiled dependencies: only the header-only error machinery,
 *    so `amped_obs` sits below `amped_common` and the thread pool
 *    itself can be instrumented without a dependency cycle.
 */

#ifndef AMPED_OBS_METRICS_HPP
#define AMPED_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace amped::obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    { value_.fetch_add(n, std::memory_order_relaxed); }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Histogram over fixed log-spaced buckets.
 *
 * Bucket i counts observations in (upperBound(i-1), upperBound(i)]
 * with upperBound(i) = kFirstUpperBound * kBucketRatio^i; one final
 * overflow bucket catches everything above the last bound.  The
 * geometry is compile-time fixed (1 ns first bound, ratio 2, 64
 * bounds, reaching ~1.8e10 s) so snapshots from different runs and
 * different thread counts are structurally identical.
 */
class Histogram
{
  public:
    static constexpr int kNumBounds = 64;
    static constexpr double kFirstUpperBound = 1e-9;
    static constexpr double kBucketRatio = 2.0;

    /** Upper bound of bucket @p index (inclusive). */
    static double upperBound(int index);

    void observe(double value);

    /**
     * Observations recorded so far.  observe() publishes the bucket
     * and sum updates *before* incrementing the count (release), and
     * this load is an acquire: a reader that loads count() first and
     * then sum() / bucketCount() sees a sum and bucket total that
     * include at least every counted observation.  Concurrent
     * snapshots may see sum/buckets run *ahead* of count (an
     * observation between the two loads), never behind.
     */
    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_acquire);
    }

    /** Sum of observed values (coherent with count(); see there). */
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    std::uint64_t
    bucketCount(int index) const
    {
        return buckets_[static_cast<std::size_t>(index)]
            .load(std::memory_order_relaxed);
    }

    void reset();

  private:
    // +1 overflow bucket for values above the last bound.
    std::array<std::atomic<std::uint64_t>, kNumBounds + 1> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

enum class MetricKind { counter, gauge, histogram };

/** Value-copy of one metric, taken under the registry lock. */
struct MetricSnapshot
{
    std::string name;
    MetricKind kind = MetricKind::counter;
    /// Histogram only: values are wall-clock seconds and therefore
    /// non-deterministic across runs/thread counts.
    bool timing = false;
    std::uint64_t count = 0;   ///< counter value / histogram count
    double value = 0.0;        ///< gauge value / histogram sum
    /// Histogram only: kNumBounds+1 cumulative-free bucket counts.
    std::vector<std::uint64_t> buckets;
};

/** What `renderText` may include. */
enum class RenderMode {
    /// Counters, gauges, and histogram counts only — byte-stable
    /// across thread counts for a fixed workload.
    deterministic,
    /// Adds histogram sums and non-empty buckets (wall-clock data).
    full,
};

/**
 * Named metric store.  Creation is lazy and idempotent; asking for an
 * existing name with a different kind throws UserError.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    // Out of line: Entry is incomplete here, and owning instances
    // (tests use registry-per-test) need to destroy the entries.
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name, bool timing = false);

    /** Name-sorted value copies of every registered metric. */
    std::vector<MetricSnapshot> snapshot() const;

    /**
     * One metric per line, name-sorted:
     * `name<TAB>value` for counters/gauges, `name.count<TAB>n` for
     * histograms (plus `.sum` / `.le.<bound>` lines in full mode).
     */
    std::string renderText(RenderMode mode) const;

    /** Zeroes every metric's values; names/kinds stay registered. */
    void resetAll();

    /** Process-wide registry used by all built-in instrumentation. */
    static MetricsRegistry &global();

  private:
    struct Entry;

    Entry &lookup(const std::string &name, MetricKind kind,
                  bool timing);

    mutable Mutex mutex_;
    // map keeps snapshot() naturally name-sorted; unique_ptr keeps
    // metric addresses stable across rehash-free inserts.  The map
    // itself is guarded; the *metrics* behind the unique_ptrs are
    // lock-free atomics updated outside the lock by design.
    std::map<std::string, std::unique_ptr<Entry>> entries_
        AMPED_GUARDED_BY(mutex_);
};

/**
 * Records elapsed wall-clock seconds into a timing histogram on
 * destruction.  Usage:
 *
 *     static auto &h = MetricsRegistry::global()
 *         .histogram("engine.run.seconds", true);
 *     ScopedTimer timer(h);
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &histogram)
        : histogram_(&histogram),
          start_(std::chrono::steady_clock::now())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        histogram_->observe(
            std::chrono::duration<double>(elapsed).count());
    }

  private:
    Histogram *histogram_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace amped::obs

#endif // AMPED_OBS_METRICS_HPP

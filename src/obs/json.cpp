#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <locale>
#include <sstream>

#include "common/error.hpp"
#include "common/parse_num.hpp"

namespace amped::obs {

std::string
formatDouble(double value)
{
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return value > 0.0 ? "inf" : "-inf";
    // Shortest precision that survives a parse round trip (same
    // policy as testing/golden's formatCanonical).  The stream is
    // pinned to the classic locale and the reparse goes through the
    // locale-independent parseDouble, so a process-wide
    // std::locale::global(de_DE) cannot change a single byte of
    // rendered JSON.
    for (int precision = 1; precision <= 17; ++precision) {
        std::ostringstream oss;
        oss.imbue(std::locale::classic());
        oss.precision(precision);
        oss << value;
        const std::string text = oss.str();
        if (parseDouble(text.c_str()) == value)
            return text;
    }
    AMPED_ASSERT(false, "17 significant digits must round-trip");
    return {};
}

std::string
quoteJsonString(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

Json::Json(std::uint64_t u)
{
    if (u <= static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max())) {
        kind_ = Kind::integer;
        integer_ = static_cast<std::int64_t>(u);
    } else {
        kind_ = Kind::number;
        number_ = static_cast<double>(u);
    }
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::object;
    return j;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::integer)
        return static_cast<double>(integer_);
    if (kind_ == Kind::null)
        return std::numeric_limits<double>::quiet_NaN();
    require(kind_ == Kind::number, "json: value is not a number");
    return number_;
}

std::int64_t
Json::asInt() const
{
    if (kind_ == Kind::number) {
        require(number_ == std::floor(number_) &&
                    std::isfinite(number_),
                "json: number ", formatDouble(number_),
                " is not an integer");
        return static_cast<std::int64_t>(number_);
    }
    require(kind_ == Kind::integer, "json: value is not an integer");
    return integer_;
}

bool
Json::asBool() const
{
    require(kind_ == Kind::boolean, "json: value is not a boolean");
    return bool_;
}

const std::string &
Json::asString() const
{
    require(kind_ == Kind::string, "json: value is not a string");
    return string_;
}

Json &
Json::push(Json value)
{
    require(kind_ == Kind::array, "json: push on non-array");
    array_.push_back(std::move(value));
    return *this;
}

const std::vector<Json> &
Json::items() const
{
    require(kind_ == Kind::array, "json: items() on non-array");
    return array_;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::array)
        return array_.size();
    if (kind_ == Kind::object)
        return object_.size();
    fatal("json: size() on scalar value");
}

const Json &
Json::at(std::size_t index) const
{
    require(kind_ == Kind::array, "json: index on non-array");
    require(index < array_.size(), "json: index ", index,
            " out of range (size ", array_.size(), ")");
    return array_[index];
}

Json &
Json::set(const std::string &key, Json value)
{
    require(kind_ == Kind::object, "json: set on non-object");
    require(!contains(key), "json: duplicate key '", key, "'");
    object_.emplace_back(key, std::move(value));
    return *this;
}

bool
Json::contains(const std::string &key) const
{
    require(kind_ == Kind::object, "json: contains on non-object");
    for (const auto &[k, v] : object_)
        if (k == key)
            return true;
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    require(kind_ == Kind::object, "json: member access on "
            "non-object");
    for (const auto &[k, v] : object_)
        if (k == key)
            return v;
    fatal("json: missing key '", key, "'");
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    require(kind_ == Kind::object, "json: members() on non-object");
    return object_;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int level) {
        if (indent <= 0)
            return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent * level), ' ');
    };
    switch (kind_) {
      case Kind::null:
        out += "null";
        break;
      case Kind::boolean:
        out += bool_ ? "true" : "false";
        break;
      case Kind::integer:
        out += std::to_string(integer_);
        break;
      case Kind::number:
        // JSON has no NaN/Infinity; degrade to null rather than emit
        // a file chrome://tracing would reject.
        out += std::isfinite(number_) ? formatDouble(number_)
                                      : "null";
        break;
      case Kind::string:
        out += quoteJsonString(string_);
        break;
      case Kind::array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i != 0)
                out.push_back(',');
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back(']');
        break;
      case Kind::object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i != 0)
                out.push_back(',');
            newline(depth + 1);
            out += quoteJsonString(object_[i].first);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent RFC 8259 parser over an in-memory string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        Json value = parseValue();
        skipWhitespace();
        require(pos_ == text_.size(), "json: trailing characters at "
                "offset ", pos_);
        return value;
    }

  private:
    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        require(pos_ < text_.size(),
                "json: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        require(peek() == c, "json: expected '", c, "' at offset ",
                pos_, ", found '", text_[pos_], "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *literal)
    {
        const std::size_t n = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, n, literal) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parseValue()
    {
        skipWhitespace();
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json(parseString());
        if (consumeLiteral("null"))
            return Json(nullptr);
        if (consumeLiteral("true"))
            return Json(true);
        if (consumeLiteral("false"))
            return Json(false);
        return parseNumber();
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWhitespace();
            const std::string key = parseString();
            skipWhitespace();
            expect(':');
            obj.set(key, parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            require(pos_ < text_.size(), "json: unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                require(static_cast<unsigned char>(c) >= 0x20,
                        "json: raw control character in string at "
                        "offset ", pos_ - 1);
                out.push_back(c);
                continue;
            }
            require(pos_ < text_.size(), "json: unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                require(pos_ + 4 <= text_.size(),
                        "json: truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fatal("json: bad hex digit '", h,
                              "' in \\u escape");
                }
                // UTF-8 encode (no surrogate-pair support; the
                // emitter only produces \u00xx escapes).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fatal("json: invalid escape '\\", esc, "'");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' ||
                       c == '+' || c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        require(pos_ > start, "json: invalid value at offset ",
                start);
        const std::string text = text_.substr(start, pos_ - start);
        char *end = nullptr;
        if (integral) {
            const long long v =
                std::strtoll(text.c_str(), &end, 10);
            require(end == text.c_str() + text.size(),
                    "json: malformed number '", text, "'");
            return Json(static_cast<std::int64_t>(v));
        }
        const char *numEnd = nullptr;
        const double v = parseDouble(text.c_str(), &numEnd);
        require(numEnd == text.c_str() + text.size(),
                "json: malformed number '", text, "'");
        return Json(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace amped::obs

#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>

#include "common/error.hpp"

namespace amped::obs {

namespace {

constexpr double kSecondsToMicros = 1e6;

// Tiebreak ranks at equal timestamps: metadata first, then slices,
// then flow terminations, then flow starts and instants.  Keeping a
// flow finish ("f") after the slice it binds to at the same ts is
// what makes Perfetto attach the arrow to the receiving slice.
constexpr int kOrderMetadata = 0;
constexpr int kOrderSlice = 1;
constexpr int kOrderInstant = 2;
constexpr int kOrderFlow = 3;

/** Per-task view of one run: the interval that executed it. */
struct TaskTrace
{
    bool ran = false;
    double start = 0.0;
    double end = 0.0;
};

} // namespace

void
ChromeTraceBuilder::addEvent(double ts, int order, Json json)
{
    events_.push_back(PendingEvent{ts, order, std::move(json)});
}

void
ChromeTraceBuilder::addRun(const sim::TaskGraph &graph,
                           const sim::SimResult &result,
                           const std::string &run_label,
                           const std::vector<sim::FailureEvent> &failures)
{
    require(result.resources.size() == graph.resourceCount(),
            "chrome trace: result has ", result.resources.size(),
            " resources but the graph has ", graph.resourceCount());
    require(result.deliveryTime.size() == graph.taskCount(),
            "chrome trace: result tracks ",
            result.deliveryTime.size(),
            " task delivery times but the graph has ",
            graph.taskCount(), " tasks (was the result produced by "
            "Engine::run on this graph?)");

    const int pid = nextPid_++;

    // Process + thread naming metadata.
    addEvent(0.0, kOrderMetadata,
             Json::object()
                 .set("name", "process_name")
                 .set("ph", "M")
                 .set("pid", pid)
                 .set("args",
                      Json::object().set("name", run_label)));
    for (std::size_t r = 0; r < graph.resourceCount(); ++r) {
        const auto &resource =
            graph.resource(static_cast<sim::ResourceId>(r));
        addEvent(0.0, kOrderMetadata,
                 Json::object()
                     .set("name", "thread_name")
                     .set("ph", "M")
                     .set("pid", pid)
                     .set("tid", r)
                     .set("args",
                          Json::object().set("name", resource.name)));
    }

    // Complete (X) events from busy intervals; remember where each
    // task ran for the flow edges below.
    std::vector<TaskTrace> traces(graph.taskCount());
    for (std::size_t r = 0; r < result.resources.size(); ++r) {
        for (const auto &interval : result.resources[r].intervals) {
            const auto &task = graph.task(interval.task);
            auto &trace =
                traces[static_cast<std::size_t>(interval.task)];
            trace.ran = true;
            trace.start = interval.start;
            trace.end = interval.end;
            Json args = Json::object();
            args.set("task", static_cast<std::int64_t>(interval.task));
            args.set("kind", task.kind == sim::TaskKind::compute
                                 ? "compute"
                                 : "transfer");
            Json event = Json::object();
            event.set("name", task.label);
            event.set("cat", task.category.empty() ? "task"
                                                   : task.category);
            event.set("ph", "X");
            event.set("ts", interval.start * kSecondsToMicros);
            event.set("dur",
                      (interval.end - interval.start) *
                          kSecondsToMicros);
            event.set("pid", pid);
            event.set("tid", r);
            event.set("args", std::move(args));
            addEvent(interval.start * kSecondsToMicros, kOrderSlice,
                     std::move(event));
        }
    }

    // Flow (s/f) events: one arrow per transfer→successor edge whose
    // endpoints both executed — the message leaves the channel slice
    // and lands on the successor's first instant.
    for (std::size_t t = 0; t < graph.taskCount(); ++t) {
        const auto &task =
            graph.task(static_cast<sim::TaskId>(t));
        if (task.kind != sim::TaskKind::transfer || !traces[t].ran)
            continue;
        for (const sim::TaskId succ : task.successors) {
            const auto &target =
                traces[static_cast<std::size_t>(succ)];
            if (!target.ran)
                continue;
            const std::uint64_t flow_id = nextFlowId_++;
            const auto &succ_task = graph.task(succ);
            addEvent(traces[t].end * kSecondsToMicros, kOrderFlow,
                     Json::object()
                         .set("name", task.label)
                         .set("cat", "flow")
                         .set("ph", "s")
                         .set("id", flow_id)
                         .set("ts",
                              traces[t].end * kSecondsToMicros)
                         .set("pid", pid)
                         .set("tid",
                              static_cast<std::int64_t>(
                                  task.resource)));
            addEvent(target.start * kSecondsToMicros, kOrderFlow,
                     Json::object()
                         .set("name", task.label)
                         .set("cat", "flow")
                         .set("ph", "f")
                         .set("bp", "e")
                         .set("id", flow_id)
                         .set("ts",
                              target.start * kSecondsToMicros)
                         .set("pid", pid)
                         .set("tid",
                              static_cast<std::int64_t>(
                                  succ_task.resource)));
        }
    }

    // Failures as instant events on the dying resource's track.
    for (const auto &failure : failures) {
        require(failure.resource >= 0 &&
                    failure.resource < static_cast<sim::ResourceId>(
                                           graph.resourceCount()),
                "chrome trace: failure event resource ",
                failure.resource, " out of range");
        addEvent(failure.time * kSecondsToMicros, kOrderInstant,
                 Json::object()
                     .set("name",
                          "fail: " +
                              graph.resource(failure.resource).name)
                     .set("cat", "fault")
                     .set("ph", "i")
                     .set("s", "t")
                     .set("ts", failure.time * kSecondsToMicros)
                     .set("pid", pid)
                     .set("tid",
                          static_cast<std::int64_t>(
                              failure.resource)));
    }
}

Json
ChromeTraceBuilder::build() const
{
    std::vector<const PendingEvent *> ordered;
    ordered.reserve(events_.size());
    for (const auto &event : events_)
        ordered.push_back(&event);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const PendingEvent *a, const PendingEvent *b) {
                         if (a->ts != b->ts)
                             return a->ts < b->ts;
                         return a->order < b->order;
                     });
    Json trace_events = Json::array();
    for (const PendingEvent *event : ordered)
        trace_events.push(event->json);
    Json doc = Json::object();
    doc.set("traceEvents", std::move(trace_events));
    doc.set("displayTimeUnit", "ms");
    return doc;
}

std::string
ChromeTraceBuilder::toJsonString() const
{
    return build().dump(2) + "\n";
}

void
ChromeTraceBuilder::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    require(out.good(), "chrome trace: cannot open '", path,
            "' for writing");
    out << toJsonString();
    require(out.good(), "chrome trace: write to '", path,
            "' failed");
}

} // namespace amped::obs

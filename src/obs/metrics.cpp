#include "obs/metrics.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace amped::obs {

double
Histogram::upperBound(int index)
{
    AMPED_ASSERT(index >= 0 && index < kNumBounds,
                 "histogram bucket index out of range");
    return kFirstUpperBound * std::pow(kBucketRatio, index);
}

void
Histogram::observe(double value)
{
    // Find the first bound >= value; log2 gives the bucket directly
    // because the geometry is a fixed power-of-two ladder.
    int index = kNumBounds;
    if (!(value > kFirstUpperBound)) {
        // Also catches NaN and negatives: pin them to bucket 0 so a
        // bad observation can never corrupt the bucket array.
        index = 0;
    } else {
        const double exponent =
            std::ceil(std::log2(value / kFirstUpperBound));
        if (exponent < kNumBounds)
            index = static_cast<int>(exponent);
    }
    buckets_[static_cast<std::size_t>(index)]
        .fetch_add(1, std::memory_order_relaxed);
    // No atomic<double>::fetch_add before C++20 on all toolchains:
    // CAS loop keeps the sum lock-free and portable.
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + value,
                                       std::memory_order_relaxed)) {
    }
    // Publish bucket and sum before the count becomes visible, so a
    // reader that acquires count() sees a sum/bucket total covering
    // at least that many observations (see Histogram::count()).
    count_.fetch_add(1, std::memory_order_release);
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

struct MetricsRegistry::Entry
{
    MetricKind kind;
    bool timing = false;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
};

namespace {

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::counter: return "counter";
      case MetricKind::gauge: return "gauge";
      case MetricKind::histogram: return "histogram";
    }
    return "unknown";
}

} // namespace

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry &
MetricsRegistry::lookup(const std::string &name, MetricKind kind,
                        bool timing)
{
    require(!name.empty(), "metrics: empty metric name");
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        auto entry = std::make_unique<Entry>();
        entry->kind = kind;
        entry->timing = timing;
        it = entries_.emplace(name, std::move(entry)).first;
    }
    require(it->second->kind == kind, "metrics: '", name,
            "' already registered as ", kindName(it->second->kind),
            ", requested as ", kindName(kind));
    return *it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return lookup(name, MetricKind::counter, false).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return lookup(name, MetricKind::gauge, false).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, bool timing)
{
    return lookup(name, MetricKind::histogram, timing).histogram;
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshot() const
{
    MutexLock lock(mutex_);
    std::vector<MetricSnapshot> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_) {
        MetricSnapshot snap;
        snap.name = name;
        snap.kind = entry->kind;
        snap.timing = entry->timing;
        switch (entry->kind) {
          case MetricKind::counter:
            snap.count = entry->counter.value();
            break;
          case MetricKind::gauge:
            snap.value = entry->gauge.value();
            break;
          case MetricKind::histogram:
            snap.count = entry->histogram.count();
            snap.value = entry->histogram.sum();
            snap.buckets.reserve(Histogram::kNumBounds + 1);
            for (int i = 0; i <= Histogram::kNumBounds; ++i)
                snap.buckets.push_back(
                    entry->histogram.bucketCount(i));
            break;
        }
        out.push_back(std::move(snap));
    }
    return out;
}

std::string
MetricsRegistry::renderText(RenderMode mode) const
{
    std::ostringstream oss;
    for (const auto &snap : snapshot()) {
        switch (snap.kind) {
          case MetricKind::counter:
            oss << snap.name << '\t' << snap.count << '\n';
            break;
          case MetricKind::gauge:
            oss << snap.name << '\t'
                << formatDouble(snap.value) << '\n';
            break;
          case MetricKind::histogram:
            oss << snap.name << ".count\t" << snap.count << '\n';
            if (mode == RenderMode::full) {
                oss << snap.name << ".sum\t"
                    << formatDouble(snap.value) << '\n';
                for (int i = 0; i < Histogram::kNumBounds; ++i) {
                    const auto n =
                        snap.buckets[static_cast<std::size_t>(i)];
                    if (n == 0)
                        continue;
                    oss << snap.name << ".le."
                        << formatDouble(Histogram::upperBound(i))
                        << '\t' << n << '\n';
                }
                if (snap.buckets.back() != 0)
                    oss << snap.name << ".le.inf\t"
                        << snap.buckets.back() << '\n';
            }
            break;
        }
    }
    return oss.str();
}

void
MetricsRegistry::resetAll()
{
    MutexLock lock(mutex_);
    for (auto &[name, entry] : entries_) {
        entry->counter.reset();
        entry->gauge.reset();
        entry->histogram.reset();
    }
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked intentionally: instrumentation in static destructors of
    // other TUs may still touch the registry at shutdown.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

} // namespace amped::obs

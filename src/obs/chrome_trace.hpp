/**
 * @file
 * Chrome trace-event / Perfetto exporter for simulator runs.
 *
 * Converts `sim::SimResult` busy intervals plus the task metadata of
 * the executed `sim::TaskGraph` into the Trace Event Format JSON that
 * `chrome://tracing` and https://ui.perfetto.dev accept:
 *
 *  - one *process* (pid) per added run, named after the run label;
 *  - one *thread* (tid) per resource, named after the device/channel
 *    (thread metadata events keep the resource order stable);
 *  - an `X` (complete) event per busy interval, with the task label
 *    as the event name, the task category as `cat`, and the task id
 *    / kind in `args`;
 *  - `s`/`f` (flow) events for every transfer→successor edge, so the
 *    viewer draws the message send→receive arrows;
 *  - `i` (instant) events for injected resource failures.
 *
 * Event timestamps are microseconds (the format's unit); simulator
 * seconds are scaled by 1e6.  Events are emitted sorted by timestamp
 * so consumers that stream the array see monotonic `ts`.
 */

#ifndef AMPED_OBS_CHROME_TRACE_HPP
#define AMPED_OBS_CHROME_TRACE_HPP

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/task_graph.hpp"

namespace amped::obs {

/** Accumulates simulator runs into one Chrome-trace JSON document. */
class ChromeTraceBuilder
{
  public:
    /**
     * Adds every busy interval, flow edge, and failure instant of
     * one engine run as a new trace process.
     *
     * @param graph The graph that produced @p result (task labels,
     *        categories, successor edges).
     * @param result The engine run over exactly that graph.
     * @param run_label Process name in the viewer (e.g. "dp8").
     * @param failures Applied failure events rendered as instant
     *        events (pass FailureOutcome::events; empty when
     *        fault-free).
     * @throws UserError when result and graph disagree on resource
     *         or task counts.
     */
    void addRun(const sim::TaskGraph &graph,
                const sim::SimResult &result,
                const std::string &run_label,
                const std::vector<sim::FailureEvent> &failures = {});

    /** Number of events accumulated so far. */
    std::size_t eventCount() const { return events_.size(); }

    /**
     * The full document: `{"traceEvents": [...], "displayTimeUnit":
     * "ms"}` with events sorted by `ts` (metadata events first).
     */
    Json build() const;

    /** `build()` serialized with two-space indentation. */
    std::string toJsonString() const;

    /** Writes `toJsonString()` to @p path (UserError on failure). */
    void writeFile(const std::string &path) const;

  private:
    struct PendingEvent
    {
        double ts = 0.0;   ///< Microseconds.
        int order = 0;     ///< Tiebreak: metadata < slices < flows.
        Json json;
    };

    void addEvent(double ts, int order, Json json);

    std::vector<PendingEvent> events_;
    int nextPid_ = 1;
    std::uint64_t nextFlowId_ = 1;
};

} // namespace amped::obs

#endif // AMPED_OBS_CHROME_TRACE_HPP

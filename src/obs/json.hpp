/**
 * @file
 * Minimal JSON value type for the observability subsystem.
 *
 * The trace exporter and run-report builder need to *emit* JSON, and
 * the test suite needs to *parse* what was emitted (round-trip
 * validity is an acceptance criterion), all without external
 * dependencies.  This is a deliberately small implementation:
 *
 *  - Objects preserve insertion order (a report schema reads better
 *    with `schema_version` first) and reject duplicate keys.
 *  - Numbers serialize with the shortest representation that
 *    round-trips through the locale-independent parseDouble (same
 *    policy as testing/golden), so emitted files are byte-stable
 *    across platforms and locales.
 *  - Non-finite doubles serialize as `null` (JSON has no NaN/Inf).
 *  - The parser accepts exactly RFC 8259 JSON; it exists for tests
 *    and the CLI, not as a general-purpose library.
 */

#ifndef AMPED_OBS_JSON_HPP
#define AMPED_OBS_JSON_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace amped::obs {

/**
 * Canonical text for a double: shortest precision that survives a
 * strtod round trip; `nan` / `inf` / `-inf` for non-finite values
 * (callers that need strict JSON map those to null).
 */
std::string formatDouble(double value);

/** Escapes and quotes @p text per RFC 8259. */
std::string quoteJsonString(const std::string &text);

/** Insertion-ordered JSON value. */
class Json
{
  public:
    enum class Kind { null, boolean, number, integer, string, array,
                      object };

    Json() : kind_(Kind::null) {}
    Json(std::nullptr_t) : kind_(Kind::null) {}
    Json(bool b) : kind_(Kind::boolean), bool_(b) {}
    Json(double d) : kind_(Kind::number), number_(d) {}
    Json(std::int64_t i) : kind_(Kind::integer), integer_(i) {}
    Json(int i) : Json(static_cast<std::int64_t>(i)) {}
    Json(unsigned u) : Json(static_cast<std::int64_t>(u)) {}
    Json(std::uint64_t u); // size_t on LP64; degrades to double
                           // above int64 max.
    Json(const char *s) : kind_(Kind::string), string_(s) {}
    Json(std::string s)
        : kind_(Kind::string), string_(std::move(s)) {}

    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::null; }
    bool isObject() const { return kind_ == Kind::object; }
    bool isArray() const { return kind_ == Kind::array; }

    /// Numeric value of a number *or* integer node.
    double asDouble() const;
    std::int64_t asInt() const;
    bool asBool() const;
    const std::string &asString() const;

    /** Array: appends an element.  @throws UserError on non-array. */
    Json &push(Json value);
    const std::vector<Json> &items() const;
    std::size_t size() const;
    /** Array/object: true when size() == 0.  @throws on scalars. */
    bool empty() const { return size() == 0; }
    const Json &at(std::size_t index) const;

    /**
     * Object: sets key (must be new — duplicate keys throw).
     * @returns *this for chaining.
     */
    Json &set(const std::string &key, Json value);
    /** Object: true when @p key is present. */
    bool contains(const std::string &key) const;
    /** Object: member access.  @throws UserError when absent. */
    const Json &at(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &members() const;

    /**
     * Serializes to text.  @p indent > 0 pretty-prints with that many
     * spaces per level; 0 emits compact single-line output.
     */
    std::string dump(int indent = 0) const;

    /** Parses RFC 8259 text.  @throws UserError on malformed input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::int64_t integer_ = 0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

} // namespace amped::obs

#endif // AMPED_OBS_JSON_HPP

#include "obs/run_report.hpp"

#include <fstream>
#include <map>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/work_queue.hpp"

namespace amped::obs {

void
registerServeMetrics(MetricsRegistry &registry)
{
    registry.counter("serve.requests");
    registry.counter("serve.responses.ok");
    registry.counter("serve.responses.error");
    registry.counter("serve.responses.dropped");
    registry.counter("serve.cache.hits");
    registry.counter("serve.cache.misses");
    registry.counter("serve.cache.evictions");
    registry.counter("serve.cache.evicted_bytes");
    registry.gauge("serve.cache.bytes");
    registry.gauge("serve.cache.entries");
    registry.histogram("serve.request.latency_seconds",
                       /*timing=*/true);
}

Json
analyticalJson(const core::EvaluationResult &result)
{
    Json breakdown = Json::object();
    for (const auto &[label, seconds] : result.perBatch.phases())
        breakdown.set(label, seconds);
    Json out = Json::object();
    out.set("time_per_batch_seconds", result.timePerBatch);
    out.set("breakdown", std::move(breakdown));
    out.set("breakdown_total_seconds", result.perBatch.total());
    out.set("computation_seconds", result.perBatch.computation());
    out.set("communication_seconds",
            result.perBatch.communication());
    out.set("num_batches", result.numBatches);
    out.set("total_time_seconds", result.totalTime);
    out.set("training_days", result.trainingDays());
    out.set("microbatch_size", result.microbatchSize);
    out.set("num_microbatches", result.numMicrobatches);
    out.set("efficiency", result.efficiency);
    out.set("achieved_flops_per_gpu", result.achievedFlopsPerGpu);
    out.set("tokens_per_second", result.tokensPerSecond);
    return out;
}

Json
simulationJson(const std::string &label,
               const sim::SimOutcome &outcome)
{
    require(outcome.graph != nullptr,
            "run report: SimOutcome carries no task graph (was it "
            "produced by TrainingSimulator?)");
    const sim::TaskGraph &graph = *outcome.graph;

    Json devices = Json::array();
    for (std::size_t i = 0; i < outcome.deviceIds.size(); ++i) {
        const sim::ResourceId id = outcome.deviceIds[i];
        Json device = Json::object();
        device.set("name", graph.resource(id).name);
        device.set("utilization", outcome.deviceUtilization[i]);
        device.set("busy_seconds",
                   outcome.raw.resources[static_cast<std::size_t>(id)]
                       .busyTime);
        devices.push(std::move(device));
    }

    // Category histogram over the *whole* graph (including tasks an
    // injected failure prevented from running).
    std::map<std::string, std::int64_t> by_category;
    for (std::size_t t = 0; t < graph.taskCount(); ++t) {
        const auto &task = graph.task(static_cast<sim::TaskId>(t));
        ++by_category[task.category.empty() ? "uncategorized"
                                            : task.category];
    }
    Json categories = Json::object();
    for (const auto &[category, count] : by_category)
        categories.set(category, count);

    Json out = Json::object();
    out.set("label", label);
    out.set("step_time_seconds", outcome.stepTime);
    out.set("makespan_seconds", outcome.raw.makespan);
    out.set("task_count",
            static_cast<std::int64_t>(graph.taskCount()));
    out.set("resource_count",
            static_cast<std::int64_t>(graph.resourceCount()));
    out.set("tasks_by_category", std::move(categories));
    out.set("devices", std::move(devices));
    if (!outcome.peakMicrobatchesInFlight.empty()) {
        Json peaks = Json::array();
        for (const std::int64_t peak :
             outcome.peakMicrobatchesInFlight)
            peaks.push(peak);
        out.set("peak_microbatches_in_flight", std::move(peaks));
    }
    if (outcome.failure.failed ||
        outcome.failure.failuresApplied > 0) {
        const auto &f = outcome.failure;
        Json failure = Json::object();
        failure.set("failed", f.failed);
        failure.set("failures_applied",
                    static_cast<std::int64_t>(f.failuresApplied));
        failure.set("first_failure_time_seconds",
                    f.firstFailureTime);
        failure.set("first_failed_resource",
                    static_cast<std::int64_t>(f.firstFailedResource));
        failure.set("completed_tasks",
                    static_cast<std::int64_t>(f.completedTasks));
        failure.set("aborted_tasks",
                    static_cast<std::int64_t>(f.abortedTasks));
        failure.set("unreached_tasks",
                    static_cast<std::int64_t>(f.unreachedTasks));
        failure.set("lost_busy_seconds", f.lostBusySeconds.value());
        failure.set("wasted_wall_seconds", f.wastedWallSeconds.value());
        Json events = Json::array();
        for (const auto &event : f.events) {
            events.push(Json::object()
                            .set("resource",
                                 static_cast<std::int64_t>(
                                     event.resource))
                            .set("time_seconds", event.time));
        }
        failure.set("events", std::move(events));
        out.set("failure", std::move(failure));
    }
    return out;
}

Json
metricsJson(const MetricsRegistry &registry, RenderMode mode)
{
    Json out = Json::object();
    for (const auto &snap : registry.snapshot()) {
        switch (snap.kind) {
          case MetricKind::counter:
            out.set(snap.name, snap.count);
            break;
          case MetricKind::gauge:
            out.set(snap.name, snap.value);
            break;
          case MetricKind::histogram:
            out.set(snap.name + ".count", snap.count);
            if (mode == RenderMode::full)
                out.set(snap.name + ".sum", snap.value);
            break;
        }
    }
    return out;
}

RunReportBuilder::RunReportBuilder()
    : simulations_(Json::array())
{}

RunReportBuilder &
RunReportBuilder::setConfig(Json config)
{
    config_ = std::move(config);
    hasConfig_ = true;
    return *this;
}

RunReportBuilder &
RunReportBuilder::setAnalytical(const core::EvaluationResult &r)
{
    analytical_ = analyticalJson(r);
    hasAnalytical_ = true;
    return *this;
}

RunReportBuilder &
RunReportBuilder::addSimulation(const std::string &label,
                                const sim::SimOutcome &outcome)
{
    simulations_.push(simulationJson(label, outcome));
    return *this;
}

RunReportBuilder &
RunReportBuilder::setMetrics(MetricsRegistry &registry,
                             RenderMode mode)
{
    // Schema v2/v3: the cancellation, admission-queue, and serve
    // families are part of the metrics contract — register them
    // before the snapshot so they render as zeros when unused.
    registerCancellationMetrics(registry);
    registerWorkQueueMetrics(registry);
    registerServeMetrics(registry);
    metrics_ = metricsJson(registry, mode);
    hasMetrics_ = true;
    return *this;
}

Json
RunReportBuilder::build() const
{
    Json doc = Json::object();
    doc.set("schema_version", kRunReportSchemaVersion);
    doc.set("generator", "amped");
    if (hasConfig_)
        doc.set("config", config_);
    if (hasAnalytical_)
        doc.set("analytical", analytical_);
    if (!simulations_.empty())
        doc.set("simulations", simulations_);
    if (hasMetrics_)
        doc.set("metrics", metrics_);
    return doc;
}

void
RunReportBuilder::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    require(out.good(), "run report: cannot open '", path,
            "' for writing");
    out << build().dump(2) << "\n";
    require(out.good(), "run report: write to '", path, "' failed");
}

} // namespace amped::obs

/**
 * @file
 * Structured run report: one JSON document unifying the analytical
 * breakdown, simulator outcomes, failure accounting, and a metrics
 * snapshot behind a versioned schema.
 *
 * Schema (version 3), all sections optional except the envelope:
 *
 *     {
 *       "schema_version": 3,
 *       "generator": "amped",
 *       "config": { ... caller-provided echo of the inputs ... },
 *       "analytical": {
 *         "time_per_batch_seconds": ...,
 *         "breakdown": { "<phase label>": seconds, ... },
 *         "breakdown_total_seconds": ...,   // == time_per_batch
 *         "num_batches": ..., "total_time_seconds": ...,
 *         "training_days": ..., "microbatch_size": ...,
 *         "num_microbatches": ..., "efficiency": ...,
 *         "achieved_flops_per_gpu": ..., "tokens_per_second": ...
 *       },
 *       "simulations": [ {
 *         "label": ..., "step_time_seconds": ...,
 *         "makespan_seconds": ..., "task_count": ...,
 *         "tasks_by_category": { "forward": n, ... },
 *         "devices": [ {"name":..., "utilization":...,
 *                       "busy_seconds":...} ],
 *         "failure": { ... only under fault injection ... }
 *       } ],
 *       "metrics": { "<name>": value, ... }   // deterministic render
 *     }
 *
 * Numbers are emitted exactly (shortest round-trip doubles), so the
 * analytical section reproduces `core::AmpedModel` results to the
 * last bit — the acceptance bar of matching the model to 1e-9 holds
 * by construction.
 *
 * Version history / compatibility:
 *   v1  original envelope.
 *   v2  the metrics section now *guarantees* the cancellation and
 *       admission-queue instrument families (`common.cancel.*`,
 *       `common.queue.*`): setMetrics pre-registers them, so they
 *       render (as zeros) even in runs that never installed a token
 *       or queue.  Purely additive — every v1 key is unchanged and
 *       v1 readers can consume v2 documents by ignoring the new
 *       keys — but setMetrics now takes a mutable registry.
 *   v3  adds the evaluation-service family (`serve.requests`,
 *       `serve.responses.{ok,error,dropped}`,
 *       `serve.cache.{hits,misses,evictions,evicted_bytes,bytes,
 *       entries}`, `serve.request.latency_seconds`) to the same
 *       guarantee via registerServeMetrics.  Purely additive again:
 *       v2 readers ignore the new zero-valued keys.
 */

#ifndef AMPED_OBS_RUN_REPORT_HPP
#define AMPED_OBS_RUN_REPORT_HPP

#include <string>

#include "core/amped_model.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/training_sim.hpp"

namespace amped::obs {

/** Current run-report schema version. */
constexpr int kRunReportSchemaVersion = 3;

/**
 * Pre-registers the `serve.*` instrument family (request/response
 * counters, LRU-cache accounting, and the request latency timing
 * histogram) so schema-v3 reports render them even in runs that
 * never constructed a serve::Server.  Lives here rather than in the
 * serve library because the report layer owns the schema guarantee
 * and cannot link against serve (it is a lower layer).
 */
void registerServeMetrics(MetricsRegistry &registry);

/** The `analytical` section for one model evaluation. */
Json analyticalJson(const core::EvaluationResult &result);

/** One entry of the `simulations` array. */
Json simulationJson(const std::string &label,
                    const sim::SimOutcome &outcome);

/**
 * The `metrics` section: a flat name→value object from the
 * registry's snapshot.  @p mode deterministic keeps the report
 * byte-stable across thread counts (timing histograms contribute
 * only their counts).
 */
Json metricsJson(const MetricsRegistry &registry, RenderMode mode);

/** Assembles the versioned envelope. */
class RunReportBuilder
{
  public:
    RunReportBuilder();

    /** Echoes the run inputs (free-form object). */
    RunReportBuilder &setConfig(Json config);

    /** Fills the analytical section from a model evaluation. */
    RunReportBuilder &setAnalytical(const core::EvaluationResult &r);

    /** Appends one simulated schedule. */
    RunReportBuilder &addSimulation(const std::string &label,
                                    const sim::SimOutcome &outcome);

    /**
     * Attaches a metrics snapshot (deterministic render).  Takes the
     * registry mutably because schema v2 pre-registers the
     * `common.cancel.*` / `common.queue.*` families first, so those
     * keys appear (as zeros) in every report.
     */
    RunReportBuilder &setMetrics(MetricsRegistry &registry,
                                 RenderMode mode =
                                     RenderMode::deterministic);

    /** The final document. */
    Json build() const;

    /** Writes `build()` (2-space indent) to @p path. */
    void writeFile(const std::string &path) const;

  private:
    Json config_;
    Json analytical_;
    Json simulations_;
    Json metrics_;
    bool hasConfig_ = false;
    bool hasAnalytical_ = false;
    bool hasMetrics_ = false;
};

} // namespace amped::obs

#endif // AMPED_OBS_RUN_REPORT_HPP

/**
 * @file
 * Energy view of Case Study II (paper Sec. VII, last paragraph):
 * at 4 accelerators/NICs per node the PP configuration trains ~1 day
 * longer than DP but idles ~11 % of the time in pipeline bubbles;
 * the paper argues PP is the more energy-efficient choice whenever
 * the idle-state power is below a break-even fraction (~30 % in
 * their estimate) of full power.  This bench computes the break-even
 * fraction per node size with the energy model and shows the energy
 * totals at a representative idle fraction.
 */

#include <iostream>
#include <optional>

#include "common/table.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/energy_model.hpp"
#include "net/system_config.hpp"

namespace {

using namespace amped;

std::optional<core::EvaluationResult>
bestPipelinePoint(const core::AmpedModel &model,
                  const mapping::ParallelismConfig &m, double batch)
{
    std::optional<core::EvaluationResult> best;
    for (double ub = 1.0; ub <= batch; ub *= 2.0) {
        core::TrainingJob job = bench::caseStudyJob(batch);
        job.microbatching.microbatchSizeOverride = ub;
        try {
            const auto result = model.evaluate(m, job);
            if (!best || result.totalTime < best->totalTime)
                best = result;
        } catch (const UserError &) {
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);
    std::cout << "=== Case Study II energy analysis (Megatron 145B, "
                 "B = 8192, EDR, A100 TDP 400 W) ===\n\n";

    const double batch = 8192.0;
    const core::PowerSpec spec{Watts{400.0},
                               0.25}; // idle at 25 % of TDP
    const core::EnergyModel energy(spec);

    TextTable table({"acc+NICs/node", "DP energy (MWh)",
                     "PP energy (MWh)", "PP bubble share",
                     "break-even idle fraction", "energy winner"});

    for (std::int64_t per_node : {1, 2, 4, 8}) {
        const auto system = net::presets::lowEndCluster(per_node);
        const auto model = bench::caseStudyModel(system);
        const std::int64_t workers = system.totalAccelerators();

        const auto dp = bench::tryEvaluate(
            model,
            mapping::makeMapping(per_node, 1, 1, 1, 1,
                                 system.numNodes),
            batch);
        const auto pp = bestPipelinePoint(
            model,
            mapping::makeMapping(per_node, 1, 1, 1, system.numNodes,
                                 1),
            batch);
        if (!dp || !pp)
            continue;

        const double dp_mwh =
            energy.trainingEnergyJoules(*dp, workers).value() / 3.6e9;
        const double pp_mwh =
            energy.trainingEnergyJoules(*pp, workers).value() / 3.6e9;
        const double break_even =
            core::EnergyModel::breakEvenIdleFraction(*pp, *dp);
        const double bubble_share =
            pp->perBatch.bubble / pp->perBatch.total();

        const std::string prefix =
            "energy2/per_node" + std::to_string(per_node);
        golden.add(prefix + "/dp_mwh", dp_mwh);
        golden.add(prefix + "/pp_mwh", pp_mwh);
        golden.add(prefix + "/pp_bubble_share", bubble_share);
        golden.add(prefix + "/break_even", break_even);

        table.addRow(
            {std::to_string(per_node),
             units::formatFixed(dp_mwh, 1),
             units::formatFixed(pp_mwh, 1),
             units::formatFixed(100.0 * bubble_share, 1) + " %",
             units::formatFixed(break_even, 2),
             pp_mwh < dp_mwh ? "PP" : "DP"});
    }
    table.print(std::cout);
    std::cout
        << "\nreading: where PP is faster it wins outright "
           "(break-even 1.0); where PP is slower but bubbly,\nit "
           "still wins on energy whenever the idle state draws less "
           "than the break-even fraction of TDP\n(the paper "
           "estimates that threshold at ~0.3 for its 4-acc/node "
           "configuration).\n";
    return golden.finish();
}

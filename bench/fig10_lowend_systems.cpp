/**
 * @file
 * Reproduces Case Study II (Fig. 10): DP vs PP for inter-node
 * parallelism on low-end systems — Megatron 145B, batch 8192, 1024
 * A100s total, with 1 / 2 / 4 / 8 accelerators + EDR NICs per node
 * and TP spanning each node.
 *
 * Expected shape (paper Sec. VII): PP wins big at 1 accelerator/NIC
 * per node (DP's all-reduce saturates the single EDR NIC), the gap
 * narrows at 2, and DP wins from 4 upward.  The paper also notes the
 * ~11 % pipeline-bubble idle time at 4 accelerators/node as an
 * energy-saving opportunity.
 *
 * The PP configuration tunes the microbatch size per point (the
 * paper tunes microbatches throughout) by trying powers of two and
 * keeping the best.
 */

#include <iostream>
#include <optional>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "net/system_config.hpp"

namespace {

using namespace amped;

/**
 * Best PP-inter evaluation over power-of-two microbatch sizes,
 * evaluated as one parallel sweep over microbatch-override jobs
 * (incompatible sizes count as skipped).
 */
std::optional<core::EvaluationResult>
bestPipelinePoint(const explore::Explorer &explorer,
                  const mapping::ParallelismConfig &m, double batch)
{
    std::vector<core::TrainingJob> jobs;
    for (double ub = 1.0; ub <= batch; ub *= 2.0) {
        core::TrainingJob job = bench::caseStudyJob(batch);
        job.microbatching.microbatchSizeOverride = ub;
        jobs.push_back(job);
    }
    const auto sweep = explorer.sweepJobs({m}, jobs);
    const auto best = explore::Explorer::best(sweep);
    if (!best)
        return std::nullopt;
    return best->result;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);
    std::cout << "=== Case Study II (Fig. 10): DP vs PP inter-node "
                 "on low-end systems (Megatron 145B, B = 8192, EDR) "
                 "===\n\n";

    const double batch = 8192.0;
    TextTable table({"acc+NICs/node", "DP-inter (days)",
                     "PP-inter (days)", "PP microbatch",
                     "PP bubble share", "winner"});

    for (std::int64_t per_node : {1, 2, 4, 8}) {
        const auto system = net::presets::lowEndCluster(per_node);
        const explore::Explorer explorer(
            bench::caseStudyModel(system));
        const std::int64_t nodes = system.numNodes;

        // Pure DP across nodes, TP inside each node.
        const auto dp_mapping =
            mapping::makeMapping(per_node, 1, 1, 1, 1, nodes);
        const auto dp_sweep = explorer.sweep(
            {dp_mapping}, {batch}, bench::caseStudyJob(batch));
        const auto dp_best = explore::Explorer::best(dp_sweep);
        const auto dp_result =
            dp_best ? std::optional(dp_best->result) : std::nullopt;

        // Pure PP across nodes, TP inside each node, tuned ub.
        const auto pp_mapping =
            mapping::makeMapping(per_node, 1, 1, 1, nodes, 1);
        const auto pp_result =
            bestPipelinePoint(explorer, pp_mapping, batch);

        const std::string prefix =
            "fig10/per_node" + std::to_string(per_node);
        golden.addDays(prefix + "/dp_days", dp_result);
        golden.addDays(prefix + "/pp_days", pp_result);
        if (!dp_result || !pp_result) {
            table.addRow({std::to_string(per_node), "infeasible",
                          "infeasible", "-", "-", "-"});
            continue;
        }
        const double dp_days = dp_result->trainingDays();
        const double pp_days = pp_result->trainingDays();
        const double bubble_share =
            pp_result->perBatch.bubble / pp_result->perBatch.total();
        golden.add(prefix + "/pp_microbatch",
                   pp_result->microbatchSize);
        golden.add(prefix + "/pp_bubble_share", bubble_share);
        table.addRow(
            {std::to_string(per_node),
             units::formatFixed(dp_days, 1),
             units::formatFixed(pp_days, 1),
             units::formatFixed(pp_result->microbatchSize, 0),
             units::formatFixed(100.0 * bubble_share, 1) + " %",
             pp_days < dp_days ? "PP" : "DP"});
    }
    table.print(std::cout);
    std::cout << "\nshape check (paper Sec. VII): PP wins at 1 "
                 "acc/node, the gap narrows at 2, DP wins from 4-8; "
                 "the optimal inter-node strategy flips on low-end "
                 "systems.\n";
    return golden.finish();
}

/**
 * @file
 * Baseline comparison: AMPeD vs a naive roofline estimator vs the
 * discrete-event simulator on configurations where the mapping
 * matters.  The roofline predicts the *same* time for any placement
 * of a given parallelism product; AMPeD (validated against the DES
 * and published data elsewhere in this repo) separates them — the
 * reason a mapping-aware model is needed at all (paper Sec. I/III).
 */

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/roofline_baseline.hpp"
#include "net/system_config.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== AMPeD vs roofline baseline (Megatron 145B, "
                 "1024 A100s, B = 8192) ===\n\n";

    const auto system = net::presets::a100Cluster1024();
    const auto amped_model = bench::caseStudyModel(system);
    core::RooflineBaseline roofline(
        model::OpCounter(model::presets::megatron145B()),
        hw::presets::a100(), system);
    const auto job = bench::caseStudyJob(8192.0);

    struct Config
    {
        const char *label;
        mapping::ParallelismConfig mapping;
    };
    const Config configs[] = {
        {"TP8 intra | DP128 inter",
         mapping::makeMapping(8, 1, 1, 1, 1, 128)},
        {"TP8 intra | PP128 inter",
         mapping::makeMapping(8, 1, 1, 1, 128, 1)},
        {"TP8 intra | TP2*DP64 inter",
         mapping::makeMapping(8, 1, 1, 2, 1, 64)},
        {"DP8 intra | DP128 inter",
         mapping::makeMapping(1, 1, 8, 1, 1, 128)},
        {"DP8 intra | TP128 inter",
         mapping::makeMapping(1, 1, 8, 128, 1, 1)},
    };

    TextTable table({"configuration", "AMPeD (days)",
                     "roofline (days)", "roofline error vs AMPeD"});
    const double batches = job.numBatches(2048);
    std::size_t config_index = 0;
    for (const auto &config : configs) {
        const auto result =
            amped_model.evaluate(config.mapping, job);
        const double roof =
            roofline.timePerBatch(config.mapping, job).value() *
            batches / units::day;
        const double amped_days = result.trainingDays();
        const std::string prefix =
            "baseline/config" + std::to_string(config_index++);
        golden.add(prefix + "/amped_days", amped_days);
        golden.add(prefix + "/roofline_days", roof);
        table.addRow(
            {config.label, units::formatFixed(amped_days, 1),
             units::formatFixed(roof, 1),
             units::formatFixed((roof - amped_days) / amped_days *
                                    100.0,
                                1) +
                 " %"});
    }
    table.print(std::cout);
    std::cout
        << "\nreading: the roofline cannot distinguish placements — "
           "it predicts nearly identical times\nfor mappings whose "
           "real costs differ by an order of magnitude (TP across "
           "nodes!), and it\nmisses the microbatch-efficiency "
           "dependence entirely.  AMPeD's mapping-aware terms\nare "
           "what make design-space exploration meaningful.\n";
    return golden.finish();
}

/**
 * @file
 * Reproduces Fig. 1: accelerator utilization during the DP and PP
 * validation runs (8-GPU DP and 4-GPU PP on one HGX-2 node).
 *
 * The paper shows nvidia-smi GPU-usage traces; this repository
 * renders the discrete-event simulator's per-device busy timeline
 * (DESIGN.md Sec. 1): DP devices stay near-fully busy, pipeline
 * stages show the characteristic fill/drain ramps.
 */

#include <iostream>
#include <vector>

#include "case_study_util.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/run_report.hpp"
#include "sim/trace.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Fig. 1: device utilization during validation "
                 "runs (simulated HGX-2) ===\n\n";

    const auto eff = validate::calibrations::minGptHgx2();
    obs::ChromeTraceBuilder trace;
    obs::RunReportBuilder report;

    {
        std::cout << "--- DP x 8, minGPT 85M (one training step) ---\n";
        sim::TrainingSimulator simulator(
            model::presets::minGpt85M(), hw::presets::v100Sxm3(), eff,
            net::presets::nvlinkV100());
        simulator.setBackwardMultiplier(3.0);
        const auto outcome =
            simulator.simulateDataParallelStep(8, 32.0);
        std::vector<std::string> names;
        for (int d = 0; d < 8; ++d)
            names.push_back("gpu" + std::to_string(d));
        std::cout << renderUtilizationTimeline(
            outcome.raw, outcome.deviceIds, names, 64);
        std::cout << '\n';
        golden.add("fig1/dp8/step_time_s", outcome.stepTime);
        for (std::size_t d = 0;
             d < outcome.deviceUtilization.size(); ++d)
            golden.add("fig1/dp8/gpu" + std::to_string(d) + "/util",
                       outcome.deviceUtilization[d]);
        trace.addRun(*outcome.graph, outcome.raw, "dp8");
        report.addSimulation("dp8", outcome);
    }

    {
        std::cout << "--- PP x 4, minGPT-PP (one training step, "
                     "N_ub = 4) ---\n";
        sim::TrainingSimulator simulator(
            model::presets::minGptPipeline(), hw::presets::v100Sxm3(),
            eff, net::presets::nvlinkV100());
        simulator.setBackwardMultiplier(3.0);
        const auto outcome = simulator.simulateGPipeStep(4, 8.0, 4);
        std::vector<std::string> names;
        for (int d = 0; d < 4; ++d)
            names.push_back("stage" + std::to_string(d));
        std::cout << renderUtilizationTimeline(
            outcome.raw, outcome.deviceIds, names, 64);
        std::cout << "\npipeline fill/drain bubbles are visible as "
                     "idle ('.') leading/trailing buckets per stage\n";
        golden.add("fig1/pp4/step_time_s", outcome.stepTime);
        for (std::size_t d = 0;
             d < outcome.deviceUtilization.size(); ++d)
            golden.add("fig1/pp4/stage" + std::to_string(d) + "/util",
                       outcome.deviceUtilization[d]);
        trace.addRun(*outcome.graph, outcome.raw, "pp4");
        report.addSimulation("pp4", outcome);
    }

    if (!golden.tracePath().empty())
        trace.writeFile(golden.tracePath());
    if (!golden.reportPath().empty()) {
        report.setMetrics(obs::MetricsRegistry::global());
        report.writeFile(golden.reportPath());
    }
    return golden.finish();
}

/**
 * @file
 * Reproduces Fig. 2c: TFLOP/s/GPU as a function of the (micro)batch
 * size for GPT-3 175B on 96 GPUs with pipeline parallelism only.
 *
 * Setup: 12 nodes x 8 A100, PP = 96 (one layer per stage), DP = TP
 * = 1, 96 microbatches per batch, batch = 96 x microbatch size.
 * The "published" series is reconstructed from the paper's error
 * statements (~11 % at ub = 12, ~2 % at ub = 60) — see
 * EXPERIMENTS.md and validate/reference_data.cpp.
 */

#include <iostream>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "validate/calibrations.hpp"
#include "validate/reference_data.hpp"
#include "validate/validation.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Fig. 2c: TFLOP/s/GPU vs microbatch size "
                 "(GPT-3 175B, 96 GPUs, PP only) ===\n\n";

    net::SystemConfig system;
    system.name = "12x8 A100";
    system.numNodes = 12;
    system.acceleratorsPerNode = 8;
    system.intraLink = net::presets::nvlinkA100();
    system.interLink = net::presets::hdrInfiniband();
    system.nicsPerNode = 8;

    core::AmpedModel amped_model(
        model::presets::gpt3_175B(), hw::presets::a100(),
        validate::calibrations::fig2cSweep(), system,
        validate::calibrations::nvswitchOptions(8));

    // PP = 96: 8 stages inside each node, 12 across nodes.
    const auto mapping = mapping::makeMapping(1, 8, 1, 1, 12, 1);
    const double num_microbatches = 96.0;

    TextTable table({"microbatch", "batch", "this-repo TFLOP/s",
                     "published (reconstr.)", "error (%)",
                     "paper error (%)"});
    std::vector<validate::ValidationRow> rows;

    // Evaluate the sweep points in parallel (AmpedModel::evaluate is
    // const and thread-safe), then render serially in point order so
    // the table and golden bytes match the historical serial loop.
    const auto sweep_points = validate::fig2cPoints();
    struct Eval
    {
        double batchSize = 0.0;
        double tflops = 0.0;
    };
    std::vector<Eval> evals(sweep_points.size());
    ThreadPool::shared().parallelFor(
        sweep_points.size(), /*chunk=*/1, [&](std::size_t i) {
            core::TrainingJob job;
            job.batchSize =
                sweep_points[i].microbatch * num_microbatches;
            job.numBatchesOverride = 1.0;
            job.microbatching.numMicrobatchesOverride =
                num_microbatches;
            const auto result = amped_model.evaluate(mapping, job);
            evals[i] = {job.batchSize,
                        result.achievedFlopsPerGpu / units::tera};
        });

    for (std::size_t i = 0; i < sweep_points.size(); ++i) {
        const auto &point = sweep_points[i];
        const double tflops = evals[i].tflops;
        rows.push_back(validate::makeRow(
            "ub=" + units::formatFixed(point.microbatch, 0), tflops,
            point.publishedTflops));
        golden.add("fig2c/ub" +
                       units::formatFixed(point.microbatch, 0) +
                       "/tflops_per_gpu",
                   tflops);
        table.addRow({units::formatFixed(point.microbatch, 0),
                      units::formatFixed(evals[i].batchSize, 0),
                      units::formatFixed(tflops, 1),
                      units::formatFixed(point.publishedTflops, 1),
                      units::formatFixed(rows.back().errorPercent(), 1),
                      "-" + units::formatFixed(point.paperErrorPercent,
                                               1)});
    }
    table.print(std::cout);
    std::cout
        << "\nshape check: saturating curve, error shrinking with "
           "microbatch size;\nmax |error| vs reconstructed published: "
        << units::formatFixed(validate::maxAbsErrorPercent(rows), 2)
        << " %\n";
    golden.add("fig2c/max_abs_err_pct",
               validate::maxAbsErrorPercent(rows));
    return golden.finish();
}

/**
 * @file
 * Reproduces Case Study I, Figs. 7-9 (DP in intra-node
 * accelerators): Megatron 145B on 1024 A100s, batch 4096 / 8192 /
 * 16384, inter-node families:
 *
 *   Fig. 7: TP_inter x PP_inter
 *   Fig. 8: TP_inter x DP_inter
 *   Fig. 9: PP_inter x DP_inter
 *
 * Expected shapes (paper Sec. VI-D): Fig. 7 curves merge once
 * TP_inter > PP_inter (communication dominates and is batch-size
 * independent); Fig. 8 changes trend after (TP, DP) = (4, 32)
 * because the efficiency floor (25 %) kicks in; DP-intra training
 * (36-38 days at 16384) is about 2x slower than TP-intra (Fig. 6 vs
 * Fig. 9) since the high DP degree shrinks the microbatch.
 */

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "net/system_config.hpp"

namespace {

using namespace amped;

void
sweepFamily(const explore::Explorer &explorer,
            bench::GoldenOut &golden, const std::string &family_key,
            const std::string &title,
            const std::vector<std::array<std::int64_t, 3>>
                &inter_configs /* tp, pp, dp */)
{
    std::vector<mapping::ParallelismConfig> mappings;
    mappings.reserve(inter_configs.size());
    for (const auto &[tp, pp, dp] : inter_configs)
        mappings.push_back(mapping::makeMapping(1, 1, 8, tp, pp, dp));
    const std::vector<double> batches = {4096.0, 8192.0, 16384.0};
    const bench::SweepIndex index(explorer, mappings, batches);

    std::cout << "--- " << title << " ---\n";
    TextTable table({"inter config", "B=4096 (days)", "B=8192 (days)",
                     "B=16384 (days)", "eff @4096", "eff @16384"});
    for (std::size_t i = 0; i < inter_configs.size(); ++i) {
        const auto &[tp, pp, dp] = inter_configs[i];
        std::vector<std::string> cells;
        cells.push_back(
            "TP" + std::to_string(tp) + " PP" + std::to_string(pp) +
            " DP" + std::to_string(dp));
        const std::string point_key =
            family_key + "/" + bench::interKey(tp, pp, dp);
        std::string eff4 = "-", eff16 = "-";
        for (double batch : batches) {
            const auto *result = index.find(mappings[i], batch);
            golden.add(point_key + "/b" +
                           units::formatFixed(batch, 0) + "/days",
                       result ? result->trainingDays()
                              : std::nan(""));
            if (result) {
                cells.push_back(units::formatFixed(
                    result->trainingDays(), 1));
                if (batch == 4096.0) {
                    eff4 = units::formatFixed(result->efficiency, 2);
                    golden.add(point_key + "/eff_b4096",
                               result->efficiency);
                }
                if (batch == 16384.0) {
                    eff16 = units::formatFixed(result->efficiency, 2);
                    golden.add(point_key + "/eff_b16384",
                               result->efficiency);
                }
            } else {
                cells.push_back("infeasible");
            }
        }
        cells.push_back(eff4);
        cells.push_back(eff16);
        table.addRow(cells);
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);
    std::cout << "=== Case Study I (Figs. 7-9): Megatron 145B, 1024 "
                 "A100s, DP8 in intra-node ===\n\n";

    const explore::Explorer model(
        bench::caseStudyModel(net::presets::a100Cluster1024()));

    sweepFamily(model, golden, "fig7",
                "Fig. 7: DP8 intra | TP_inter x PP_inter",
                {{1, 128, 1},
                 {2, 64, 1},
                 {4, 32, 1},
                 {8, 16, 1},
                 {16, 8, 1},
                 {32, 4, 1}});

    sweepFamily(model, golden, "fig8",
                "Fig. 8: DP8 intra | TP_inter x DP_inter",
                {{128, 1, 1},
                 {64, 1, 2},
                 {32, 1, 4},
                 {16, 1, 8},
                 {8, 1, 16},
                 {4, 1, 32},
                 {2, 1, 64},
                 {1, 1, 128}});

    sweepFamily(model, golden, "fig9",
                "Fig. 9: DP8 intra | PP_inter x DP_inter",
                {{1, 128, 1},
                 {1, 64, 2},
                 {1, 32, 4},
                 {1, 16, 8},
                 {1, 8, 16},
                 {1, 4, 32},
                 {1, 2, 64},
                 {1, 1, 128}});

    std::cout
        << "shape checks (paper Sec. VI-D):\n"
           "  1. Fig. 7: batch-size curves merge for TP > PP "
           "(comm dominates, batch-independent);\n"
           "  2. Fig. 8: trend changes after (TP, DP) = (4, 32) — "
           "the 25 % efficiency floor;\n"
           "  3. Fig. 9 vs Fig. 6: DP-intra ~ 36-38 days at 16384, "
           "~ 2x the TP-intra time (microbatch efficiency 30 % vs "
           "up to 80 %).\n";
    return golden.finish();
}

/**
 * @file
 * Case Study I as a search problem: `amped optimize` vs the
 * exhaustive sweep on the full Megatron-145B / 1024-A100 grid (360
 * mappings x 2800 global batch sizes = 1,008,000 points, the same
 * grid the sweep perf gate measures).  The harness holds the
 * optimizer to its two contracts from DESIGN.md "Branch-and-bound
 * over the additive model":
 *
 *  - identity: the top-3 strategies are bit-identical to sorting the
 *    exhaustive sweep by (total time, grid index) and truncating;
 *  - economy: the exact batch kernel runs on < 10 % of the screened
 *    points — the admissible bound prunes the rest.
 *
 * Both are require()d (the bench exits nonzero on violation) and the
 * winning strategy, day figures, and prune counters are emitted as
 * golden metrics so tools/golden_check pins them at 1 and 4 threads.
 */

#include <chrono>
#include <cstring>
#include <iostream>

#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/memory_model.hpp"
#include "explore/optimizer.hpp"
#include "net/system_config.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace amped;

/** The 2800-point batch axis of the sweep perf gate: 2048 + 8 i. */
std::vector<double>
batchAxis()
{
    std::vector<double> batches;
    batches.reserve(2800);
    for (std::size_t i = 0; i < 2800; ++i)
        batches.push_back(2048.0 + 8.0 * static_cast<double>(i));
    return batches;
}

/** Bitwise equality of the fields the CSV/table layers render. */
bool
sameEntry(const explore::SweepEntry &a, const explore::SweepEntry &b)
{
    return a.mapping.toString() == b.mapping.toString() &&
           std::memcmp(&a.batchSize, &b.batchSize,
                       sizeof a.batchSize) == 0 &&
           std::memcmp(&a.result, &b.result, sizeof a.result) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Strategy search vs exhaustive sweep "
                 "(Megatron 145B, 1024 A100s) ===\n\n";

    const auto system = net::presets::a100Cluster1024();
    const auto model = bench::caseStudyModel(system);
    // The uncapped 360-mapping enumeration — the exact 1,008,000-
    // point grid the sweep perf gate (bench/BENCH_sweep.json) times.
    const auto mappings =
        mapping::MappingSpace(system).enumerate();
    const auto batches = batchAxis();
    const core::MemoryModel memory_model(
        model::OpCounter(model::presets::megatron145B()),
        hw::presets::a100());
    const std::size_t top_k = 3;

    explore::Optimizer optimizer(model);
    optimizer.setMemoryModel(memory_model);
    const auto t0 = std::chrono::steady_clock::now();
    explore::OptimizerRequest request;
    request.batchSizes = batches;
    request.jobTemplate = bench::caseStudyJob(batches.front());
    request.topK = top_k;
    const auto found = optimizer.optimizeOver(mappings, request);
    const double optimize_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    explore::Explorer explorer(model);
    explorer.setMemoryModel(memory_model);
    auto sweep = explorer.sweep(
        mappings, batches, bench::caseStudyJob(batches.front()));
    explore::Explorer::sortByTime(sweep.entries);
    require(sweep.entries.size() >= top_k,
            "exhaustive sweep produced fewer than ", top_k,
            " feasible strategies");
    sweep.entries.resize(top_k);

    // Contract 1: identity with the sorted exhaustive sweep.
    require(found.topK.size() == top_k, "optimizer returned ",
            found.topK.size(), " strategies, wanted ", top_k);
    for (std::size_t rank = 0; rank < top_k; ++rank)
        require(sameEntry(found.topK[rank], sweep.entries[rank]),
                "rank-", rank + 1,
                " strategy differs from the exhaustive sweep: "
                "optimizer says ",
                found.topK[rank].mapping.toString(),
                ", sweep says ",
                sweep.entries[rank].mapping.toString());

    // Contract 2: the exact kernel ran on < 10 % of the grid.
    const auto &c = found.counters;
    const double evaluated_fraction =
        static_cast<double>(c.evaluated) /
        static_cast<double>(c.points);
    require(evaluated_fraction < 0.10,
            "bound too weak: evaluated ", c.evaluated, " of ",
            c.points, " points");

    const auto &best = found.topK.front();
    std::cout << "grid: " << c.points << " points ("
              << c.points / batches.size() << " mappings x "
              << batches.size() << " batch sizes)\n"
              << "best: " << best.mapping.toString() << " at B = "
              << units::formatFixed(best.batchSize, 0) << " — "
              << units::formatFixed(best.result.trainingDays(), 1)
              << " days\n"
              << "evaluated " << c.evaluated << " points ("
              << units::formatFixed(evaluated_fraction * 100.0, 2)
              << " %); pruned " << c.prunedByBound
              << " by bound, " << c.prunedByMemory
              << " by memory, skipped " << c.skippedInfeasible
              << " infeasible\n"
              << "search took "
              << units::formatFixed(optimize_seconds, 2)
              << " s; exhaustive agreement: top-" << top_k
              << " bit-identical\n";

    golden.add("optimizer/grid/points",
               static_cast<double>(c.points));
    golden.add("optimizer/grid/mappings",
               static_cast<double>(c.points / batches.size()));
    golden.add("optimizer/counters/evaluated",
               static_cast<double>(c.evaluated));
    golden.add("optimizer/counters/pruned_by_bound",
               static_cast<double>(c.prunedByBound));
    golden.add("optimizer/counters/pruned_by_memory",
               static_cast<double>(c.prunedByMemory));
    golden.add("optimizer/counters/skipped_infeasible",
               static_cast<double>(c.skippedInfeasible));
    golden.add("optimizer/counters/failed",
               static_cast<double>(c.failed));

    // The same totals flow through the metrics registry (the CLI's
    // run reports read them from there); pin that plumbing too.
    auto &metrics = obs::MetricsRegistry::global();
    golden.add("optimizer/obs/evaluated",
               static_cast<double>(
                   metrics.counter("explore.optimize.evaluated")
                       .value()));
    golden.add("optimizer/obs/pruned_by_bound",
               static_cast<double>(
                   metrics
                       .counter("explore.optimize.pruned_by_bound")
                       .value()));

    golden.add("optimizer/best/tp",
               static_cast<double>(best.mapping.tp()));
    golden.add("optimizer/best/pp",
               static_cast<double>(best.mapping.pp()));
    golden.add("optimizer/best/dp",
               static_cast<double>(best.mapping.dp()));
    golden.add("optimizer/best/batch", best.batchSize);
    golden.add("optimizer/best/days",
               best.result.trainingDays());
    golden.add("optimizer/best/tflops_per_gpu",
               best.result.achievedFlopsPerGpu / 1e12);
    for (std::size_t rank = 0; rank < top_k; ++rank)
        golden.add("optimizer/top" + std::to_string(rank + 1) +
                       "/days",
                   found.topK[rank].result.trainingDays());
    return golden.finish();
}

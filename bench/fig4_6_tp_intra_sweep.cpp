/**
 * @file
 * Reproduces Case Study I, Figs. 4-6 (TP in intra-node accelerators)
 * plus the Sec. VI-B PP-intra observations: training time of
 * Megatron 145B on 1024 A100s (128 nodes x 8) for batch sizes 4096 /
 * 8192 / 16384 and every inter-node combination family:
 *
 *   Fig. 4: TP_inter x PP_inter (product 128)
 *   Fig. 5: TP_inter x DP_inter (product 128)
 *   Fig. 6: PP_inter x DP_inter (product 128)
 *
 * Expected shapes (paper Sec. VI-C): pure PP or DP inter-node is
 * fast (~18-21 days at batch 16384), TP inter-node is slow (~57
 * days at TP_inter = 2, growing ~3x per TP doubling); DP slightly
 * beats PP; PP-intra configurations (Sec. VI-B) are slower still.
 */

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "net/system_config.hpp"

namespace {

using namespace amped;

void
sweepFamily(const explore::Explorer &explorer,
            bench::GoldenOut &golden, const std::string &family_key,
            const std::string &title, std::int64_t tp_intra,
            std::int64_t pp_intra, std::int64_t dp_intra,
            const std::vector<std::array<std::int64_t, 3>>
                &inter_configs /* tp, pp, dp */)
{
    std::vector<mapping::ParallelismConfig> mappings;
    mappings.reserve(inter_configs.size());
    for (const auto &[tp, pp, dp] : inter_configs)
        mappings.push_back(mapping::makeMapping(
            tp_intra, pp_intra, dp_intra, tp, pp, dp));
    const std::vector<double> batches = {4096.0, 8192.0, 16384.0};
    const bench::SweepIndex index(explorer, mappings, batches);

    std::cout << "--- " << title << " ---\n";
    TextTable table({"inter config", "B=4096 (days)", "B=8192 (days)",
                     "B=16384 (days)", "eff @16384"});
    for (std::size_t i = 0; i < inter_configs.size(); ++i) {
        const auto &[tp, pp, dp] = inter_configs[i];
        std::vector<std::string> cells;
        cells.push_back(
            "TP" + std::to_string(tp) + " PP" + std::to_string(pp) +
            " DP" + std::to_string(dp));
        const std::string point_key =
            family_key + "/" + bench::interKey(tp, pp, dp);
        std::string eff_cell = "-";
        for (double batch : batches) {
            const auto *result = index.find(mappings[i], batch);
            const std::string batch_key =
                point_key + "/b" + units::formatFixed(batch, 0);
            golden.add(batch_key + "/days",
                       result ? result->trainingDays()
                              : std::nan(""));
            if (result) {
                cells.push_back(units::formatFixed(
                    result->trainingDays(), 1));
                if (batch == 16384.0) {
                    eff_cell =
                        units::formatFixed(result->efficiency, 2);
                    golden.add(point_key + "/eff_b16384",
                               result->efficiency);
                }
            } else {
                cells.push_back("infeasible");
            }
        }
        cells.push_back(eff_cell);
        table.addRow(cells);
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);
    std::cout << "=== Case Study I (Figs. 4-6): Megatron 145B, 1024 "
                 "A100s, TP in intra-node ===\n\n";

    const explore::Explorer model(
        bench::caseStudyModel(net::presets::a100Cluster1024()));

    // Fig. 4: TP x PP across nodes.
    sweepFamily(model, golden, "fig4",
                "Fig. 4: TP8 intra | TP_inter x PP_inter", 8,
                1, 1,
                {{1, 128, 1},
                 {2, 64, 1},
                 {4, 32, 1},
                 {8, 16, 1},
                 {16, 8, 1}});

    // Fig. 5: TP x DP across nodes.
    sweepFamily(model, golden, "fig5",
                "Fig. 5: TP8 intra | TP_inter x DP_inter", 8,
                1, 1,
                {{1, 1, 128},
                 {2, 1, 64},
                 {4, 1, 32},
                 {8, 1, 16},
                 {16, 1, 8}});

    // Fig. 6: PP x DP across nodes.
    sweepFamily(model, golden, "fig6",
                "Fig. 6: TP8 intra | PP_inter x DP_inter", 8,
                1, 1,
                {{1, 128, 1},
                 {1, 64, 2},
                 {1, 32, 4},
                 {1, 16, 8},
                 {1, 8, 16},
                 {1, 4, 32},
                 {1, 2, 64},
                 {1, 1, 128}});

    // Sec. VI-B: PP in intra-node accelerators, full TP across nodes
    // vs PP/DP combinations across nodes.
    sweepFamily(model, golden, "sec6b",
                "Sec. VI-B: PP8 intra | TP128_inter vs PP/DP_inter",
                1, 8, 1,
                {{128, 1, 1},
                 {1, 128, 1},
                 {1, 1, 128},
                 {1, 16, 8},
                 {1, 2, 64}});

    std::cout
        << "shape checks (paper Sec. VI-B/C):\n"
           "  1. pure PP or DP inter ~ 18-21 days at B = 16384;\n"
           "  2. TP_inter = 2 ~ 3x slower (~57 days);\n"
           "  3. DP_inter slightly faster than PP_inter;\n"
           "  4. PP-intra + TP-inter slowest (~90 days); replacing "
           "TP-inter with PP/DP-inter halves it.\n";
    return golden.finish();
}

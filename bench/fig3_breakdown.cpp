/**
 * @file
 * Reproduces Fig. 3: the per-phase training-time breakdown for two
 * example Case-Study-I configurations on 1024 A100s (128 x 8, HDR):
 *
 *   config 1: DP8 intra | PP2 * DP64 inter
 *   config 2: DP8 intra | TP2 * DP64 inter
 *
 * The paper's observation: config 1's pipeline-bubble time is
 * negligible compared with config 2's inter-node TP communication.
 */

#include <iostream>

#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/amped_model.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "validate/calibrations.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Fig. 3: training-time breakdown, Megatron 145B "
                 "on 1024 A100s (batch 8192) ===\n\n";

    core::AmpedModel amped_model(
        model::presets::megatron145B(), hw::presets::a100(),
        validate::calibrations::caseStudy1(),
        net::presets::a100Cluster1024(),
        validate::calibrations::caseStudyOptions());

    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;

    const auto config1 = mapping::makeMapping(1, 1, 8, 1, 2, 64);
    const auto config2 = mapping::makeMapping(1, 1, 8, 2, 1, 64);

    const auto r1 = amped_model.evaluate(config1, job);
    const auto r2 = amped_model.evaluate(config2, job);

    std::cout << "--- config 1: " << config1.toString() << " ---\n"
              << explore::breakdownTable(r1) << "training time: "
              << units::formatDuration(r1.totalTime) << "\n\n";
    std::cout << "--- config 2: " << config2.toString() << " ---\n"
              << explore::breakdownTable(r2) << "training time: "
              << units::formatDuration(r2.totalTime) << "\n\n";

    const auto emit = [&golden](const std::string &name,
                                const core::EvaluationResult &result) {
        const std::string prefix = "fig3/" + name;
        golden.add(prefix + "/training_days", result.trainingDays());
        golden.add(prefix + "/time_per_batch_s", result.timePerBatch);
        golden.add(prefix + "/bubble_s", result.perBatch.bubble);
        golden.add(prefix + "/comm_tp_inter_s",
                   result.perBatch.commTpInter);
        golden.add(prefix + "/compute_s",
                   result.perBatch.computation());
        golden.add(prefix + "/comm_s",
                   result.perBatch.communication());
    };
    emit("config1", r1);
    emit("config2", r2);

    std::cout << "paper's observation check: config-1 bubble ("
              << units::formatDuration(r1.perBatch.bubble)
              << "/batch) is "
              << (r1.perBatch.bubble <
                          r2.perBatch.commTpInter
                      ? "indeed"
                      : "NOT")
              << " small vs config-2 inter-node TP comm ("
              << units::formatDuration(r2.perBatch.commTpInter)
              << "/batch)\n";
    return golden.finish();
}

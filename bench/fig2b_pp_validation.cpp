/**
 * @file
 * Reproduces Fig. 2b: normalized pipeline-parallel training time of
 * the minGPT PP variant (16 layers, hidden 1024) on 2 / 4 / 8 / 16
 * V100s of one HGX-2 node, with N_ub = N_PP microbatches.
 *
 * The "Experimental" series is the discrete-event GPipe simulation.
 * The paper's implementation was memory-bottlenecked by the last GPU
 * gathering all microbatches, which prevented scaling the global
 * batch past the 8-GPU point — reproduced here by capping the global
 * batch, which shrinks the microbatch (and its efficiency) at 16
 * GPUs and yields the published 8 -> 16 saturation.
 */

#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"
#include "validate/validation.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Fig. 2b: normalized PP training time, minGPT-PP "
                 "(1024 hidden, 16 layers) on HGX-2 V100s ===\n\n";

    const auto model_cfg = model::presets::minGptPipeline();
    const auto accel = hw::presets::v100Sxm3();
    const auto eff = validate::calibrations::minGptHgx2();
    const double base_microbatch = 8.0;
    const double max_global_batch = 64.0; // last-GPU memory cap
    const double total_samples = 64.0 * 200.0; // fixed dataset

    struct Point
    {
        std::int64_t gpus;
        double predicted;
        double simulated;
    };
    // Grid points are independent: fill pre-sized slots in parallel,
    // render serially below — output bytes never depend on threads.
    const std::vector<std::int64_t> gpu_counts{2, 4, 8, 16};
    std::vector<Point> points(gpu_counts.size());

    ThreadPool::shared().parallelFor(
        gpu_counts.size(), /*chunk=*/1, [&](std::size_t i) {
            const std::int64_t gpus = gpu_counts[i];
            // Batch scales with pipeline depth until the memory cap.
            const double batch =
                std::min(base_microbatch * static_cast<double>(gpus),
                         max_global_batch);
            const double microbatch =
                batch / static_cast<double>(gpus);
            const double batches = total_samples / batch;

            core::AmpedModel amped_model(
                model_cfg, accel, eff, net::presets::hgx2(gpus),
                validate::calibrations::nvswitchOptions(gpus));
            core::TrainingJob job;
            job.batchSize = batch;
            job.numBatchesOverride = batches;
            // N_ub = N_PP (paper Sec. V-B).
            const auto mapping =
                mapping::makeMapping(1, gpus, 1, 1, 1, 1);
            const double predicted =
                amped_model.evaluate(mapping, job).totalTime;

            sim::TrainingSimulator simulator(
                model_cfg, accel, eff, net::presets::nvlinkV100());
            simulator.setBackwardMultiplier(3.0);
            const double simulated =
                simulator.simulateGPipeStep(gpus, microbatch, gpus)
                    .stepTime *
                batches;

            points[i] = {gpus, predicted, simulated};
        });

    TextTable table({"GPUs", "Experimental (sim)", "Predicted (AMPeD)",
                     "disagreement (%)"});
    std::vector<validate::ValidationRow> rows;
    for (const auto &p : points) {
        const double norm_sim = p.simulated / points[0].simulated;
        const double norm_pred = p.predicted / points[0].predicted;
        rows.push_back(validate::makeRow(
            std::to_string(p.gpus) + " GPUs", norm_pred, norm_sim));
        const std::string prefix =
            "fig2b/gpus" + std::to_string(p.gpus);
        golden.add(prefix + "/norm_sim", norm_sim);
        golden.add(prefix + "/norm_predicted", norm_pred);
        table.addRow({std::to_string(p.gpus),
                      units::formatFixed(norm_sim, 3),
                      units::formatFixed(norm_pred, 3),
                      units::formatFixed(rows.back().errorPercent(),
                                         2)});
    }
    table.print(std::cout);
    std::cout << "\nshape check: time falls to 8 GPUs, saturates "
                 "8 -> 16 (memory-capped batch);\nmax |disagreement| "
                 "analytic vs simulator: "
              << units::formatFixed(
                     validate::maxAbsErrorPercent(rows), 2)
              << " %\n";
    golden.add("fig2b/max_abs_disagreement_pct",
               validate::maxAbsErrorPercent(rows));
    return golden.finish();
}

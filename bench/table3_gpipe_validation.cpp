/**
 * @file
 * Reproduces Table III: normalized GPipe training throughput for a
 * 24-layer transformer on 2 / 4 / 8 P100 GPUs over PCIe 3.0 with
 * M = 32 microbatches.
 *
 * Two reproduction columns: the analytical AMPeD prediction and the
 * discrete-event GPipe simulation (this repository's stand-in for
 * the real measurement).  Both are normalized to the 2-GPU value, as
 * in the paper.
 */

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"
#include "validate/reference_data.hpp"
#include "validate/validation.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Table III: GPipe normalized throughput "
                 "(24-layer transformer, P100 / PCIe, M = 32) ===\n\n";

    const auto model_cfg = model::presets::gpipeTransformer24();
    const auto accel = hw::presets::p100Pcie();
    const auto eff = validate::calibrations::gpipeP100();
    // PCIe has no NVSwitch: unidirectional ring default.
    const auto options = validate::calibrations::validationOptions();

    // Microbatch tuned to P100 memory as in the paper; fixed across
    // GPU counts so the per-step work per microbatch is constant.
    const double microbatch = 4.0;
    const double num_microbatches = 32.0;

    struct Point
    {
        std::int64_t gpus;
        double analyticTime;
        double simTime;
    };
    // Independent grid points: compute in parallel into pre-sized
    // slots, render serially below (thread-count-invariant bytes).
    const std::vector<std::int64_t> gpu_counts{2, 4, 8};
    std::vector<Point> points(gpu_counts.size());

    ThreadPool::shared().parallelFor(
        gpu_counts.size(), /*chunk=*/1, [&](std::size_t i) {
            const std::int64_t gpus = gpu_counts[i];
            net::SystemConfig system;
            system.name = "P100 PCIe node";
            system.numNodes = 1;
            system.acceleratorsPerNode = gpus;
            system.intraLink = net::presets::pcie3();
            system.interLink =
                net::presets::edrInfiniband(); // unused
            system.nicsPerNode = 1;

            core::AmpedModel amped_model(model_cfg, accel, eff,
                                         system, options);
            core::TrainingJob job;
            job.batchSize = microbatch * num_microbatches;
            job.numBatchesOverride = 1.0;
            job.microbatching.numMicrobatchesOverride =
                num_microbatches;

            const auto mapping =
                mapping::makeMapping(1, gpus, 1, 1, 1, 1);
            const double analytic =
                amped_model.evaluate(mapping, job).timePerBatch;

            sim::TrainingSimulator simulator(model_cfg, accel, eff,
                                             net::presets::pcie3());
            simulator.setBackwardMultiplier(
                options.backwardComputeMultiplier);
            const double simulated =
                simulator
                    .simulateGPipeStep(gpus, microbatch,
                                       static_cast<std::int64_t>(
                                           num_microbatches))
                    .stepTime;
            points[i] = {gpus, analytic, simulated};
        });

    TextTable table({"GPUs", "published [26]", "paper-AMPeD",
                     "this-repo analytic", "this-repo simulator"});
    std::vector<validate::ValidationRow> rows;
    const auto reference = validate::table3Rows();
    for (std::size_t i = 0; i < points.size(); ++i) {
        // Throughput normalized to the 2-GPU configuration (same
        // batch per step, so speedup = time(2) / time(n)).
        const double analytic_speedup =
            points[0].analyticTime / points[i].analyticTime;
        const double sim_speedup =
            points[0].simTime / points[i].simTime;
        rows.push_back(validate::makeRow(
            std::to_string(points[i].gpus) + " GPUs",
            analytic_speedup, reference[i].publishedSpeedup));
        const std::string prefix =
            "table3/gpus" + std::to_string(points[i].gpus);
        golden.add(prefix + "/analytic_speedup", analytic_speedup);
        golden.add(prefix + "/sim_speedup", sim_speedup);
        table.addRow({std::to_string(points[i].gpus),
                      units::formatFixed(reference[i].publishedSpeedup,
                                         2),
                      units::formatFixed(reference[i].paperPredicted, 2),
                      units::formatFixed(analytic_speedup, 2),
                      units::formatFixed(sim_speedup, 2)});
    }
    table.print(std::cout);
    std::cout << "\nmax |error| analytic vs published: "
              << units::formatFixed(
                     validate::maxAbsErrorPercent(rows), 2)
              << " % (paper reports within 12 %)\n";
    golden.add("table3/max_abs_err_pct",
               validate::maxAbsErrorPercent(rows));
    return golden.finish();
}

/**
 * @file
 * Closed-loop replay load generator for the `amped serve` evaluation
 * service.
 *
 * A seeded traffic generator builds a fixed mixed profile — single
 * evals, grid sweeps drawn from a small pool (so the LRU cache gets
 * hits), optimize calls, run-report requests, malformed requests,
 * already-expired deadlines, and pipelined bursts that overflow the
 * admission queue — and drives an in-process Server through
 * handleLine one request line at a time (closed loop: the next
 * request is issued when the previous response returns, exactly how
 * the stdio transport behaves).
 *
 * Two kinds of output, strictly separated:
 *
 *  - Deterministic (golden-pinned): the FNV-1a hash of the full
 *    response transcript plus the request/response/cache counters.
 *    The server contract says a fixed request sequence produces a
 *    byte-identical transcript at any worker thread count, so
 *    tools/golden_check replays this harness at 1 and 4 threads
 *    against one golden file.
 *  - Wall clock (--bench-out): latency percentiles, throughput, and
 *    the cache-hit ratio as BENCH_serve.json for the CI artifact.
 *    Never pinned — timing is machine-dependent.
 *
 * --transcript-out dumps the raw response lines so CI can validate
 * every response against the protocol schema with python3.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "case_study_util.hpp"
#include "common/rng.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

using namespace amped;

/** FNV-1a 64-bit, the transcript fingerprint. */
std::uint64_t
fnv1a64(const std::string &data)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (const unsigned char c : data) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** A tiny cluster description the sweeps enumerate quickly. */
std::string
systemParams(std::int64_t nodes, std::int64_t per_node)
{
    return "\"nodes\":" + std::to_string(nodes) +
           ",\"per-node\":" + std::to_string(per_node);
}

/**
 * The seeded traffic profile: one request line per slot.  Every
 * line is fully determined by the seed, so the whole transcript is
 * reproducible.
 */
std::vector<std::string>
buildTraffic(Rng &rng, int requests)
{
    // A small pool of sweep/optimize parameter sets: repeats of a
    // pool entry are exact-key repeats, which is what makes the LRU
    // cache earn hits under replay.
    const std::vector<std::string> sweep_pool = {
        "{\"model\":\"145b\"," + systemParams(2, 2) +
            ",\"batch\":512,\"top\":3}",
        "{\"model\":\"145b\"," + systemParams(2, 4) +
            ",\"batch\":1024,\"top\":3}",
        "{\"model\":\"145b\"," + systemParams(4, 2) +
            ",\"batch\":512,\"top\":2,\"batches\":[256,512]}",
        "{\"model\":\"gpt3\"," + systemParams(2, 2) +
            ",\"batch\":1536,\"top\":3}",
    };
    const std::vector<std::string> malformed = {
        "this is not json",
        "{\"id\":1,\"method\":\"ping\"",
        "{\"id\":2,\"id\":2,\"method\":\"ping\"}",
        "{\"id\":3,\"method\":\"frobnicate\"}",
        "{\"id\":4,\"method\":\"eval\",\"params\":{\"warp\":9}}",
        "{\"id\":-7,\"method\":\"ping\"}",
        "[]",
    };

    std::vector<std::string> lines;
    lines.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        const std::string id = std::to_string(i);
        const int roll = static_cast<int>(rng.uniformInt(0, 99));
        if (roll < 30) {
            // Single eval on a small random cluster and mapping.
            const std::int64_t tp = 1 << rng.uniformInt(0, 1);
            lines.push_back(
                "{\"id\":" + id + ",\"method\":\"eval\","
                "\"params\":{\"model\":\"145b\"," +
                systemParams(2, 2) + ",\"batch\":512,"
                "\"tp-intra\":" + std::to_string(tp) +
                ",\"dp-inter\":2}}");
        } else if (roll < 55) {
            // Sweep from the pool (cacheable repeats).
            const auto &params = sweep_pool[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      sweep_pool.size()) - 1))];
            lines.push_back("{\"id\":" + id +
                            ",\"method\":\"sweep\",\"params\":" +
                            params + "}");
        } else if (roll < 70) {
            // Optimize from the same pool (separate cache keys).
            const auto &params = sweep_pool[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      sweep_pool.size()) - 1))];
            lines.push_back("{\"id\":" + id +
                            ",\"method\":\"optimize\",\"params\":" +
                            params + "}");
        } else if (roll < 80) {
            // Structured run report (schema v3 + metrics snapshot).
            lines.push_back(
                "{\"id\":" + id + ",\"method\":\"report\","
                "\"params\":{\"model\":\"145b\"," +
                systemParams(2, 2) +
                ",\"batch\":512,\"tp-intra\":2,\"dp-inter\":2}}");
        } else if (roll < 90) {
            // Malformed input: must yield a structured error, never
            // kill the server.
            lines.push_back(malformed[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      malformed.size()) - 1))]);
        } else if (roll < 95) {
            // Already-expired deadline: deterministic "expired".
            lines.push_back("{\"id\":" + id +
                            ",\"method\":\"ping\",\"deadline_ms\":"
                            "0}");
        } else {
            // Pipelined burst overflowing the admission queue
            // (capacity 8 in this harness), so the tail of the
            // burst is deterministically rejected.
            std::string burst = "[";
            const std::int64_t n = rng.uniformInt(10, 12);
            for (std::int64_t j = 0; j < n; ++j) {
                if (j != 0)
                    burst += ",";
                burst += "{\"id\":" + id + ",\"method\":\"ping\"}";
            }
            burst += "]";
            lines.push_back(std::move(burst));
        }
    }
    return lines;
}

/** Counter/gauge lookup in a snapshot (0 when absent). */
double
metricValue(const std::vector<obs::MetricSnapshot> &snapshot,
            const std::string &name)
{
    for (const auto &snap : snapshot) {
        if (snap.name != name)
            continue;
        return snap.kind == obs::MetricKind::gauge
                   ? snap.value
                   : static_cast<double>(snap.count);
    }
    return 0.0;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);

    constexpr int kRequests = 200;
    constexpr std::uint64_t kSeed = 0x5e12e5e12eULL;

    obs::MetricsRegistry registry;
    serve::ServerOptions options;
    options.queueCapacity = 8;
    options.cacheBudgetBytes = 1u << 20;
    options.registry = &registry;
    serve::Server server(options);

    Rng rng(kSeed);
    const auto traffic = buildTraffic(rng, kRequests);

    std::string transcript;
    std::vector<double> latencies;
    latencies.reserve(traffic.size());
    std::size_t lines_out = 0;

    const auto start = std::chrono::steady_clock::now();
    for (const auto &line : traffic) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::string response = server.handleLine(line);
        const auto t1 = std::chrono::steady_clock::now();
        latencies.push_back(
            std::chrono::duration<double>(t1 - t0).count());
        transcript += response;
        transcript += '\n';
        lines_out += static_cast<std::size_t>(
            std::count(response.begin(), response.end(), '\n') + 1);
    }
    const double total_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    const auto snapshot = registry.snapshot();
    const double hits = metricValue(snapshot, "serve.cache.hits");
    const double misses =
        metricValue(snapshot, "serve.cache.misses");
    const double ok = metricValue(snapshot, "serve.responses.ok");
    const double errors =
        metricValue(snapshot, "serve.responses.error");
    const double dropped =
        metricValue(snapshot, "serve.responses.dropped");
    const double latency_count = metricValue(
        snapshot, "serve.request.latency_seconds");
    const std::uint64_t fingerprint = fnv1a64(transcript);

    std::cout << "=== serve load generator: " << kRequests
              << " request lines, seed 0x" << std::hex << kSeed
              << std::dec << " ===\n\n"
              << "responses:  " << ok << " ok, " << errors
              << " error, " << dropped << " dropped\n"
              << "cache:      " << hits << " hits / " << misses
              << " misses ("
              << (hits + misses > 0 ? hits / (hits + misses) : 0.0)
              << " hit ratio)\n"
              << "latency:    " << latency_count
              << " measured requests\n"
              << "transcript: " << transcript.size()
              << " bytes, fnv64 0x" << std::hex << fingerprint
              << std::dec << "\n";

    // Deterministic record: the transcript fingerprint (split into
    // two exact 32-bit halves — golden values are doubles) plus
    // every sequence-determined counter.
    golden.add("serve/transcript_fnv_hi",
               static_cast<double>(fingerprint >> 32));
    golden.add("serve/transcript_fnv_lo",
               static_cast<double>(fingerprint & 0xffffffffULL));
    golden.add("serve/transcript_bytes",
               static_cast<double>(transcript.size()));
    golden.add("serve/response_lines",
               static_cast<double>(lines_out));
    golden.add("serve/requests",
               metricValue(snapshot, "serve.requests"));
    golden.add("serve/responses_ok", ok);
    golden.add("serve/responses_error", errors);
    golden.add("serve/responses_dropped", dropped);
    golden.add("serve/cache_hits", hits);
    golden.add("serve/cache_misses", misses);
    golden.add("serve/cache_entries",
               static_cast<double>(server.cache().size()));
    golden.add("serve/cache_bytes",
               static_cast<double>(server.cache().bytes()));
    golden.add("serve/latency_count", latency_count);

    if (!golden.transcriptPath().empty()) {
        std::ofstream out(golden.transcriptPath());
        require(out.good(), "serve_loadgen: cannot write ",
                golden.transcriptPath());
        out << transcript;
    }

    if (!golden.benchPath().empty()) {
        std::sort(latencies.begin(), latencies.end());
        obs::Json latency = obs::Json::object();
        latency.set("p50", percentile(latencies, 0.50));
        latency.set("p90", percentile(latencies, 0.90));
        latency.set("p99", percentile(latencies, 0.99));
        latency.set("max", latencies.empty() ? 0.0
                                             : latencies.back());
        obs::Json cache = obs::Json::object();
        cache.set("hits", static_cast<std::int64_t>(hits));
        cache.set("misses", static_cast<std::int64_t>(misses));
        cache.set("hit_ratio",
                  hits + misses > 0 ? hits / (hits + misses) : 0.0);
        obs::Json responses = obs::Json::object();
        responses.set("ok", static_cast<std::int64_t>(ok));
        responses.set("error", static_cast<std::int64_t>(errors));
        responses.set("dropped",
                      static_cast<std::int64_t>(dropped));

        obs::Json doc = obs::Json::object();
        doc.set("schema_version", 1);
        doc.set("kind", "amped.serve_bench");
        doc.set("requests", kRequests);
        doc.set("response_lines",
                static_cast<std::int64_t>(lines_out));
        doc.set("seconds", total_seconds);
        doc.set("requests_per_sec",
                total_seconds > 0.0 ? kRequests / total_seconds
                                    : 0.0);
        doc.set("latency_seconds", std::move(latency));
        doc.set("cache", std::move(cache));
        doc.set("responses", std::move(responses));

        std::ofstream out(golden.benchPath());
        require(out.good(), "serve_loadgen: cannot write ",
                golden.benchPath());
        out << doc.dump(2) << '\n';
    }

    return golden.finish();
}

/**
 * @file
 * Reproduces Fig. 2a: normalized data-parallel training time of
 * minGPT (85 M) on 1 / 2 / 4 / 8 / 16 V100s of one HGX-2 node.
 *
 * The paper compares real training runs ("Experimental") against
 * AMPeD ("Predicted"); this repository substitutes the discrete-
 * event cluster simulator for the real runs (DESIGN.md Sec. 1).
 * Setup follows Sec. V-A: the per-GPU batch is fixed (adjusted to
 * GPU memory), the total amount of training data is fixed, so the
 * batch count shrinks as GPUs are added; times are normalized to the
 * single-GPU run.
 */

#include <iostream>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"
#include "validate/validation.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Fig. 2a: normalized DP training time, minGPT "
                 "85M on HGX-2 V100s ===\n\n";

    const auto model_cfg = model::presets::minGpt85M();
    const auto accel = hw::presets::v100Sxm3();
    const auto eff = validate::calibrations::minGptHgx2();
    const double per_gpu_batch = 32.0; // memory-tuned, fixed per GPU
    const double total_samples = 16.0 * 32.0 * 100.0; // fixed dataset

    struct Point
    {
        std::int64_t gpus;
        double predicted; // analytic total time
        double simulated; // DES total time
    };
    // Each grid point is independent: compute them in parallel into
    // pre-sized slots, then render serially in grid order so the
    // table and golden bytes never depend on the thread count.
    const std::vector<std::int64_t> gpu_counts{1, 2, 4, 8, 16};
    std::vector<Point> points(gpu_counts.size());

    ThreadPool::shared().parallelFor(
        gpu_counts.size(), /*chunk=*/1, [&](std::size_t i) {
            const std::int64_t gpus = gpu_counts[i];
            const double batch =
                per_gpu_batch * static_cast<double>(gpus);
            const double batches = total_samples / batch;

            // Analytic prediction.
            core::AmpedModel amped_model(
                model_cfg, accel, eff, net::presets::hgx2(gpus),
                validate::calibrations::nvswitchOptions(gpus));
            core::TrainingJob job;
            job.batchSize = batch;
            job.numBatchesOverride = batches;
            const auto mapping =
                mapping::makeMapping(1, 1, gpus, 1, 1, 1);
            const double predicted =
                amped_model.evaluate(mapping, job).totalTime;

            // Simulated "experimental" run.
            sim::TrainingSimulator simulator(
                model_cfg, accel, eff, net::presets::nvlinkV100());
            simulator.setBackwardMultiplier(3.0); // recompute conv.
            const double simulated =
                simulator
                    .simulateDataParallelStep(gpus, per_gpu_batch)
                    .stepTime *
                batches;

            points[i] = {gpus, predicted, simulated};
        });

    TextTable table({"GPUs", "Experimental (sim)", "Predicted (AMPeD)",
                     "disagreement (%)"});
    std::vector<validate::ValidationRow> rows;
    for (const auto &p : points) {
        const double norm_sim = p.simulated / points[0].simulated;
        const double norm_pred = p.predicted / points[0].predicted;
        rows.push_back(validate::makeRow(
            std::to_string(p.gpus) + " GPUs", norm_pred, norm_sim));
        const std::string prefix =
            "fig2a/gpus" + std::to_string(p.gpus);
        golden.add(prefix + "/norm_sim", norm_sim);
        golden.add(prefix + "/norm_predicted", norm_pred);
        table.addRow({std::to_string(p.gpus),
                      units::formatFixed(norm_sim, 3),
                      units::formatFixed(norm_pred, 3),
                      units::formatFixed(rows.back().errorPercent(),
                                         2)});
    }
    table.print(std::cout);
    std::cout << "\nshape check: normalized time ~ 1/GPUs with "
                 "all-reduce saturation;\nmax |disagreement| "
                 "analytic vs simulator: "
              << units::formatFixed(
                     validate::maxAbsErrorPercent(rows), 2)
              << " % (paper reports <= 12 % vs hardware)\n";
    golden.add("fig2a/max_abs_disagreement_pct",
               validate::maxAbsErrorPercent(rows));
    return golden.finish();
}

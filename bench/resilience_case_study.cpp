/**
 * @file
 * Resilience case study: expected time-to-train for Megatron-145B on
 * the 1024-A100 Case Study I cluster once device failures and
 * checkpoint/restart costs are priced in (core/resilience.hpp) — a
 * dimension the paper's failure-free model leaves out.
 *
 * Grid: per-device failure rate x checkpoint interval x DP degree
 * (TP fixed at 8 intra-node; PP picks up the rest of the 1024
 * accelerators).  Each device persists its resident parameters and
 * optimizer state over its HDR InfiniBand NIC (DP replicas shard the
 * write, so one device's footprint is the per-checkpoint unit).
 * A seeded Monte-Carlo replication of one grid point cross-checks
 * the closed form; its statistics are byte-identical at any thread
 * count, so they golden-check like everything else.
 */

#include <iostream>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/memory_model.hpp"
#include "core/resilience.hpp"
#include "net/system_config.hpp"

namespace {

using namespace amped;

/** Grid axis: per-device failure rate (label, failures/s). */
struct RateAxis
{
    const char *label;
    double perDeviceRate;
};

/** Grid axis: checkpoint interval (label, seconds; 0 = Daly). */
struct IntervalAxis
{
    const char *label;
    double seconds;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);
    std::cout << "=== Resilience: expected time-to-train under "
                 "failures (Megatron 145B, 1024 x A100, B = 8192) "
                 "===\n\n";

    const auto system = net::presets::a100Cluster1024();
    const auto model = bench::caseStudyModel(system);
    const core::MemoryModel memory(model.opCounter(),
                                   model.accelerator());
    const double batch = 8192.0;
    const std::int64_t devices = system.totalAccelerators();
    // Each device checkpoints over its own HDR NIC share.
    const auto storage_link = net::presets::hdrInfiniband();

    const RateAxis rates[] = {
        {"none", 0.0},
        // ~1 failure per device per 116 days; ~9 cluster failures/day.
        {"1e-7", 1e-7},
        // Pessimistic: ~1 per device per 11.6 days.
        {"1e-6", 1e-6},
    };
    const IntervalAxis intervals[] = {
        {"daly", 0.0},
        {"1h", 3600.0},
        {"4h", 4.0 * 3600.0},
    };

    TextTable table({"DP", "mapping", "ckpt GB", "write s",
                     "rate/dev", "interval", "tau s", "E[days]",
                     "overhead", "E[failures]"});

    for (std::int64_t dp : {4, 8, 16}) {
        const std::int64_t pp = devices / (8 * dp);
        const auto m = mapping::makeMapping(8, 1, 1, 1, pp, dp);
        const auto result = bench::tryEvaluate(model, m, batch);
        if (!result) {
            std::cout << "skipping infeasible mapping "
                      << m.toString() << "\n";
            continue;
        }
        const double solve = result->totalTime;
        const auto footprint =
            memory.footprint(m, batch, result->microbatchSize);
        const double ckpt_bytes = core::checkpointBytes(footprint);
        const Seconds delta =
            core::checkpointWriteSeconds(ckpt_bytes, storage_link);

        const std::string base = "resilience/DP" + std::to_string(dp);
        golden.add(base + "/solve_days", solve / 86400.0);
        golden.add(base + "/ckpt_gb", ckpt_bytes / 1e9);
        golden.add(base + "/ckpt_write_s", delta.value());

        for (const auto &rate : rates) {
            core::ResilienceConfig config;
            config.mtbfSeconds =
                core::clusterMtbfSeconds(rate.perDeviceRate, devices);
            config.checkpointWriteSeconds = delta;
            config.restartSeconds = Seconds{600.0}; // detect+reload+rewind
            for (const auto &interval : intervals) {
                config.checkpointIntervalSeconds =
                    Seconds{interval.seconds};
                if (interval.seconds == 0.0
                    && !std::isfinite(config.mtbfSeconds.value())) {
                    // Daly on a failure-free cluster = never
                    // checkpoint; the estimate is just the solve
                    // time, so skip the degenerate cell.
                    continue;
                }
                const auto estimate =
                    core::estimateTimeToTrain(Seconds{solve},
                                              config);
                const std::string key = base + "/rate_" + rate.label
                    + "/tau_" + interval.label;
                golden.add(key + "/expected_days",
                           estimate.expectedSeconds.value()
                               / 86400.0);
                golden.add(key + "/overhead_pct",
                           100.0 * estimate.overheadFraction());
                golden.add(key + "/expected_failures",
                           estimate.expectedFailures);
                table.addRow(
                    {std::to_string(dp), m.toString(),
                     units::formatFixed(ckpt_bytes / 1e9, 1),
                     units::formatFixed(delta.value(), 1), rate.label,
                     interval.label,
                     units::formatFixed(estimate.intervalSeconds.value(),
                                        0),
                     units::formatFixed(
                         estimate.expectedSeconds.value() / 86400.0,
                         2),
                     units::formatFixed(
                         100.0 * estimate.overheadFraction(), 2)
                         + " %",
                     units::formatFixed(estimate.expectedFailures,
                                        1)});
            }
        }
    }
    table.print(std::cout);

    // Monte-Carlo cross-check of one representative point (DP = 16,
    // pessimistic rate, Daly interval): the closed form should land
    // within a few standard errors of the replicated renewal
    // process.  Seeded and slot-reduced, so the statistics are the
    // same bytes at every AMPED_THREADS setting.
    {
        const auto m = mapping::makeMapping(8, 1, 1, 1,
                                            devices / (8 * 16), 16);
        const auto result = bench::tryEvaluate(model, m, batch);
        require(result.has_value(),
                "MC cross-check mapping must be feasible");
        const auto footprint =
            memory.footprint(m, batch, result->microbatchSize);
        core::ResilienceConfig config;
        config.mtbfSeconds = core::clusterMtbfSeconds(1e-6, devices);
        config.checkpointWriteSeconds = core::checkpointWriteSeconds(
            core::checkpointBytes(footprint), storage_link);
        config.restartSeconds = Seconds{600.0};
        const auto estimate =
            core::estimateTimeToTrain(Seconds{result->totalTime},
                                      config);
        const auto stats = core::monteCarloTimeToTrain(
            Seconds{result->totalTime}, config, 256, 0x5eed5eedULL,
            ThreadPool::shared());
        std::cout << "\nMC cross-check (DP16, rate 1e-6, Daly tau): "
                  << "analytic "
                  << units::formatFixed(
                         estimate.expectedSeconds.value() / 86400.0,
                         2)
                  << " days vs MC "
                  << units::formatFixed(
                         stats.meanSeconds.value() / 86400.0, 2)
                  << " +/- "
                  << units::formatFixed(
                         stats.standardError.value() / 86400.0, 2)
                  << " days (" << stats.replications
                  << " replications)\n";
        golden.add("resilience/mc/analytic_days",
                   estimate.expectedSeconds.value() / 86400.0);
        golden.add("resilience/mc/mean_days",
                   stats.meanSeconds.value() / 86400.0);
        golden.add("resilience/mc/stddev_days",
                   stats.stddevSeconds.value() / 86400.0);
        golden.add("resilience/mc/gap_in_std_errors",
                   std::abs((stats.meanSeconds
                             - estimate.expectedSeconds)
                                .value())
                       / stats.standardError.value());
    }
    std::cout
        << "\nreading: at the optimistic rate the Daly interval "
           "keeps the failure overhead in the low\npercent range; at "
           "the pessimistic rate a mischosen fixed interval (4h) is "
           "ruinous while the\nDaly interval stays moderate — the "
           "analytic layer makes that trade-off visible before\n"
           "committing a cluster.\n";
    return golden.finish();
}

/**
 * @file
 * Ablation benches for the modeling choices DESIGN.md Sec. 7 calls
 * out, all on the Case Study I context (Megatron 145B, 1024 A100s,
 * batch 8192):
 *
 *   1. bubble-overlap ratio R (naive GPipe vs interleaved),
 *   2. ZeRO-DP overhead factor,
 *   3. hierarchical vs flat gradient all-reduce,
 *   4. efficiency floor (the Fig. 8 kink),
 *   5. pipeline schedules with derived R / hop-traffic parameters,
 *   6. analytical model vs discrete-event simulator agreement.
 */

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/pipeline_schedule.hpp"
#include "explore/ablation.hpp"
#include "net/system_config.hpp"
#include "sim/training_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Ablations: modeling-choice sensitivity "
                 "(Megatron 145B, 1024 A100s, B = 8192) ===\n\n";

    const auto system = net::presets::a100Cluster1024();
    explore::AblationRunner runner(
        model::presets::megatron145B(), hw::presets::a100(),
        validate::calibrations::caseStudy1(), system,
        validate::calibrations::caseStudyOptions());
    const auto job = bench::caseStudyJob(8192.0);

    {
        std::cout << "--- 1. bubble-overlap ratio R (TP8 | PP16*DP8) "
                     "---\n";
        const auto m = mapping::makeMapping(8, 1, 1, 1, 16, 8);
        TextTable table({"R", "days", "bubble share"});
        for (const auto &point : runner.sweepBubbleOverlap(
                 {0.0, 0.1, 0.25, 0.5, 1.0}, m, job)) {
            golden.add("ablation/bubble_overlap/" + point.label +
                           "/days",
                       point.result.trainingDays());
            table.addRow(
                {point.label,
                 units::formatFixed(point.result.trainingDays(), 1),
                 units::formatFixed(100.0 * point.result.perBatch.bubble /
                                        point.result.perBatch.total(),
                                    1) +
                     " %"});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "--- 2. ZeRO-DP overhead factor (TP8 | DP128) "
                     "---\n";
        const auto m = mapping::makeMapping(8, 1, 1, 1, 1, 128);
        TextTable table({"M_f_DP", "days", "comm share"});
        for (const auto &point : runner.sweepZeroOverhead(
                 {0.0, 0.25, 0.5, 1.0}, m, job)) {
            golden.add("ablation/zero_overhead/" + point.label +
                           "/days",
                       point.result.trainingDays());
            table.addRow(
                {point.label,
                 units::formatFixed(point.result.trainingDays(), 1),
                 units::formatFixed(
                     100.0 * point.result.perBatch.communication() /
                         point.result.perBatch.total(),
                     1) +
                     " %"});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "--- 3. hierarchical vs flat gradient all-reduce "
                     "(DP8 | PP16*DP8) ---\n";
        const auto m = mapping::makeMapping(1, 1, 8, 1, 16, 8);
        TextTable table({"scheme", "days", "grad comm / batch"});
        for (const auto &point : runner.compareGradAllReduce(m, job)) {
            golden.add("ablation/gradreduce/" + point.label +
                           "/days",
                       point.result.trainingDays());
            golden.add("ablation/gradreduce/" + point.label +
                           "/grad_comm_s",
                       point.result.perBatch.commGradIntra +
                           point.result.perBatch.commGradInter);
            table.addRow(
                {point.label,
                 units::formatFixed(point.result.trainingDays(), 1),
                 units::formatDuration(
                     point.result.perBatch.commGradIntra +
                     point.result.perBatch.commGradInter)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "--- 4. efficiency floor (DP8 | TP2*DP64, "
                     "B = 4096: the Fig. 8 kink region) ---\n";
        const auto m = mapping::makeMapping(1, 1, 8, 2, 1, 64);
        const auto kink_job = bench::caseStudyJob(4096.0);
        TextTable table({"floor", "days", "eff(ub)"});
        for (const auto &point : runner.sweepEfficiencyFloor(
                 {0.0, 0.1, 0.25}, m, kink_job)) {
            golden.add("ablation/eff_floor/" + point.label + "/days",
                       point.result.trainingDays());
            golden.add("ablation/eff_floor/" + point.label + "/eff",
                       point.result.efficiency);
            table.addRow(
                {point.label,
                 units::formatFixed(point.result.trainingDays(), 1),
                 units::formatFixed(point.result.efficiency, 3)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "--- 5. pipeline schedules (TP8 | PP16*DP8, "
                     "derived R and hop traffic) ---\n";
        const auto m = mapping::makeMapping(8, 1, 1, 1, 16, 8);
        TextTable table({"schedule", "R", "PP-comm x", "days",
                         "bubble share"});
        std::vector<core::PipelineSchedule> schedules;
        schedules.push_back({core::PipelineScheduleKind::gpipe, 1});
        schedules.push_back({core::PipelineScheduleKind::oneFOneB, 1});
        schedules.push_back(
            {core::PipelineScheduleKind::interleaved, 2});
        schedules.push_back(
            {core::PipelineScheduleKind::interleaved, 4});
        for (const auto &schedule : schedules) {
            core::ModelOptions options =
                validate::calibrations::nvswitchOptions(8);
            core::applySchedule(schedule, options);
            const auto result =
                runner.evaluateWith(options, m, job);
            golden.add("ablation/schedule/" + schedule.name() +
                           "/days",
                       result.trainingDays());
            golden.add("ablation/schedule/" + schedule.name() +
                           "/bubble_share",
                       result.perBatch.bubble /
                           result.perBatch.total());
            table.addRow(
                {schedule.name(),
                 units::formatFixed(schedule.bubbleOverlapRatio(), 2),
                 units::formatFixed(schedule.ppCommMultiplier(), 0),
                 units::formatFixed(result.trainingDays(), 1),
                 units::formatFixed(100.0 * result.perBatch.bubble /
                                        result.perBatch.total(),
                                    1) +
                     " %"});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        std::cout << "--- 6. analytical vs discrete-event simulator "
                     "(minGPT DP / GPipe on HGX-2) ---\n";
        const auto eff = validate::calibrations::minGptHgx2();
        TextTable table({"schedule", "analytic/batch", "sim/batch",
                         "disagreement (%)"});

        // DP x 8.
        {
            core::AmpedModel analytic(
                model::presets::minGpt85M(), hw::presets::v100Sxm3(),
                eff, net::presets::hgx2(8),
                validate::calibrations::nvswitchOptions(8));
            core::TrainingJob small_job;
            small_job.batchSize = 8.0 * 32.0;
            small_job.numBatchesOverride = 1.0;
            const double a =
                analytic
                    .evaluate(mapping::makeMapping(1, 1, 8, 1, 1, 1),
                              small_job)
                    .timePerBatch;
            sim::TrainingSimulator simulator(
                model::presets::minGpt85M(), hw::presets::v100Sxm3(),
                eff, net::presets::nvlinkV100());
            simulator.setBackwardMultiplier(3.0);
            const double s =
                simulator.simulateDataParallelStep(8, 32.0).stepTime;
            golden.add("ablation/sim_vs_analytic/dp8/analytic_s", a);
            golden.add("ablation/sim_vs_analytic/dp8/sim_s", s);
            table.addRow({"DP x 8", units::formatDuration(a),
                          units::formatDuration(s),
                          units::formatFixed((a - s) / s * 100.0, 2)});
        }
        // GPipe x 8.
        {
            core::AmpedModel analytic(
                model::presets::minGptPipeline(),
                hw::presets::v100Sxm3(), eff, net::presets::hgx2(8),
                validate::calibrations::nvswitchOptions(8));
            core::TrainingJob small_job;
            small_job.batchSize = 64.0;
            small_job.numBatchesOverride = 1.0;
            const double a =
                analytic
                    .evaluate(mapping::makeMapping(1, 8, 1, 1, 1, 1),
                              small_job)
                    .timePerBatch;
            sim::TrainingSimulator simulator(
                model::presets::minGptPipeline(),
                hw::presets::v100Sxm3(), eff,
                net::presets::nvlinkV100());
            simulator.setBackwardMultiplier(3.0);
            const double s =
                simulator.simulateGPipeStep(8, 8.0, 8).stepTime;
            golden.add("ablation/sim_vs_analytic/gpipe8/analytic_s",
                       a);
            golden.add("ablation/sim_vs_analytic/gpipe8/sim_s", s);
            table.addRow({"GPipe x 8", units::formatDuration(a),
                          units::formatDuration(s),
                          units::formatFixed((a - s) / s * 100.0, 2)});
        }
        table.print(std::cout);
    }
    return golden.finish();
}

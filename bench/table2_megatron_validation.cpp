/**
 * @file
 * Reproduces Table II: AMPeD vs published Megatron-LM TFLOP/s/GPU
 * for the 145B / 310B / 530B / 1T GPT models.
 *
 * Setup per row: TP = 8 inside 8-accelerator A100 nodes (the
 * Megatron/Selene configuration), PP x DP across nodes, R = 1 (no
 * bubble overlap, exactly as the paper states for this table), and
 * the published per-GPU microbatch size.  Calibration:
 * validate::calibrations::megatronTable2() — see EXPERIMENTS.md.
 */

#include <iostream>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "validate/calibrations.hpp"
#include "validate/reference_data.hpp"
#include "validate/validation.hpp"

namespace {

amped::model::TransformerConfig
modelFor(const std::string &name)
{
    using namespace amped::model::presets;
    if (name == "145B")
        return megatron145B();
    if (name == "310B")
        return megatron310B();
    if (name == "530B")
        return megatron530B();
    return megatron1T();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Table II: AMPeD vs published Megatron-LM "
                 "TFLOP/s/GPU ===\n\n";

    TextTable table({"Model", "TP", "PP", "DP", "this-repo TFLOP/s",
                     "paper-AMPeD", "published", "err vs published "
                     "(%)"});
    std::vector<validate::ValidationRow> rows;

    // Rows are independent model evaluations: compute in parallel
    // into pre-sized slots, render serially in row order so the
    // table and golden bytes never depend on the thread count.
    const auto table_rows = validate::table2Rows();
    std::vector<double> tflops_by_row(table_rows.size(), 0.0);
    ThreadPool::shared().parallelFor(
        table_rows.size(), /*chunk=*/1, [&](std::size_t i) {
            const auto &row = table_rows[i];
            const auto model_cfg = modelFor(row.modelName);

            net::SystemConfig system;
            system.name = "Selene-like A100";
            system.numNodes = row.pp * row.dp;
            system.acceleratorsPerNode = 8;
            system.intraLink = net::presets::nvlinkA100();
            system.interLink = net::presets::hdrInfiniband();
            system.nicsPerNode = 8;

            core::AmpedModel amped_model(
                model_cfg, hw::presets::a100(),
                validate::calibrations::megatronTable2(), system,
                validate::calibrations::nvswitchOptions(8));

            core::TrainingJob job;
            job.batchSize = row.batchSize;
            job.numBatchesOverride = 1.0;
            job.microbatching.microbatchSizeOverride =
                row.microbatch;

            const auto mapping =
                mapping::makeMapping(8, 1, 1, 1, row.pp, row.dp);
            const auto result = amped_model.evaluate(mapping, job);
            tflops_by_row[i] =
                result.achievedFlopsPerGpu / units::tera;
        });

    for (std::size_t i = 0; i < table_rows.size(); ++i) {
        const auto &row = table_rows[i];
        const double tflops = tflops_by_row[i];

        rows.push_back(validate::makeRow(row.modelName, tflops,
                                         row.publishedTflops));
        golden.add("table2/" + row.modelName + "/tflops_per_gpu",
                   tflops);
        golden.add("table2/" + row.modelName + "/err_vs_published_pct",
                   rows.back().errorPercent());
        table.addRow({row.modelName, std::to_string(row.tp),
                      std::to_string(row.pp), std::to_string(row.dp),
                      units::formatFixed(tflops, 1),
                      units::formatFixed(row.paperAmpedTflops, 1),
                      units::formatFixed(row.publishedTflops, 1),
                      units::formatFixed(
                          rows.back().errorPercent(), 2)});
    }

    table.print(std::cout);
    std::cout << "\nmax |error| vs published: "
              << units::formatFixed(
                     validate::maxAbsErrorPercent(rows), 2)
              << " % (paper reports <= 12 %)\n";
    golden.add("table2/max_abs_err_pct",
               validate::maxAbsErrorPercent(rows));
    return golden.finish();
}

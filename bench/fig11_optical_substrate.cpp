/**
 * @file
 * Reproduces Case Study III (Fig. 11): training a GLaM-class MoE
 * model on 3072 H100-class accelerators (8-bit precision, batch
 * 8192, TP intra-node, DP across nodes) on systems built around
 * optical communication substrates.
 *
 * Bars:
 *   1. reference: 384 nodes x 8, NVLink4 intra, 8 NDR NICs/node
 *   2. Opt.1: one optical fiber per accelerator (inter-node
 *      per-stream bandwidth = accelerator off-chip bandwidth)
 *   3-5. Opt.2: larger substrates — 4x4 (16/node, 12 fibers),
 *      4x8 (32/node, 20 fibers), 6x8 (48/node, 24 fibers)
 *   6-7. Opt.3: 2x and 4x accelerator off-chip bandwidth on the
 *      6x8 substrate
 *
 * Expected shape (paper Sec. VIII): Opt.1 ~ +42 % (MoE all-to-all
 * ~6x cheaper), Opt.2 adds ~+29 % (more TP -> better microbatch
 * efficiency), Opt.3 +54 % / +110 % more, ~4x total, with compute
 * eventually dominating.
 */

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "case_study_util.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "validate/calibrations.hpp"

namespace {

using namespace amped;

struct Bar
{
    std::string label;
    std::int64_t acceleratorsPerNode;
    std::int64_t fibersPerNode; ///< 0 = NDR InfiniBand reference.
    double offChipScale;        ///< Opt. 3 multiplier.
};

core::EvaluationResult
evaluateBar(const Bar &bar)
{
    // H100 at 8-bit operand precision (paper: "We assume 8-bit
    // precision").
    hw::AcceleratorConfig accel = hw::presets::h100();
    accel.precisions.parameterBits = Bits{8.0};
    accel.precisions.activationBits = Bits{8.0};
    accel.precisions.nonlinearBits = Bits{8.0};
    accel.offChipBandwidth *= bar.offChipScale;

    net::SystemConfig system;
    system.acceleratorsPerNode = bar.acceleratorsPerNode;
    system.numNodes = 3072 / bar.acceleratorsPerNode;
    // The substrate carries intra-node traffic at the accelerator's
    // off-chip bandwidth (NVLink4-equal for 1x).
    system.intraLink = net::presets::nvlinkH100()
                           .scaledBandwidth(bar.offChipScale);
    if (bar.fibersPerNode > 0) {
        system.interLink =
            net::presets::opticalFiber(accel.offChipBandwidth);
        system.nicsPerNode = bar.fibersPerNode;
        system.interIsPooledFabric = true; // switched photonic fabric
        system.name = "optical " + bar.label;
    } else {
        system.interLink = net::presets::ndrInfiniband();
        system.nicsPerNode = 8;
        system.name = "reference NDR";
    }

    core::ModelOptions options =
        validate::calibrations::nvswitchOptions(
            bar.acceleratorsPerNode);
    options.gradientBits = Bits{32.0};

    core::AmpedModel model(model::presets::glamMoE(), accel,
                           validate::calibrations::caseStudy3(),
                           system, options);

    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;

    // TP spans the node, DP spans the nodes.
    const auto mapping = mapping::makeMapping(
        bar.acceleratorsPerNode, 1, 1, 1, 1, system.numNodes);
    return model.evaluate(mapping, job);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);
    std::cout << "=== Case Study III (Fig. 11): GLaM MoE on 3072 "
                 "H100s with optical substrates ===\n\n";

    const std::vector<Bar> bars = {
        {"reference (8/node, NDR)", 8, 0, 1.0},
        {"Opt.1 (8/node, fiber/acc)", 8, 8, 1.0},
        {"Opt.2 4x4 (16/node)", 16, 12, 1.0},
        {"Opt.2 4x8 (32/node)", 32, 20, 1.0},
        {"Opt.2 6x8 (48/node)", 48, 24, 1.0},
        {"Opt.3 2x off-chip (48/node)", 48, 24, 2.0},
        {"Opt.3 4x off-chip (48/node)", 48, 24, 4.0},
    };

    TextTable table({"configuration", "days", "rel. performance",
                     "MoE comm share", "compute share", "eff"});
    double reference_time = 0.0;
    double reference_moe = 0.0;
    std::size_t bar_index = 0;
    for (const auto &bar : bars) {
        const auto result = evaluateBar(bar);
        if (reference_time == 0.0) {
            reference_time = result.totalTime;
            reference_moe = result.perBatch.commMoe;
        }
        const std::string prefix =
            "fig11/bar" + std::to_string(bar_index++);
        golden.add(prefix + "/days", result.trainingDays());
        golden.add(prefix + "/rel_performance",
                   reference_time / result.totalTime);
        golden.add(prefix + "/moe_comm_share",
                   result.perBatch.commMoe /
                       result.perBatch.total());
        golden.add(prefix + "/compute_share",
                   result.perBatch.computation() /
                       result.perBatch.total());
        golden.add(prefix + "/eff", result.efficiency);
        table.addRow(
            {bar.label, units::formatFixed(result.trainingDays(), 1),
             units::formatFixed(reference_time / result.totalTime, 2) +
                 "x",
             units::formatFixed(100.0 * result.perBatch.commMoe /
                                    result.perBatch.total(),
                                1) +
                 " %",
             units::formatFixed(100.0 *
                                    result.perBatch.computation() /
                                    result.perBatch.total(),
                                1) +
                 " %",
             units::formatFixed(result.efficiency, 2)});
        if (bar.label.rfind("Opt.1", 0) == 0) {
            std::cout << "Opt.1 MoE communication reduction: "
                      << units::formatFixed(
                             reference_moe / result.perBatch.commMoe,
                             1)
                      << "x (paper: ~6x)\n\n";
            golden.add("fig11/opt1_moe_comm_reduction",
                       reference_moe / result.perBatch.commMoe);
        }
    }
    table.print(std::cout);
    std::cout << "\nshape check (paper Sec. VIII): Opt.1 ~ +42 %, "
                 "Opt.2 adds ~ +29 %, Opt.3 +54 % and +110 % more "
                 "(~4x total); compute share grows until it "
                 "dominates.\n";
    return golden.finish();
}

/**
 * @file
 * Shared setup for the Case Study I/II benches: the Megatron-145B on
 * 1024-A100 evaluation context, small helpers to evaluate one
 * mapping in days of training time, and the --golden-out plumbing
 * every figure/table harness uses to emit machine-readable metrics
 * for the golden-file regression suite (tools/golden_check).
 */

#ifndef AMPED_BENCH_CASE_STUDY_UTIL_HPP
#define AMPED_BENCH_CASE_STUDY_UTIL_HPP

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/amped_model.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "testing/golden.hpp"
#include "validate/calibrations.hpp"

namespace amped {
namespace bench {

/**
 * The harness side of the golden workflow: parses the bench's
 * command line (`--golden-out <path>`, plus the observability
 * outputs `--trace-out <path>` and `--report-out <path>`), collects
 * metrics during the run, and writes the canonical golden record on
 * finish().  Without --golden-out the collected record is simply
 * dropped, so harnesses call add() unconditionally.
 *
 * --trace-out / --report-out are parsed for every harness; the
 * harnesses that run the discrete-event simulator consume them via
 * tracePath() / reportPath() and write Chrome-trace / run-report
 * JSON next to the golden record.  Harnesses with nothing to trace
 * ignore them.
 *
 * Usage in a harness main:
 * @code
 *   int main(int argc, char **argv) {
 *       bench::GoldenOut golden(argc, argv);
 *       ...
 *       golden.add("table2/145B/tflops", tflops);
 *       ...
 *       return golden.finish();
 *   }
 * @endcode
 */
class GoldenOut
{
  public:
    GoldenOut(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--golden-out") {
                require(i + 1 < argc,
                        "--golden-out needs a file path");
                path_ = argv[++i];
            } else if (arg == "--trace-out") {
                require(i + 1 < argc,
                        "--trace-out needs a file path");
                tracePath_ = argv[++i];
            } else if (arg == "--report-out") {
                require(i + 1 < argc,
                        "--report-out needs a file path");
                reportPath_ = argv[++i];
            } else if (arg == "--bench-out") {
                require(i + 1 < argc,
                        "--bench-out needs a file path");
                benchPath_ = argv[++i];
            } else if (arg == "--transcript-out") {
                require(i + 1 < argc,
                        "--transcript-out needs a file path");
                transcriptPath_ = argv[++i];
            } else {
                fatal("unknown bench option '", arg,
                      "' (supported: --golden-out <path>, "
                      "--trace-out <path>, --report-out <path>, "
                      "--bench-out <path>, --transcript-out "
                      "<path>)");
            }
        }
    }

    /** True when --golden-out was given. */
    bool enabled() const { return !path_.empty(); }

    /** Chrome-trace output path ("" when --trace-out not given). */
    const std::string &tracePath() const { return tracePath_; }

    /** Run-report output path ("" when --report-out not given). */
    const std::string &reportPath() const { return reportPath_; }

    /** Wall-clock bench record path ("" when --bench-out not
     *  given); harnesses with timing results (perf numbers that
     *  cannot live in the deterministic golden) write them here. */
    const std::string &benchPath() const { return benchPath_; }

    /** Raw transcript path ("" when --transcript-out not given);
     *  the serve load generator dumps its response lines here for
     *  external schema validation. */
    const std::string &transcriptPath() const
    {
        return transcriptPath_;
    }

    /** Records one metric (NaN = infeasible point). */
    void
    add(const std::string &key, double value)
    {
        record_.add(key, value);
    }

    /** Records an optional evaluation's days, or NaN if infeasible. */
    void
    addDays(const std::string &key,
            const std::optional<core::EvaluationResult> &result)
    {
        record_.add(key, result ? result->trainingDays()
                                : std::nan(""));
    }

    /** Writes the record when enabled; the harness's exit status. */
    int
    finish() const
    {
        if (enabled())
            record_.writeFile(path_);
        return 0;
    }

  private:
    std::string path_;
    std::string tracePath_;
    std::string reportPath_;
    std::string benchPath_;
    std::string transcriptPath_;
    ::amped::testing::GoldenRecord record_;
};

/** Canonical golden key fragment for an inter-node (tp, pp, dp). */
inline std::string
interKey(std::int64_t tp, std::int64_t pp, std::int64_t dp)
{
    return "TP" + std::to_string(tp) + "_PP" + std::to_string(pp) +
           "_DP" + std::to_string(dp);
}

/** Builds the Case Study I evaluator for a given system. */
inline core::AmpedModel
caseStudyModel(const net::SystemConfig &system)
{
    return core::AmpedModel(model::presets::megatron145B(),
                            hw::presets::a100(),
                            validate::calibrations::caseStudy1(),
                            system,
                            validate::calibrations::caseStudyOptions());
}

/** The 300 B-token training job used for the day figures. */
inline core::TrainingJob
caseStudyJob(double batch)
{
    core::TrainingJob job;
    job.batchSize = batch;
    job.totalTrainingTokens = 300e9;
    return job;
}

/**
 * Evaluates one mapping; returns days, or nullopt when the point is
 * infeasible (batch too small for the mapping).
 */
inline std::optional<core::EvaluationResult>
tryEvaluate(const core::AmpedModel &model,
            const mapping::ParallelismConfig &mapping, double batch)
{
    try {
        return model.evaluate(mapping, caseStudyJob(batch));
    } catch (const UserError &) {
        return std::nullopt;
    }
}

/**
 * Evaluates a (mapping x batch) family in one parallel Explorer
 * sweep and serves the results by point; infeasible points come
 * back as nullptr (the sweep counts them as skipped).  The figure
 * harnesses render their tables from this instead of evaluating
 * serially point by point.
 */
class SweepIndex
{
  public:
    SweepIndex(const explore::Explorer &explorer,
               const std::vector<mapping::ParallelismConfig> &mappings,
               const std::vector<double> &batches)
    {
        const auto sweep = explorer.sweep(
            mappings, batches, caseStudyJob(batches.front()));
        for (const auto &entry : sweep.entries)
            results_[key(entry.mapping, entry.batchSize)] =
                entry.result;
    }

    /** The evaluated point, or nullptr when it was infeasible. */
    const core::EvaluationResult *
    find(const mapping::ParallelismConfig &mapping, double batch) const
    {
        const auto it = results_.find(key(mapping, batch));
        return it == results_.end() ? nullptr : &it->second;
    }

  private:
    static std::string
    key(const mapping::ParallelismConfig &mapping, double batch)
    {
        return mapping.toString() + "@" +
               units::formatFixed(batch, 0);
    }

    std::map<std::string, core::EvaluationResult> results_;
};

} // namespace bench
} // namespace amped

#endif // AMPED_BENCH_CASE_STUDY_UTIL_HPP

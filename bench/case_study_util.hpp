/**
 * @file
 * Shared setup for the Case Study I/II benches: the Megatron-145B on
 * 1024-A100 evaluation context and small helpers to evaluate one
 * mapping in days of training time.
 */

#ifndef AMPED_BENCH_CASE_STUDY_UTIL_HPP
#define AMPED_BENCH_CASE_STUDY_UTIL_HPP

#include <optional>
#include <string>

#include "common/error.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "validate/calibrations.hpp"

namespace amped {
namespace bench {

/** Builds the Case Study I evaluator for a given system. */
inline core::AmpedModel
caseStudyModel(const net::SystemConfig &system)
{
    return core::AmpedModel(model::presets::megatron145B(),
                            hw::presets::a100(),
                            validate::calibrations::caseStudy1(),
                            system,
                            validate::calibrations::caseStudyOptions());
}

/** The 300 B-token training job used for the day figures. */
inline core::TrainingJob
caseStudyJob(double batch)
{
    core::TrainingJob job;
    job.batchSize = batch;
    job.totalTrainingTokens = 300e9;
    return job;
}

/**
 * Evaluates one mapping; returns days, or nullopt when the point is
 * infeasible (batch too small for the mapping).
 */
inline std::optional<core::EvaluationResult>
tryEvaluate(const core::AmpedModel &model,
            const mapping::ParallelismConfig &mapping, double batch)
{
    try {
        return model.evaluate(mapping, caseStudyJob(batch));
    } catch (const UserError &) {
        return std::nullopt;
    }
}

} // namespace bench
} // namespace amped

#endif // AMPED_BENCH_CASE_STUDY_UTIL_HPP

/**
 * @file
 * Shared setup for the Case Study I/II benches: the Megatron-145B on
 * 1024-A100 evaluation context and small helpers to evaluate one
 * mapping in days of training time.
 */

#ifndef AMPED_BENCH_CASE_STUDY_UTIL_HPP
#define AMPED_BENCH_CASE_STUDY_UTIL_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "core/amped_model.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "validate/calibrations.hpp"

namespace amped {
namespace bench {

/** Builds the Case Study I evaluator for a given system. */
inline core::AmpedModel
caseStudyModel(const net::SystemConfig &system)
{
    return core::AmpedModel(model::presets::megatron145B(),
                            hw::presets::a100(),
                            validate::calibrations::caseStudy1(),
                            system,
                            validate::calibrations::caseStudyOptions());
}

/** The 300 B-token training job used for the day figures. */
inline core::TrainingJob
caseStudyJob(double batch)
{
    core::TrainingJob job;
    job.batchSize = batch;
    job.totalTrainingTokens = 300e9;
    return job;
}

/**
 * Evaluates one mapping; returns days, or nullopt when the point is
 * infeasible (batch too small for the mapping).
 */
inline std::optional<core::EvaluationResult>
tryEvaluate(const core::AmpedModel &model,
            const mapping::ParallelismConfig &mapping, double batch)
{
    try {
        return model.evaluate(mapping, caseStudyJob(batch));
    } catch (const UserError &) {
        return std::nullopt;
    }
}

/**
 * Evaluates a (mapping x batch) family in one parallel Explorer
 * sweep and serves the results by point; infeasible points come
 * back as nullptr (the sweep counts them as skipped).  The figure
 * harnesses render their tables from this instead of evaluating
 * serially point by point.
 */
class SweepIndex
{
  public:
    SweepIndex(const explore::Explorer &explorer,
               const std::vector<mapping::ParallelismConfig> &mappings,
               const std::vector<double> &batches)
    {
        const auto sweep = explorer.sweep(
            mappings, batches, caseStudyJob(batches.front()));
        for (const auto &entry : sweep.entries)
            results_[key(entry.mapping, entry.batchSize)] =
                entry.result;
    }

    /** The evaluated point, or nullptr when it was infeasible. */
    const core::EvaluationResult *
    find(const mapping::ParallelismConfig &mapping, double batch) const
    {
        const auto it = results_.find(key(mapping, batch));
        return it == results_.end() ? nullptr : &it->second;
    }

  private:
    static std::string
    key(const mapping::ParallelismConfig &mapping, double batch)
    {
        return mapping.toString() + "@" +
               units::formatFixed(batch, 0);
    }

    std::map<std::string, core::EvaluationResult> results_;
};

} // namespace bench
} // namespace amped

#endif // AMPED_BENCH_CASE_STUDY_UTIL_HPP

/**
 * @file
 * google-benchmark microbenchmarks of the library itself: evaluator
 * latency, mapping-space enumeration and full sweeps, and the
 * discrete-event engine's task throughput.  These quantify the claim
 * that AMPeD makes exhaustive design-space exploration practical
 * (one evaluation is microseconds; a full 360-mapping sweep is
 * milliseconds).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <string_view>

#include "case_study_util.hpp"
#include "common/thread_pool.hpp"
#include "core/amped_model.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "mapping/parallelism.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

namespace {

using namespace amped;

core::AmpedModel
caseStudyModel()
{
    return core::AmpedModel(model::presets::megatron145B(),
                            hw::presets::a100(),
                            validate::calibrations::caseStudy1(),
                            net::presets::a100Cluster1024(),
                            validate::calibrations::caseStudyOptions());
}

void
BM_EvaluateOneMapping(benchmark::State &state)
{
    const auto model = caseStudyModel();
    const auto mapping = mapping::makeMapping(8, 1, 1, 1, 2, 64);
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evaluate(mapping, job));
    }
}
BENCHMARK(BM_EvaluateOneMapping);

void
BM_EnumerateMappingSpace(benchmark::State &state)
{
    const auto system = net::presets::a100Cluster1024();
    for (auto _ : state) {
        mapping::MappingSpace space(system);
        benchmark::DoNotOptimize(space.enumerate());
    }
}
BENCHMARK(BM_EnumerateMappingSpace);

void
BM_FullSweep360Mappings(benchmark::State &state)
{
    explore::Explorer explorer(caseStudyModel());
    explorer.setThreads(1); // The serial baseline.
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(explorer.sweepAll({8192.0}, job));
    }
}
BENCHMARK(BM_FullSweep360Mappings);

/** The >= 200-point grid used by the parallel-sweep benchmarks. */
const std::vector<double> &
sweepBatches()
{
    static const std::vector<double> batches = {2048.0, 4096.0,
                                                8192.0, 16384.0};
    return batches;
}

/**
 * Parallel sweepAll at a fixed thread count (arg; 0 = AMPED_THREADS
 * or all cores).  Compare against BM_FullSweepParallel/1 for the
 * scaling curve.
 */
void
BM_FullSweepParallel(benchmark::State &state)
{
    explore::Explorer explorer(caseStudyModel());
    explorer.setThreads(static_cast<unsigned>(state.range(0)));
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            explorer.sweepAll(sweepBatches(), job));
    }
}
BENCHMARK(BM_FullSweepParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->UseRealTime();

/**
 * Serial-vs-parallel sweep on the same grid in one benchmark; the
 * "speedup" counter is the headline number (expect ~min(cores,
 * threads)x on a multi-core host, 1x where AMPED_THREADS=1).
 */
void
BM_ParallelSweepSpeedup(benchmark::State &state)
{
    explore::Explorer serial(caseStudyModel());
    serial.setThreads(1);
    explore::Explorer parallel(caseStudyModel());
    parallel.setThreads(0); // AMPED_THREADS or all cores.
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;

    using clock = std::chrono::steady_clock;
    double serial_seconds = 0.0;
    double parallel_seconds = 0.0;
    std::size_t points = 0;
    for (auto _ : state) {
        const auto t0 = clock::now();
        const auto serial_sweep =
            serial.sweepAll(sweepBatches(), job);
        const auto t1 = clock::now();
        const auto parallel_sweep =
            parallel.sweepAll(sweepBatches(), job);
        const auto t2 = clock::now();
        benchmark::DoNotOptimize(&serial_sweep);
        benchmark::DoNotOptimize(&parallel_sweep);
        serial_seconds +=
            std::chrono::duration<double>(t1 - t0).count();
        parallel_seconds +=
            std::chrono::duration<double>(t2 - t1).count();
        points = serial_sweep.entries.size() + serial_sweep.skipped +
                 serial_sweep.memorySkipped;
    }
    state.counters["points"] = static_cast<double>(points);
    state.counters["threads"] =
        static_cast<double>(ThreadPool::defaultThreadCount());
    state.counters["speedup"] =
        parallel_seconds > 0.0 ? serial_seconds / parallel_seconds
                               : 0.0;
}
BENCHMARK(BM_ParallelSweepSpeedup)->UseRealTime();

void
BM_SimulateDataParallelStep(benchmark::State &state)
{
    const std::int64_t devices = state.range(0);
    sim::TrainingSimulator simulator(
        model::presets::minGpt85M(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulator.simulateDataParallelStep(devices, 32.0));
    }
}
BENCHMARK(BM_SimulateDataParallelStep)->Arg(2)->Arg(8)->Arg(16);

void
BM_SimulateGPipeStep(benchmark::State &state)
{
    const std::int64_t microbatches = state.range(0);
    sim::TrainingSimulator simulator(
        model::presets::minGptPipeline(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulator.simulateGPipeStep(8, 8.0, microbatches));
    }
}
BENCHMARK(BM_SimulateGPipeStep)->Arg(8)->Arg(32)->Arg(128);

void
BM_EfficiencyFit(benchmark::State &state)
{
    hw::EfficiencyFitter fitter;
    const hw::MicrobatchEfficiency truth(0.85, 12.0);
    for (double ub = 1.0; ub <= 512.0; ub *= 2.0)
        fitter.addSample(ub, truth(ub));
    for (auto _ : state) {
        benchmark::DoNotOptimize(fitter.fit());
    }
}
BENCHMARK(BM_EfficiencyFit);

/**
 * Golden mode: instead of timings (which are machine-dependent),
 * emit the deterministic *outputs* of the code paths the
 * microbenchmarks exercise — evaluator result, mapping-space size,
 * sweep totals, simulator step times, efficiency fit — so the
 * golden harness pins their behaviour too.
 */
int
runGoldenMode(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);

    const auto model = caseStudyModel();
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;

    const auto one = model.evaluate(
        mapping::makeMapping(8, 1, 1, 1, 2, 64), job);
    golden.add("perf/evaluate/days", one.trainingDays());
    golden.add("perf/evaluate/tflops_per_gpu",
               one.achievedFlopsPerGpu / 1e12);

    mapping::MappingSpace space(net::presets::a100Cluster1024());
    golden.add("perf/mapping_space/count",
               static_cast<double>(space.enumerate().size()));

    explore::Explorer explorer(caseStudyModel());
    explorer.setThreads(1);
    const auto sweep = explorer.sweepAll(sweepBatches(), job);
    golden.add("perf/sweep/entries",
               static_cast<double>(sweep.entries.size()));
    golden.add("perf/sweep/skipped",
               static_cast<double>(sweep.skipped));
    const auto best = explore::Explorer::best(sweep);
    golden.add("perf/sweep/best_days",
               best ? best->result.trainingDays() : std::nan(""));

    sim::TrainingSimulator simulator(
        model::presets::minGpt85M(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    golden.add("perf/sim/dp8_step_s",
               simulator.simulateDataParallelStep(8, 32.0).stepTime);
    sim::TrainingSimulator pipe_simulator(
        model::presets::minGptPipeline(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    golden.add(
        "perf/sim/gpipe8_step_s",
        pipe_simulator.simulateGPipeStep(8, 8.0, 32).stepTime);

    hw::EfficiencyFitter fitter;
    const hw::MicrobatchEfficiency truth(0.85, 12.0);
    for (double ub = 1.0; ub <= 512.0; ub *= 2.0)
        fitter.addSample(ub, truth(ub));
    const auto fitted = fitter.fit();
    golden.add("perf/eff_fit/a", fitted.a());
    golden.add("perf/eff_fit/b", fitted.b());

    return golden.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--golden-out")
            return runGoldenMode(argc, argv);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

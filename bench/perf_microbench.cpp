/**
 * @file
 * google-benchmark microbenchmarks of the library itself: evaluator
 * latency, mapping-space enumeration and full sweeps, and the
 * discrete-event engine's task throughput.  These quantify the claim
 * that AMPeD makes exhaustive design-space exploration practical
 * (one evaluation is microseconds; a full 360-mapping sweep is
 * milliseconds).
 */

#include <benchmark/benchmark.h>

#include "core/amped_model.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "mapping/parallelism.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

namespace {

using namespace amped;

core::AmpedModel
caseStudyModel()
{
    return core::AmpedModel(model::presets::megatron145B(),
                            hw::presets::a100(),
                            validate::calibrations::caseStudy1(),
                            net::presets::a100Cluster1024(),
                            validate::calibrations::caseStudyOptions());
}

void
BM_EvaluateOneMapping(benchmark::State &state)
{
    const auto model = caseStudyModel();
    const auto mapping = mapping::makeMapping(8, 1, 1, 1, 2, 64);
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evaluate(mapping, job));
    }
}
BENCHMARK(BM_EvaluateOneMapping);

void
BM_EnumerateMappingSpace(benchmark::State &state)
{
    const auto system = net::presets::a100Cluster1024();
    for (auto _ : state) {
        mapping::MappingSpace space(system);
        benchmark::DoNotOptimize(space.enumerate());
    }
}
BENCHMARK(BM_EnumerateMappingSpace);

void
BM_FullSweep360Mappings(benchmark::State &state)
{
    explore::Explorer explorer(caseStudyModel());
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(explorer.sweepAll({8192.0}, job));
    }
}
BENCHMARK(BM_FullSweep360Mappings);

void
BM_SimulateDataParallelStep(benchmark::State &state)
{
    const std::int64_t devices = state.range(0);
    sim::TrainingSimulator simulator(
        model::presets::minGpt85M(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulator.simulateDataParallelStep(devices, 32.0));
    }
}
BENCHMARK(BM_SimulateDataParallelStep)->Arg(2)->Arg(8)->Arg(16);

void
BM_SimulateGPipeStep(benchmark::State &state)
{
    const std::int64_t microbatches = state.range(0);
    sim::TrainingSimulator simulator(
        model::presets::minGptPipeline(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulator.simulateGPipeStep(8, 8.0, microbatches));
    }
}
BENCHMARK(BM_SimulateGPipeStep)->Arg(8)->Arg(32)->Arg(128);

void
BM_EfficiencyFit(benchmark::State &state)
{
    hw::EfficiencyFitter fitter;
    const hw::MicrobatchEfficiency truth(0.85, 12.0);
    for (double ub = 1.0; ub <= 512.0; ub *= 2.0)
        fitter.addSample(ub, truth(ub));
    for (auto _ : state) {
        benchmark::DoNotOptimize(fitter.fit());
    }
}
BENCHMARK(BM_EfficiencyFit);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * google-benchmark microbenchmarks of the library itself: evaluator
 * latency, mapping-space enumeration and full sweeps, and the
 * discrete-event engine's task throughput.  These quantify the claim
 * that AMPeD makes exhaustive design-space exploration practical
 * (one evaluation is microseconds; a full 360-mapping sweep is
 * milliseconds).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "case_study_util.hpp"
#include "common/parse_num.hpp"
#include "common/thread_pool.hpp"
#include "core/amped_model.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "mapping/parallelism.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "obs/json.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

namespace {

using namespace amped;

core::AmpedModel
caseStudyModel()
{
    return core::AmpedModel(model::presets::megatron145B(),
                            hw::presets::a100(),
                            validate::calibrations::caseStudy1(),
                            net::presets::a100Cluster1024(),
                            validate::calibrations::caseStudyOptions());
}

void
BM_EvaluateOneMapping(benchmark::State &state)
{
    const auto model = caseStudyModel();
    const auto mapping = mapping::makeMapping(8, 1, 1, 1, 2, 64);
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evaluate(mapping, job));
    }
}
BENCHMARK(BM_EvaluateOneMapping);

void
BM_EnumerateMappingSpace(benchmark::State &state)
{
    const auto system = net::presets::a100Cluster1024();
    for (auto _ : state) {
        mapping::MappingSpace space(system);
        benchmark::DoNotOptimize(space.enumerate());
    }
}
BENCHMARK(BM_EnumerateMappingSpace);

void
BM_FullSweep360Mappings(benchmark::State &state)
{
    explore::Explorer explorer(caseStudyModel());
    explorer.setThreads(1); // The serial baseline.
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(explorer.sweepAll({8192.0}, job));
    }
}
BENCHMARK(BM_FullSweep360Mappings);

/** The >= 200-point grid used by the parallel-sweep benchmarks. */
const std::vector<double> &
sweepBatches()
{
    static const std::vector<double> batches = {2048.0, 4096.0,
                                                8192.0, 16384.0};
    return batches;
}

/**
 * Parallel sweepAll at a fixed thread count (arg; 0 = AMPED_THREADS
 * or all cores).  Compare against BM_FullSweepParallel/1 for the
 * scaling curve.
 */
void
BM_FullSweepParallel(benchmark::State &state)
{
    explore::Explorer explorer(caseStudyModel());
    explorer.setThreads(static_cast<unsigned>(state.range(0)));
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            explorer.sweepAll(sweepBatches(), job));
    }
}
BENCHMARK(BM_FullSweepParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->UseRealTime();

/**
 * Serial-vs-parallel sweep on the same grid in one benchmark; the
 * "speedup" counter is the headline number (expect ~min(cores,
 * threads)x on a multi-core host, 1x where AMPED_THREADS=1).
 */
void
BM_ParallelSweepSpeedup(benchmark::State &state)
{
    explore::Explorer serial(caseStudyModel());
    serial.setThreads(1);
    explore::Explorer parallel(caseStudyModel());
    parallel.setThreads(0); // AMPED_THREADS or all cores.
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;

    using clock = std::chrono::steady_clock;
    double serial_seconds = 0.0;
    double parallel_seconds = 0.0;
    std::size_t points = 0;
    for (auto _ : state) {
        const auto t0 = clock::now();
        const auto serial_sweep =
            serial.sweepAll(sweepBatches(), job);
        const auto t1 = clock::now();
        const auto parallel_sweep =
            parallel.sweepAll(sweepBatches(), job);
        const auto t2 = clock::now();
        benchmark::DoNotOptimize(&serial_sweep);
        benchmark::DoNotOptimize(&parallel_sweep);
        serial_seconds +=
            std::chrono::duration<double>(t1 - t0).count();
        parallel_seconds +=
            std::chrono::duration<double>(t2 - t1).count();
        points = serial_sweep.entries.size() + serial_sweep.skipped +
                 serial_sweep.memorySkipped;
    }
    state.counters["points"] = static_cast<double>(points);
    state.counters["threads"] =
        static_cast<double>(ThreadPool::defaultThreadCount());
    state.counters["speedup"] =
        parallel_seconds > 0.0 ? serial_seconds / parallel_seconds
                               : 0.0;
}
BENCHMARK(BM_ParallelSweepSpeedup)->UseRealTime();

/** The 360-mapping space of the 1024-GPU case-study system. */
const std::vector<mapping::ParallelismConfig> &
sweepGridMappings()
{
    static const std::vector<mapping::ParallelismConfig> mappings =
        mapping::MappingSpace(net::presets::a100Cluster1024())
            .enumerate();
    return mappings;
}

/**
 * Scalar-vs-batch sweep throughput on an *un-memoized* sweep
 * (Explorer::sweep; sweepAll would serve repeat iterations from its
 * result cache and measure a hash lookup instead of evaluation).
 * Arg 0 selects the engine (0 = scalar, 1 = batch), arg 1 the thread
 * cap (0 = AMPED_THREADS or all cores).  Items are grid points;
 * bytes are the EvaluationResult payload produced per point, so
 * items_per_second is directly comparable across engines.
 */
void
BM_SweepEngineThroughput(benchmark::State &state)
{
    explore::Explorer explorer(caseStudyModel());
    explorer.setBatchMode(state.range(0) != 0);
    explorer.setThreads(static_cast<unsigned>(state.range(1)));
    static const std::vector<double> batches = [] {
        std::vector<double> b;
        b.reserve(16);
        for (int i = 0; i < 16; ++i)
            b.push_back(2048.0 + 512.0 * i);
        return b;
    }();
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;

    std::size_t points = 0;
    for (auto _ : state) {
        const auto sweep =
            explorer.sweep(sweepGridMappings(), batches, job);
        benchmark::DoNotOptimize(&sweep);
        points = sweep.entries.size() + sweep.skipped +
                 sweep.memorySkipped;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(points));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(points *
                                  sizeof(core::EvaluationResult)));
    state.counters["points"] = static_cast<double>(points);
}
BENCHMARK(BM_SweepEngineThroughput)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 0})
    ->Args({1, 0})
    ->UseRealTime();

void
BM_SimulateDataParallelStep(benchmark::State &state)
{
    const std::int64_t devices = state.range(0);
    sim::TrainingSimulator simulator(
        model::presets::minGpt85M(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulator.simulateDataParallelStep(devices, 32.0));
    }
}
BENCHMARK(BM_SimulateDataParallelStep)->Arg(2)->Arg(8)->Arg(16);

void
BM_SimulateGPipeStep(benchmark::State &state)
{
    const std::int64_t microbatches = state.range(0);
    sim::TrainingSimulator simulator(
        model::presets::minGptPipeline(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            simulator.simulateGPipeStep(8, 8.0, microbatches));
    }
}
BENCHMARK(BM_SimulateGPipeStep)->Arg(8)->Arg(32)->Arg(128);

void
BM_EfficiencyFit(benchmark::State &state)
{
    hw::EfficiencyFitter fitter;
    const hw::MicrobatchEfficiency truth(0.85, 12.0);
    for (double ub = 1.0; ub <= 512.0; ub *= 2.0)
        fitter.addSample(ub, truth(ub));
    for (auto _ : state) {
        benchmark::DoNotOptimize(fitter.fit());
    }
}
BENCHMARK(BM_EfficiencyFit);

/**
 * Golden mode: instead of timings (which are machine-dependent),
 * emit the deterministic *outputs* of the code paths the
 * microbenchmarks exercise — evaluator result, mapping-space size,
 * sweep totals, simulator step times, efficiency fit — so the
 * golden harness pins their behaviour too.
 */
int
runGoldenMode(int argc, char **argv)
{
    bench::GoldenOut golden(argc, argv);

    const auto model = caseStudyModel();
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;

    const auto one = model.evaluate(
        mapping::makeMapping(8, 1, 1, 1, 2, 64), job);
    golden.add("perf/evaluate/days", one.trainingDays());
    golden.add("perf/evaluate/tflops_per_gpu",
               one.achievedFlopsPerGpu / 1e12);

    mapping::MappingSpace space(net::presets::a100Cluster1024());
    golden.add("perf/mapping_space/count",
               static_cast<double>(space.enumerate().size()));

    explore::Explorer explorer(caseStudyModel());
    explorer.setThreads(1);
    const auto sweep = explorer.sweepAll(sweepBatches(), job);
    golden.add("perf/sweep/entries",
               static_cast<double>(sweep.entries.size()));
    golden.add("perf/sweep/skipped",
               static_cast<double>(sweep.skipped));
    const auto best = explore::Explorer::best(sweep);
    golden.add("perf/sweep/best_days",
               best ? best->result.trainingDays() : std::nan(""));

    sim::TrainingSimulator simulator(
        model::presets::minGpt85M(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    golden.add("perf/sim/dp8_step_s",
               simulator.simulateDataParallelStep(8, 32.0).stepTime);
    sim::TrainingSimulator pipe_simulator(
        model::presets::minGptPipeline(), hw::presets::v100Sxm3(),
        validate::calibrations::minGptHgx2(),
        net::presets::nvlinkV100());
    golden.add(
        "perf/sim/gpipe8_step_s",
        pipe_simulator.simulateGPipeStep(8, 8.0, 32).stepTime);

    hw::EfficiencyFitter fitter;
    const hw::MicrobatchEfficiency truth(0.85, 12.0);
    for (double ub = 1.0; ub <= 512.0; ub *= 2.0)
        fitter.addSample(ub, truth(ub));
    const auto fitted = fitter.fit();
    golden.add("perf/eff_fit/a", fitted.a());
    golden.add("perf/eff_fit/b", fitted.b());

    return golden.finish();
}

/**
 * Sweep-throughput bench mode (the CI perf gate).  Runs the same
 * un-memoized (mapping x batch) grid through the scalar and the
 * batched engine, writes a machine-readable JSON record
 * (BENCH_sweep.json: grid size, threads, per-engine seconds /
 * items_per_sec / bytes_per_sec, batch-over-scalar speedup), and —
 * when a baseline file is given — fails if the speedup regressed by
 * more than the allowed fraction.
 *
 * The gate compares the *speedup ratio*, not absolute throughput:
 * the ratio is dimensionless and machine-relative, so the checked-in
 * baseline stays meaningful across runner generations, while an
 * absolute items/sec floor would flake on every hardware change.
 *
 *   --sweep-bench-out PATH        write the JSON record (required)
 *   --sweep-baseline PATH         compare against this JSON record
 *   --sweep-max-regression FRAC   allowed speedup loss (default 0.30)
 *   --sweep-batches N             batch-size count (default 2800,
 *                                 x360 mappings = 1,008,000 points)
 *   --sweep-threads N             thread cap (0 = AMPED_THREADS)
 *
 * As a free differential check, the mode also fails when the two
 * engines disagree on any sweep counter.
 */
int
runSweepBenchMode(int argc, char **argv)
{
    std::string out_path;
    std::string baseline_path;
    double max_regression = 0.30;
    std::size_t num_batches = 2800;
    unsigned threads = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        const char *value =
            i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--sweep-bench-out" && value)
            out_path = argv[++i];
        else if (arg == "--sweep-baseline" && value)
            baseline_path = argv[++i];
        else if (arg == "--sweep-max-regression" && value)
            max_regression = amped::parseDouble(argv[++i]);
        else if (arg == "--sweep-batches" && value)
            num_batches = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg == "--sweep-threads" && value)
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else {
            std::fprintf(stderr,
                         "perf_microbench: unknown sweep-bench "
                         "argument '%s'\n",
                         argv[i]);
            return 2;
        }
    }

    const auto &mappings = sweepGridMappings();
    std::vector<double> batches;
    batches.reserve(num_batches);
    for (std::size_t i = 0; i < num_batches; ++i)
        batches.push_back(2048.0 + 8.0 * static_cast<double>(i));
    core::TrainingJob job;
    job.batchSize = 8192.0;
    job.totalTrainingTokens = 300e9;

    explore::Explorer explorer(caseStudyModel());
    explorer.setThreads(threads);

    const std::size_t points = mappings.size() * batches.size();
    const double bytes_per_point =
        static_cast<double>(sizeof(core::EvaluationResult));
    using clock = std::chrono::steady_clock;
    explore::SweepResult sweeps[2];
    double seconds[2] = {0.0, 0.0};
    for (int engine = 0; engine < 2; ++engine) {
        explorer.setBatchMode(engine == 1);
        const auto t0 = clock::now();
        sweeps[engine] = explorer.sweep(mappings, batches, job);
        const auto t1 = clock::now();
        seconds[engine] =
            std::chrono::duration<double>(t1 - t0).count();
        std::fprintf(
            stderr, "%-6s engine: %zu points in %.3f s (%.0f/s)\n",
            engine == 1 ? "batch" : "scalar", points,
            seconds[engine],
            static_cast<double>(points) / seconds[engine]);
    }

    if (sweeps[0].entries.size() != sweeps[1].entries.size() ||
        sweeps[0].skipped != sweeps[1].skipped ||
        sweeps[0].memorySkipped != sweeps[1].memorySkipped ||
        sweeps[0].failed != sweeps[1].failed) {
        std::fprintf(stderr,
                     "perf_microbench: engine mismatch — scalar "
                     "(%zu entries, %zu/%zu/%zu counters) vs batch "
                     "(%zu entries, %zu/%zu/%zu counters)\n",
                     sweeps[0].entries.size(), sweeps[0].skipped,
                     sweeps[0].memorySkipped, sweeps[0].failed,
                     sweeps[1].entries.size(), sweeps[1].skipped,
                     sweeps[1].memorySkipped, sweeps[1].failed);
        return 1;
    }

    const double speedup =
        seconds[1] > 0.0 ? seconds[0] / seconds[1] : 0.0;

    auto run_record = [&](int engine) {
        obs::Json run = obs::Json::object();
        run.set("engine", engine == 1 ? "batch" : "scalar");
        run.set("seconds", seconds[engine]);
        run.set("items_per_sec",
                static_cast<double>(points) / seconds[engine]);
        run.set("bytes_per_sec",
                static_cast<double>(points) * bytes_per_point /
                    seconds[engine]);
        return run;
    };
    obs::Json grid = obs::Json::object();
    grid.set("mappings", mappings.size());
    grid.set("batch_sizes", batches.size());
    grid.set("points", points);
    obs::Json thread_info = obs::Json::object();
    thread_info.set("requested",
                    threads != 0
                        ? threads
                        : ThreadPool::defaultThreadCount());
    thread_info.set("pool", ThreadPool::shared().threadCount());
    obs::Json counters = obs::Json::object();
    counters.set("entries", sweeps[0].entries.size());
    counters.set("skipped", sweeps[0].skipped);
    counters.set("memory_skipped", sweeps[0].memorySkipped);
    counters.set("failed", sweeps[0].failed);
    obs::Json root = obs::Json::object();
    root.set("schema_version", 1);
    root.set("kind", "amped.sweep_bench");
    root.set("grid", std::move(grid));
    root.set("threads", std::move(thread_info));
    root.set("bytes_per_point", bytes_per_point);
    root.set("counters", std::move(counters));
    obs::Json runs = obs::Json::array();
    runs.push(run_record(0));
    runs.push(run_record(1));
    root.set("runs", std::move(runs));
    root.set("speedup", speedup);

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr,
                     "perf_microbench: cannot write '%s'\n",
                     out_path.c_str());
        return 2;
    }
    out << root.dump(2) << "\n";
    out.close();
    std::fprintf(stderr, "batch-over-scalar speedup: %.2fx -> %s\n",
                 speedup, out_path.c_str());

    if (baseline_path.empty())
        return 0;
    std::ifstream in(baseline_path);
    if (!in) {
        std::fprintf(stderr,
                     "perf_microbench: cannot read baseline '%s'\n",
                     baseline_path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto baseline = obs::Json::parse(text.str());
    const double base_speedup = baseline.at("speedup").asDouble();
    const double floor = base_speedup * (1.0 - max_regression);
    std::fprintf(stderr,
                 "baseline speedup %.2fx, floor %.2fx (max "
                 "regression %.0f%%)\n",
                 base_speedup, floor, 100.0 * max_regression);
    if (speedup < floor) {
        std::fprintf(stderr,
                     "perf_microbench: FAIL — speedup %.2fx fell "
                     "below the %.2fx floor\n",
                     speedup, floor);
        return 1;
    }
    std::fprintf(stderr, "perf gate passed (%.2fx >= %.2fx)\n",
                 speedup, floor);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--golden-out")
            return runGoldenMode(argc, argv);
        if (std::string_view(argv[i]) == "--sweep-bench-out")
            return runSweepBenchMode(argc, argv);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

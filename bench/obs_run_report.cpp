/**
 * @file
 * Pins the observability outputs next to Fig. 1: the structured run
 * report (schema version, analytical section, simulator sections,
 * metrics snapshot) and the Chrome-trace export for the same minGPT
 * validation runs the figure uses.
 *
 * Every golden value is read *back out of the built JSON documents*
 * rather than from the in-memory structs, so the golden file pins
 * the serialized schema: a renamed key, a broken number format, or a
 * lost section changes the golden even if the underlying numbers
 * survive.  Run with --trace-out / --report-out to write the
 * documents themselves (CI validates them with `python3 -m
 * json.tool`).
 */

#include <cmath>
#include <iostream>

#include "case_study_util.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/run_report.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

namespace {

/** tasks_by_category lookup, 0 when the category is absent. */
double
categoryCount(const amped::obs::Json &simulation,
              const std::string &category)
{
    const auto &categories = simulation.at("tasks_by_category");
    if (!categories.contains(category))
        return 0.0;
    return categories.at(category).asDouble();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace amped;
    bench::GoldenOut golden(argc, argv);

    std::cout << "=== Observability: run report + Chrome trace for "
                 "the Fig. 1 validation runs ===\n\n";

    const auto eff = validate::calibrations::minGptHgx2();
    obs::ChromeTraceBuilder trace;
    obs::RunReportBuilder report;

    // Analytical side: minGPT 85M, DP x 8 on one HGX-2 node (the
    // Fig. 2a 8-GPU point), 100 fixed-size batches.
    core::AmpedModel amped_model(
        model::presets::minGpt85M(), hw::presets::v100Sxm3(), eff,
        net::presets::hgx2(8),
        validate::calibrations::nvswitchOptions(8));
    core::TrainingJob job;
    job.batchSize = 8.0 * 32.0;
    job.numBatchesOverride = 100.0;
    const auto evaluation = amped_model.evaluate(
        mapping::makeMapping(1, 1, 8, 1, 1, 1), job);
    report.setAnalytical(evaluation);

    obs::Json config = obs::Json::object();
    config.set("model", "mingpt");
    config.set("accelerator", "v100-sxm3");
    config.set("schedules", "dp8,pp4");
    report.setConfig(std::move(config));

    // Simulated side: the two Fig. 1 runs.
    {
        sim::TrainingSimulator simulator(
            model::presets::minGpt85M(), hw::presets::v100Sxm3(),
            eff, net::presets::nvlinkV100());
        simulator.setBackwardMultiplier(3.0);
        const auto outcome =
            simulator.simulateDataParallelStep(8, 32.0);
        trace.addRun(*outcome.graph, outcome.raw, "dp8");
        report.addSimulation("dp8", outcome);
    }
    {
        sim::TrainingSimulator simulator(
            model::presets::minGptPipeline(),
            hw::presets::v100Sxm3(), eff,
            net::presets::nvlinkV100());
        simulator.setBackwardMultiplier(3.0);
        const auto outcome = simulator.simulateGPipeStep(4, 8.0, 4);
        trace.addRun(*outcome.graph, outcome.raw, "pp4");
        report.addSimulation("pp4", outcome);
    }
    report.setMetrics(obs::MetricsRegistry::global());

    // Pin the *serialized* documents: read every golden value back
    // out of the JSON (and round-trip the trace through the parser).
    const obs::Json doc = report.build();
    golden.add("obs/report/schema_version",
               doc.at("schema_version").asDouble());

    const auto &analytical = doc.at("analytical");
    const double time_per_batch =
        analytical.at("time_per_batch_seconds").asDouble();
    double breakdown_sum = 0.0;
    for (const auto &[label, seconds] :
         analytical.at("breakdown").members()) {
        (void)label;
        breakdown_sum += seconds.asDouble();
    }
    golden.add("obs/report/analytical/time_per_batch_s",
               time_per_batch);
    golden.add("obs/report/analytical/breakdown_abs_residual_s",
               std::abs(breakdown_sum - time_per_batch));
    golden.add("obs/report/analytical/training_days",
               analytical.at("training_days").asDouble());

    const auto &simulations = doc.at("simulations");
    const auto &dp8 = simulations.at(std::size_t{0});
    const auto &pp4 = simulations.at(std::size_t{1});
    golden.add("obs/report/dp8/step_time_s",
               dp8.at("step_time_seconds").asDouble());
    golden.add("obs/report/dp8/task_count",
               dp8.at("task_count").asDouble());
    golden.add("obs/report/dp8/forward_tasks",
               categoryCount(dp8, "forward"));
    golden.add("obs/report/dp8/backward_tasks",
               categoryCount(dp8, "backward"));
    golden.add("obs/report/dp8/collective_tasks",
               categoryCount(dp8, "collective"));
    golden.add("obs/report/dp8/update_tasks",
               categoryCount(dp8, "update"));
    golden.add("obs/report/pp4/step_time_s",
               pp4.at("step_time_seconds").asDouble());
    golden.add("obs/report/pp4/task_count",
               pp4.at("task_count").asDouble());
    golden.add("obs/report/pp4/p2p_tasks",
               categoryCount(pp4, "p2p"));
    golden.add("obs/report/pp4/update_tasks",
               categoryCount(pp4, "update"));

    // The deterministic metrics snapshot rides along in the report;
    // engine-run counters are workload-derived, so they golden-pin.
    const auto &metrics = doc.at("metrics");
    golden.add("obs/report/metrics/sim_engine_runs",
               metrics.at("sim.engine.runs").asDouble());
    golden.add("obs/report/metrics/sim_engine_tasks_completed",
               metrics.at("sim.engine.tasks_completed").asDouble());

    // Schema v2 guarantee: the cancellation and admission-queue
    // families are present in *every* report — zeros here, because
    // this run installs no token and mounts no queue.
    golden.add("obs/report/metrics/cancel_tokens",
               metrics.at("common.cancel.tokens").asDouble());
    golden.add("obs/report/metrics/cancel_requests",
               metrics.at("common.cancel.requests").asDouble());
    golden.add("obs/report/metrics/cancel_checkpoints",
               metrics.at("common.cancel.checkpoints").asDouble());
    golden.add("obs/report/metrics/cancel_observed",
               metrics.at("common.cancel.observed").asDouble());
    golden.add("obs/report/metrics/cancel_latency_count",
               metrics.at("common.cancel.latency_seconds.count")
                   .asDouble());
    golden.add("obs/report/metrics/queue_depth",
               metrics.at("common.queue.depth").asDouble());
    golden.add("obs/report/metrics/queue_submitted",
               metrics.at("common.queue.submitted").asDouble());
    golden.add("obs/report/metrics/queue_rejected",
               metrics.at("common.queue.rejected").asDouble());
    golden.add("obs/report/metrics/queue_shed",
               metrics.at("common.queue.shed").asDouble());
    golden.add("obs/report/metrics/queue_expired",
               metrics.at("common.queue.expired").asDouble());
    golden.add("obs/report/metrics/queue_retries",
               metrics.at("common.queue.retries").asDouble());

    // Trace: parse the serialized document back and pin shape facts.
    const std::string trace_json = trace.toJsonString();
    const obs::Json parsed = obs::Json::parse(trace_json);
    golden.add("obs/trace/event_count",
               static_cast<double>(
                   parsed.at("traceEvents").size()));
    golden.add("obs/trace/roundtrip_ok",
               parsed.dump(2) + "\n" == trace_json ? 1.0 : 0.0);

    std::cout << "report sections: analytical + "
              << simulations.size() << " simulations + "
              << metrics.members().size() << " metrics\n"
              << "trace events: "
              << parsed.at("traceEvents").size() << "\n";

    if (!golden.tracePath().empty())
        trace.writeFile(golden.tracePath());
    if (!golden.reportPath().empty())
        report.writeFile(golden.reportPath());
    return golden.finish();
}

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_presets "/root/repo/build/tools/amped" "presets")
set_tests_properties(cli_presets PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_evaluate "/root/repo/build/tools/amped" "evaluate" "--model" "tiny" "--accel" "tiny" "--nodes" "2" "--per-node" "2" "--batch" "64" "--tp-intra" "2" "--dp-intra" "1" "--dp-inter" "2")
set_tests_properties(cli_evaluate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_breakdown "/root/repo/build/tools/amped" "breakdown" "--model" "tiny" "--accel" "tiny" "--nodes" "2" "--per-node" "2" "--batch" "64" "--tp-intra" "2" "--pp-inter" "2")
set_tests_properties(cli_breakdown PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explore "/root/repo/build/tools/amped" "explore" "--model" "tiny" "--accel" "tiny" "--nodes" "2" "--per-node" "2" "--batch" "64" "--top" "5")
set_tests_properties(cli_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_memory "/root/repo/build/tools/amped" "memory" "--model" "tiny" "--accel" "tiny" "--nodes" "2" "--per-node" "2" "--batch" "64" "--tp-intra" "2" "--dp-inter" "2" "--zero" "2")
set_tests_properties(cli_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/tools/amped" "report" "--model" "tiny" "--accel" "tiny" "--nodes" "2" "--per-node" "2" "--batch" "64" "--tp-intra" "2" "--pp-inter" "2")
set_tests_properties(cli_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_subcommand_fails "/root/repo/build/tools/amped" "frobnicate")
set_tests_properties(cli_unknown_subcommand_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_option_fails "/root/repo/build/tools/amped" "evaluate" "--no-such-option" "1")
set_tests_properties(cli_bad_option_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")

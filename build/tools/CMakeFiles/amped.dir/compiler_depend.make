# Empty compiler generated dependencies file for amped.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/amped.dir/amped_cli.cpp.o"
  "CMakeFiles/amped.dir/amped_cli.cpp.o.d"
  "amped"
  "amped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_9_dp_intra_sweep.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig2c_microbatch_sweep.
# This may be replaced when dependencies are built.

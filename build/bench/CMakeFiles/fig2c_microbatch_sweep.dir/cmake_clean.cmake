file(REMOVE_RECURSE
  "CMakeFiles/fig2c_microbatch_sweep.dir/fig2c_microbatch_sweep.cpp.o"
  "CMakeFiles/fig2c_microbatch_sweep.dir/fig2c_microbatch_sweep.cpp.o.d"
  "fig2c_microbatch_sweep"
  "fig2c_microbatch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_microbatch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

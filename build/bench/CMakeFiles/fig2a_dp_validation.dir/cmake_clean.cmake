file(REMOVE_RECURSE
  "CMakeFiles/fig2a_dp_validation.dir/fig2a_dp_validation.cpp.o"
  "CMakeFiles/fig2a_dp_validation.dir/fig2a_dp_validation.cpp.o.d"
  "fig2a_dp_validation"
  "fig2a_dp_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_dp_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2a_dp_validation.
# This may be replaced when dependencies are built.

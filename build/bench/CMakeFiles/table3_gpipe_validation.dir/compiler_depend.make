# Empty compiler generated dependencies file for table3_gpipe_validation.
# This may be replaced when dependencies are built.

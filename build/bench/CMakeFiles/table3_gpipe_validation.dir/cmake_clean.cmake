file(REMOVE_RECURSE
  "CMakeFiles/table3_gpipe_validation.dir/table3_gpipe_validation.cpp.o"
  "CMakeFiles/table3_gpipe_validation.dir/table3_gpipe_validation.cpp.o.d"
  "table3_gpipe_validation"
  "table3_gpipe_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gpipe_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig11_optical_substrate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig11_optical_substrate.dir/fig11_optical_substrate.cpp.o"
  "CMakeFiles/fig11_optical_substrate.dir/fig11_optical_substrate.cpp.o.d"
  "fig11_optical_substrate"
  "fig11_optical_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_optical_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

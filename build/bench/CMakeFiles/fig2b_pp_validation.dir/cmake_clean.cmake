file(REMOVE_RECURSE
  "CMakeFiles/fig2b_pp_validation.dir/fig2b_pp_validation.cpp.o"
  "CMakeFiles/fig2b_pp_validation.dir/fig2b_pp_validation.cpp.o.d"
  "fig2b_pp_validation"
  "fig2b_pp_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_pp_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2b_pp_validation.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig10_lowend_systems.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_lowend_systems.dir/fig10_lowend_systems.cpp.o"
  "CMakeFiles/fig10_lowend_systems.dir/fig10_lowend_systems.cpp.o.d"
  "fig10_lowend_systems"
  "fig10_lowend_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lowend_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

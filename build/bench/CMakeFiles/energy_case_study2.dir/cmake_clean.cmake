file(REMOVE_RECURSE
  "CMakeFiles/energy_case_study2.dir/energy_case_study2.cpp.o"
  "CMakeFiles/energy_case_study2.dir/energy_case_study2.cpp.o.d"
  "energy_case_study2"
  "energy_case_study2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_case_study2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

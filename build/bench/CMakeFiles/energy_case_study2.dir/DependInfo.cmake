
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/energy_case_study2.cpp" "bench/CMakeFiles/energy_case_study2.dir/energy_case_study2.cpp.o" "gcc" "bench/CMakeFiles/energy_case_study2.dir/energy_case_study2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/amped_core.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/amped_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amped_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/validate/CMakeFiles/amped_validate.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/amped_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/amped_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/amped_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/amped_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/amped_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

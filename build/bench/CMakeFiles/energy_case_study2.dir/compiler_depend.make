# Empty compiler generated dependencies file for energy_case_study2.
# This may be replaced when dependencies are built.

# Empty dependencies file for table2_megatron_validation.
# This may be replaced when dependencies are built.

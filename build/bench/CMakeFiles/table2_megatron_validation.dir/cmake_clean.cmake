file(REMOVE_RECURSE
  "CMakeFiles/table2_megatron_validation.dir/table2_megatron_validation.cpp.o"
  "CMakeFiles/table2_megatron_validation.dir/table2_megatron_validation.cpp.o.d"
  "table2_megatron_validation"
  "table2_megatron_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_megatron_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig4_6_tp_intra_sweep.dir/fig4_6_tp_intra_sweep.cpp.o"
  "CMakeFiles/fig4_6_tp_intra_sweep.dir/fig4_6_tp_intra_sweep.cpp.o.d"
  "fig4_6_tp_intra_sweep"
  "fig4_6_tp_intra_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_6_tp_intra_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

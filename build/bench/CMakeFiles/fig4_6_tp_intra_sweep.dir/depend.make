# Empty dependencies file for fig4_6_tp_intra_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/calibrate_efficiency.dir/calibrate_efficiency.cpp.o"
  "CMakeFiles/calibrate_efficiency.dir/calibrate_efficiency.cpp.o.d"
  "calibrate_efficiency"
  "calibrate_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for calibrate_efficiency.
# This may be replaced when dependencies are built.

# Empty dependencies file for optical_future.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/optical_future.dir/optical_future.cpp.o"
  "CMakeFiles/optical_future.dir/optical_future.cpp.o.d"
  "optical_future"
  "optical_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optical_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

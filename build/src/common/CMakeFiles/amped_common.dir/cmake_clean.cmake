file(REMOVE_RECURSE
  "CMakeFiles/amped_common.dir/arg_parser.cpp.o"
  "CMakeFiles/amped_common.dir/arg_parser.cpp.o.d"
  "CMakeFiles/amped_common.dir/error.cpp.o"
  "CMakeFiles/amped_common.dir/error.cpp.o.d"
  "CMakeFiles/amped_common.dir/keyval.cpp.o"
  "CMakeFiles/amped_common.dir/keyval.cpp.o.d"
  "CMakeFiles/amped_common.dir/log.cpp.o"
  "CMakeFiles/amped_common.dir/log.cpp.o.d"
  "CMakeFiles/amped_common.dir/math_util.cpp.o"
  "CMakeFiles/amped_common.dir/math_util.cpp.o.d"
  "CMakeFiles/amped_common.dir/table.cpp.o"
  "CMakeFiles/amped_common.dir/table.cpp.o.d"
  "CMakeFiles/amped_common.dir/units.cpp.o"
  "CMakeFiles/amped_common.dir/units.cpp.o.d"
  "libamped_common.a"
  "libamped_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libamped_common.a"
)

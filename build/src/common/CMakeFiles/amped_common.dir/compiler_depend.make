# Empty compiler generated dependencies file for amped_common.
# This may be replaced when dependencies are built.

# Empty dependencies file for amped_core.
# This may be replaced when dependencies are built.

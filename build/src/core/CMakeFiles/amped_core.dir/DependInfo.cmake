
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/amped_model.cpp" "src/core/CMakeFiles/amped_core.dir/amped_model.cpp.o" "gcc" "src/core/CMakeFiles/amped_core.dir/amped_model.cpp.o.d"
  "/root/repo/src/core/breakdown.cpp" "src/core/CMakeFiles/amped_core.dir/breakdown.cpp.o" "gcc" "src/core/CMakeFiles/amped_core.dir/breakdown.cpp.o.d"
  "/root/repo/src/core/compute_cost.cpp" "src/core/CMakeFiles/amped_core.dir/compute_cost.cpp.o" "gcc" "src/core/CMakeFiles/amped_core.dir/compute_cost.cpp.o.d"
  "/root/repo/src/core/energy_model.cpp" "src/core/CMakeFiles/amped_core.dir/energy_model.cpp.o" "gcc" "src/core/CMakeFiles/amped_core.dir/energy_model.cpp.o.d"
  "/root/repo/src/core/heterogeneous.cpp" "src/core/CMakeFiles/amped_core.dir/heterogeneous.cpp.o" "gcc" "src/core/CMakeFiles/amped_core.dir/heterogeneous.cpp.o.d"
  "/root/repo/src/core/memory_model.cpp" "src/core/CMakeFiles/amped_core.dir/memory_model.cpp.o" "gcc" "src/core/CMakeFiles/amped_core.dir/memory_model.cpp.o.d"
  "/root/repo/src/core/pipeline_schedule.cpp" "src/core/CMakeFiles/amped_core.dir/pipeline_schedule.cpp.o" "gcc" "src/core/CMakeFiles/amped_core.dir/pipeline_schedule.cpp.o.d"
  "/root/repo/src/core/roofline_baseline.cpp" "src/core/CMakeFiles/amped_core.dir/roofline_baseline.cpp.o" "gcc" "src/core/CMakeFiles/amped_core.dir/roofline_baseline.cpp.o.d"
  "/root/repo/src/core/training_job.cpp" "src/core/CMakeFiles/amped_core.dir/training_job.cpp.o" "gcc" "src/core/CMakeFiles/amped_core.dir/training_job.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amped_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/amped_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/amped_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/amped_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/amped_mapping.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/amped_core.dir/amped_model.cpp.o"
  "CMakeFiles/amped_core.dir/amped_model.cpp.o.d"
  "CMakeFiles/amped_core.dir/breakdown.cpp.o"
  "CMakeFiles/amped_core.dir/breakdown.cpp.o.d"
  "CMakeFiles/amped_core.dir/compute_cost.cpp.o"
  "CMakeFiles/amped_core.dir/compute_cost.cpp.o.d"
  "CMakeFiles/amped_core.dir/energy_model.cpp.o"
  "CMakeFiles/amped_core.dir/energy_model.cpp.o.d"
  "CMakeFiles/amped_core.dir/heterogeneous.cpp.o"
  "CMakeFiles/amped_core.dir/heterogeneous.cpp.o.d"
  "CMakeFiles/amped_core.dir/memory_model.cpp.o"
  "CMakeFiles/amped_core.dir/memory_model.cpp.o.d"
  "CMakeFiles/amped_core.dir/pipeline_schedule.cpp.o"
  "CMakeFiles/amped_core.dir/pipeline_schedule.cpp.o.d"
  "CMakeFiles/amped_core.dir/roofline_baseline.cpp.o"
  "CMakeFiles/amped_core.dir/roofline_baseline.cpp.o.d"
  "CMakeFiles/amped_core.dir/training_job.cpp.o"
  "CMakeFiles/amped_core.dir/training_job.cpp.o.d"
  "libamped_core.a"
  "libamped_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

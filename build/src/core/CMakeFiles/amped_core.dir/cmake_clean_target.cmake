file(REMOVE_RECURSE
  "libamped_core.a"
)

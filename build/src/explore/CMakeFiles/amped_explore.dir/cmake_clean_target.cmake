file(REMOVE_RECURSE
  "libamped_explore.a"
)

# Empty dependencies file for amped_explore.
# This may be replaced when dependencies are built.

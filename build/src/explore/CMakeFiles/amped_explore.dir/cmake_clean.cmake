file(REMOVE_RECURSE
  "CMakeFiles/amped_explore.dir/ablation.cpp.o"
  "CMakeFiles/amped_explore.dir/ablation.cpp.o.d"
  "CMakeFiles/amped_explore.dir/config_io.cpp.o"
  "CMakeFiles/amped_explore.dir/config_io.cpp.o.d"
  "CMakeFiles/amped_explore.dir/explorer.cpp.o"
  "CMakeFiles/amped_explore.dir/explorer.cpp.o.d"
  "CMakeFiles/amped_explore.dir/registry.cpp.o"
  "CMakeFiles/amped_explore.dir/registry.cpp.o.d"
  "CMakeFiles/amped_explore.dir/report.cpp.o"
  "CMakeFiles/amped_explore.dir/report.cpp.o.d"
  "libamped_explore.a"
  "libamped_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

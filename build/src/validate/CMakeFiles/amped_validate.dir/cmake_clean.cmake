file(REMOVE_RECURSE
  "CMakeFiles/amped_validate.dir/calibrations.cpp.o"
  "CMakeFiles/amped_validate.dir/calibrations.cpp.o.d"
  "CMakeFiles/amped_validate.dir/reference_data.cpp.o"
  "CMakeFiles/amped_validate.dir/reference_data.cpp.o.d"
  "CMakeFiles/amped_validate.dir/validation.cpp.o"
  "CMakeFiles/amped_validate.dir/validation.cpp.o.d"
  "libamped_validate.a"
  "libamped_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for amped_validate.
# This may be replaced when dependencies are built.

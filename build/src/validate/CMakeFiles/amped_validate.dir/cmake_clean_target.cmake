file(REMOVE_RECURSE
  "libamped_validate.a"
)

# Empty dependencies file for amped_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libamped_sim.a"
)

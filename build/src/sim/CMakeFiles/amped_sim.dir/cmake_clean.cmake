file(REMOVE_RECURSE
  "CMakeFiles/amped_sim.dir/engine.cpp.o"
  "CMakeFiles/amped_sim.dir/engine.cpp.o.d"
  "CMakeFiles/amped_sim.dir/task_graph.cpp.o"
  "CMakeFiles/amped_sim.dir/task_graph.cpp.o.d"
  "CMakeFiles/amped_sim.dir/trace.cpp.o"
  "CMakeFiles/amped_sim.dir/trace.cpp.o.d"
  "CMakeFiles/amped_sim.dir/training_sim.cpp.o"
  "CMakeFiles/amped_sim.dir/training_sim.cpp.o.d"
  "libamped_sim.a"
  "libamped_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for amped_mapping.
# This may be replaced when dependencies are built.

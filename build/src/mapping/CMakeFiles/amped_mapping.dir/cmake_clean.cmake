file(REMOVE_RECURSE
  "CMakeFiles/amped_mapping.dir/parallelism.cpp.o"
  "CMakeFiles/amped_mapping.dir/parallelism.cpp.o.d"
  "libamped_mapping.a"
  "libamped_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

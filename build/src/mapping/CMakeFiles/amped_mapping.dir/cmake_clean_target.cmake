file(REMOVE_RECURSE
  "libamped_mapping.a"
)

# Empty compiler generated dependencies file for amped_hw.
# This may be replaced when dependencies are built.

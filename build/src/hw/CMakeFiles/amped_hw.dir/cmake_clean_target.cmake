file(REMOVE_RECURSE
  "libamped_hw.a"
)

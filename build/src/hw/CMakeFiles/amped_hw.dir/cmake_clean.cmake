file(REMOVE_RECURSE
  "CMakeFiles/amped_hw.dir/accelerator.cpp.o"
  "CMakeFiles/amped_hw.dir/accelerator.cpp.o.d"
  "CMakeFiles/amped_hw.dir/efficiency.cpp.o"
  "CMakeFiles/amped_hw.dir/efficiency.cpp.o.d"
  "CMakeFiles/amped_hw.dir/presets.cpp.o"
  "CMakeFiles/amped_hw.dir/presets.cpp.o.d"
  "libamped_hw.a"
  "libamped_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accelerator.cpp" "src/hw/CMakeFiles/amped_hw.dir/accelerator.cpp.o" "gcc" "src/hw/CMakeFiles/amped_hw.dir/accelerator.cpp.o.d"
  "/root/repo/src/hw/efficiency.cpp" "src/hw/CMakeFiles/amped_hw.dir/efficiency.cpp.o" "gcc" "src/hw/CMakeFiles/amped_hw.dir/efficiency.cpp.o.d"
  "/root/repo/src/hw/presets.cpp" "src/hw/CMakeFiles/amped_hw.dir/presets.cpp.o" "gcc" "src/hw/CMakeFiles/amped_hw.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amped_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

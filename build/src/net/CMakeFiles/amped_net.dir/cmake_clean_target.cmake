file(REMOVE_RECURSE
  "libamped_net.a"
)

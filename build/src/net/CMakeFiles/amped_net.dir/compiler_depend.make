# Empty compiler generated dependencies file for amped_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/amped_net.dir/collectives.cpp.o"
  "CMakeFiles/amped_net.dir/collectives.cpp.o.d"
  "CMakeFiles/amped_net.dir/link.cpp.o"
  "CMakeFiles/amped_net.dir/link.cpp.o.d"
  "CMakeFiles/amped_net.dir/system_config.cpp.o"
  "CMakeFiles/amped_net.dir/system_config.cpp.o.d"
  "libamped_net.a"
  "libamped_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

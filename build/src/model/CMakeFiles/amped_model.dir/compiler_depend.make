# Empty compiler generated dependencies file for amped_model.
# This may be replaced when dependencies are built.

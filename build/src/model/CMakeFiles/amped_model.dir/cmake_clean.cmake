file(REMOVE_RECURSE
  "CMakeFiles/amped_model.dir/op_counter.cpp.o"
  "CMakeFiles/amped_model.dir/op_counter.cpp.o.d"
  "CMakeFiles/amped_model.dir/presets.cpp.o"
  "CMakeFiles/amped_model.dir/presets.cpp.o.d"
  "CMakeFiles/amped_model.dir/transformer_config.cpp.o"
  "CMakeFiles/amped_model.dir/transformer_config.cpp.o.d"
  "libamped_model.a"
  "libamped_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amped_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libamped_model.a"
)

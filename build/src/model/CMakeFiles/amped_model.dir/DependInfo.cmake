
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/op_counter.cpp" "src/model/CMakeFiles/amped_model.dir/op_counter.cpp.o" "gcc" "src/model/CMakeFiles/amped_model.dir/op_counter.cpp.o.d"
  "/root/repo/src/model/presets.cpp" "src/model/CMakeFiles/amped_model.dir/presets.cpp.o" "gcc" "src/model/CMakeFiles/amped_model.dir/presets.cpp.o.d"
  "/root/repo/src/model/transformer_config.cpp" "src/model/CMakeFiles/amped_model.dir/transformer_config.cpp.o" "gcc" "src/model/CMakeFiles/amped_model.dir/transformer_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amped_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common_args.cpp" "tests/CMakeFiles/amped_tests.dir/test_common_args.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_common_args.cpp.o.d"
  "/root/repo/tests/test_common_error.cpp" "tests/CMakeFiles/amped_tests.dir/test_common_error.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_common_error.cpp.o.d"
  "/root/repo/tests/test_common_keyval.cpp" "tests/CMakeFiles/amped_tests.dir/test_common_keyval.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_common_keyval.cpp.o.d"
  "/root/repo/tests/test_common_log.cpp" "tests/CMakeFiles/amped_tests.dir/test_common_log.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_common_log.cpp.o.d"
  "/root/repo/tests/test_common_math.cpp" "tests/CMakeFiles/amped_tests.dir/test_common_math.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_common_math.cpp.o.d"
  "/root/repo/tests/test_common_table.cpp" "tests/CMakeFiles/amped_tests.dir/test_common_table.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_common_table.cpp.o.d"
  "/root/repo/tests/test_common_units.cpp" "tests/CMakeFiles/amped_tests.dir/test_common_units.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_common_units.cpp.o.d"
  "/root/repo/tests/test_core_energy.cpp" "tests/CMakeFiles/amped_tests.dir/test_core_energy.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_core_energy.cpp.o.d"
  "/root/repo/tests/test_core_heterogeneous.cpp" "tests/CMakeFiles/amped_tests.dir/test_core_heterogeneous.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_core_heterogeneous.cpp.o.d"
  "/root/repo/tests/test_core_job.cpp" "tests/CMakeFiles/amped_tests.dir/test_core_job.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_core_job.cpp.o.d"
  "/root/repo/tests/test_core_memory.cpp" "tests/CMakeFiles/amped_tests.dir/test_core_memory.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_core_memory.cpp.o.d"
  "/root/repo/tests/test_core_model.cpp" "tests/CMakeFiles/amped_tests.dir/test_core_model.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_core_model.cpp.o.d"
  "/root/repo/tests/test_core_properties.cpp" "tests/CMakeFiles/amped_tests.dir/test_core_properties.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_core_properties.cpp.o.d"
  "/root/repo/tests/test_core_roofline.cpp" "tests/CMakeFiles/amped_tests.dir/test_core_roofline.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_core_roofline.cpp.o.d"
  "/root/repo/tests/test_core_schedule.cpp" "tests/CMakeFiles/amped_tests.dir/test_core_schedule.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_core_schedule.cpp.o.d"
  "/root/repo/tests/test_explore.cpp" "tests/CMakeFiles/amped_tests.dir/test_explore.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_explore.cpp.o.d"
  "/root/repo/tests/test_explore_config_io.cpp" "tests/CMakeFiles/amped_tests.dir/test_explore_config_io.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_explore_config_io.cpp.o.d"
  "/root/repo/tests/test_explore_registry.cpp" "tests/CMakeFiles/amped_tests.dir/test_explore_registry.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_explore_registry.cpp.o.d"
  "/root/repo/tests/test_explore_report.cpp" "tests/CMakeFiles/amped_tests.dir/test_explore_report.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_explore_report.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/amped_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_hw_efficiency.cpp" "tests/CMakeFiles/amped_tests.dir/test_hw_efficiency.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_hw_efficiency.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/amped_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_mapping.cpp" "tests/CMakeFiles/amped_tests.dir/test_mapping.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_mapping.cpp.o.d"
  "/root/repo/tests/test_model_config.cpp" "tests/CMakeFiles/amped_tests.dir/test_model_config.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_model_config.cpp.o.d"
  "/root/repo/tests/test_model_opcounter.cpp" "tests/CMakeFiles/amped_tests.dir/test_model_opcounter.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_model_opcounter.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/amped_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_sim_2d.cpp" "tests/CMakeFiles/amped_tests.dir/test_sim_2d.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_sim_2d.cpp.o.d"
  "/root/repo/tests/test_sim_collectives.cpp" "tests/CMakeFiles/amped_tests.dir/test_sim_collectives.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_sim_collectives.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/amped_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_sim_random_dags.cpp" "tests/CMakeFiles/amped_tests.dir/test_sim_random_dags.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_sim_random_dags.cpp.o.d"
  "/root/repo/tests/test_sim_trace.cpp" "tests/CMakeFiles/amped_tests.dir/test_sim_trace.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_sim_trace.cpp.o.d"
  "/root/repo/tests/test_sim_training.cpp" "tests/CMakeFiles/amped_tests.dir/test_sim_training.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_sim_training.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/amped_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/amped_tests.dir/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/amped_core.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/amped_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amped_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/validate/CMakeFiles/amped_validate.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/amped_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/amped_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/amped_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/amped_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/amped_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

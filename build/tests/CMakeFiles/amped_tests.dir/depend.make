# Empty dependencies file for amped_tests.
# This may be replaced when dependencies are built.

/**
 * @file
 * Tests for the discrete-event engine: serialization, dependencies,
 * transfer latency semantics, determinism, and cycle detection.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "sim/task_graph.hpp"
#include "sim_test_util.hpp"

namespace amped {
namespace sim {
namespace {

TEST(EngineTest, SingleComputeTask)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    graph.addCompute(dev, Seconds{2.5}, "work");
    Engine engine;
    const auto result = engine.run(graph);
    EXPECT_DOUBLE_EQ(result.makespan, 2.5);
    EXPECT_DOUBLE_EQ(result.resources[dev].busyTime, 2.5);
    EXPECT_DOUBLE_EQ(result.utilization(dev), 1.0);
}

TEST(EngineTest, IndependentTasksOnOneResourceSerialize)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    graph.addCompute(dev, Seconds{1.0}, "a");
    graph.addCompute(dev, Seconds{2.0}, "b");
    Engine engine;
    EXPECT_DOUBLE_EQ(engine.run(graph).makespan, 3.0);
}

TEST(EngineTest, IndependentTasksOnTwoResourcesOverlap)
{
    TaskGraph graph;
    const auto d0 = graph.addDevice("d0");
    const auto d1 = graph.addDevice("d1");
    graph.addCompute(d0, Seconds{1.0}, "a");
    graph.addCompute(d1, Seconds{2.0}, "b");
    Engine engine;
    EXPECT_DOUBLE_EQ(engine.run(graph).makespan, 2.0);
}

TEST(EngineTest, DependencyChainsAddUp)
{
    TaskGraph graph;
    const auto d0 = graph.addDevice("d0");
    const auto d1 = graph.addDevice("d1");
    const auto a = graph.addCompute(d0, Seconds{1.0}, "a");
    const auto b = graph.addCompute(d1, Seconds{2.0}, "b");
    graph.addDependency(a, b);
    Engine engine;
    EXPECT_DOUBLE_EQ(engine.run(graph).makespan, 3.0);
}

TEST(EngineTest, TransferAddsSerializationAndLatency)
{
    TaskGraph graph;
    const auto d0 = graph.addDevice("d0");
    const auto ch = graph.addChannel("c");
    const auto d1 = graph.addDevice("d1");
    const auto produce = graph.addCompute(d0, Seconds{1.0}, "produce");
    // 1e9 bits over 1e9 bits/s = 1 s serialization + 0.5 s latency.
    const auto transfer =
        graph.addTransfer(ch, Bits{1e9}, BitsPerSecond{1e9}, Seconds{0.5}, "xfer");
    const auto consume = graph.addCompute(d1, Seconds{1.0}, "consume");
    graph.addDependency(produce, transfer);
    graph.addDependency(transfer, consume);
    Engine engine;
    EXPECT_DOUBLE_EQ(engine.run(graph).makespan, 3.5);
}

TEST(EngineTest, CutThroughFreesChannelBeforeDelivery)
{
    // Two back-to-back transfers on the same channel: the second can
    // start as soon as the first's serialization ends, so its
    // delivery is at 2 * serialization + latency, not 2 * (s + l).
    TaskGraph graph;
    const auto ch = graph.addChannel("c");
    graph.addTransfer(ch, Bits{1e9}, BitsPerSecond{1e9}, Seconds{0.5}, "t0");
    graph.addTransfer(ch, Bits{1e9}, BitsPerSecond{1e9}, Seconds{0.5}, "t1");
    Engine engine;
    EXPECT_DOUBLE_EQ(engine.run(graph).makespan, 2.5);
}

TEST(EngineTest, DiamondDependencies)
{
    TaskGraph graph;
    const auto d = graph.addDevice("d0");
    const auto e = graph.addDevice("d1");
    const auto a = graph.addCompute(d, Seconds{1.0}, "a");
    const auto b = graph.addCompute(d, Seconds{1.0}, "b");
    const auto c = graph.addCompute(e, Seconds{1.0}, "c");
    const auto join = graph.addCompute(d, Seconds{1.0}, "join");
    graph.addDependency(a, b);
    graph.addDependency(a, c);
    graph.addDependency(b, join);
    graph.addDependency(c, join);
    Engine engine;
    // a: [0,1]; b: [1,2] on d; c: [1,2] on e; join: [2,3].
    EXPECT_DOUBLE_EQ(engine.run(graph).makespan, 3.0);
}

TEST(EngineTest, FifoOrderIsDeterministic)
{
    // Ten equal tasks on one device: intervals must be back-to-back
    // in task-id order on every run.
    for (int repeat = 0; repeat < 3; ++repeat) {
        TaskGraph graph;
        const auto dev = graph.addDevice("d0");
        for (int i = 0; i < 10; ++i)
            graph.addCompute(dev, Seconds{1.0}, testutil::indexedName("t", i));
        Engine engine;
        const auto result = engine.run(graph);
        ASSERT_EQ(result.resources[dev].intervals.size(), 10u);
        for (int i = 0; i < 10; ++i) {
            EXPECT_DOUBLE_EQ(result.resources[dev].intervals[i].start,
                             static_cast<double>(i));
            EXPECT_EQ(result.resources[dev].intervals[i].task, i);
        }
    }
}

TEST(EngineTest, CycleIsReportedNotHung)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    const auto a = graph.addCompute(dev, Seconds{1.0}, "a");
    const auto b = graph.addCompute(dev, Seconds{1.0}, "b");
    graph.addDependency(a, b);
    graph.addDependency(b, a);
    Engine engine;
    // The diagnostic must name the stuck tasks (id + label), not
    // just say "did not complete".
    try {
        engine.run(graph);
        FAIL() << "expected a UserError";
    } catch (const UserError &error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("never became ready"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("#0 'a'"), std::string::npos)
            << message;
        EXPECT_NE(message.find("#1 'b'"), std::string::npos)
            << message;
    }
}

TEST(EngineTest, CycleDiagnosticTruncatesLongStuckLists)
{
    // Six mutually-stuck tasks: the message lists the first four and
    // summarizes the rest as "(+2 more)".
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    std::vector<TaskId> tasks;
    for (int t = 0; t < 6; ++t)
        tasks.push_back(graph.addCompute(
            dev, Seconds{1.0}, testutil::indexedName("t", t)));
    for (int t = 0; t < 6; ++t)
        graph.addDependency(tasks[(t + 1) % 6], tasks[t]);
    Engine engine;
    try {
        engine.run(graph);
        FAIL() << "expected a UserError";
    } catch (const UserError &error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("#0 't0'"), std::string::npos)
            << message;
        EXPECT_NE(message.find("#3 't3'"), std::string::npos)
            << message;
        EXPECT_EQ(message.find("#4 't4'"), std::string::npos)
            << message;
        EXPECT_NE(message.find("(+2 more)"), std::string::npos)
            << message;
    }
}

TEST(EngineTest, RerunningAGraphGivesSameResult)
{
    TaskGraph graph;
    const auto d0 = graph.addDevice("d0");
    const auto a = graph.addCompute(d0, Seconds{1.0}, "a");
    const auto b = graph.addCompute(d0, Seconds{2.0}, "b");
    graph.addDependency(a, b);
    Engine engine;
    const double first = engine.run(graph).makespan;
    const double second = engine.run(graph).makespan;
    EXPECT_DOUBLE_EQ(first, second);
}

TEST(EngineTest, UtilizationReflectsIdleTime)
{
    TaskGraph graph;
    const auto d0 = graph.addDevice("d0");
    const auto d1 = graph.addDevice("d1");
    const auto a = graph.addCompute(d0, Seconds{3.0}, "a");
    const auto b = graph.addCompute(d1, Seconds{1.0}, "b");
    graph.addDependency(a, b);
    Engine engine;
    const auto result = engine.run(graph);
    EXPECT_DOUBLE_EQ(result.makespan, 4.0);
    EXPECT_DOUBLE_EQ(result.utilization(d0), 0.75);
    EXPECT_DOUBLE_EQ(result.utilization(d1), 0.25);
}

TEST(TaskGraphTest, ValidationOfBuilders)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    const auto ch = graph.addChannel("c");
    EXPECT_THROW(graph.addCompute(ch, Seconds{1.0}, "on-channel"), UserError);
    EXPECT_THROW(graph.addTransfer(dev, Bits{1.0}, BitsPerSecond{1.0}, Seconds{0.0}, "on-device"),
                 UserError);
    EXPECT_THROW(graph.addCompute(dev, Seconds{-1.0}, "negative"), UserError);
    EXPECT_THROW(graph.addTransfer(ch, Bits{1.0}, BitsPerSecond{0.0}, Seconds{0.0}, "no-bw"),
                 UserError);
    EXPECT_THROW(graph.addCompute(99, Seconds{1.0}, "bad-id"), UserError);
    const auto t = graph.addCompute(dev, Seconds{1.0}, "ok");
    EXPECT_THROW(graph.addDependency(t, t), UserError);
    EXPECT_THROW(graph.addDependency(t, 99), UserError);
}

TEST(TaskGraphTest, ZeroDurationTasksComplete)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    const auto a = graph.addCompute(dev, Seconds{0.0}, "a");
    const auto b = graph.addCompute(dev, Seconds{0.0}, "b");
    graph.addDependency(a, b);
    Engine engine;
    EXPECT_DOUBLE_EQ(engine.run(graph).makespan, 0.0);
}

} // namespace
} // namespace sim
} // namespace amped

/**
 * @file
 * Tests for the combined DP x PP simulation schedule, including the
 * cross-check against the analytical model's combined prediction.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

namespace amped {
namespace sim {
namespace {

TrainingSimulator
makeSim()
{
    TrainingSimulator sim(
        model::presets::tinyTest(), hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}});
    return sim;
}

net::LinkConfig
dpLink()
{
    return net::LinkConfig{"dp", Seconds{2e-6}, BitsPerSecond{2e11}};
}

TEST(DataPipelineSimTest, DegeneratesToPureGPipe)
{
    const auto sim = makeSim();
    const auto combined =
        sim.simulateDataPipelineStep(1, 4, 4.0, 8, dpLink());
    const auto gpipe = sim.simulateGPipeStep(4, 4.0, 8);
    EXPECT_NEAR(combined.stepTime, gpipe.stepTime, 1e-12);
}

TEST(DataPipelineSimTest, DegeneratesToPureDp)
{
    // One stage, one microbatch: compute + DP ring (over dpLink)
    // + update, comparable to the flat DP step modulo link/precision
    // differences.
    auto sim = makeSim();
    const auto combined =
        sim.simulateDataPipelineStep(4, 1, 8.0, 1, dpLink());
    EXPECT_GT(combined.stepTime, 0.0);
    EXPECT_EQ(combined.deviceUtilization.size(), 4u);
    // All replicas see identical schedules.
    for (double u : combined.deviceUtilization)
        EXPECT_NEAR(u, combined.deviceUtilization[0], 1e-9);
}

TEST(DataPipelineSimTest, ReplicasShareTheStepWallClock)
{
    const auto sim = makeSim();
    // Same per-replica work: more replicas only add the all-reduce.
    const double one =
        sim.simulateDataPipelineStep(1, 4, 4.0, 8, dpLink())
            .stepTime;
    const double four =
        sim.simulateDataPipelineStep(4, 4, 4.0, 8, dpLink())
            .stepTime;
    EXPECT_GT(four, one);
    // The gradient payload of the tiny model is small: well under
    // 2x.
    EXPECT_LT(four, 2.0 * one);
}

TEST(DataPipelineSimTest, MatchesAnalyticCombinedPrediction)
{
    // minGPT-PP on a 2-node system: 2 DP replicas of 4-stage
    // pipelines; compare simulated step vs Eq. 1 with DP2 x PP4.
    const auto model_cfg = model::presets::minGptPipeline();
    const auto accel = hw::presets::v100Sxm3();
    const hw::MicrobatchEfficiency eff(0.8, 8.0);

    TrainingSimulator simulator(model_cfg, accel, eff,
                                net::presets::nvlinkV100());
    simulator.setBackwardMultiplier(3.0);
    simulator.setGradientBits(Bits{16.0});

    const double microbatch = 8.0;
    const std::int64_t stages = 4, replicas = 2, n_ub = 4;
    const auto outcome = simulator.simulateDataPipelineStep(
        replicas, stages, microbatch, n_ub,
        net::presets::nvlinkV100());

    net::SystemConfig system = net::presets::hgx2(8);
    core::ModelOptions options =
        validate::calibrations::validationOptions();
    options.gradientBits = Bits{16.0};
    core::AmpedModel amped(model_cfg, accel, eff, system, options);
    core::TrainingJob job;
    job.batchSize =
        microbatch * static_cast<double>(replicas * n_ub);
    job.numBatchesOverride = 1.0;
    const auto result = amped.evaluate(
        mapping::makeMapping(1, stages, replicas, 1, 1, 1), job);

    // The closed form and the event-driven schedule agree within a
    // few percent (the analytic bubble slightly overestimates the
    // fill/drain interaction with the all-reduce tail).
    EXPECT_NEAR(result.timePerBatch / outcome.stepTime, 1.0, 0.06);
}

TEST(DataPipelineSimTest, RejectsBadArguments)
{
    const auto sim = makeSim();
    EXPECT_THROW(
        sim.simulateDataPipelineStep(0, 2, 4.0, 2, dpLink()),
        UserError);
    EXPECT_THROW(
        sim.simulateDataPipelineStep(2, 0, 4.0, 2, dpLink()),
        UserError);
    EXPECT_THROW(
        sim.simulateDataPipelineStep(2, 5, 4.0, 2, dpLink()),
        UserError); // stages > layers
    EXPECT_THROW(
        sim.simulateDataPipelineStep(2, 2, 0.5, 2, dpLink()),
        UserError);
    EXPECT_THROW(
        sim.simulateDataPipelineStep(2, 2, 4.0, 0, dpLink()),
        UserError);
}

} // namespace
} // namespace sim
} // namespace amped

/**
 * @file
 * Differential tests of the batched SoA sweep engine
 * (explore/batch.hpp) against the scalar reference loop.
 *
 * The batch engine's contract is *byte*-identity, not approximate
 * agreement: entries in the same order, every result field with the
 * same bit pattern (including the NaN pinning of failed points),
 * the same skip/memory/failed counters, and the same warning lines
 * on stderr.  The property test below drives ~200 randomized grids
 * — mixed feasible / infeasible / over-memory / poisoned points,
 * with and without a memory screen, with microbatching overrides —
 * through both engines at thread counts 1, 2 and 8 and asserts
 * exactly that.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/memory_model.hpp"
#include "explore/batch.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"

namespace amped {
namespace explore {
namespace {

net::SystemConfig
testSystem()
{
    net::SystemConfig sys;
    sys.name = "test-4x4";
    sys.numNodes = 4;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return sys;
}

core::AmpedModel
tinyModel()
{
    return core::AmpedModel(model::presets::tinyTest(),
                            hw::presets::tinyTest(),
                            hw::MicrobatchEfficiency(0.8, 4.0),
                            testSystem());
}

core::AmpedModel
minGptModel()
{
    return core::AmpedModel(model::presets::minGpt85M(),
                            hw::presets::tinyTest(),
                            hw::MicrobatchEfficiency(0.8, 4.0),
                            testSystem());
}

std::uint64_t
bits(double value)
{
    std::uint64_t out = 0;
    static_assert(sizeof(out) == sizeof(value));
    std::memcpy(&out, &value, sizeof(out));
    return out;
}

/** Every numeric field of one sweep entry, as bit patterns. */
std::vector<std::uint64_t>
entryBits(const SweepEntry &entry)
{
    const auto &r = entry.result;
    const auto &b = r.perBatch;
    return {bits(entry.batchSize),      bits(b.computeForward),
            bits(b.computeBackward),    bits(b.weightUpdate),
            bits(b.commTpIntra),        bits(b.commTpInter),
            bits(b.commPp),             bits(b.commMoe),
            bits(b.commGradIntra),      bits(b.commGradInter),
            bits(b.bubble),             bits(r.timePerBatch),
            bits(r.numBatches),         bits(r.totalTime),
            bits(r.microbatchSize),     bits(r.numMicrobatches),
            bits(r.efficiency),         bits(r.achievedFlopsPerGpu),
            bits(r.tokensPerSecond)};
}

/**
 * Runs one (mappings x jobs) grid through the given engine at the
 * given thread cap, capturing the warning stream.
 */
SweepResult
runEngine(const core::AmpedModel &model,
          const core::MemoryModel *screen, bool batched,
          unsigned threads,
          const std::vector<mapping::ParallelismConfig> &mappings,
          const std::vector<core::TrainingJob> &jobs,
          std::string &stderr_text)
{
    Explorer explorer(model);
    explorer.setBatchMode(batched);
    explorer.setThreads(threads);
    if (screen != nullptr)
        explorer.setMemoryModel(*screen);
    testing::internal::CaptureStderr();
    const auto result = explorer.sweepJobs(mappings, jobs);
    stderr_text = testing::internal::GetCapturedStderr();
    return result;
}

/** Asserts byte-identity of two sweeps (use via ASSERT_NO_FATAL_FAILURE). */
void
expectIdentical(const SweepResult &ref, const SweepResult &got,
                const std::string &ref_stderr,
                const std::string &got_stderr, const char *label)
{
    EXPECT_EQ(ref.skipped, got.skipped) << label;
    EXPECT_EQ(ref.memorySkipped, got.memorySkipped) << label;
    EXPECT_EQ(ref.failed, got.failed) << label;
    EXPECT_EQ(ref_stderr, got_stderr) << label;
    ASSERT_EQ(ref.entries.size(), got.entries.size()) << label;
    for (std::size_t i = 0; i < ref.entries.size(); ++i) {
        EXPECT_EQ(ref.entries[i].mapping.toString(),
                  got.entries[i].mapping.toString())
            << label << " entry " << i;
        EXPECT_EQ(entryBits(ref.entries[i]),
                  entryBits(got.entries[i]))
            << label << " entry " << i << " ("
            << ref.entries[i].mapping.toString() << ")";
    }
}

TEST(ExploreBatchProperty, RandomGridsAreByteIdenticalAcrossEnginesAndThreads)
{
    std::mt19937 rng(0xA3BED5EEu);
    const auto tiny = tinyModel();
    const auto mingpt = minGptModel();
    // No activation recomputation: low-parallelism minGPT points
    // overflow the tiny 4 GB device, exercising memorySkipped.
    core::MemoryOptions screen_options;
    screen_options.activationRecompute = false;
    const core::MemoryModel screen(
        model::OpCounter(model::presets::minGpt85M()),
        hw::presets::tinyTest(), screen_options);

    const auto all_mappings =
        mapping::MappingSpace(testSystem()).enumerate();
    ASSERT_GT(all_mappings.size(), 4u);

    std::size_t total_feasible = 0;
    std::size_t total_skipped = 0;
    std::size_t total_memory = 0;
    std::size_t total_failed = 0;
    for (int grid = 0; grid < 200; ++grid) {
        const bool use_mingpt = grid % 2 == 1;
        const auto &model = use_mingpt ? mingpt : tiny;
        const core::MemoryModel *mem =
            use_mingpt && grid % 4 == 1 ? &screen : nullptr;

        std::uniform_int_distribution<std::size_t> pick(
            0, all_mappings.size() - 1);
        std::uniform_int_distribution<int> mapping_count(1, 8);
        std::vector<mapping::ParallelismConfig> mappings;
        const int m = mapping_count(rng);
        for (int i = 0; i < m; ++i)
            mappings.push_back(all_mappings[pick(rng)]);

        std::uniform_int_distribution<int> job_count(1, 6);
        std::uniform_int_distribution<int> batch_pick(0, 7);
        std::uniform_int_distribution<int> odds(0, 9);
        static const double kBatches[] = {1.0,   2.0,    7.0,
                                          16.0,  64.0,   63.0,
                                          256.0, 4096.0};
        std::vector<core::TrainingJob> jobs;
        const int j = job_count(rng);
        for (int i = 0; i < j; ++i) {
            core::TrainingJob job;
            job.batchSize = kBatches[batch_pick(rng)];
            job.totalTrainingTokens = 1e9;
            const int roll = odds(rng);
            if (roll == 0) // Poison: NaN-pins the whole row.
                job.numBatchesOverride =
                    std::numeric_limits<double>::infinity();
            else if (roll < 3)
                job.numBatchesOverride = 5.0;
            if (roll == 4) // Often infeasible for large mappings.
                job.microbatching.microbatchSizeOverride = 2.0;
            else if (roll == 5)
                job.microbatching.numMicrobatchesOverride = 4.0;
            jobs.push_back(job);
        }

        std::string ref_stderr;
        const auto ref = runEngine(model, mem, /*batched=*/false,
                                   /*threads=*/1, mappings, jobs,
                                   ref_stderr);
        total_feasible += ref.entries.size() - ref.failed;
        total_skipped += ref.skipped;
        total_memory += ref.memorySkipped;
        total_failed += ref.failed;

        const struct
        {
            bool batched;
            unsigned threads;
            const char *label;
        } variants[] = {{false, 2, "scalar@2"},
                        {true, 1, "batch@1"},
                        {true, 2, "batch@2"},
                        {true, 8, "batch@8"}};
        for (const auto &v : variants) {
            std::string got_stderr;
            const auto got =
                runEngine(model, mem, v.batched, v.threads,
                          mappings, jobs, got_stderr);
            ASSERT_NO_FATAL_FAILURE(
                expectIdentical(ref, got, ref_stderr, got_stderr,
                                v.label))
                << "grid " << grid << " " << v.label;
            if (::testing::Test::HasFailure())
                FAIL() << "first mismatch at grid " << grid;
        }
    }
    // The generator must actually exercise every outcome class, or
    // the byte-identity assertions above prove less than they claim.
    EXPECT_GT(total_feasible, 0u);
    EXPECT_GT(total_skipped, 0u);
    EXPECT_GT(total_memory, 0u);
    EXPECT_GT(total_failed, 0u);
}

TEST(ExploreBatchTest, EnvironmentVariableSelectsEngineDefault)
{
    // The ctor default honours AMPED_SWEEP_ENGINE; the setter wins
    // afterwards.  (The env var is read at construction, so this
    // only checks the programmatic contract — the env path is
    // covered by the scalar-engine CI run.)
    Explorer explorer(tinyModel());
    const bool initial = explorer.batchMode();
    explorer.setBatchMode(!initial);
    EXPECT_EQ(explorer.batchMode(), !initial);
    explorer.setBatchMode(initial);
    EXPECT_EQ(explorer.batchMode(), initial);
}

TEST(ExploreBatchTest, NanPinnedResultIsAllNaN)
{
    const auto pinned = nanPinnedResult();
    for (const auto value : entryBits(SweepEntry{
             mapping::makeMapping(1, 1, 1, 1, 1, 1),
             std::nan(""), pinned}))
        EXPECT_TRUE(std::isnan(
            [](std::uint64_t u) {
                double d = 0.0;
                std::memcpy(&d, &u, sizeof(d));
                return d;
            }(value)));
}

} // namespace
} // namespace explore
} // namespace amped

/**
 * @file
 * Tests for the hierarchical all-reduce and all-to-all simulation
 * primitives, cross-checked against the analytical collective cost
 * models they correspond to (Eq. 9-11).
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/collectives.hpp"
#include "sim/training_sim.hpp"

namespace amped {
namespace sim {
namespace {

TrainingSimulator
makeSim()
{
    return TrainingSimulator(
        model::presets::tinyTest(), hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6},
                        BitsPerSecond{2.4e12}});
}

net::LinkConfig
interLink()
{
    return net::LinkConfig{"inter", Seconds{2e-6},
                           BitsPerSecond{2e11}};
}

TEST(HierarchicalDpSimTest, SingleNodeMatchesFlatDp)
{
    const auto sim = makeSim();
    const auto flat = sim.simulateDataParallelStep(4, 8.0);
    const auto hier = sim.simulateHierarchicalDataParallelStep(
        1, 4, 8.0, interLink());
    // One node: the hierarchical schedule is the flat intra
    // all-reduce plus a broadcast ring, minus the weight update the
    // flat step performs — so only roughly comparable.
    EXPECT_GT(hier.stepTime, 0.0);
    EXPECT_NEAR(hier.stepTime / flat.stepTime, 1.0, 0.35);
}

TEST(HierarchicalDpSimTest, TracksAnalyticHierarchicalAllReduce)
{
    const auto sim = makeSim();
    const std::int64_t nodes = 4, per_node = 4;
    const auto outcome = sim.simulateHierarchicalDataParallelStep(
        nodes, per_node, 8.0, interLink());

    // Compute-only baseline: one device, no communication.
    const auto solo = sim.simulateHierarchicalDataParallelStep(
        1, 1, 8.0, interLink());
    const double comm_sim = outcome.stepTime - solo.stepTime;

    const double grads = sim.opCounter().totalLayerWeights();
    const net::LinkConfig intra{"intra", Seconds{1e-6},
                                BitsPerSecond{2.4e12}};
    const double analytic =
        net::hierarchicalAllReduceTime(per_node, nodes, grads,
                                       Bits{32.0}, intra,
                                       interLink().latency,
                                       interLink().bandwidth)
            .value();
    // The simulated schedule adds the final broadcast; expect
    // agreement within ~40 % (same order, same dominant term).
    EXPECT_GT(comm_sim, 0.5 * analytic);
    EXPECT_LT(comm_sim, 1.6 * analytic);
}

TEST(HierarchicalDpSimTest, SlowerInterconnectDominates)
{
    const auto sim = makeSim();
    net::LinkConfig slow = interLink();
    slow.bandwidth /= 10.0;
    const double fast_time =
        sim.simulateHierarchicalDataParallelStep(4, 4, 8.0,
                                                 interLink())
            .stepTime;
    const double slow_time =
        sim.simulateHierarchicalDataParallelStep(4, 4, 8.0, slow)
            .stepTime;
    EXPECT_GT(slow_time, fast_time);
}

TEST(HierarchicalDpSimTest, RejectsBadArguments)
{
    const auto sim = makeSim();
    EXPECT_THROW(sim.simulateHierarchicalDataParallelStep(
                     0, 4, 8.0, interLink()),
                 UserError);
    EXPECT_THROW(sim.simulateHierarchicalDataParallelStep(
                     2, 0, 8.0, interLink()),
                 UserError);
    EXPECT_THROW(sim.simulateHierarchicalDataParallelStep(
                     2, 2, 0.5, interLink()),
                 UserError);
}

TEST(AllToAllSimTest, SingleParticipantIsFree)
{
    const auto sim = makeSim();
    const auto outcome =
        sim.simulateAllToAll(1, 1e6, Bits{16.0}, interLink());
    EXPECT_DOUBLE_EQ(outcome.stepTime, 0.0);
}

TEST(AllToAllSimTest, MatchesPairwiseExchangeBandwidthTerm)
{
    const auto sim = makeSim();
    const std::int64_t n = 8;
    const double elements = 1e8, bits = 16.0;
    const auto outcome =
        sim.simulateAllToAll(n, elements, Bits{bits}, interLink());
    // Pairwise exchange: N-1 rounds of (data/N) per egress link,
    // serialized per rank: total = (N-1)/N * data / BW + latencies.
    const double expected =
        net::topology::pairwiseAllToAll(n) * elements * bits /
            interLink().bandwidth.value() +
        interLink().latency.value();
    EXPECT_NEAR(outcome.stepTime / expected, 1.0, 0.01);
}

TEST(AllToAllSimTest, ScalesWithParticipantsTowardFullPayload)
{
    const auto sim = makeSim();
    const double elements = 1e8, bits = 16.0;
    const double t2 =
        sim.simulateAllToAll(2, elements, Bits{bits}, interLink()).stepTime;
    const double t16 =
        sim.simulateAllToAll(16, elements, Bits{bits}, interLink())
            .stepTime;
    // (N-1)/N grows from 0.5 toward 1: t16 ~ 1.875 x t2.
    EXPECT_NEAR(t16 / t2, 1.875, 0.02);
}

TEST(MoeStepSimTest, DenseModelIsRejected)
{
    const auto sim = makeSim(); // tinyTest has no experts
    EXPECT_THROW(sim.simulateMoeStep(4, 8.0, interLink()),
                 UserError);
}

TEST(MoeStepSimTest, AllToAllCostEmergesOnExpertLayers)
{
    auto cfg = model::presets::tinyTest();
    cfg.moe.numExperts = 4;
    cfg.moe.moeLayerInterval = 2;
    TrainingSimulator moe_sim(
        cfg, hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6},
                        BitsPerSecond{2.4e12}});

    const auto single = moe_sim.simulateMoeStep(1, 8.0, interLink());
    const auto multi = moe_sim.simulateMoeStep(4, 8.0, interLink());
    // Same per-node work; the multi-node step adds the dispatch /
    // combine exchanges on the two expert layers.
    EXPECT_GT(multi.stepTime, single.stepTime);

    // The added time tracks the pairwise-exchange cost: N-1 rounds,
    // each delivering payload/N plus one link latency (rounds are
    // dependent, so latencies accumulate), across 2 exchanges x
    // 2 expert layers x 2 passes.
    model::OpCounter counter(cfg);
    const double payload_bits =
        counter.activationsMoe(1, 8.0) * 16.0;
    const double per_exchange =
        3.0 * (payload_bits / 4.0 / interLink().bandwidth.value() +
               interLink().latency.value());
    const double expected = 2.0 * 2.0 * 2.0 * per_exchange;
    EXPECT_NEAR((multi.stepTime - single.stepTime) / expected, 1.0,
                0.05);
}

TEST(MoeStepSimTest, FasterInterconnectShrinksTheGap)
{
    auto cfg = model::presets::tinyTest();
    cfg.moe.numExperts = 4;
    cfg.moe.moeLayerInterval = 2;
    TrainingSimulator moe_sim(
        cfg, hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6},
                        BitsPerSecond{2.4e12}});
    net::LinkConfig fast = interLink();
    fast.bandwidth *= 10.0;
    const double slow_time =
        moe_sim.simulateMoeStep(4, 8.0, interLink()).stepTime;
    const double fast_time =
        moe_sim.simulateMoeStep(4, 8.0, fast).stepTime;
    EXPECT_LT(fast_time, slow_time);
}

TEST(AllToAllSimTest, RejectsBadArguments)
{
    const auto sim = makeSim();
    EXPECT_THROW(sim.simulateAllToAll(0, 1e6, Bits{16.0}, interLink()),
                 UserError);
    EXPECT_THROW(sim.simulateAllToAll(4, -1.0, Bits{16.0}, interLink()),
                 UserError);
    EXPECT_THROW(sim.simulateAllToAll(4, 1e6, Bits{0.0}, interLink()),
                 UserError);
}

} // namespace
} // namespace sim
} // namespace amped

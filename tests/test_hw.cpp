/**
 * @file
 * Tests for the accelerator model: peak throughput of the Table IV
 * presets, precision scaling, and reciprocal throughputs.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/accelerator.hpp"
#include "hw/presets.hpp"

namespace amped {
namespace hw {
namespace {

TEST(AcceleratorTest, A100PeakMatchesTableIV)
{
    const auto a100 = presets::a100();
    // 1.41e9 * 108 * 4 * 512 = 311.9 TFLOP/s.
    EXPECT_NEAR(a100.peakMacFlops().value() / 1e12, 312.0, 1.0);
    EXPECT_DOUBLE_EQ(a100.offChipBandwidth.value(), 2.4e12);
}

TEST(AcceleratorTest, H100PeakMatchesTableIV)
{
    const auto h100 = presets::h100();
    // 1.8e9 * 132 * 4 * 1024 = 973 TFLOP/s.
    EXPECT_NEAR(h100.peakMacFlops().value() / 1e12, 973.0, 2.0);
    EXPECT_DOUBLE_EQ(h100.offChipBandwidth.value(), 3.6e12);
}

TEST(AcceleratorTest, V100PeakMatchesDatasheet)
{
    // V100 FP16 tensor peak ~ 125 TFLOP/s.
    EXPECT_NEAR(presets::v100Sxm3().peakMacFlops().value() / 1e12, 125.0, 2.0);
}

TEST(AcceleratorTest, P100PeakMatchesDatasheet)
{
    // P100 FP16 peak ~ 21.2 TFLOP/s.
    EXPECT_NEAR(presets::p100Pcie().peakMacFlops().value() / 1e12, 21.2, 1.0);
}

TEST(AcceleratorTest, NonlinPeakUsesDeviceTotalUnits)
{
    const auto a100 = presets::a100();
    // Eq. 4 has no N_cores factor: f * 192 * 4.
    EXPECT_DOUBLE_EQ(a100.peakNonlinOps().value(), 1.41e9 * 192.0 * 4.0);
}

TEST(PrecisionTest, MacFactorCeilsOperandOverUnit)
{
    Precisions p;
    p.parameterBits = Bits{16.0};
    p.activationBits = Bits{16.0};
    p.macUnitBits = Bits{16.0};
    EXPECT_DOUBLE_EQ(macPrecisionFactor(p), 1.0);
    p.activationBits = Bits{32.0}; // wider operand: 2 passes
    EXPECT_DOUBLE_EQ(macPrecisionFactor(p), 2.0);
    p.activationBits = Bits{8.0};
    p.parameterBits = Bits{8.0}; // narrower operand still occupies the unit
    EXPECT_DOUBLE_EQ(macPrecisionFactor(p), 1.0);
    p.parameterBits = Bits{24.0}; // max(24, 8)/16 -> ceil(1.5) = 2
    EXPECT_DOUBLE_EQ(macPrecisionFactor(p), 2.0);
}

TEST(PrecisionTest, NonlinFactorCeils)
{
    Precisions p;
    p.nonlinearBits = Bits{32.0};
    p.nonlinearUnitBits = Bits{16.0};
    EXPECT_DOUBLE_EQ(nonlinPrecisionFactor(p), 2.0);
    p.nonlinearBits = Bits{8.0};
    EXPECT_DOUBLE_EQ(nonlinPrecisionFactor(p), 1.0);
}

TEST(ThroughputTest, CMacIsReciprocalOfEffectivePeak)
{
    const auto a100 = presets::a100();
    const double eff = 0.5;
    EXPECT_DOUBLE_EQ(cMac(a100, eff).value(),
                     (1.0 / (a100.peakMacFlops() * eff)).value());
    EXPECT_DOUBLE_EQ(cNonlin(a100).value(),
                     (1.0 / a100.peakNonlinOps()).value());
}

TEST(ThroughputTest, CMacRejectsBadEfficiency)
{
    const auto a100 = presets::a100();
    EXPECT_THROW(cMac(a100, 0.0), UserError);
    EXPECT_THROW(cMac(a100, -0.1), UserError);
    EXPECT_THROW(cMac(a100, 1.5), UserError);
}

TEST(AcceleratorTest, ValidationCatchesBadFields)
{
    auto check = [](auto mutate) {
        auto bad = presets::tinyTest();
        mutate(bad);
        EXPECT_THROW(bad.validate(), UserError);
    };
    check([](AcceleratorConfig &c) { c.frequency = Hertz{0.0}; });
    check([](AcceleratorConfig &c) { c.numCores = 0; });
    check([](AcceleratorConfig &c) { c.numMacUnits = -1; });
    check([](AcceleratorConfig &c) { c.macUnitWidth = 0; });
    check([](AcceleratorConfig &c) { c.numNonlinUnits = 0; });
    check([](AcceleratorConfig &c) { c.nonlinUnitWidth = 0; });
    check([](AcceleratorConfig &c) { c.memoryBytes = 0.0; });
    check([](AcceleratorConfig &c) {
        c.offChipBandwidth = BitsPerSecond{0.0};
    });
    check([](AcceleratorConfig &c) {
        c.precisions.activationBits = Bits{0.0};
    });
}

/** Every preset validates; peak throughputs are positive. */
class AccelPresetProperty
    : public ::testing::TestWithParam<AcceleratorConfig>
{};

TEST_P(AccelPresetProperty, ValidAndPositive)
{
    const auto &cfg = GetParam();
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_GT(cfg.peakMacFlops(), FlopsPerSecond{0.0});
    EXPECT_GT(cfg.peakNonlinOps(), FlopsPerSecond{0.0});
    // MAC pipelines dominate nonlinear throughput on every device.
    EXPECT_GT(cfg.peakMacFlops(), cfg.peakNonlinOps());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, AccelPresetProperty,
    ::testing::Values(presets::tinyTest(), presets::v100Sxm3(),
                      presets::p100Pcie(), presets::a100(),
                      presets::h100()),
    [](const ::testing::TestParamInfo<AcceleratorConfig> &info) {
        std::string name = info.param.name;
        for (char &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace
} // namespace hw
} // namespace amped

/**
 * @file
 * Tests for parallelism mappings: validation against systems,
 * microbatch derivation, and exhaustive enumeration.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "mapping/parallelism.hpp"

namespace amped {
namespace mapping {
namespace {

net::SystemConfig
system128x8()
{
    auto sys = net::presets::a100Cluster1024();
    return sys;
}

TEST(ParallelismTest, DegreeProducts)
{
    const auto cfg = makeMapping(8, 1, 1, 1, 2, 64);
    EXPECT_EQ(cfg.tp(), 8);
    EXPECT_EQ(cfg.pp(), 2);
    EXPECT_EQ(cfg.dp(), 64);
    EXPECT_EQ(cfg.totalWorkers(), 1024);
}

TEST(ParallelismTest, MakeMappingRejectsNonPositive)
{
    EXPECT_THROW(makeMapping(0, 1, 1, 1, 1, 1), UserError);
    EXPECT_THROW(makeMapping(1, 1, 1, 1, -2, 1), UserError);
}

TEST(ParallelismTest, ValidateForMatchingSystem)
{
    const auto sys = system128x8();
    EXPECT_NO_THROW(makeMapping(8, 1, 1, 1, 2, 64).validateFor(sys));
    EXPECT_NO_THROW(makeMapping(1, 1, 8, 1, 128, 1).validateFor(sys));
    // Intra product 4 != 8.
    EXPECT_THROW(makeMapping(4, 1, 1, 1, 2, 64).validateFor(sys),
                 UserError);
    // Inter product 64 != 128.
    EXPECT_THROW(makeMapping(8, 1, 1, 1, 1, 64).validateFor(sys),
                 UserError);
}

TEST(ParallelismTest, ToStringShowsBothTiers)
{
    const auto cfg = makeMapping(8, 1, 1, 1, 2, 64);
    EXPECT_EQ(cfg.toString(), "TP8 | PP2*DP64 (intra|inter)");
    const auto trivial = makeMapping(1, 1, 1, 1, 1, 1);
    EXPECT_EQ(trivial.toString(), "1 | 1 (intra|inter)");
}

TEST(MicrobatchingTest, DefaultRuleMatchesPaper)
{
    Microbatching mb;
    const auto cfg = makeMapping(8, 1, 1, 1, 2, 64);
    // ub = B / (DP * PP) = 16384 / 128.
    EXPECT_DOUBLE_EQ(mb.microbatchSize(16384.0, cfg), 128.0);
    // N_ub = N_PP by default.
    EXPECT_DOUBLE_EQ(mb.numMicrobatches(16384.0, cfg), 2.0);
}

TEST(MicrobatchingTest, SizeOverrideDerivesCount)
{
    Microbatching mb;
    mb.microbatchSizeOverride = 4.0;
    const auto cfg = makeMapping(1, 4, 2, 1, 1, 1); // PP=4, DP=2
    EXPECT_DOUBLE_EQ(mb.microbatchSize(64.0, cfg), 4.0);
    // per-replica batch 32 / ub 4 = 8 microbatches.
    EXPECT_DOUBLE_EQ(mb.numMicrobatches(64.0, cfg), 8.0);
}

TEST(MicrobatchingTest, CountOverrideDerivesSize)
{
    Microbatching mb;
    mb.numMicrobatchesOverride = 32.0; // GPipe M = 32
    const auto cfg = makeMapping(1, 8, 1, 1, 1, 1);
    EXPECT_DOUBLE_EQ(mb.numMicrobatches(128.0, cfg), 32.0);
    EXPECT_DOUBLE_EQ(mb.microbatchSize(128.0, cfg), 4.0);
}

TEST(MicrobatchingTest, RejectsSubUnitMicrobatch)
{
    Microbatching mb;
    const auto cfg = makeMapping(1, 4, 4, 1, 1, 1); // DP*PP = 16
    EXPECT_THROW(mb.microbatchSize(8.0, cfg), UserError);
    EXPECT_THROW(mb.microbatchSize(0.0, cfg), UserError);
}

TEST(FactorizationTest, ThreeWayCountsAndProducts)
{
    // 8 = 2^3: ordered triples of product 8 -> C(3+2,2) = 10.
    const auto triples = threeWayFactorizations(8);
    EXPECT_EQ(triples.size(), 10u);
    for (const auto &t : triples)
        EXPECT_EQ(t[0] * t[1] * t[2], 8);
    // All distinct.
    std::set<std::array<std::int64_t, 3>> unique(triples.begin(),
                                                 triples.end());
    EXPECT_EQ(unique.size(), triples.size());
}

TEST(FactorizationTest, TrivialAndErrors)
{
    const auto one = threeWayFactorizations(1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], (std::array<std::int64_t, 3>{1, 1, 1}));
    EXPECT_THROW(threeWayFactorizations(0), UserError);
}

TEST(MappingSpaceTest, EnumerationIsExhaustiveAndValid)
{
    const auto sys = system128x8();
    MappingSpace space(sys);
    const auto mappings = space.enumerate();
    // 8 = 2^3 -> 10 intra splits; 128 = 2^7 -> C(9,2) = 36 inter
    // splits; 360 total.
    EXPECT_EQ(mappings.size(), 360u);
    for (const auto &m : mappings)
        EXPECT_NO_THROW(m.validateFor(sys));
}

TEST(MappingSpaceTest, PipelineCapFilters)
{
    const auto sys = system128x8();
    MappingSpace space(sys);
    const auto capped = space.enumerate(/*max_pp=*/8);
    EXPECT_LT(capped.size(), space.enumerate().size());
    for (const auto &m : capped)
        EXPECT_LE(m.pp(), 8);
}

TEST(MappingSpaceTest, CoversPureStrategies)
{
    const auto sys = system128x8();
    MappingSpace space(sys);
    const auto mappings = space.enumerate();
    bool pure_dp = false, pure_tp = false, tp_intra_dp_inter = false;
    for (const auto &m : mappings) {
        if (m.dp() == 1024)
            pure_dp = true;
        if (m.tp() == 1024)
            pure_tp = true;
        if (m.tpIntra == 8 && m.dpInter == 128 && m.pp() == 1 &&
            m.tpInter == 1)
            tp_intra_dp_inter = true;
    }
    EXPECT_TRUE(pure_dp);
    EXPECT_TRUE(pure_tp);
    EXPECT_TRUE(tp_intra_dp_inter);
}

/** Property: every enumerated mapping uses every accelerator. */
class MappingSpaceProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(MappingSpaceProperty, ProductsMatchSystem)
{
    const auto [nodes, per_node] = GetParam();
    net::SystemConfig sys = net::presets::tinyTest();
    sys.numNodes = nodes;
    sys.acceleratorsPerNode = per_node;
    MappingSpace space(sys);
    for (const auto &m : space.enumerate()) {
        EXPECT_EQ(m.tpIntra * m.ppIntra * m.dpIntra, per_node);
        EXPECT_EQ(m.tpInter * m.ppInter * m.dpInter, nodes);
        EXPECT_EQ(m.totalWorkers(), sys.totalAccelerators());
    }
}

INSTANTIATE_TEST_SUITE_P(SystemShapes, MappingSpaceProperty,
                         ::testing::Values(std::pair{1, 1},
                                           std::pair{2, 2},
                                           std::pair{4, 8},
                                           std::pair{12, 6},
                                           std::pair{16, 16}));

} // namespace
} // namespace mapping
} // namespace amped

// amped_lint fixture: every parse call below reads the process
// locale's radix character, so each must be flagged by the
// no-locale-parse rule.  Compiled never, scanned always (the
// WILL_FAIL ctest amped_lint_catches_no_locale_parse runs the rule
// over this file and asserts a nonzero exit).

#include <cstdio>
#include <cstdlib>

double
parseLatencySeconds(const char *text)
{
    return std::strtod(text, nullptr); // flagged: strtod
}

double
parseBandwidth(const char *text)
{
    return atof(text); // flagged: atof
}

float
parseRatio(const char *text)
{
    char *end = nullptr;
    return std::strtof(text, &end); // flagged: strtof
}

double
parseScanf(const char *text)
{
    double value = 0.0;
    std::sscanf(text, "%lf", &value); // flagged: sscanf
    return value;
}

/**
 * @file
 * Fixture for the lint_units self-test: every declaration below is a
 * violation the checker must flag.  Never include this header.
 */

#ifndef AMPED_TESTS_LINT_FIXTURES_BAD_HEADER_HPP
#define AMPED_TESTS_LINT_FIXTURES_BAD_HEADER_HPP

#include <vector>

namespace amped_lint_fixture {

// A raw-double bandwidth parameter: exactly the bug class the
// quantity layer exists to prevent.
double transferTime(double linkBandwidthBitsPerSec,
                    double payloadBits);

struct BadConfig
{
    double stepSeconds = 0.0;       // should be Seconds
    double clockHz = 0.0;           // should be Hertz
    double budgetJoules = 0.0;      // should be Joules
    double peak_flops = 0.0;        // snake_case is caught too
};

// Raw-double *columns* defeat the quantity layer wholesale: a
// structure-of-arrays batch kernel that leaked its column type
// into a public header would look exactly like this.
std::vector<double> stageSeconds(int stages);

struct BadColumns
{
    std::vector<double> linkBandwidthsBitsPerSec; // per-link column
    std::vector<double> phase_seconds;            // snake_case too
};

void accumulate(const std::vector<double> &sampleJoules);

// Not violations: the names carry no dimension suffix, and
// commented-out code such as `double oldLatencySeconds;` inside
// this comment must be ignored.  Dimensionless columns (batch
// sizes, ratios) stay legal: `std::vector<double> batchSizes;`.
double ratio(double numerator, double denominator);
std::vector<double> batchSizes(int count);

} // namespace amped_lint_fixture

#endif // AMPED_TESTS_LINT_FIXTURES_BAD_HEADER_HPP

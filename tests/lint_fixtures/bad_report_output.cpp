// amped_lint fixture: a "report" translation unit (filename marks it
// as an output TU) iterating unordered containers straight into an
// output stream — hash order is implementation-defined, so the
// emitted bytes are not stable.  Each range-for below must be
// flagged by the no-unordered-iteration-in-output rule.  Compiled
// never, scanned always (the WILL_FAIL ctest
// amped_lint_catches_unordered_iteration runs the rule over this
// file and asserts a nonzero exit).

#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>

void
dumpMetrics(std::ostream &os,
            const std::unordered_map<std::string, double> &metrics)
{
    for (const auto &[key, value] : metrics) // flagged
        os << key << '\t' << value << '\n';
}

void
dumpTags(std::ostream &os,
         const std::unordered_set<std::string> &tags)
{
    for (const auto &tag : tags) // flagged
        os << tag << '\n';
}

// amped_lint fixture: every call below injects ambient process state
// (PRNG seeded from nothing, wall clock, hardware entropy, the
// environment), so each must be flagged by the no-nondeterminism
// rule.  Compiled never, scanned always (the WILL_FAIL ctest
// amped_lint_catches_no_nondeterminism runs the rule over this file
// and asserts a nonzero exit).

#include <cstdlib>
#include <ctime>
#include <random>

int
ambientJitter()
{
    std::srand(42);    // flagged: srand
    return std::rand(); // flagged: rand
}

long
wallClockSeed()
{
    return std::time(nullptr); // flagged: time
}

unsigned
hardwareEntropy()
{
    std::random_device device; // flagged: random_device
    return device();
}

const char *
undocumentedSeam()
{
    return std::getenv("AMPED_SECRET_KNOB"); // flagged: getenv
}

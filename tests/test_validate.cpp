/**
 * @file
 * Tests for the validation helpers and reference data.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "validate/calibrations.hpp"
#include "validate/reference_data.hpp"
#include "validate/validation.hpp"

namespace amped {
namespace validate {
namespace {

TEST(ValidationRowTest, SignedErrorPercent)
{
    EXPECT_DOUBLE_EQ(makeRow("a", 110.0, 100.0).errorPercent(), 10.0);
    EXPECT_DOUBLE_EQ(makeRow("b", 90.0, 100.0).errorPercent(), -10.0);
    EXPECT_THROW(makeRow("c", 1.0, 0.0).errorPercent(), UserError);
}

TEST(ValidationRowTest, MaxAbsError)
{
    std::vector<ValidationRow> rows = {
        makeRow("a", 105.0, 100.0),
        makeRow("b", 88.0, 100.0),
        makeRow("c", 100.0, 100.0),
    };
    EXPECT_DOUBLE_EQ(maxAbsErrorPercent(rows), 12.0);
    EXPECT_DOUBLE_EQ(maxAbsErrorPercent({}), 0.0);
}

TEST(ValidationTableTest, ContainsRowsAndFooter)
{
    std::vector<ValidationRow> rows = {makeRow("145B", 147.0, 148.0)};
    const std::string table = validationTable(rows, "TFLOP/s/GPU");
    EXPECT_NE(table.find("145B"), std::string::npos);
    EXPECT_NE(table.find("TFLOP/s/GPU (model)"), std::string::npos);
    EXPECT_NE(table.find("max |error|: 0.68 %"), std::string::npos);
}

TEST(ReferenceDataTest, Table2MatchesPaper)
{
    const auto rows = table2Rows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].modelName, "145B");
    EXPECT_EQ(rows[0].tp, 8);
    EXPECT_EQ(rows[0].pp, 8);
    EXPECT_EQ(rows[0].dp, 24);
    EXPECT_DOUBLE_EQ(rows[0].paperAmpedTflops, 147.0);
    EXPECT_DOUBLE_EQ(rows[0].publishedTflops, 148.0);
    EXPECT_EQ(rows[3].modelName, "1T");
    EXPECT_EQ(rows[3].pp, 64);
    EXPECT_DOUBLE_EQ(rows[3].paperErrorPercent, 11.47);
    // The paper's own error column is consistent with its two value
    // columns.
    for (const auto &row : rows) {
        const double err = std::abs(row.paperAmpedTflops -
                                    row.publishedTflops) /
                           row.publishedTflops * 100.0;
        EXPECT_NEAR(err, row.paperErrorPercent, 0.35)
            << row.modelName;
    }
}

TEST(ReferenceDataTest, Table3MatchesPaper)
{
    const auto rows = table3Rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].gpus, 2);
    EXPECT_DOUBLE_EQ(rows[0].publishedSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(rows[2].publishedSpeedup, 3.3);
    EXPECT_DOUBLE_EQ(rows[2].paperPredicted, 3.19);
}

TEST(ReferenceDataTest, Fig2cIsMonotoneSaturating)
{
    const auto points = fig2cPoints();
    ASSERT_GE(points.size(), 4u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].microbatch, points[i - 1].microbatch);
        EXPECT_GE(points[i].publishedTflops,
                  points[i - 1].publishedTflops);
        // Error shrinks as the microbatch grows (paper: 11 % -> 2 %).
        EXPECT_LE(points[i].paperErrorPercent,
                  points[i - 1].paperErrorPercent);
    }
    EXPECT_NEAR(points.front().paperErrorPercent, 11.0, 0.5);
    EXPECT_NEAR(points.back().paperErrorPercent, 2.0, 0.5);
}

TEST(CalibrationsTest, CurvesMatchDocumentedAnchors)
{
    // Table II anchor: eff(1) ~ 0.62 (Megatron matmul utilization at
    // microbatch 1 with 2048-token sequences).
    EXPECT_NEAR(calibrations::megatronTable2()(1.0), 0.62, 0.01);
    // Case Study I anchors: floor 25 %, ~31 % at ub = 16.
    const auto cs1 = calibrations::caseStudy1();
    EXPECT_DOUBLE_EQ(cs1(1.0), 0.25);
    EXPECT_NEAR(cs1(16.0), 0.31, 0.02);
    EXPECT_GT(cs1(128.0), 0.68);
    // Fig. 2c anchor: still climbing at 12, high at 60.
    const auto f2c = calibrations::fig2cSweep();
    EXPECT_LT(f2c(12.0), f2c(60.0));
    EXPECT_GT(f2c(60.0), 0.85);
}

TEST(CalibrationsTest, ValidationOptionsUseNaivePipelining)
{
    const auto options = calibrations::validationOptions();
    EXPECT_DOUBLE_EQ(options.bubbleOverlapRatio, 1.0);
    EXPECT_DOUBLE_EQ(options.backwardComputeMultiplier, 3.0);
    EXPECT_DOUBLE_EQ(options.zeroDpOverhead, 0.0);
}

} // namespace
} // namespace validate
} // namespace amped

/**
 * @file
 * Tests for the golden-file library: canonical serialization (round
 * trips, NaN/inf tokens, shortest representation), parsing with
 * line-numbered diagnostics, and the tolerance-aware diff engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "testing/diff.hpp"
#include "testing/golden.hpp"

namespace amped {
namespace testing {
namespace {

TEST(FormatCanonical, RoundTripsExactly)
{
    for (double value :
         {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 1e300, 5e-324,
          60.934108107960846, 3.6e2}) {
        const std::string text = formatCanonical(value);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
    }
}

TEST(FormatCanonical, PrefersShortForms)
{
    EXPECT_EQ(formatCanonical(0.0), "0");
    EXPECT_EQ(formatCanonical(1.0), "1");
    EXPECT_EQ(formatCanonical(0.5), "0.5");
}

TEST(FormatCanonical, SpecialValues)
{
    EXPECT_EQ(formatCanonical(std::nan("")), "nan");
    EXPECT_EQ(formatCanonical(
                  std::numeric_limits<double>::infinity()),
              "inf");
    EXPECT_EQ(formatCanonical(
                  -std::numeric_limits<double>::infinity()),
              "-inf");
}

TEST(GoldenRecord, SerializeParseRoundTrip)
{
    GoldenRecord record;
    record.add("fig/a", 1.0 / 3.0);
    record.add("fig/b", -2.5e-17);
    record.add("fig/infeasible", std::nan(""));
    record.add("fig/inf", std::numeric_limits<double>::infinity());

    const auto reparsed = GoldenRecord::fromString(record.toString());
    ASSERT_EQ(reparsed.size(), record.size());
    for (std::size_t i = 0; i < record.size(); ++i) {
        EXPECT_EQ(reparsed.entries()[i].key, record.entries()[i].key);
        const double a = record.entries()[i].value;
        const double b = reparsed.entries()[i].value;
        if (std::isnan(a))
            EXPECT_TRUE(std::isnan(b));
        else
            EXPECT_EQ(a, b);
    }
}

TEST(GoldenRecord, ParseSkipsCommentsAndBlankLines)
{
    const auto record = GoldenRecord::fromString(
        "# amped-golden v1\n"
        "\n"
        "# a comment\n"
        "key/one\t1.5\n");
    ASSERT_EQ(record.size(), 1u);
    EXPECT_EQ(record.entries()[0].key, "key/one");
    EXPECT_EQ(record.entries()[0].value, 1.5);
}

TEST(GoldenRecord, FindLocatesKeys)
{
    GoldenRecord record;
    record.add("x", 2.0);
    ASSERT_NE(record.find("x"), nullptr);
    EXPECT_EQ(*record.find("x"), 2.0);
    EXPECT_EQ(record.find("y"), nullptr);
}

TEST(GoldenRecord, RejectsBadKeys)
{
    GoldenRecord record;
    record.add("ok", 1.0);
    EXPECT_THROW(record.add("ok", 2.0), UserError);   // duplicate
    EXPECT_THROW(record.add("", 1.0), UserError);     // empty
    EXPECT_THROW(record.add("a\tb", 1.0), UserError); // tab
    EXPECT_THROW(record.add("a\nb", 1.0), UserError); // newline
}

TEST(GoldenRecord, ParseDiagnosticsNameSourceAndLine)
{
    try {
        GoldenRecord::fromString("key-without-value\n");
        FAIL() << "expected UserError";
    } catch (const UserError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("<string>"), std::string::npos) << what;
        EXPECT_NE(what.find("1"), std::string::npos) << what;
    }
    std::istringstream is("a\t1\nb\tnot-a-number\n");
    try {
        GoldenRecord::parse(is, "some.golden");
        FAIL() << "expected UserError";
    } catch (const UserError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("some.golden"), std::string::npos) << what;
        EXPECT_NE(what.find("2"), std::string::npos) << what;
    }
}

TEST(GoldenRecord, FromFileReportsMissingPath)
{
    EXPECT_THROW(GoldenRecord::fromFile("/nonexistent/nope.golden"),
                 UserError);
}

GoldenRecord
makeRecord(std::initializer_list<std::pair<const char *, double>> kv)
{
    GoldenRecord record;
    for (const auto &[key, value] : kv)
        record.add(key, value);
    return record;
}

TEST(DiffRecords, CleanWithinTolerance)
{
    const auto expected = makeRecord({{"a", 1.0}, {"b", 100.0}});
    const auto actual =
        makeRecord({{"a", 1.0 + 1e-10}, {"b", 100.0 + 1e-5}});
    const auto report = diffRecords(expected, actual);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.compared, 2u);
}

TEST(DiffRecords, FlagsValueMismatch)
{
    const auto expected = makeRecord({{"a", 1.0}});
    const auto actual = makeRecord({{"a", 1.01}});
    const auto report = diffRecords(expected, actual);
    ASSERT_EQ(report.entries.size(), 1u);
    EXPECT_EQ(report.entries[0].kind, DiffKind::valueMismatch);
    EXPECT_EQ(report.entries[0].key, "a");
    // A loose tolerance absorbs it.
    EXPECT_TRUE(
        diffRecords(expected, actual, {1e-9, 0.05}).clean());
}

TEST(DiffRecords, FlagsMissingAndExtraKeys)
{
    const auto expected = makeRecord({{"gone", 1.0}, {"kept", 2.0}});
    const auto actual = makeRecord({{"kept", 2.0}, {"new", 3.0}});
    const auto report = diffRecords(expected, actual);
    ASSERT_EQ(report.entries.size(), 2u);
    EXPECT_EQ(report.entries[0].kind, DiffKind::missingKey);
    EXPECT_EQ(report.entries[0].key, "gone");
    EXPECT_EQ(report.entries[1].kind, DiffKind::extraKey);
    EXPECT_EQ(report.entries[1].key, "new");
    EXPECT_EQ(report.compared, 1u);
}

TEST(DiffRecords, NanPinsInfeasiblePoints)
{
    const auto nan_expected = makeRecord({{"p", std::nan("")}});
    EXPECT_TRUE(
        diffRecords(nan_expected, makeRecord({{"p", std::nan("")}}))
            .clean());
    // Feasibility changes (NaN <-> number) are mismatches.
    EXPECT_FALSE(
        diffRecords(nan_expected, makeRecord({{"p", 1.0}})).clean());
    EXPECT_FALSE(
        diffRecords(makeRecord({{"p", 1.0}}), nan_expected).clean());
}

TEST(DiffRecords, RenderMentionsEverything)
{
    const auto expected =
        makeRecord({{"bad", 1.0}, {"gone", 2.0}});
    const auto actual = makeRecord({{"bad", 2.0}, {"new", 3.0}});
    const DiffOptions options;
    const auto report = diffRecords(expected, actual, options);
    const auto text = report.render("label", options);
    EXPECT_NE(text.find("label"), std::string::npos);
    EXPECT_NE(text.find("MISMATCH bad"), std::string::npos);
    EXPECT_NE(text.find("MISSING"), std::string::npos);
    EXPECT_NE(text.find("EXTRA"), std::string::npos);

    const auto clean_text =
        diffRecords(expected, expected, options)
            .render("label", options);
    EXPECT_NE(clean_text.find("OK"), std::string::npos);
}

} // namespace
} // namespace testing
} // namespace amped

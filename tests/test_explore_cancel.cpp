/**
 * @file
 * End-to-end cancellation tests for the long-running evaluation
 * surfaces: Explorer sweeps (both engines), the branch-and-bound
 * optimizer, the resilience Monte-Carlo, and the simulator schedule
 * entry checkpoints.  The load-bearing property throughout is the
 * determinism contract of common/cancel.hpp: a stopped run's partial
 * result is bit-identical to the same prefix of a full run at every
 * thread count, and a deadline stop is observed within one block
 * checkpoint of expiry (asserted through the cancellation-latency
 * histogram).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/thread_pool.hpp"
#include "core/resilience.hpp"
#include "explore/batch.hpp"
#include "explore/explorer.hpp"
#include "explore/optimizer.hpp"
#include "hw/presets.hpp"
#include "mapping/parallelism.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "obs/metrics.hpp"
#include "sim/training_sim.hpp"

namespace amped {
namespace {

net::SystemConfig
cancelSystem()
{
    net::SystemConfig sys;
    sys.name = "cancel-4x4";
    sys.numNodes = 4;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return sys;
}

core::AmpedModel
cancelModel()
{
    return core::AmpedModel(model::presets::tinyTest(),
                            hw::presets::tinyTest(),
                            hw::MicrobatchEfficiency(0.8, 4.0),
                            cancelSystem());
}

core::TrainingJob
cancelJob()
{
    core::TrainingJob job;
    job.batchSize = 256.0;
    job.numBatchesOverride = 10.0;
    return job;
}

/** The two results agree bit-for-bit on the first @p n entries. */
void
expectEntryPrefixEqual(const std::vector<explore::SweepEntry> &full,
                       const std::vector<explore::SweepEntry> &part,
                       std::size_t n)
{
    ASSERT_LE(n, full.size());
    ASSERT_EQ(part.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(part[i].mapping.toString(),
                  full[i].mapping.toString())
            << "entry " << i;
        ASSERT_EQ(part[i].batchSize, full[i].batchSize)
            << "entry " << i;
        // Bitwise: the prefix contract promises the *same doubles*,
        // not merely close ones.
        ASSERT_EQ(part[i].result.timePerBatch,
                  full[i].result.timePerBatch)
            << "entry " << i;
        ASSERT_EQ(part[i].result.totalTime, full[i].result.totalTime)
            << "entry " << i;
    }
}

/**
 * A sweep tripped at the second block checkpoint stops with exactly
 * one SoA block visited, and its entries/counters are bit-identical
 * to the same prefix of the full run — on both engines, at thread
 * counts 1, 2, and 8.
 */
TEST(ExplorerCancelTest, TrippedSweepIsDeterministicPrefixOfFullRun)
{
    const auto mappings =
        mapping::MappingSpace(cancelSystem()).enumerate(0);
    ASSERT_GT(mappings.size(), 0u);
    // Enough batch sizes that the grid spans more than one SoA
    // block, so a trip at the second checkpoint leaves work undone.
    std::vector<double> batches;
    while (mappings.size() * batches.size() <=
           explore::kSweepBlockPoints)
        batches.push_back(256.0 + 8.0 * batches.size());
    const std::size_t total = mappings.size() * batches.size();

    explore::Explorer full_explorer(cancelModel());
    full_explorer.setThreads(4);
    full_explorer.setBatchMode(true);
    const explore::SweepResult full =
        full_explorer.sweep(mappings, batches, cancelJob());
    ASSERT_EQ(full.status, RunStatus::Completed);
    ASSERT_EQ(full.visitedPoints, total);
    ASSERT_EQ(full.cancelledUnvisited, 0u);

    for (const bool batched : {true, false}) {
        for (const unsigned threads : {1u, 2u, 8u}) {
            SCOPED_TRACE(std::string(batched ? "batched" : "scalar") +
                         " engine, threads=" +
                         std::to_string(threads));
            const CancelToken token = CancelToken::make();
            token.tripAfterCheckpoints(2);

            explore::Explorer explorer(cancelModel());
            explorer.setThreads(threads);
            explorer.setBatchMode(batched);
            explorer.setCancelToken(token);
            const explore::SweepResult part =
                explorer.sweep(mappings, batches, cancelJob());

            EXPECT_EQ(part.status, RunStatus::Cancelled);
            // The first block checkpoint passed, the second tripped:
            // exactly one block of points was visited.
            EXPECT_EQ(part.visitedPoints, explore::kSweepBlockPoints);
            EXPECT_EQ(part.visitedPoints + part.cancelledUnvisited,
                      total);
            // Every visited point landed in exactly one bucket.
            EXPECT_EQ(part.entries.size() + part.skipped +
                          part.memorySkipped,
                      part.visitedPoints);
            EXPECT_EQ(part.failed, 0u);
            expectEntryPrefixEqual(full.entries, part.entries,
                                   part.entries.size());
        }
    }
}

/**
 * A deadline that expires before the sweep starts is caught by the
 * first block checkpoint: zero points visited, and the cancellation
 * latency histogram records exactly one observation — the stop is
 * observed within one block checkpoint of expiry, with the latency
 * equal to the clock delta under the injected ManualClock.
 */
TEST(ExplorerCancelTest, DeadlineStopRecordsOneLatencyObservation)
{
    const auto mappings =
        mapping::MappingSpace(cancelSystem()).enumerate(0);
    const std::vector<double> batches{256.0, 512.0, 1024.0};

    for (const bool batched : {true, false}) {
        SCOPED_TRACE(batched ? "batched" : "scalar");
        ManualClock clock(0.0);
        obs::MetricsRegistry registry;
        const CancelToken token =
            CancelToken::make(Deadline::after(1.0, clock), &registry);
        clock.set(1.25); // Expired 0.25 s ago by the injected clock.

        explore::Explorer explorer(cancelModel());
        explorer.setThreads(2);
        explorer.setBatchMode(batched);
        explorer.setCancelToken(token);
        const explore::SweepResult part =
            explorer.sweep(mappings, batches, cancelJob());

        EXPECT_EQ(part.status, RunStatus::DeadlineExceeded);
        EXPECT_EQ(part.visitedPoints, 0u);
        EXPECT_EQ(part.cancelledUnvisited,
                  mappings.size() * batches.size());
        EXPECT_TRUE(part.entries.empty());

        // Exactly one checkpoint observed the stop, 0.25 s after
        // expiry — the histogram is the proof that the run stopped
        // within one block checkpoint of the deadline.
        auto &latency = registry.histogram(
            "common.cancel.latency_seconds", /*timing=*/true);
        EXPECT_EQ(latency.count(), 1u);
        EXPECT_DOUBLE_EQ(latency.sum(), 0.25);
        EXPECT_EQ(registry.counter("common.cancel.observed").value(),
                  1u);
    }
}

/**
 * The optimizer's wave checkpoints stop the search at a
 * thread-count-independent boundary: the best-so-far ranking and
 * every counter agree bit-for-bit at thread counts 1, 2, and 8, and
 * the disposition buckets still partition the grid.
 */
TEST(OptimizerCancelTest, BestSoFarIsDeterministicAcrossThreadCounts)
{
    const auto mappings =
        mapping::MappingSpace(cancelSystem()).enumerate(0);
    explore::OptimizerRequest request;
    request.jobTemplate = cancelJob();
    // Force a second wave despite the (deliberately tight) bound:
    // each batch size appears three times, so the first 16-point
    // wave cannot hold every copy of its own winners, and the
    // leftover copies — whose bound equals an already-ranked exact
    // time — survive the strictly-greater prune into wave two.
    request.topK = 16;
    for (std::size_t i = 0; i < 40; ++i)
        for (int copy = 0; copy < 3; ++copy)
            request.batchSizes.push_back(256.0 + 16.0 * i);

    std::vector<explore::OptimizerResult> runs;
    for (const unsigned threads : {1u, 2u, 8u}) {
        const CancelToken token = CancelToken::make();
        // Wave one flushes; wave two's checkpoint trips, leaving a
        // non-empty best-so-far ranking and an unvisited remainder.
        token.tripAfterCheckpoints(2);
        explore::Optimizer optimizer(cancelModel());
        optimizer.setThreads(threads);
        optimizer.setCancelToken(token);
        runs.push_back(optimizer.optimizeOver(mappings, request));
    }

    for (std::size_t r = 0; r < runs.size(); ++r) {
        SCOPED_TRACE("run " + std::to_string(r));
        const auto &run = runs[r];
        EXPECT_EQ(run.status, RunStatus::Cancelled);
        EXPECT_FALSE(run.heterogeneous.has_value());
        const auto &c = run.counters;
        EXPECT_GT(c.evaluated, 0u);
        EXPECT_GT(c.cancelledUnvisited, 0u);
        EXPECT_EQ(c.points, c.prunedByMemory + c.prunedByBound +
                                c.skippedInfeasible + c.evaluated +
                                c.cancelledUnvisited);
        EXPECT_EQ(c.evaluated, c.feasible + c.infeasible +
                                   c.overMemory + c.failed);
    }
    for (std::size_t r = 1; r < runs.size(); ++r) {
        SCOPED_TRACE("run " + std::to_string(r) + " vs run 0");
        const auto &a = runs[0];
        const auto &b = runs[r];
        const auto &ca = a.counters;
        const auto &cb = b.counters;
        EXPECT_EQ(ca.evaluated, cb.evaluated);
        EXPECT_EQ(ca.prunedByBound, cb.prunedByBound);
        EXPECT_EQ(ca.prunedByMemory, cb.prunedByMemory);
        EXPECT_EQ(ca.skippedInfeasible, cb.skippedInfeasible);
        EXPECT_EQ(ca.cancelledUnvisited, cb.cancelledUnvisited);
        EXPECT_EQ(ca.feasible, cb.feasible);
        expectEntryPrefixEqual(a.topK, b.topK, a.topK.size());
    }
}

/**
 * sweepAll never memoizes a stopped result: a cancelled call under a
 * key must not poison the cache, and the next identical call runs
 * the full grid.
 */
TEST(ExplorerCancelTest, SweepAllDoesNotCacheStoppedResults)
{
    // A batch size no other test uses, so this key starts cold.
    const std::vector<double> batches{193.0};

    explore::Explorer explorer(cancelModel());
    explorer.setThreads(2);

    const CancelToken token = CancelToken::make();
    token.tripAfterCheckpoints(1); // Stop before any block.
    explorer.setCancelToken(token);
    const explore::SweepResult stopped =
        explorer.sweepAll(batches, cancelJob());
    EXPECT_EQ(stopped.status, RunStatus::Cancelled);
    EXPECT_EQ(stopped.visitedPoints, 0u);

    explorer.setCancelToken(CancelToken());
    const explore::SweepResult clean =
        explorer.sweepAll(batches, cancelJob());
    EXPECT_EQ(clean.status, RunStatus::Completed);
    EXPECT_EQ(clean.visitedPoints,
              clean.entries.size() + clean.skipped +
                  clean.memorySkipped);
    EXPECT_GT(clean.visitedPoints, 0u);
    EXPECT_EQ(clean.cancelledUnvisited, 0u);

    // And the Completed result (not the stopped one) is what the
    // cache now serves.
    const explore::SweepResult cached =
        explorer.sweepAll(batches, cancelJob());
    EXPECT_EQ(cached.status, RunStatus::Completed);
    EXPECT_EQ(cached.visitedPoints, clean.visitedPoints);
    expectEntryPrefixEqual(clean.entries, cached.entries,
                           clean.entries.size());
}

/**
 * A tripped Monte-Carlo stops at a replication-block boundary, and
 * the prefix statistics are bitwise equal to a full run over exactly
 * that many replications — independent of the worker cap, because
 * replication r always draws from Rng(seed + r).
 */
TEST(ResilienceCancelTest, MonteCarloPrefixMatchesFullRunBitwise)
{
    core::ResilienceConfig config;
    config.mtbfSeconds = Seconds{1000.0};
    config.checkpointWriteSeconds = Seconds{5.0};
    config.restartSeconds = Seconds{10.0};
    config.checkpointIntervalSeconds = Seconds{50.0};
    const Seconds solve{2000.0};
    constexpr std::uint64_t kSeed = 42;

    ThreadPool pool(4);
    const core::MonteCarloStats full = core::monteCarloTimeToTrain(
        solve, config, /*replications=*/4096, kSeed, pool);
    ASSERT_EQ(full.status, RunStatus::Completed);
    ASSERT_EQ(full.replications, 4096u);

    for (const std::size_t workers : {std::size_t{1},
                                      std::size_t{8}}) {
        SCOPED_TRACE("max_workers=" + std::to_string(workers));
        const CancelToken token = CancelToken::make();
        // First block runs, the second block's checkpoint trips.
        token.tripAfterCheckpoints(2);
        const core::MonteCarloStats part =
            core::monteCarloTimeToTrain(solve, config,
                                        /*replications=*/10000,
                                        kSeed, pool, workers, token);
        EXPECT_EQ(part.status, RunStatus::Cancelled);
        EXPECT_EQ(part.replications, full.replications);
        EXPECT_EQ(part.meanSeconds.value(), full.meanSeconds.value());
        EXPECT_EQ(part.stddevSeconds.value(),
                  full.stddevSeconds.value());
        EXPECT_EQ(part.standardError.value(),
                  full.standardError.value());
    }
}

/**
 * Simulator schedules are all-or-nothing: a stop at the schedule
 * entry checkpoint returns an empty (but well-formed) outcome, and
 * an inert token leaves results bit-identical to an uninstrumented
 * simulator.
 */
TEST(SimulatorCancelTest, StoppedScheduleReturnsEmptyOutcome)
{
    sim::TrainingSimulator simulator(
        model::presets::tinyTest(), hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6},
                        BitsPerSecond{2.4e12}});
    const CancelToken token = CancelToken::make();
    token.cancel();
    simulator.setCancelToken(token);

    const sim::SimOutcome outcomes[] = {
        simulator.simulateDataParallelStep(4, 8.0),
        simulator.simulateGPipeStep(4, 8.0, 4),
        simulator.simulateTensorParallelStep(4, 8.0),
    };
    for (const auto &outcome : outcomes) {
        EXPECT_EQ(outcome.status, RunStatus::Cancelled);
        EXPECT_EQ(outcome.stepTime, 0.0);
        ASSERT_NE(outcome.graph, nullptr);
        EXPECT_EQ(outcome.graph->taskCount(), 0u);
        EXPECT_TRUE(outcome.deviceIds.empty());
    }
}

TEST(SimulatorCancelTest, InertTokenLeavesResultsUnchanged)
{
    const auto make = [] {
        return sim::TrainingSimulator(
            model::presets::tinyTest(), hw::presets::tinyTest(),
            hw::MicrobatchEfficiency(0.8, 4.0),
            net::LinkConfig{"intra", Seconds{1e-6},
                            BitsPerSecond{2.4e12}});
    };
    auto plain = make();
    const sim::SimOutcome reference =
        plain.simulateDataParallelStep(4, 8.0);

    auto instrumented = make();
    instrumented.setCancelToken(CancelToken());
    const sim::SimOutcome watched =
        instrumented.simulateDataParallelStep(4, 8.0);

    EXPECT_EQ(watched.status, RunStatus::Completed);
    EXPECT_EQ(watched.stepTime, reference.stepTime);
    EXPECT_EQ(watched.raw.makespan, reference.raw.makespan);
    ASSERT_NE(watched.graph, nullptr);
    EXPECT_EQ(watched.graph->taskCount(),
              reference.graph->taskCount());
}

} // namespace
} // namespace amped

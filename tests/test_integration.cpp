/**
 * @file
 * End-to-end reproduction tests: lock in the paper's validation
 * numbers and case-study shapes so regressions in any module surface
 * as test failures.  Each test mirrors one bench binary (see
 * DESIGN.md's experiment index) with the tolerances observed there.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"
#include "validate/reference_data.hpp"
#include "validate/validation.hpp"

namespace amped {
namespace {

model::TransformerConfig
megatronByName(const std::string &name)
{
    using namespace model::presets;
    if (name == "145B")
        return megatron145B();
    if (name == "310B")
        return megatron310B();
    if (name == "530B")
        return megatron530B();
    return megatron1T();
}

/** Reproduces one Table II row; returns achieved TFLOP/s/GPU. */
double
table2Tflops(const validate::Table2Row &row)
{
    net::SystemConfig system;
    system.name = "selene";
    system.numNodes = row.pp * row.dp;
    system.acceleratorsPerNode = 8;
    system.intraLink = net::presets::nvlinkA100();
    system.interLink = net::presets::hdrInfiniband();
    system.nicsPerNode = 8;

    core::AmpedModel amped(megatronByName(row.modelName),
                           hw::presets::a100(),
                           validate::calibrations::megatronTable2(),
                           system,
                           validate::calibrations::nvswitchOptions(8));
    core::TrainingJob job;
    job.batchSize = row.batchSize;
    job.numBatchesOverride = 1.0;
    job.microbatching.microbatchSizeOverride = row.microbatch;
    const auto result = amped.evaluate(
        mapping::makeMapping(8, 1, 1, 1, row.pp, row.dp), job);
    return result.achievedFlopsPerGpu / 1e12;
}

TEST(Table2Reproduction, AllRowsWithinPaperErrorBand)
{
    for (const auto &row : validate::table2Rows()) {
        const double tflops = table2Tflops(row);
        const double error = std::fabs(tflops - row.publishedTflops) /
                             row.publishedTflops * 100.0;
        EXPECT_LE(error, 12.0) << row.modelName << ": " << tflops
                               << " vs published "
                               << row.publishedTflops;
        // Sanity: achieved throughput in the plausible MFU band.
        EXPECT_GT(tflops, 100.0) << row.modelName;
        EXPECT_LT(tflops, 312.0) << row.modelName;
    }
}

TEST(Table3Reproduction, GPipeSpeedupsWithinPaperErrorBand)
{
    const auto model_cfg = model::presets::gpipeTransformer24();
    const auto accel = hw::presets::p100Pcie();
    const auto eff = validate::calibrations::gpipeP100();
    const auto options = validate::calibrations::validationOptions();

    auto step_time = [&](std::int64_t gpus) {
        net::SystemConfig system;
        system.name = "p100";
        system.numNodes = 1;
        system.acceleratorsPerNode = gpus;
        system.intraLink = net::presets::pcie3();
        system.interLink = net::presets::edrInfiniband();
        system.nicsPerNode = 1;
        core::AmpedModel amped(model_cfg, accel, eff, system, options);
        core::TrainingJob job;
        job.batchSize = 128.0;
        job.numBatchesOverride = 1.0;
        job.microbatching.numMicrobatchesOverride = 32.0;
        return amped
            .evaluate(mapping::makeMapping(1, gpus, 1, 1, 1, 1), job)
            .timePerBatch;
    };

    const double t2 = step_time(2);
    for (const auto &row : validate::table3Rows()) {
        const double speedup = t2 / step_time(row.gpus);
        const double error =
            std::fabs(speedup - row.publishedSpeedup) /
            row.publishedSpeedup * 100.0;
        EXPECT_LE(error, 12.0)
            << row.gpus << " GPUs: " << speedup << " vs "
            << row.publishedSpeedup;
    }
}

TEST(Fig2cReproduction, ErrorShrinksWithMicrobatchAndStaysUnder12)
{
    net::SystemConfig system;
    system.name = "12x8";
    system.numNodes = 12;
    system.acceleratorsPerNode = 8;
    system.intraLink = net::presets::nvlinkA100();
    system.interLink = net::presets::hdrInfiniband();
    system.nicsPerNode = 8;
    core::AmpedModel amped(model::presets::gpt3_175B(),
                           hw::presets::a100(),
                           validate::calibrations::fig2cSweep(), system,
                           validate::calibrations::nvswitchOptions(8));
    const auto mapping = mapping::makeMapping(1, 8, 1, 1, 12, 1);

    double previous_tflops = 0.0;
    double previous_abs_error = 1e9;
    for (const auto &point : validate::fig2cPoints()) {
        core::TrainingJob job;
        job.batchSize = point.microbatch * 96.0;
        job.numBatchesOverride = 1.0;
        job.microbatching.numMicrobatchesOverride = 96.0;
        const double tflops =
            amped.evaluate(mapping, job).achievedFlopsPerGpu / 1e12;
        // Saturating: throughput grows with the microbatch.
        EXPECT_GT(tflops, previous_tflops);
        previous_tflops = tflops;
        const double abs_error =
            std::fabs(tflops - point.publishedTflops) /
            point.publishedTflops * 100.0;
        EXPECT_LE(abs_error, 12.0) << "ub=" << point.microbatch;
        EXPECT_LE(abs_error, previous_abs_error + 0.5)
            << "error should shrink along the sweep";
        previous_abs_error = abs_error;
    }
}

TEST(Fig2aReproduction, AnalyticMatchesSimulatorWithinOnePercent)
{
    const auto model_cfg = model::presets::minGpt85M();
    const auto accel = hw::presets::v100Sxm3();
    const auto eff = validate::calibrations::minGptHgx2();
    for (std::int64_t gpus : {1, 2, 4, 8, 16}) {
        core::AmpedModel amped(
            model_cfg, accel, eff, net::presets::hgx2(gpus),
            validate::calibrations::nvswitchOptions(gpus));
        core::TrainingJob job;
        job.batchSize = 32.0 * static_cast<double>(gpus);
        job.numBatchesOverride = 1.0;
        const double analytic =
            amped
                .evaluate(mapping::makeMapping(1, 1, gpus, 1, 1, 1),
                          job)
                .timePerBatch;

        sim::TrainingSimulator simulator(model_cfg, accel, eff,
                                         net::presets::nvlinkV100());
        simulator.setBackwardMultiplier(3.0);
        const double simulated =
            simulator.simulateDataParallelStep(gpus, 32.0).stepTime;
        EXPECT_NEAR(analytic / simulated, 1.0, 0.01)
            << gpus << " GPUs";
    }
}

TEST(Fig2bReproduction, PipelineSaturatesBeyondEightGpus)
{
    const auto model_cfg = model::presets::minGptPipeline();
    const auto accel = hw::presets::v100Sxm3();
    const auto eff = validate::calibrations::minGptHgx2();
    auto total_time = [&](std::int64_t gpus) {
        const double batch =
            std::min(8.0 * static_cast<double>(gpus), 64.0);
        core::AmpedModel amped(
            model_cfg, accel, eff, net::presets::hgx2(gpus),
            validate::calibrations::nvswitchOptions(gpus));
        core::TrainingJob job;
        job.batchSize = batch;
        job.numBatchesOverride = 12800.0 / batch; // fixed dataset
        return amped
            .evaluate(mapping::makeMapping(1, gpus, 1, 1, 1, 1), job)
            .totalTime;
    };
    const double t2 = total_time(2);
    const double t4 = total_time(4);
    const double t8 = total_time(8);
    const double t16 = total_time(16);
    // Falling to 8 GPUs, saturating from 8 to 16 (memory cap).
    EXPECT_LT(t4, t2);
    EXPECT_LT(t8, t4);
    EXPECT_LT(t16, t8);
    const double gain_4_to_8 = t4 / t8;
    const double gain_8_to_16 = t8 / t16;
    EXPECT_GT(gain_4_to_8, 1.6);  // near-linear region
    EXPECT_LT(gain_8_to_16, 1.5); // saturation region
}

TEST(CaseStudy1Reproduction, KeyOrderingsHold)
{
    core::AmpedModel amped(model::presets::megatron145B(),
                           hw::presets::a100(),
                           validate::calibrations::caseStudy1(),
                           net::presets::a100Cluster1024(),
                           validate::calibrations::caseStudyOptions());
    core::TrainingJob job;
    job.batchSize = 16384.0;
    job.totalTrainingTokens = 300e9;

    const double tp_intra_dp_inter =
        amped.evaluate(mapping::makeMapping(8, 1, 1, 1, 1, 128), job)
            .totalTime;
    const double tp_intra_pp_inter =
        amped.evaluate(mapping::makeMapping(8, 1, 1, 1, 128, 1), job)
            .totalTime;
    const double tp_inter2 =
        amped.evaluate(mapping::makeMapping(8, 1, 1, 2, 1, 64), job)
            .totalTime;
    const double dp_intra_dp_inter =
        amped.evaluate(mapping::makeMapping(1, 1, 8, 1, 1, 128), job)
            .totalTime;

    // Conclusion 3/5: DP-inter beats PP-inter slightly; both beat
    // TP-inter by a wide margin (paper: ~2-3x).
    EXPECT_LT(tp_intra_dp_inter, tp_intra_pp_inter);
    EXPECT_LT(tp_intra_pp_inter, 1.3 * tp_intra_dp_inter);
    EXPECT_GT(tp_inter2, 1.5 * tp_intra_dp_inter);
    // Sec. VI-D: DP-intra ~2x slower than TP-intra.
    EXPECT_GT(dp_intra_dp_inter, 1.7 * tp_intra_dp_inter);
    EXPECT_LT(dp_intra_dp_inter, 3.0 * tp_intra_dp_inter);
    // Absolute scale: best configuration trains in ~2-4 weeks.
    EXPECT_GT(tp_intra_dp_inter / 86400.0, 14.0);
    EXPECT_LT(tp_intra_dp_inter / 86400.0, 30.0);
}

TEST(CaseStudy2Reproduction, StrategyFlipsWithNodeSize)
{
    const double batch = 8192.0;
    auto evaluate = [&](std::int64_t per_node, bool pipeline,
                        double ub) {
        const auto system = net::presets::lowEndCluster(per_node);
        core::AmpedModel amped(
            model::presets::megatron145B(), hw::presets::a100(),
            validate::calibrations::caseStudy1(), system,
            validate::calibrations::caseStudyOptions());
        core::TrainingJob job;
        job.batchSize = batch;
        job.totalTrainingTokens = 300e9;
        if (ub > 0.0)
            job.microbatching.microbatchSizeOverride = ub;
        const auto m =
            pipeline ? mapping::makeMapping(per_node, 1, 1, 1,
                                            system.numNodes, 1)
                     : mapping::makeMapping(per_node, 1, 1, 1, 1,
                                            system.numNodes);
        return amped.evaluate(m, job).totalTime;
    };

    // 1 accelerator + NIC per node: PP (tuned microbatch) wins.
    EXPECT_LT(evaluate(1, true, 32.0), evaluate(1, false, 0.0));
    // 8 accelerators + NICs per node: DP wins even vs tuned PP.
    double best_pp8 = 1e30;
    for (double ub : {16.0, 32.0, 64.0, 128.0})
        best_pp8 = std::min(best_pp8, evaluate(8, true, ub));
    EXPECT_LT(evaluate(8, false, 0.0), best_pp8);
}

TEST(CaseStudy3Reproduction, OpticalSubstrateOrdering)
{
    auto evaluate = [](std::int64_t per_node,
                       std::int64_t fibers, double off_chip_scale) {
        hw::AcceleratorConfig accel = hw::presets::h100();
        accel.precisions.parameterBits = Bits{8.0};
        accel.precisions.activationBits = Bits{8.0};
        accel.precisions.nonlinearBits = Bits{8.0};
        accel.offChipBandwidth *= off_chip_scale;

        net::SystemConfig system;
        system.name = "cs3";
        system.acceleratorsPerNode = per_node;
        system.numNodes = 3072 / per_node;
        system.intraLink =
            net::presets::nvlinkH100().scaledBandwidth(off_chip_scale);
        if (fibers > 0) {
            system.interLink = net::presets::opticalFiber(
                accel.offChipBandwidth);
            system.nicsPerNode = fibers;
            system.interIsPooledFabric = true;
        } else {
            system.interLink = net::presets::ndrInfiniband();
            system.nicsPerNode = 8;
        }
        core::ModelOptions options =
            validate::calibrations::nvswitchOptions(per_node);
        options.gradientBits = Bits{32.0};
        core::AmpedModel amped(model::presets::glamMoE(), accel,
                               validate::calibrations::caseStudy3(),
                               system, options);
        core::TrainingJob job;
        job.batchSize = 8192.0;
        job.totalTrainingTokens = 300e9;
        return amped
            .evaluate(mapping::makeMapping(per_node, 1, 1, 1, 1,
                                           system.numNodes),
                      job)
            .totalTime;
    };

    const double reference = evaluate(8, 0, 1.0);
    const double opt1 = evaluate(8, 8, 1.0);
    const double opt2 = evaluate(16, 12, 1.0);
    const double opt3 = evaluate(48, 24, 4.0);
    // Every optimization step improves on the last; the full stack
    // is a substantial (>= 1.8x here, ~4x in the paper) speedup
    // without raising peak compute.
    EXPECT_LT(opt1, reference);
    EXPECT_LT(opt2, opt1);
    EXPECT_LT(opt3, opt2);
    EXPECT_GT(reference / opt1, 1.3);
    EXPECT_GT(reference / opt3, 1.8);
}

TEST(SimulatorCrossCheck, TensorParallelStepMatchesAnalytic)
{
    const auto model_cfg = model::presets::minGptPipeline();
    const auto accel = hw::presets::v100Sxm3();
    const auto eff = validate::calibrations::minGptHgx2();
    sim::TrainingSimulator simulator(model_cfg, accel, eff,
                                     net::presets::nvlinkV100());
    simulator.setBackwardMultiplier(3.0);
    const auto outcome =
        simulator.simulateTensorParallelStep(8, 64.0);

    core::ModelOptions options =
        validate::calibrations::validationOptions();
    core::AmpedModel amped(model_cfg, accel, eff,
                           net::presets::hgx2(8), options);
    core::TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 1.0;
    const auto result = amped.evaluate(
        mapping::makeMapping(8, 1, 1, 1, 1, 1), job);
    const double analytic =
        result.timePerBatch - result.perBatch.weightUpdate;
    EXPECT_NEAR(analytic / outcome.stepTime, 1.0, 0.02);
}

} // namespace
} // namespace amped

/**
 * @file
 * Tests for math helpers, including a parameterized property sweep
 * of divisor enumeration and a recovery test for the two-parameter
 * fitter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace amped {
namespace math {
namespace {

TEST(CeilDivTest, ExactAndInexact)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(ceilDiv(1, 1), 1);
}

TEST(CeilDivTest, RejectsInvalidOperands)
{
    EXPECT_THROW(ceilDiv(-1, 5), UserError);
    EXPECT_THROW(ceilDiv(5, 0), UserError);
    EXPECT_THROW(ceilDiv(5, -2), UserError);
}

TEST(ApproxEqualTest, WithinAndBeyondTolerance)
{
    EXPECT_TRUE(approxEqual(1.0, 1.0));
    EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(approxEqual(1.0, 1.1));
    EXPECT_TRUE(approxEqual(1e12, 1e12 + 1.0, 1e-9));
    EXPECT_TRUE(approxEqual(0.0, 1e-10));
}

TEST(AlmostEqualTest, AbsoluteTolerance)
{
    EXPECT_TRUE(almostEqual(1.0, 1.0));
    EXPECT_TRUE(almostEqual(0.0, 5e-10));
    EXPECT_FALSE(almostEqual(0.0, 5e-9));
    EXPECT_TRUE(almostEqual(0.0, 5e-9, 1e-8));
}

TEST(AlmostEqualTest, RelativeTolerance)
{
    // |1e12 - (1e12+1)| = 1 fails the absolute test but passes the
    // relative one (1e-12 vs rel tol 1e-6).
    EXPECT_TRUE(almostEqual(1e12, 1e12 + 1.0));
    EXPECT_FALSE(almostEqual(1e12, 1.001e12));
    EXPECT_TRUE(almostEqual(1e12, 1.001e12, 1e-9, 0.01));
    // Symmetric: scaled by max(|a|, |b|).
    EXPECT_EQ(almostEqual(100.0, 101.0, 0.0, 0.01),
              almostEqual(101.0, 100.0, 0.0, 0.01));
}

TEST(AlmostEqualTest, SpecialValues)
{
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(almostEqual(nan, nan));   // both-NaN pins a point
    EXPECT_FALSE(almostEqual(nan, 1.0));
    EXPECT_FALSE(almostEqual(1.0, nan));
    EXPECT_TRUE(almostEqual(inf, inf));
    EXPECT_TRUE(almostEqual(-inf, -inf));
    EXPECT_FALSE(almostEqual(inf, -inf));
    EXPECT_FALSE(almostEqual(inf, 1e308));
}

TEST(AlmostEqualTest, RejectsBadTolerances)
{
    EXPECT_THROW(almostEqual(1.0, 1.0, -1.0, 0.0), UserError);
    EXPECT_THROW(almostEqual(1.0, 1.0, 0.0, -1.0), UserError);
    EXPECT_THROW(almostEqual(1.0, 1.0, std::nan(""), 0.0), UserError);
}

TEST(RelativeErrorTest, BasicValues)
{
    EXPECT_DOUBLE_EQ(relativeError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(90.0, 100.0), 0.1);
    EXPECT_THROW(relativeError(1.0, 0.0), UserError);
}

TEST(PowerOfTwoTest, Classification)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(-4));
}

TEST(DivisorsTest, KnownValues)
{
    EXPECT_EQ(divisorsOf(1), (std::vector<std::int64_t>{1}));
    EXPECT_EQ(divisorsOf(12),
              (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
    EXPECT_EQ(divisorsOf(8), (std::vector<std::int64_t>{1, 2, 4, 8}));
    EXPECT_THROW(divisorsOf(0), UserError);
}

/** Property sweep: every reported divisor divides n, in order. */
class DivisorProperty : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(DivisorProperty, AllDivideAndSorted)
{
    const std::int64_t n = GetParam();
    const auto divisors = divisorsOf(n);
    ASSERT_FALSE(divisors.empty());
    EXPECT_EQ(divisors.front(), 1);
    EXPECT_EQ(divisors.back(), n);
    for (std::size_t i = 0; i < divisors.size(); ++i) {
        EXPECT_EQ(n % divisors[i], 0) << "divisor " << divisors[i];
        if (i > 0) {
            EXPECT_LT(divisors[i - 1], divisors[i]);
        }
    }
}

TEST_P(DivisorProperty, FactorPairsMultiplyBack)
{
    const std::int64_t n = GetParam();
    for (const auto &[a, b] : factorPairs(n))
        EXPECT_EQ(a * b, n);
}

INSTANTIATE_TEST_SUITE_P(SweepSmallAndPow2, DivisorProperty,
                         ::testing::Values(1, 2, 7, 8, 12, 16, 36, 128,
                                           1024, 2520));

TEST(FitTwoParamTest, RecoversHyperbolicSaturation)
{
    // Generate samples from eff(ub) = 0.85 ub / (12 + ub) and check
    // the fitter recovers the parameters.
    const double true_a = 0.85, true_b = 12.0;
    std::vector<Sample> samples;
    for (double ub : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
        samples.push_back({ub, true_a * ub / (true_b + ub)});

    const auto model = [](double a, double b, double x) {
        return a * x / (b + x);
    };
    const auto fit =
        fitTwoParam(samples, model, {0.01, 1.0}, {0.01, 100.0});
    EXPECT_NEAR(fit.a, true_a, 0.02);
    EXPECT_NEAR(fit.b, true_b, 0.5);
    EXPECT_LT(fit.sumSquaredError, 1e-4);
}

TEST(FitTwoParamTest, RecoversLinearModel)
{
    // y = a x + b is also a two-parameter model.
    std::vector<Sample> samples;
    for (double x : {0.0, 1.0, 2.0, 3.0, 4.0})
        samples.push_back({x, 2.0 * x + 1.0});
    const auto model = [](double a, double b, double x) {
        return a * x + b;
    };
    const auto fit =
        fitTwoParam(samples, model, {0.0, 5.0}, {0.0, 5.0});
    EXPECT_NEAR(fit.a, 2.0, 0.01);
    EXPECT_NEAR(fit.b, 1.0, 0.01);
}

TEST(FitTwoParamTest, RejectsBadArguments)
{
    const auto model = [](double, double, double) { return 0.0; };
    EXPECT_THROW(fitTwoParam({}, model, {0, 1}, {0, 1}), UserError);
    std::vector<Sample> one = {{1.0, 1.0}};
    EXPECT_THROW(fitTwoParam(one, model, {1, 0}, {0, 1}), UserError);
    EXPECT_THROW(fitTwoParam(one, model, {0, 1}, {0, 1}, 2), UserError);
    EXPECT_THROW(fitTwoParam(one, model, {0, 1}, {0, 1}, 10, 0),
                 UserError);
}

} // namespace
} // namespace math
} // namespace amped

/**
 * @file
 * Tests for the training-schedule simulator: agreement with the
 * analytical collective costs, emergence of pipeline bubbles, and
 * scaling behaviour.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compute_cost.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/collectives.hpp"
#include "sim/training_sim.hpp"

namespace amped {
namespace sim {
namespace {

TrainingSimulator
makeSim()
{
    return TrainingSimulator(
        model::presets::tinyTest(), hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}});
}

/** Pure compute time of forward+backward+update on one device. */
double
singleDeviceComputeTime(const TrainingSimulator &sim, double batch,
                        double backward_multiplier = 2.0)
{
    const auto &counter = sim.opCounter();
    const auto accel = hw::presets::tinyTest();
    const hw::MicrobatchEfficiency eff(0.8, 4.0);
    double total = 0.0;
    for (std::int64_t l = 0; l < counter.config().numLayers; ++l) {
        total += (1.0 + backward_multiplier) *
                 core::layerForwardComputeTime(counter, accel,
                                               eff(batch), l, batch)
                     .value();
        total += core::layerWeightUpdateTime(counter, accel,
                                             eff(batch), l)
                     .value();
    }
    return total;
}

TEST(DataParallelSimTest, SingleDeviceIsComputeOnly)
{
    const auto sim = makeSim();
    const auto outcome = sim.simulateDataParallelStep(1, 8.0);
    EXPECT_NEAR(outcome.stepTime, singleDeviceComputeTime(sim, 8.0),
                1e-12);
    ASSERT_EQ(outcome.deviceUtilization.size(), 1u);
    EXPECT_NEAR(outcome.deviceUtilization[0], 1.0, 1e-9);
}

TEST(DataParallelSimTest, StepTimeIsComputePlusRing)
{
    const auto sim = makeSim();
    const std::int64_t n = 4;
    const auto outcome = sim.simulateDataParallelStep(n, 8.0);
    const double compute = singleDeviceComputeTime(sim, 8.0);
    // Ring all-reduce lower bound from the analytical model (chunked
    // ring, gradients at 32 bits).
    const double grad_bits = sim.opCounter().totalLayerWeights() * 32.0;
    const net::LinkConfig link{"intra", Seconds{1e-6},
                               BitsPerSecond{2.4e12}};
    const double ring =
        net::allReduceTime(n, grad_bits / 32.0, Bits{32.0}, link)
            .value();
    EXPECT_GT(outcome.stepTime, compute);
    // The simulated ring should be close to the analytic form (the
    // analytic latency term counts N hops vs 2(N-1) simulated, so
    // allow a loose band).
    EXPECT_NEAR(outcome.stepTime, compute + ring,
                0.2 * ring + 1e-6);
}

TEST(DataParallelSimTest, AllReduceCostGrowsWithDevices)
{
    const auto sim = makeSim();
    const double t2 = sim.simulateDataParallelStep(2, 8.0).stepTime;
    const double t8 = sim.simulateDataParallelStep(8, 8.0).stepTime;
    // Same per-device batch: compute identical, ring cost grows.
    EXPECT_GT(t8, t2);
}

TEST(DataParallelSimTest, ThroughputScalesWithDevices)
{
    // Fixed total data: n devices process n x the batch per step.
    const auto sim = makeSim();
    const double t1 = sim.simulateDataParallelStep(1, 8.0).stepTime;
    const double t8 = sim.simulateDataParallelStep(8, 8.0).stepTime;
    const double speedup = (8.0 / t8) / (1.0 / t1);
    EXPECT_GT(speedup, 4.0); // well above half of ideal
    EXPECT_LE(speedup, 8.0 + 1e-9);
}

TEST(DataParallelSimTest, RejectsBadArguments)
{
    const auto sim = makeSim();
    EXPECT_THROW(sim.simulateDataParallelStep(0, 8.0), UserError);
    EXPECT_THROW(sim.simulateDataParallelStep(2, 0.5), UserError);
}

TEST(GPipeSimTest, SingleStageHasNoBubble)
{
    const auto sim = makeSim();
    const auto outcome = sim.simulateGPipeStep(1, 8.0, 4);
    // 4 microbatches of pure compute, no transfers.
    const double per_ub = singleDeviceComputeTime(sim, 8.0) -
                          /* update counted once */ 0.0;
    EXPECT_GT(outcome.stepTime, 0.0);
    EXPECT_NEAR(outcome.deviceUtilization[0], 1.0, 1e-9);
    (void)per_ub;
}

TEST(GPipeSimTest, BubbleMatchesGPipeFormula)
{
    const auto sim = makeSim();
    const std::int64_t stages = 4;
    // Many microbatches: utilization approaches M / (M + S - 1).
    for (std::int64_t m : {4, 8, 32}) {
        const auto outcome = sim.simulateGPipeStep(stages, 4.0, m);
        const double expected_busy =
            static_cast<double>(m) / static_cast<double>(m + stages - 1);
        // First stage is the busiest; its utilization tracks the
        // GPipe bound (weight update + transfers smear it slightly).
        EXPECT_NEAR(outcome.deviceUtilization[0], expected_busy, 0.08)
            << "microbatches=" << m;
    }
}

TEST(GPipeSimTest, PeakInFlightMatchesGPipeResidency)
{
    // GPipe runs all forwards before any backward: every microbatch
    // is simultaneously live on stage 0 — the assumption behind
    // PipelineSchedule::activationsInFlight (GPipe = N_ub).
    const auto sim = makeSim();
    for (std::int64_t m : {4, 8, 16}) {
        const auto outcome = sim.simulateGPipeStep(4, 4.0, m);
        ASSERT_EQ(outcome.peakMicrobatchesInFlight.size(), 4u);
        // The first backward may start exactly when the last forward
        // ends (back-to-back slots), so the peak is m or m - 1.
        EXPECT_GE(outcome.peakMicrobatchesInFlight[0], m - 1)
            << "microbatches=" << m;
        EXPECT_LE(outcome.peakMicrobatchesInFlight[0], m)
            << "microbatches=" << m;
        // Later stages hold fewer (their backwards start earlier).
        EXPECT_LE(outcome.peakMicrobatchesInFlight[3],
                  outcome.peakMicrobatchesInFlight[0]);
        EXPECT_GE(outcome.peakMicrobatchesInFlight[3], 1);
    }
}

TEST(GPipeSimTest, MoreMicrobatchesImproveUtilization)
{
    const auto sim = makeSim();
    const auto few = sim.simulateGPipeStep(4, 4.0, 4);
    const auto many = sim.simulateGPipeStep(4, 4.0, 32);
    EXPECT_GT(many.deviceUtilization[2], few.deviceUtilization[2]);
}

TEST(GPipeSimTest, ThroughputImprovesWithStages)
{
    // Same total work (batch = ub * M), more stages -> shorter step.
    const auto sim = makeSim();
    const double t2 = sim.simulateGPipeStep(2, 4.0, 8).stepTime;
    const double t4 = sim.simulateGPipeStep(4, 4.0, 8).stepTime;
    EXPECT_LT(t4, t2);
    // But not super-linear.
    EXPECT_GT(t4, t2 / 2.0 * 0.9);
}

TEST(GPipeSimTest, StagesCappedByLayers)
{
    const auto sim = makeSim(); // tiny model: 4 layers
    EXPECT_THROW(sim.simulateGPipeStep(5, 4.0, 4), UserError);
    EXPECT_NO_THROW(sim.simulateGPipeStep(4, 4.0, 4));
}

TEST(GPipeSimTest, UnevenLayerSplitStillRuns)
{
    const auto sim = makeSim(); // 4 layers over 3 stages: 2+1+1
    const auto outcome = sim.simulateGPipeStep(3, 4.0, 6);
    EXPECT_GT(outcome.stepTime, 0.0);
    EXPECT_EQ(outcome.deviceUtilization.size(), 3u);
}

TEST(TensorParallelSimTest, ShardedComputePlusAllReduces)
{
    const auto sim = makeSim();
    const auto solo = sim.simulateTensorParallelStep(1, 8.0);
    const auto quad = sim.simulateTensorParallelStep(4, 8.0);
    // Sharding divides compute by 4, but all-reduces add overhead:
    // still faster than solo, slower than ideal.
    EXPECT_LT(quad.stepTime, solo.stepTime);
    EXPECT_GT(quad.stepTime, solo.stepTime / 4.0);
}

TEST(TensorParallelSimTest, SingleDeviceMatchesComputeOnly)
{
    const auto sim = makeSim();
    const auto outcome = sim.simulateTensorParallelStep(1, 8.0);
    // No weight update in the TP step builder: fwd + bwd only.
    const auto &counter = sim.opCounter();
    const auto accel = hw::presets::tinyTest();
    const hw::MicrobatchEfficiency eff(0.8, 4.0);
    double compute = 0.0;
    for (std::int64_t l = 0; l < 4; ++l) {
        compute += 3.0 * core::layerForwardComputeTime(
                                   counter, accel, eff(8.0), l, 8.0)
                             .value();
    }
    EXPECT_NEAR(outcome.stepTime, compute, 1e-12);
}

TEST(TrainingSimTest, BackwardMultiplierIsHonored)
{
    auto sim = makeSim();
    const double base = sim.simulateDataParallelStep(1, 8.0).stepTime;
    sim.setBackwardMultiplier(3.0);
    const double heavier =
        sim.simulateDataParallelStep(1, 8.0).stepTime;
    EXPECT_GT(heavier, base);
    EXPECT_THROW(sim.setBackwardMultiplier(-1.0), UserError);
}

TEST(TrainingSimTest, GradientBitsScaleRingCost)
{
    auto sim = makeSim();
    const double t32 = sim.simulateDataParallelStep(4, 8.0).stepTime;
    sim.setGradientBits(Bits{16.0});
    const double t16 = sim.simulateDataParallelStep(4, 8.0).stepTime;
    EXPECT_LT(t16, t32);
    EXPECT_THROW(sim.setGradientBits(Bits{0.0}), UserError);
}

} // namespace
} // namespace sim
} // namespace amped

/**
 * @file
 * Tests for the roofline baseline: it must be mapping-blind (that is
 * its defining property) and always optimistic vs AMPeD.
 */

#include <gtest/gtest.h>

#include "core/amped_model.hpp"
#include "core/roofline_baseline.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace core {
namespace {

net::SystemConfig
testSystem()
{
    net::SystemConfig sys;
    sys.name = "rf-4x4";
    sys.numNodes = 4;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return sys;
}

RooflineBaseline
makeRoofline()
{
    return RooflineBaseline(
        model::OpCounter(model::presets::tinyTest()),
        hw::presets::tinyTest(), testSystem());
}

TEST(RooflineTest, ComputeTimeIsFlopsOverAggregatePeak)
{
    const auto rf = makeRoofline();
    model::OpCounter counter(model::presets::tinyTest());
    const Seconds expected =
        Flops{counter.modelFlopsPerBatch(64.0)} /
        (hw::presets::tinyTest().peakMacFlops() * 16.0);
    EXPECT_DOUBLE_EQ(rf.computeTime(64.0).value(), expected.value());
}

TEST(RooflineTest, MappingBlindWithinSameParallelismKinds)
{
    const auto rf = makeRoofline();
    TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 1.0;
    // Same kinds (TP+DP), different placement: identical estimate.
    const Seconds a = rf.timePerBatch(
        mapping::makeMapping(4, 1, 1, 1, 1, 4), job);
    const Seconds b = rf.timePerBatch(
        mapping::makeMapping(1, 1, 4, 4, 1, 1), job);
    EXPECT_DOUBLE_EQ(a.value(), b.value());
}

TEST(RooflineTest, AlwaysOptimisticVsAmped)
{
    const auto rf = makeRoofline();
    AmpedModel amped(model::presets::tinyTest(),
                     hw::presets::tinyTest(),
                     hw::MicrobatchEfficiency(0.8, 4.0), testSystem());
    TrainingJob job;
    job.batchSize = 256.0;
    job.numBatchesOverride = 1.0;
    for (const auto &m :
         mapping::MappingSpace(testSystem()).enumerate(4)) {
        const double roof = rf.timePerBatch(m, job).value();
        const double full = amped.evaluate(m, job).timePerBatch;
        EXPECT_LT(roof, full) << m.toString();
    }
}

TEST(RooflineTest, CommunicationGrowsWithParallelKinds)
{
    const auto rf = makeRoofline();
    const Seconds none = rf.communicationTime(
        mapping::makeMapping(4, 1, 1, 4, 1, 1), 64.0); // TP only
    const Seconds with_dp = rf.communicationTime(
        mapping::makeMapping(4, 1, 1, 1, 1, 4), 64.0); // TP + DP
    EXPECT_GT(with_dp, none);
}

} // namespace
} // namespace core
} // namespace amped

/**
 * @file
 * Tests for the checkpoint/restart cost model: config validation,
 * the Daly interval, the renewal closed form, the parallel
 * Monte-Carlo replicator (analytic-vs-MC differential plus
 * thread-count byte-identity), and a sim-in-the-loop differential
 * that replays the same renewal process with the fault-injected
 * discrete-event simulator as the failure oracle.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/resilience.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "sim/fault.hpp"
#include "sim/training_sim.hpp"

namespace amped {
namespace core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ResilienceConfigTest, DefaultIsValidAndFailureFree)
{
    ResilienceConfig config;
    EXPECT_NO_THROW(config.validate());
    const auto estimate = estimateTimeToTrain(Seconds{123.0}, config);
    EXPECT_DOUBLE_EQ(estimate.expectedSeconds.value(), 123.0);
    EXPECT_DOUBLE_EQ(estimate.failureFreeSeconds.value(), 123.0);
    EXPECT_DOUBLE_EQ(estimate.expectedFailures, 0.0);
    EXPECT_DOUBLE_EQ(estimate.overheadFraction(), 0.0);
    EXPECT_EQ(estimate.segmentCount, 1u);
}

TEST(ResilienceConfigTest, ValidationNamesTheField)
{
    const auto diagnostic = [](ResilienceConfig config) {
        try {
            config.validate();
        } catch (const UserError &error) {
            return std::string(error.what());
        }
        ADD_FAILURE() << "expected a UserError";
        return std::string();
    };

    ResilienceConfig bad_mtbf;
    bad_mtbf.mtbfSeconds = Seconds{0.0};
    EXPECT_NE(diagnostic(bad_mtbf).find("mtbfSeconds"),
              std::string::npos);

    ResilienceConfig bad_write;
    bad_write.checkpointWriteSeconds = Seconds{-1.0};
    EXPECT_NE(diagnostic(bad_write).find("checkpointWriteSeconds"),
              std::string::npos);

    ResilienceConfig bad_restart;
    bad_restart.restartSeconds =
        Seconds{std::numeric_limits<double>::quiet_NaN()};
    EXPECT_NE(diagnostic(bad_restart).find("restartSeconds"),
              std::string::npos);

    ResilienceConfig bad_interval;
    bad_interval.checkpointIntervalSeconds = Seconds{-5.0};
    EXPECT_NE(diagnostic(bad_interval).find(
                  "checkpointIntervalSeconds"),
              std::string::npos);
}

TEST(ResilienceHelpersTest, CheckpointBytesIsParamsPlusOptimizer)
{
    MemoryFootprint footprint;
    footprint.parameterBytes = 100.0;
    footprint.gradientBytes = 50.0;  // recomputed, not persisted
    footprint.optimizerBytes = 200.0;
    footprint.activationBytes = 75.0; // recomputed, not persisted
    EXPECT_DOUBLE_EQ(checkpointBytes(footprint), 300.0);
}

TEST(ResilienceHelpersTest, CheckpointWriteTimeFollowsTheLink)
{
    const net::LinkConfig link{"storage", Seconds{0.5},
                               BitsPerSecond{8e9}}; // 1 GB/s
    // 2e9 bytes => 16e9 bits / 8e9 bits/s = 2 s, plus 0.5 s latency.
    EXPECT_DOUBLE_EQ(checkpointWriteSeconds(2e9, link).value(), 2.5);
    EXPECT_THROW(checkpointWriteSeconds(-1.0, link), UserError);
}

TEST(ResilienceHelpersTest, ClusterMtbfShrinksWithScale)
{
    EXPECT_DOUBLE_EQ(clusterMtbfSeconds(1e-6, 1).value(), 1e6);
    EXPECT_DOUBLE_EQ(clusterMtbfSeconds(1e-6, 1000).value(), 1e3);
    EXPECT_EQ(clusterMtbfSeconds(0.0, 1000).value(), kInf);
    EXPECT_THROW(clusterMtbfSeconds(-1.0, 4), UserError);
    EXPECT_THROW(clusterMtbfSeconds(1e-6, 0), UserError);
}

TEST(ResilienceDalyTest, MatchesTheHigherOrderFormula)
{
    const double delta = 60.0, mtbf = 24.0 * 3600.0;
    const double x = std::sqrt(delta / (2.0 * mtbf));
    const double expected = std::sqrt(2.0 * delta * mtbf)
                            * (1.0 + x / 3.0 + x * x / 9.0)
                            - delta;
    EXPECT_DOUBLE_EQ(dalyOptimalInterval(Seconds{delta},
                                         Seconds{mtbf})
                         .value(),
                     expected);
}

TEST(ResilienceDalyTest, ClampsToMtbfWhenWritesDominate)
{
    // delta >= 2M: checkpointing as often as the optimum suggests is
    // impossible; Daly prescribes tau = M.
    EXPECT_DOUBLE_EQ(
        dalyOptimalInterval(Seconds{10.0}, Seconds{4.0}).value(),
        4.0);
    EXPECT_EQ(dalyOptimalInterval(Seconds{10.0}, Seconds{kInf}).value(),
              kInf);
    EXPECT_THROW(dalyOptimalInterval(Seconds{0.0}, Seconds{100.0}),
                 UserError);
    EXPECT_THROW(dalyOptimalInterval(Seconds{10.0}, Seconds{0.0}),
                 UserError);
}

TEST(ResilienceRenewalTest, SegmentExpectationLimits)
{
    // Infinite MTBF: no failures, expectation is the wall itself.
    EXPECT_DOUBLE_EQ(expectedSegmentSeconds(Seconds{7.0}, Seconds{kInf},
                                            Seconds{30.0})
                         .value(),
                     7.0);
    // Zero wall costs nothing.
    EXPECT_DOUBLE_EQ(expectedSegmentSeconds(Seconds{0.0}, Seconds{100.0},
                                            Seconds{30.0})
                         .value(),
                     0.0);
    // Short segment, long MTBF: expectation ~ wall (first-order
    // (M+R)(L/M) = L (1 + R/M) -> L).
    EXPECT_NEAR(expectedSegmentSeconds(Seconds{1.0}, Seconds{1e9},
                                       Seconds{10.0})
                    .value(),
                1.0, 1e-6);
    // Exact closed form at a nontrivial point.
    const double wall = 50.0, mtbf = 100.0, restart = 20.0;
    EXPECT_DOUBLE_EQ(
        expectedSegmentSeconds(Seconds{wall}, Seconds{mtbf},
                               Seconds{restart})
            .value(),
        (mtbf + restart) * std::expm1(wall / mtbf));
    // Failures only make things slower.
    EXPECT_GT(expectedSegmentSeconds(Seconds{50.0}, Seconds{100.0},
                                     Seconds{0.0})
                  .value(),
              50.0);
}

TEST(ResilienceEstimateTest, SegmentationFollowsTheConvention)
{
    ResilienceConfig config;
    config.mtbfSeconds = Seconds{1e6};
    config.checkpointWriteSeconds = Seconds{2.0};
    config.restartSeconds = Seconds{5.0};
    config.checkpointIntervalSeconds = Seconds{10.0};
    const auto estimate = estimateTimeToTrain(Seconds{35.0}, config);
    // 35 s at tau = 10 -> 4 segments: 3 of wall 12 (10 work + 2
    // write) and a final one of wall 5 with no trailing checkpoint.
    EXPECT_EQ(estimate.segmentCount, 4u);
    EXPECT_DOUBLE_EQ(estimate.intervalSeconds.value(), 10.0);
    EXPECT_DOUBLE_EQ(estimate.solveSeconds.value(), 35.0);
    EXPECT_DOUBLE_EQ(estimate.failureFreeSeconds.value(),
                     35.0 + 3 * 2.0);
    const double expected =
        3.0 * expectedSegmentSeconds(Seconds{12.0}, Seconds{1e6},
                                     Seconds{5.0})
                  .value()
        + expectedSegmentSeconds(Seconds{5.0}, Seconds{1e6},
                                 Seconds{5.0})
              .value();
    EXPECT_DOUBLE_EQ(estimate.expectedSeconds.value(), expected);
    EXPECT_GT(estimate.expectedSeconds, estimate.failureFreeSeconds);
    EXPECT_GT(estimate.overheadFraction(), 0.0);
}

TEST(ResilienceEstimateTest, ZeroIntervalDerivesDaly)
{
    ResilienceConfig config;
    config.mtbfSeconds = Seconds{3600.0};
    config.checkpointWriteSeconds = Seconds{10.0};
    config.restartSeconds = Seconds{30.0};
    const auto estimate = estimateTimeToTrain(Seconds{36000.0}, config);
    EXPECT_DOUBLE_EQ(estimate.intervalSeconds.value(),
                     dalyOptimalInterval(Seconds{10.0}, Seconds{3600.0})
                         .value());
    EXPECT_GT(estimate.expectedFailures, 0.0);
}

TEST(ResilienceEstimateTest, UnderivableIntervalIsRejected)
{
    // Finite MTBF but zero write cost and no explicit interval:
    // Daly's optimum degenerates to zero-length segments.
    ResilienceConfig config;
    config.mtbfSeconds = Seconds{100.0};
    EXPECT_THROW(estimateTimeToTrain(Seconds{10.0}, config), UserError);
    EXPECT_THROW(estimateTimeToTrain(Seconds{-1.0}, ResilienceConfig{}),
                 UserError);
}

TEST(ResilienceEstimateTest, DalyIntervalIsNearOptimal)
{
    // The derived interval should beat sizable perturbations of
    // itself — a property check that the formula is actually placed
    // at (near) the minimum of the expected-time curve.
    ResilienceConfig config;
    config.mtbfSeconds = Seconds{2000.0};
    config.checkpointWriteSeconds = Seconds{15.0};
    config.restartSeconds = Seconds{60.0};
    const Seconds solve{40000.0};
    const Seconds tau =
        dalyOptimalInterval(Seconds{15.0}, Seconds{2000.0});
    const auto at = [&](Seconds interval) {
        ResilienceConfig c = config;
        c.checkpointIntervalSeconds = interval;
        return estimateTimeToTrain(solve, c).expectedSeconds;
    };
    EXPECT_LT(at(tau), at(tau * 3.0));
    EXPECT_LT(at(tau), at(tau / 3.0));
}

// ---------------------------------------------------------------
// Analytic vs Monte-Carlo differential.
// ---------------------------------------------------------------

TEST(ResilienceMonteCarloTest, AgreesWithClosedFormWithinError)
{
    // Tolerance: the MC mean is an unbiased estimator of the closed
    // form, so the gap should be a few standard errors; 5 sigma plus
    // a small absolute floor makes the test deterministic for the
    // fixed seed while still failing on any real modeling mismatch.
    ResilienceConfig config;
    config.mtbfSeconds = Seconds{500.0};
    config.checkpointWriteSeconds = Seconds{5.0};
    config.restartSeconds = Seconds{20.0};
    config.checkpointIntervalSeconds = Seconds{100.0};
    const Seconds solve{1000.0};
    const auto estimate = estimateTimeToTrain(solve, config);
    ThreadPool pool(4);
    const auto stats = monteCarloTimeToTrain(solve, config, 4000,
                                             0xd1ffULL, pool);
    EXPECT_EQ(stats.replications, 4000u);
    EXPECT_GT(stats.stddevSeconds.value(), 0.0);
    EXPECT_NEAR(stats.meanSeconds.value(),
                estimate.expectedSeconds.value(),
                5.0 * stats.standardError.value() + 1e-9);
}

TEST(ResilienceMonteCarloTest, FailureFreeClusterIsExact)
{
    ResilienceConfig config;
    config.checkpointWriteSeconds = Seconds{2.0};
    config.checkpointIntervalSeconds = Seconds{10.0};
    ThreadPool pool(2);
    const auto stats =
        monteCarloTimeToTrain(Seconds{35.0}, config, 64, 1ULL, pool);
    // No randomness survives an infinite MTBF: every replication is
    // exactly the failure-free wall time.
    EXPECT_DOUBLE_EQ(stats.meanSeconds.value(), 35.0 + 3 * 2.0);
    EXPECT_DOUBLE_EQ(stats.stddevSeconds.value(), 0.0);
}

TEST(ResilienceMonteCarloTest, ByteIdenticalAcrossThreadCounts)
{
    ResilienceConfig config;
    config.mtbfSeconds = Seconds{300.0};
    config.checkpointWriteSeconds = Seconds{5.0};
    config.restartSeconds = Seconds{15.0};
    config.checkpointIntervalSeconds = Seconds{60.0};
    ThreadPool one(1), four(4);
    const auto a =
        monteCarloTimeToTrain(Seconds{2000.0}, config, 512, 42ULL, one);
    const auto b =
        monteCarloTimeToTrain(Seconds{2000.0}, config, 512, 42ULL,
                              four);
    // Bitwise, not approximate: per-slot writes + index-order
    // reduction make the parallel sum order-independent.
    EXPECT_EQ(a.meanSeconds.value(), b.meanSeconds.value());
    EXPECT_EQ(a.stddevSeconds.value(), b.stddevSeconds.value());
    EXPECT_EQ(a.standardError.value(), b.standardError.value());
}

// ---------------------------------------------------------------
// Sim-in-the-loop differential: the fault-injected simulator as the
// failure oracle inside the same renewal process.
// ---------------------------------------------------------------

TEST(ResilienceSimDifferentialTest, SimulatorRenewalMatchesAnalytic)
{
    // One checkpointed segment = one data-parallel training step.
    // For the symmetric DP schedule every device computes the same
    // amount, so the step fails iff the earliest sampled device
    // failure lands before the fault-free step time — exactly the
    // exponential race the closed form assumes, with cluster MTBF
    // M / devices.  Each failed attempt costs firstFailureTime +
    // restart; a surviving attempt costs the step time.  That makes
    // the sim-driven expectation equal to
    //     (M_cluster + R)(e^{T/M_cluster} - 1)
    // in distribution, so the MC mean must land within a few
    // standard errors of it.
    constexpr std::int64_t devices = 4;
    constexpr double per_device_batch = 8.0;

    sim::TrainingSimulator sim(
        model::presets::tinyTest(), hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6},
                            BitsPerSecond{2.4e12}});
    const double step_time =
        sim.simulateDataParallelStep(devices, per_device_batch)
            .stepTime;
    ASSERT_GT(step_time, 0.0);

    // Per-device MTBF chosen so roughly a third of attempts fail.
    const double device_mtbf =
        devices * step_time / std::log(1.5);
    const double cluster_mtbf = device_mtbf / devices;
    const double restart = 0.5 * step_time;
    const double analytic =
        expectedSegmentSeconds(Seconds{step_time},
                               Seconds{cluster_mtbf},
                               Seconds{restart})
            .value();

    constexpr std::size_t replications = 600;
    std::vector<double> totals(replications);
    ThreadPool pool(4);
    pool.parallelFor(replications, 4, [&](std::size_t r) {
        sim::TrainingSimulator worker(
            model::presets::tinyTest(), hw::presets::tinyTest(),
            hw::MicrobatchEfficiency(0.8, 4.0),
            net::LinkConfig{"intra", Seconds{1e-6},
                            BitsPerSecond{2.4e12}});
        double elapsed = 0.0;
        for (int attempt = 0; attempt < 200; ++attempt) {
            sim::FaultSpec spec;
            spec.seed = 0xface0000ULL + r * 1000 + attempt;
            spec.failureRate = 1.0 / device_mtbf;
            spec.failureHorizon = 2.0 * step_time;
            worker.setFaultSpec(spec);
            const auto outcome = worker.simulateDataParallelStep(
                devices, per_device_batch);
            if (!outcome.failure.failed) {
                totals[r] = elapsed + step_time;
                return;
            }
            elapsed += outcome.failure.firstFailureTime + restart;
        }
        ADD_FAILURE() << "replication " << r
                      << " never completed a step";
        totals[r] = elapsed;
    });

    double mean = 0.0;
    for (double t : totals)
        mean += t;
    mean /= static_cast<double>(replications);
    double var = 0.0;
    for (double t : totals)
        var += (t - mean) * (t - mean);
    var /= static_cast<double>(replications - 1);
    const double standard_error =
        std::sqrt(var / static_cast<double>(replications));

    EXPECT_NEAR(mean, analytic,
                5.0 * standard_error + 1e-12)
        << "sim renewal mean " << mean << " vs analytic " << analytic
        << " (SE " << standard_error << ")";
}

} // namespace
} // namespace core
} // namespace amped
